//! Workspace-level property tests: whatever the configuration, the system
//! upholds its core invariants.

use attack_core::{AttackConfig, AttackType, StrategyKind, ValueMode};
use driving_sim::{Scenario, ScenarioId, INITIAL_GAPS};
use platform::{Harness, HarnessConfig};
use proptest::prelude::*;
use units::Distance;

fn any_attack_type() -> impl Strategy<Value = AttackType> {
    prop::sample::select(AttackType::ALL.to_vec())
}

fn any_strategy() -> impl Strategy<Value = StrategyKind> {
    prop::sample::select(StrategyKind::ALL.to_vec())
}

fn any_scenario() -> impl Strategy<Value = Scenario> {
    (
        prop::sample::select(ScenarioId::ALL.to_vec()),
        prop::sample::select(INITIAL_GAPS.to_vec()),
    )
        .prop_map(|(id, gap)| Scenario::new(id, Distance::meters(gap)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any attack configuration runs 8 simulated seconds without panicking,
    /// and the physics invariants hold throughout.
    #[test]
    fn any_configuration_upholds_physical_invariants(
        attack_type in any_attack_type(),
        strategy in any_strategy(),
        fixed in any::<bool>(),
        scenario in any_scenario(),
        seed in 0u64..1_000,
        panda in any::<bool>(),
    ) {
        let attack = AttackConfig {
            attack_type,
            strategy,
            value_mode: if fixed { ValueMode::Fixed } else { ValueMode::Strategic },
            seed,
            ..AttackConfig::default()
        };
        let mut cfg = HarnessConfig::with_attack(scenario, seed, attack);
        cfg.panda_enabled = panda;
        let mut h = Harness::new(cfg);
        for _ in 0..800 {
            h.step();
            let ego = h.world().ego();
            prop_assert!(ego.speed().mps() >= 0.0, "no reversing");
            prop_assert!(ego.speed().mps() < 45.0, "bounded by physics + limits");
            prop_assert!(ego.accel().mps2() >= -8.5 && ego.accel().mps2() <= 3.5);
            prop_assert!(ego.d().raw().abs() < 12.0, "within the road corridor");
        }
        let r = h.result_so_far();
        prop_assert!(r.fcw_events == 0, "FCW silent under every configuration");
    }

    /// Strategic values never leave the strict envelope, whatever the
    /// context that produced them.
    #[test]
    fn strategic_values_always_inside_the_envelope(
        attack_type in any_attack_type(),
        scenario in any_scenario(),
        seed in 0u64..1_000,
    ) {
        let attack = AttackConfig {
            attack_type,
            strategy: StrategyKind::ContextAware,
            value_mode: ValueMode::Strategic,
            seed,
            ..AttackConfig::default()
        };
        let mut h = Harness::new(HarnessConfig::with_attack(scenario, seed, attack));
        for _ in 0..2_000 {
            h.step();
            if let Some(att) = h.attacker() {
                let v = att.values();
                if let Some(a) = v.accel {
                    prop_assert!((0.0..=2.0).contains(&a.mps2()), "accel {a}");
                }
                if let Some(b) = v.brake {
                    prop_assert!((-3.5..=0.0).contains(&b.mps2()), "brake {b}");
                }
                if let Some(s) = v.steer {
                    prop_assert!(s.degrees().abs() <= 0.25 + 1e-12, "steer {s}");
                }
            }
        }
    }

    /// Seed-determinism holds for arbitrary configurations (the foundation
    /// of the paired Table V analysis).
    #[test]
    fn arbitrary_runs_are_deterministic(
        attack_type in any_attack_type(),
        strategy in any_strategy(),
        scenario in any_scenario(),
        seed in 0u64..500,
    ) {
        let attack = AttackConfig {
            attack_type,
            strategy,
            value_mode: ValueMode::Fixed,
            seed,
            ..AttackConfig::default()
        };
        let run = || {
            let mut h = Harness::new(HarnessConfig::with_attack(scenario, seed, attack));
            for _ in 0..600 {
                h.step();
            }
            h.result_so_far()
        };
        prop_assert_eq!(run(), run());
    }
}
