//! Flight-recorder integration tests: non-perturbation, per-topic counts,
//! campaign determinism/pairing, golden CSV, and panic-message trace tails.

use attack_core::{AttackConfig, AttackType, StrategyKind, ValueMode};
use driver_model::DriverConfig;
use driving_sim::{Scenario, ScenarioId};
use msgbus::Topic;
use platform::experiment::{
    mix_seed, plan_attack_campaign, run_parallel_traced, CampaignConfig,
};
use platform::trace::to_csv;
use platform::{trace_assert, Harness, HarnessConfig, TraceConfig};
use units::Distance;

fn scenario() -> Scenario {
    Scenario::new(ScenarioId::S2, Distance::meters(70.0))
}

/// The recorder must be a pure observer: a run with tracing on is
/// bit-identical to the same run with tracing off (it consumes no RNG and
/// publishes nothing on the bus).
#[test]
fn recorder_does_not_perturb_the_run() {
    let attack = AttackConfig {
        attack_type: AttackType::DecelerationSteering,
        strategy: StrategyKind::ContextAware,
        value_mode: ValueMode::Strategic,
        seed: 9,
        ..AttackConfig::default()
    };
    let cfg = HarnessConfig::with_attack(scenario(), 9, attack);
    let plain = Harness::new(cfg).run();
    let (traced, recorder) = Harness::new(cfg.traced(TraceConfig::enabled(128))).run_traced();
    assert_eq!(plain, traced, "tracing must not change the simulation");
    let rec = recorder.expect("tracing was enabled");
    assert_eq!(rec.metrics().ticks, units::STEPS_PER_SIM);
    assert_eq!(rec.ring().len(), 128, "ring stays bounded");
}

/// The recorder's per-topic bus counters agree with what an actual bus
/// subscriber sees: every topic publishes exactly once per cycle, so after
/// 100 ticks each counter reads 100 and the total reads 600 (mirroring
/// `bus_carries_all_topics_every_cycle` in tests/pipeline.rs).
#[test]
fn recorder_per_topic_counts_match_the_bus() {
    let mut h = Harness::new(
        HarnessConfig::no_attack(scenario(), 4).traced(TraceConfig::enabled(128)),
    );
    let mut sub = h.bus().subscribe(&Topic::ALL);
    for _ in 0..100 {
        h.step();
    }
    let msgs = sub.drain();
    let rec = h.recorder().expect("tracing enabled");
    let last = rec.ring().last().expect("100 records");
    assert_eq!(last.bus_published, [100; Topic::COUNT]);
    assert_eq!(last.bus_published_total(), 600);
    assert_eq!(msgs.len() as u64, last.bus_published_total());
    for topic in Topic::ALL {
        assert_eq!(
            msgs.iter().filter(|m| m.topic() == topic).count() as u64,
            last.bus_published[topic.index()],
            "{topic} counter matches subscriber"
        );
    }
}

/// Paired campaigns (alert vs. inattentive driver) must share world seeds so
/// per-run outcomes are comparable pairwise — the construction Observation 4
/// relies on.
#[test]
fn paired_campaigns_share_world_seeds() {
    let mut cfg = CampaignConfig::smoke(StrategyKind::ContextAware, 2);
    cfg.value_mode = ValueMode::Fixed;
    let alert = plan_attack_campaign(&cfg, AttackType::Deceleration);
    let mut inattentive = alert.clone();
    for s in &mut inattentive {
        s.driver = DriverConfig::inattentive();
    }
    assert_eq!(alert.len(), inattentive.len());
    for (a, b) in alert.iter().zip(&inattentive) {
        assert_eq!(a.seed, b.seed, "world seeds must pair up");
        assert_eq!(
            a.attack.map(|x| x.seed),
            b.attack.map(|x| x.seed),
            "attack seeds must pair up"
        );
        assert_eq!(a.scenario, b.scenario);
    }
}

/// `mix_seed` is part of the reproducibility contract: these constants pin
/// the exact splitmix64 chain so a refactor cannot silently re-seed every
/// published campaign.
#[test]
fn mix_seed_golden_constants() {
    assert_eq!(mix_seed(0, &[0]), GOLDEN_MIX_0_0);
    assert_eq!(mix_seed(0x5AFE, &[0, 0, 0, 0]), GOLDEN_MIX_5AFE);
    assert_eq!(mix_seed(1, &[2, 3]), GOLDEN_MIX_1_2_3);
}

const GOLDEN_MIX_0_0: u64 = 16294208416658607535;
const GOLDEN_MIX_5AFE: u64 = 14808799381432573625;
const GOLDEN_MIX_1_2_3: u64 = 652428288534806038;

/// The traced campaign runner aggregates exactly one `RunMetrics` per run
/// and matches the untraced runner's results (order included).
#[test]
fn traced_campaign_aggregates_and_matches_untraced() {
    let cfg = CampaignConfig::smoke(StrategyKind::ContextAware, 1);
    let specs: Vec<_> = plan_attack_campaign(&cfg, AttackType::Acceleration)
        .into_iter()
        .take(4)
        .collect();
    let untraced = platform::experiment::run_parallel(&specs);
    let (traced, campaign) = run_parallel_traced(&specs, TraceConfig::enabled(32));
    assert_eq!(untraced, traced, "recorder is invisible to campaign results");
    assert_eq!(campaign.runs, 4);
    assert_eq!(campaign.totals.ticks, 4 * units::STEPS_PER_SIM);
    assert_eq!(
        campaign.hazardous_runs,
        traced.iter().filter(|r| r.hazardous()).count() as u64
    );
    assert!(
        campaign.totals.bus_published.iter().sum::<u64>() > 0,
        "bus totals aggregated"
    );
}

/// A failing `trace_assert!` must attach the last trace ticks to the panic
/// message — the whole point of the flight recorder for test diagnosis.
#[test]
fn failing_trace_assert_attaches_trace_tail() {
    let result = std::panic::catch_unwind(|| {
        let mut h = Harness::new(
            HarnessConfig::no_attack(scenario(), 7).traced(TraceConfig::enabled(16)),
        );
        for _ in 0..50 {
            h.step();
        }
        trace_assert!(h, false, "deliberate failure for the diagnostics test");
    });
    let err = result.expect_err("the assert must fail");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .expect("panic payload is a string");
    assert!(
        msg.contains("deliberate failure"),
        "carries the caller's message: {msg}"
    );
    assert!(
        msg.contains("last trace ticks"),
        "carries the trace header: {msg}"
    );
    assert!(msg.contains("tick"), "carries the table: {msg}");
    // The newest retained tick (49) must appear in the table.
    assert!(msg.contains("    49"), "shows the final tick: {msg}");
}

/// Golden-file check: the CSV export of the first 10 ticks of an attack-free
/// S2 run is byte-stable. Regenerate with
/// `REGEN_TRACE_GOLDEN=1 cargo test --test trace golden_csv`.
#[test]
fn golden_csv_for_a_short_s2_run() {
    let mut h = Harness::new(
        HarnessConfig::no_attack(scenario(), 4).traced(TraceConfig::enabled(16)),
    );
    for _ in 0..10 {
        h.step();
    }
    let csv = to_csv(h.recorder().expect("tracing enabled").ring().iter());
    if std::env::var_os("REGEN_TRACE_GOLDEN").is_some() {
        std::fs::write(
            concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/s2_seed4_first10.csv"),
            &csv,
        )
        .expect("write golden");
        return;
    }
    let golden = include_str!("golden/s2_seed4_first10.csv");
    assert_eq!(
        csv, golden,
        "trace CSV drifted; regenerate with REGEN_TRACE_GOLDEN=1 if intended"
    );
}
