//! End-to-end pipeline integration tests: sensors → bus → ADAS → CAN →
//! attack MITM → actuators → physics, across all the crates at once.

use attack_core::{AttackConfig, AttackType, StrategyKind, ValueMode};
use canbus::{decode, VirtualCarDbc};
use driving_sim::{Scenario, ScenarioId};
use msgbus::{Payload, Topic};
use platform::{trace_assert, Harness, HarnessConfig, TraceConfig};
use units::Distance;

fn scenario() -> Scenario {
    Scenario::new(ScenarioId::S2, Distance::meters(70.0))
}

/// The ADAS keeps the car following the lead for a whole attack-free run:
/// speed converges near the lead's, the gap stabilises around the desired
/// following distance, and the car stays in its lane. Runs with the flight
/// recorder attached so a failure prints the final trace ticks.
#[test]
fn closed_loop_following_is_stable() {
    let mut h = Harness::new(
        HarnessConfig::no_attack(scenario(), 21).traced(TraceConfig::enabled(64)),
    );
    while !h.finished() {
        h.step();
    }
    let w = h.world();
    let v = w.ego().speed().mph();
    trace_assert!(
        h,
        (45.0..55.0).contains(&v),
        "settled near the 50 mph lead, got {v:.1} mph"
    );
    let hwt = w.gap().raw() / w.ego().speed().mps();
    trace_assert!(
        h,
        (1.8..3.2).contains(&hwt),
        "headway near the 2.2 s policy + 4 m, got {hwt:.2} s"
    );
    trace_assert!(h, w.ego().d().raw().abs() < 1.0, "still in lane");
}

/// Every message topic sees traffic each control cycle, and an external
/// subscriber (like the attacker) observes all of it.
#[test]
fn bus_carries_all_topics_every_cycle() {
    let mut h = Harness::new(HarnessConfig::no_attack(scenario(), 4));
    let mut sub = h.bus().subscribe(&Topic::ALL);
    for _ in 0..100 {
        h.step();
    }
    let msgs = sub.drain();
    // 3 sensor + 3 ADAS messages per tick.
    assert_eq!(msgs.len(), 600);
    for topic in Topic::ALL {
        assert_eq!(
            msgs.iter().filter(|m| m.topic() == topic).count(),
            100,
            "{topic} publishes once per cycle"
        );
    }
    // carControl reflects a sane command.
    let last_ctrl = msgs
        .iter()
        .rev()
        .find(|m| m.topic() == Topic::CarControl)
        .unwrap();
    if let Payload::CarControl(c) = last_ctrl.payload() {
        assert!(c.accel.mps2().abs() <= 3.5);
        assert!(c.steer.degrees().abs() <= 0.5);
    } else {
        panic!("expected carControl payload");
    }
}

/// The attack engine's frame rewrites carry valid checksums end to end: an
/// independent decoder accepts every frame the actuators accepted.
#[test]
fn attacked_frames_always_verify() {
    let attack = AttackConfig {
        attack_type: AttackType::AccelerationSteering,
        strategy: StrategyKind::RandomSt,
        value_mode: ValueMode::Fixed,
        seed: 77,
        ..AttackConfig::default()
    };
    let mut h = Harness::new(HarnessConfig::with_attack(scenario(), 77, attack));
    let dbc = VirtualCarDbc::new();
    // Tap carControl to reconstruct what the ADAS wanted, and compare with
    // what physics got during the attack window.
    let mut was_attacked = false;
    while !h.finished() {
        h.step();
        if let Some(att) = h.attacker() {
            if att.is_active() {
                was_attacked = true;
                let v = att.values();
                // Values are the fixed limits from Table III.
                assert_eq!(v.accel.map(|a| a.mps2()), Some(2.4));
                assert_eq!(v.brake.map(|b| b.mps2()), Some(0.0));
                assert_eq!(v.steer.map(|s| s.degrees().abs()), Some(0.5));
            }
        }
    }
    assert!(was_attacked, "the random window fired");
    assert!(h.result_so_far().frames_rewritten > 0);
    // Spot-check the codec path used throughout: encode + rewrite verifies.
    let mut enc = canbus::Encoder::new();
    let f = enc
        .encode(dbc.gas_command(), &[("ACCEL_CMD", 1.0)])
        .unwrap();
    let g = canbus::rewrite_signal(dbc.gas_command(), &f, "ACCEL_CMD", 2.4).unwrap();
    assert!(decode(dbc.gas_command(), &g).is_ok());
}

/// Full-run determinism across the whole stack: identical seeds produce
/// identical results, different seeds almost surely do not.
#[test]
fn cross_crate_determinism() {
    let attack = AttackConfig {
        attack_type: AttackType::DecelerationSteering,
        strategy: StrategyKind::ContextAware,
        value_mode: ValueMode::Strategic,
        seed: 5,
        ..AttackConfig::default()
    };
    let run = |seed| Harness::new(HarnessConfig::with_attack(scenario(), seed, attack)).run();
    assert_eq!(run(123), run(123));
    assert_ne!(run(123), run(124));
}

/// Disengaging mid-run (driver takeover) stops the ADAS from commanding and
/// halts the attack permanently — verified through the public surfaces only.
#[test]
fn driver_takeover_silences_adas_and_attack() {
    // Fixed deceleration triggers the driver reliably.
    let attack = AttackConfig {
        attack_type: AttackType::Deceleration,
        strategy: StrategyKind::ContextAware,
        value_mode: ValueMode::Fixed,
        seed: 2,
        ..AttackConfig::default()
    };
    let mut h = Harness::new(HarnessConfig::with_attack(scenario(), 2, attack));
    let mut control_sub = h.bus().subscribe(&[Topic::ControlsState]);
    while !h.finished() {
        h.step();
    }
    let r = h.result_so_far();
    if let Some(engaged) = r.driver_engaged {
        // After engagement the ADAS publishes engaged=false.
        let disengaged_seen = control_sub.drain().iter().any(|m| {
            m.tick().time() > engaged
                && matches!(m.payload(), Payload::ControlsState(cs) if !cs.engaged)
        });
        assert!(disengaged_seen, "controlsState reports the disengagement");
        // The attack halted at (or before) engagement.
        let att = h.attacker().unwrap();
        assert!(att.timeline().halted_at().is_some());
        assert!(att.timeline().last_active().unwrap().time() <= engaged);
    }
}

/// Simulated clock bookkeeping: durations, tick counts and TTH are
/// consistent with each other.
#[test]
fn timing_bookkeeping_is_consistent() {
    let attack = AttackConfig {
        attack_type: AttackType::Acceleration,
        strategy: StrategyKind::ContextAware,
        value_mode: ValueMode::Strategic,
        seed: 31,
        ..AttackConfig::default()
    };
    let r = Harness::new(HarnessConfig::with_attack(
        Scenario::new(ScenarioId::S1, Distance::meters(50.0)),
        31,
        attack,
    ))
    .run();
    assert_eq!(r.duration, units::SIM_DURATION);
    if let (Some(t_a), Some((t_h, _)), Some(tth)) = (r.attack_activated, r.first_hazard, r.tth) {
        assert!((t_h.secs() - t_a.secs() - tth.secs()).abs() < 1e-9);
    } else {
        panic!("S1@50m strategic acceleration reliably produces a hazard");
    }
}
