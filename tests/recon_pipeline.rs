//! End-to-end reconnaissance pipeline (paper §III-B): record a victim run,
//! reverse-engineer the CAN layout and the safety envelope offline, and
//! verify the recovered parameters are exactly the ones the strategic value
//! corruption uses.

use attack_core::recon::{analyze_can, SafetyEnvelopeEstimate};
use canbus::{CanBus, Capture};
use driving_sim::{Scenario, ScenarioId};
use msgbus::{Payload, Topic};
use openadas::CommandEncoder;
use platform::{Harness, HarnessConfig};
use units::Distance;

fn record_benign_run(seed: u64) -> (Vec<(units::Tick, canbus::CanFrame)>, Vec<msgbus::schema::CarControl>) {
    let scenario = Scenario::new(ScenarioId::S2, Distance::meters(70.0));
    let mut harness = Harness::new(HarnessConfig::no_attack(scenario, seed));
    let mut tap = harness.bus().subscribe(&[Topic::CarControl]);
    let mut can = CanBus::new();
    can.enable_capture();
    let mut encoder = CommandEncoder::new();
    let mut controls = Vec::new();
    while !harness.finished() {
        let tick = harness.step();
        for env in tap.drain() {
            if let Payload::CarControl(c) = env.payload() {
                controls.push(*c);
                for frame in encoder.encode(c).expect("in range") {
                    can.send(tick, frame);
                }
            }
        }
        can.deliver(tick);
    }
    let capture = can.take_capture().expect("enabled");
    (Capture::parse(&capture.into_bytes()), controls)
}

#[test]
fn recon_recovers_the_attack_surface() {
    let (records, controls) = record_benign_run(99);
    assert_eq!(records.len(), 15_000, "3 command frames x 5,000 cycles");

    // CAN reverse-engineering finds exactly the three actuator commands.
    let profiles = analyze_can(&records);
    let commands: Vec<u16> = profiles
        .values()
        .filter(|p| p.looks_like_actuator_command())
        .map(|p| p.id)
        .collect();
    assert_eq!(commands, vec![0xE4, 0x1FA, 0x200]);
    for p in profiles.values() {
        assert!(p.honda_checksum, "0x{:X}", p.id);
        assert!(p.rolling_counter);
        assert!((p.period_ticks - 1.0).abs() < 1e-9, "100 Hz");
        // The value field sits at the head of the payload.
        assert_eq!(p.fields.first().map(|f| f.start_byte), Some(0));
    }

    // Envelope recovery brackets the true software clamps from below.
    let est = SafetyEnvelopeEstimate::from_controls(&controls);
    assert!(est.samples >= 4_000);
    assert!(est.accel_max.mps2() <= 2.0 + 1e-9, "never exceeds the clamp");
    assert!(est.brake_min.mps2() >= -3.5 - 1e-9);
    assert!(est.steer_max.degrees() <= 0.5 + 1e-9);
    // A 50 s mixed run (cruise + approach + following) exercises the limits.
    assert!(est.accel_max.mps2() > 1.5, "observed near-max acceleration");
    assert!(est.brake_min.mps2() < -2.0, "observed firm braking");

    // The strategic attack values (Table III fn. 2) sit inside the
    // recovered envelope — which is the whole point of Eq. 1.
    assert!(est.accel_in_envelope(units::Accel::from_mps2(2.0).min(est.accel_max)));
    assert!(est.accel_in_envelope(units::Accel::from_mps2(-3.5).max(est.brake_min)));
}

#[test]
fn recon_is_deterministic() {
    let (a, _) = record_benign_run(5);
    let (b, _) = record_benign_run(5);
    assert_eq!(a, b);
    let (c, _) = record_benign_run(6);
    assert_ne!(a, c);
}
