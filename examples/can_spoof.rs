//! The paper's Fig. 4: corrupting a steering CAN message in flight,
//! including the checksum repair that keeps the receiving ECU from dropping
//! the frame.
//!
//! ```bash
//! cargo run --example can_spoof
//! ```

use canbus::{decode, rewrite_signal, CanBus, CanFrame, Encoder, VirtualCarDbc};
use units::Tick;

fn main() -> Result<(), canbus::CanError> {
    let dbc = VirtualCarDbc::new();
    let steer = dbc.steering_control();
    let mut enc = Encoder::new();

    // The ADAS encodes a benign 0.11 degree steering command on id 0xE4.
    let original = enc.encode(steer, &[("STEER_ANGLE_CMD", 0.11), ("STEER_REQ", 1.0)])?;
    println!("original frame   : {original}");
    println!("  decoded        : {:?}\n", decode(steer, &original)?);

    // A naive attacker flips the angle bytes without touching the checksum…
    let mut naive = original;
    let spoofed = enc.encode(steer, &[("STEER_ANGLE_CMD", 0.5)])?;
    naive.data_mut()[..2].copy_from_slice(&spoofed.data()[..2]);
    println!("naive corruption : {naive}");
    println!("  receiver says  : {:?}\n", decode(steer, &naive).unwrap_err());

    // …while the paper's attacker rewrites the signal *and* recomputes the
    // checksum, so the frame still verifies (Fig. 4).
    let attacked = rewrite_signal(steer, &original, "STEER_ANGLE_CMD", 0.5)?;
    println!("strategic rewrite: {attacked}");
    println!("  decoded        : {:?}", decode(steer, &attacked)?);
    println!("  counter kept   : {}", decode(steer, &attacked)?["COUNTER"]);

    // The same thing through the bus-level man-in-the-middle hook.
    let mut bus = CanBus::new();
    bus.install_interceptor(Box::new(move |_t: Tick, f: CanFrame| {
        if f.id() == 0xE4 {
            rewrite_signal(&VirtualCarDbc::new().steering_control().clone(), &f, "STEER_ANGLE_CMD", 0.5)
                .unwrap_or(f)
        } else {
            f
        }
    }));
    let benign = enc.encode(steer, &[("STEER_ANGLE_CMD", 0.11)])?;
    bus.send(Tick::ZERO, benign);
    let delivered = bus.deliver(Tick::ZERO);
    println!("\nvia bus MITM     : {}", delivered[0]);
    println!(
        "  angle at ECU   : {} deg (was 0.11)",
        decode(steer, &delivered[0])?["STEER_ANGLE_CMD"]
    );
    println!("  bus stats      : {:?}", bus.stats());
    Ok(())
}
