//! Quickstart: run one Context-Aware attack end-to-end and narrate it.
//!
//! ```bash
//! cargo run --example quickstart
//! ```
//!
//! Builds the full platform of the paper's Fig. 5 — simulator, OpenPilot-style
//! ADAS, Cereal-style bus, CAN layer, driver reaction simulator — mounts the
//! Context-Aware attack engine as a CAN man-in-the-middle, and reports the
//! timeline of the paper's Fig. 2 (`t_a`, `t_d`, `t_ex`, `t_h`).

use attack_core::{AttackConfig, AttackType, StrategyKind, ValueMode};
use driving_sim::{Scenario, ScenarioId};
use platform::{Harness, HarnessConfig};
use units::Distance;

fn main() {
    // Scenario S1: ego cruising at 60 mph approaches a 35 mph lead from 70 m.
    let scenario = Scenario::new(ScenarioId::S1, Distance::meters(70.0));

    // The paper's headline attack: Context-Aware scheduling with strategic
    // value corruption, targeting the gas output.
    let attack = AttackConfig {
        attack_type: AttackType::Acceleration,
        strategy: StrategyKind::ContextAware,
        value_mode: ValueMode::Strategic,
        seed: 7,
        ..AttackConfig::default()
    };

    let mut harness = Harness::new(HarnessConfig::with_attack(scenario, 7, attack));

    println!("running 50 s of simulated driving (10 ms control cycles)...\n");
    let mut announced_activation = false;
    while !harness.finished() {
        harness.step();
        if !announced_activation {
            if let Some(att) = harness.attacker() {
                if let Some(t_a) = att.timeline().activated_at() {
                    let ctx = att.context();
                    println!(
                        "t_a = {:>5.2} s  attack activated: HWT = {:.2} s, RS = {:+.1} m/s — rule 1 context",
                        t_a.time().secs(),
                        ctx.hwt.map_or(f64::NAN, |h| h.secs()),
                        ctx.rs.map_or(f64::NAN, |r| r.mps()),
                    );
                    announced_activation = true;
                }
            }
        }
    }

    let result = harness.result_so_far();
    if let Some(t) = result.driver_noticed {
        println!("t_d = {:>5.2} s  driver noticed an anomaly", t.secs());
    } else {
        println!("t_d =     —    driver never noticed anything (strategic values)");
    }
    if let Some(t) = result.driver_engaged {
        println!("t_ex= {:>5.2} s  driver physically took over", t.secs());
    }
    match result.first_hazard {
        Some((t, kind)) => println!("t_h = {:>5.2} s  hazard {kind:?} occurred", t.secs()),
        None => println!("t_h =     —    no hazard this run"),
    }
    if let Some((t, kind)) = result.accident {
        println!("      {:>5.2} s  accident: {kind:?}", t.secs());
    }

    println!("\nsummary:");
    println!("  time-to-hazard (TTH):  {:?}", result.tth.map(|t| t.secs()));
    println!("  ADAS alerts raised:    {}", result.alert_events);
    println!("  FCW warnings:          {} (the paper's Observation 2: none)", result.fcw_events);
    println!("  CAN frames rewritten:  {}", result.frames_rewritten);
    println!("  lane invasions:        {}", result.lane_invasions);
}
