//! The paper's Fig. 2 timeline, acted out: attack activation (`t_a`), driver
//! perception (`t_d`), physical engagement (`t_ex`), the Eq.-4 brake ramp,
//! and the race against the hazard (`t_h`).
//!
//! ```bash
//! cargo run --example driver_reaction
//! ```
//!
//! Runs the same fixed-value Deceleration attack twice — once with the alert
//! driver, once without — showing how the 2.5 s reaction time decides
//! whether the hazard is prevented.

use attack_core::{AttackConfig, AttackType, StrategyKind, ValueMode};
use driver_model::{brake_curve, DriverConfig};
use driving_sim::{Scenario, ScenarioId};
use platform::{Harness, HarnessConfig};
use units::{Distance, Seconds};

fn run(label: &str, driver: DriverConfig) {
    // S2 at 70 m: ego settles behind the 50 mph lead, and the fixed-value
    // brake attack (-4 m/s², beyond the -3.5 envelope) is an anomaly the
    // driver can feel.
    let scenario = Scenario::new(ScenarioId::S2, Distance::meters(70.0));
    let attack = AttackConfig {
        attack_type: AttackType::Deceleration,
        strategy: StrategyKind::ContextAware,
        value_mode: ValueMode::Fixed,
        seed: 5,
        ..AttackConfig::default()
    };
    let mut cfg = HarnessConfig::with_attack(scenario, 5, attack);
    cfg.driver = driver;
    let result = Harness::new(cfg).run();

    println!("== {label} ==");
    match result.attack_activated {
        Some(t) => println!("  t_a  = {:>5.2} s  attack activates (brake -4 m/s²)", t.secs()),
        None => {
            println!("  attack never triggered in this run");
            return;
        }
    }
    if let Some(t) = result.driver_noticed {
        println!("  t_d  = {:>5.2} s  driver feels the phantom braking", t.secs());
    }
    if let Some(t) = result.driver_engaged {
        println!("  t_ex = {:>5.2} s  driver takes over (t_d + 2.5 s)", t.secs());
    }
    match result.first_hazard {
        Some((t, k)) => println!("  t_h  = {:>5.2} s  hazard {k:?}", t.secs()),
        None => println!("  t_h  =     —    hazard prevented"),
    }
    println!();
}

fn main() {
    println!("Eq. 4 brake ramp (fraction of full braking vs seconds after t_ex):");
    for t in [0.0, 0.5, 1.0, 1.2, 1.5, 2.0] {
        let f = brake_curve(Seconds::new(t));
        let bar = "#".repeat((f * 40.0) as usize);
        println!("  {t:>3.1} s  {f:>5.3} {bar}");
    }
    println!();

    run("alert driver (the paper's Table V right half)", DriverConfig::alert());
    run("inattentive driver (ablation)", DriverConfig::inattentive());

    println!("The alert driver turns a certain hazard into a race: whether the");
    println!("takeover at t_d + 2.5 s lands before or after t_h depends on the");
    println!("speed the attack started from — exactly the paper's Observation 4.");
}
