//! The counter-move: the defenses the paper's §V points to, watching the
//! paper's stealthiest attack.
//!
//! ```bash
//! cargo run --example defense_demo
//! ```
//!
//! A strategic Context-Aware attack evades the ADAS alerts and the human
//! driver completely — but it cannot evade a control-invariant check (the
//! car visibly does something different from what the ADAS commanded) or a
//! context-aware command monitor (the executed command is exactly the
//! unsafe-in-context action of Table I). Both alarm well inside the
//! time-to-hazard window.

use attack_core::{AttackConfig, AttackType, StrategyKind, ValueMode};
use driving_sim::{Scenario, ScenarioId};
use platform::{DefensePolicy, Harness, HarnessConfig};
use units::Distance;

fn main() {
    let scenario = Scenario::new(ScenarioId::S1, Distance::meters(70.0));
    let attack = AttackConfig {
        attack_type: AttackType::Acceleration,
        strategy: StrategyKind::ContextAware,
        value_mode: ValueMode::Strategic,
        seed: 7,
        ..AttackConfig::default()
    };
    let mut cfg = HarnessConfig::with_attack(scenario, 7, attack);
    cfg.defense = DefensePolicy::Observe;
    let result = Harness::new(cfg).run();

    let t_a = result.attack_activated.expect("attack triggers in S1");
    println!("t_a  = {:>5.2} s  strategic acceleration attack activates", t_a.secs());
    println!(
        "               ADAS alerts: {}   driver noticed: {}",
        result.alert_events,
        result.driver_noticed.map_or("never".into(), |t| format!("{:.2} s", t.secs())),
    );
    match result.invariant_detected {
        Some(t) => println!(
            "inv  = {:>5.2} s  control-invariant detector alarms (+{:.2} s after t_a)",
            t.secs(),
            (t - t_a).secs()
        ),
        None => println!("inv  =     —    control-invariant detector silent"),
    }
    match result.monitor_detected {
        Some(t) => println!(
            "mon  = {:>5.2} s  context-aware command monitor alarms (+{:.2} s after t_a)",
            t.secs(),
            (t - t_a).secs()
        ),
        None => println!("mon  =     —    context monitor silent"),
    }
    match result.first_hazard {
        Some((t, k)) => println!("t_h  = {:>5.2} s  hazard {k:?}", t.secs()),
        None => println!("t_h  =     —    no hazard"),
    }

    let first_detection = match (result.invariant_detected, result.monitor_detected) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    };
    if let (Some(d), Some((h, _))) = (first_detection, result.first_hazard) {
        println!(
            "\nmitigation budget: {:.2} s between first detection and the hazard —\n\
             enough for an automated intervention, though not for the 2.5 s human.",
            (h - d).secs()
        );
    }
}
