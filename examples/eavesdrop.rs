//! The paper's Fig. 3: eavesdropping on the Cereal-style message bus.
//!
//! ```bash
//! cargo run --example eavesdrop
//! ```
//!
//! Anything running on the device can subscribe to any topic — there is no
//! authentication. This example attaches a passive subscriber next to the
//! ADAS, decodes `gpsLocationExternal` / `modelV2` / `radarState`, and shows
//! the safety-context variables (HWT, RS, d_left, d_right) the attack infers
//! from them.

use attack_core::{ContextInference, Eavesdropper};
use driving_sim::{Scenario, ScenarioId};
use platform::{Harness, HarnessConfig};
use units::Distance;

fn main() {
    let scenario = Scenario::new(ScenarioId::S1, Distance::meters(70.0));
    let mut harness = Harness::new(HarnessConfig::no_attack(scenario, 3));

    // The malicious subscriber: taps the same bus the ADAS modules use.
    let mut inference = ContextInference::new(Eavesdropper::new(harness.bus()));

    println!("eavesdropping on gpsLocationExternal / modelV2 / radarState / carState:\n");
    println!("{:>6} {:>9} {:>7} {:>7} {:>8} {:>8}  matched rule", "t (s)", "v (mph)", "HWT", "RS", "d_left", "d_right");

    let table = attack_core::ContextTable::default();
    while !harness.finished() {
        let tick = harness.step();
        let state = inference.update(tick);
        if tick.index().is_multiple_of(200) {
            let actions = table.matching_actions(&state);
            let rule = actions
                .iter()
                .map(|a| format!("{a:?}"))
                .collect::<Vec<_>>()
                .join(", ");
            println!(
                "{:>6.1} {:>9.1} {:>7} {:>7} {:>8.2} {:>8.2}  {}",
                tick.time().secs(),
                state.v_ego.mph(),
                state
                    .hwt
                    .map_or("-".into(), |h| format!("{:.2}", h.secs())),
                state
                    .rs
                    .map_or("-".into(), |r| format!("{:+.1}", r.mps())),
                state.d_left.raw(),
                state.d_right.raw(),
                if rule.is_empty() { "-".into() } else { rule },
            );
        }
    }

    println!("\nThe attacker never published a message and is indistinguishable");
    println!("from a legitimate subscriber: the bus has no access control.");
}
