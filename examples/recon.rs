//! The attacker's offline preparation (paper §III-B): record a victim's
//! traffic, reverse-engineer the CAN layout, and recover the safety
//! envelope that the strategic value corruption must respect.
//!
//! ```bash
//! cargo run --release --example recon
//! ```

use attack_core::recon::{analyze_can, SafetyEnvelopeEstimate};
use canbus::{CanBus, Capture};
use driving_sim::{Scenario, ScenarioId};
use msgbus::{Payload, Topic};
use openadas::CommandEncoder;
use platform::{Harness, HarnessConfig};
use units::Distance;

fn main() {
    // Phase 1: ride along in a benign car, recording everything.
    let scenario = Scenario::new(ScenarioId::S1, Distance::meters(70.0));
    let mut harness = Harness::new(HarnessConfig::no_attack(scenario, 13));
    let mut control_tap = harness.bus().subscribe(&[Topic::CarControl]);
    let mut can = CanBus::new();
    can.enable_capture();
    let mut encoder = CommandEncoder::new();
    let mut controls = Vec::new();

    while !harness.finished() {
        let tick = harness.step();
        for env in control_tap.drain() {
            if let Payload::CarControl(c) = env.payload() {
                controls.push(*c);
                // Mirror the command onto a recorded CAN segment the way the
                // in-car tap sees it.
                for frame in encoder.encode(c).expect("in-range commands") {
                    can.send(tick, frame);
                }
            }
        }
        can.deliver(tick);
    }

    // Phase 2: offline CAN reverse-engineering.
    let capture = can.take_capture().expect("capture enabled");
    println!("captured {} frames over 50 s\n", capture.len());
    let records = Capture::parse(&capture.into_bytes());
    let profiles = analyze_can(&records);
    println!("{:<6} {:>6} {:>8} {:>9} {:>8} {:>8}  inferred fields", "id", "count", "rate", "checksum", "counter", "command");
    for (id, p) in &profiles {
        println!(
            "0x{id:03X} {:>6} {:>6.0}Hz {:>9} {:>8} {:>8}  {:?}",
            p.count,
            100.0 / p.period_ticks.max(1e-9),
            p.honda_checksum,
            p.rolling_counter,
            p.looks_like_actuator_command(),
            p.fields,
        );
    }

    // Phase 3: safety-envelope recovery (the Eq. 1 constraint set).
    let envelope = SafetyEnvelopeEstimate::from_controls(&controls);
    println!(
        "\nrecovered safety envelope from {} carControl samples:",
        envelope.samples
    );
    println!("  accel_max ≈ {:.2} m/s²  (true software limit: 2.0 in normal operation)", envelope.accel_max.mps2());
    println!("  brake_min ≈ {:.2} m/s²  (true software limit: -3.5)", envelope.brake_min.mps2());
    println!("  steer_max ≈ {:.2}°     (true software clamp: 0.5°)", envelope.steer_max.degrees());
    println!(
        "\nA strategic attack constrained to this envelope (paper Eq. 1-3) is\n\
         indistinguishable, value-wise, from the ADAS's own commands."
    );
}
