//! Meta-crate for the ADAS attack reproduction workspace.
//!
//! This package hosts the runnable [examples](https://github.com/example/adas-attack-repro)
//! and cross-crate integration tests. The substance lives in the member
//! crates; the most useful entry points are re-exported here.

#![forbid(unsafe_code)]
#![deny(clippy::float_cmp)]

pub use attack_core;
pub use canbus;
pub use driver_model;
pub use driving_sim;
pub use msgbus;
pub use openadas;
pub use platform;
pub use units;
