//! Incremental HTTP/1.1 over `std::net`: the smallest parser that is safe
//! to point at a hostile socket.
//!
//! Design constraints, in order:
//!
//! 1. **Never over-read.** [`parse_request`] consumes bytes only once a
//!    complete request is present; `Complete` reports exactly how many
//!    bytes it used so pipelined requests parse from the remainder.
//! 2. **Bounded everything.** Headers are capped at
//!    [`MAX_HEADER_BYTES`], bodies at [`MAX_BODY_BYTES`]; breaching
//!    either is a terminal `Reject`, not an allocation.
//! 3. **Slowloris resistance is the caller's deadline, our contract.**
//!    The parser is a pure function over the accumulated buffer — it
//!    returns [`Parse::NeedMore`] without side effects, so the connection
//!    loop can enforce a wall-clock budget on how long a peer may dribble.

/// Maximum bytes of request line + headers before the request is rejected
/// with `431 Request Header Fields Too Large`.
pub const MAX_HEADER_BYTES: usize = 8 * 1024;
/// Maximum declared body size before the request is rejected with
/// `413 Content Too Large`.
pub const MAX_BODY_BYTES: usize = 64 * 1024;

/// A parsed request. Header names are lowercased; values are trimmed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Method token, uppercased as received (`GET`, `POST`, ...).
    pub method: String,
    /// Request target (path + query), verbatim.
    pub target: String,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Body bytes (exactly `Content-Length` of them).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of the named header (name given lowercased).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Outcome of feeding the accumulated buffer to the parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Parse {
    /// The buffer does not yet hold a complete request; read more bytes
    /// and call again with the longer buffer.
    NeedMore,
    /// A complete request, plus the number of buffer bytes it consumed
    /// (always `<= buf.len()`; the remainder is the next pipelined
    /// request).
    Complete(Request, usize),
    /// The request is malformed or over limits; respond with this status
    /// and close the connection.
    Reject(u16, &'static str),
}

fn is_token_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b)
}

/// Finds `\r\n\r\n` in `buf`, returning the index *after* it.
fn header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
}

/// Incrementally parses one request from the front of `buf`.
///
/// Pure and idempotent: the same buffer always yields the same outcome,
/// and `NeedMore` commits to nothing. See [`Parse`] for the contract.
pub fn parse_request(buf: &[u8]) -> Parse {
    let head_len = match header_end(buf) {
        Some(end) => end,
        None => {
            // No terminator yet. If the headers alone already exceed the
            // cap, no further bytes can save this request.
            if buf.len() >= MAX_HEADER_BYTES {
                return Parse::Reject(431, "Request Header Fields Too Large");
            }
            return Parse::NeedMore;
        }
    };
    if head_len > MAX_HEADER_BYTES {
        return Parse::Reject(431, "Request Header Fields Too Large");
    }
    let head = &buf[..head_len - 4];
    let mut lines = head.split(|&b| b == b'\n').map(|l| match l.last() {
        Some(b'\r') => &l[..l.len() - 1],
        _ => l,
    });
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(|&b| b == b' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if parts.next().is_none() => (m, t, v),
        _ => return Parse::Reject(400, "Bad Request"),
    };
    if method.is_empty() || !method.iter().all(|&b| is_token_byte(b)) {
        return Parse::Reject(400, "Bad Request");
    }
    if target.is_empty() || target.iter().any(|&b| b <= b' ' || b >= 0x7f) {
        return Parse::Reject(400, "Bad Request");
    }
    if version != b"HTTP/1.1" && version != b"HTTP/1.0" {
        return Parse::Reject(505, "HTTP Version Not Supported");
    }

    let mut headers = Vec::new();
    let mut content_length: Option<usize> = None;
    for line in lines {
        if line.is_empty() {
            return Parse::Reject(400, "Bad Request");
        }
        let colon = match line.iter().position(|&b| b == b':') {
            Some(c) if c > 0 => c,
            _ => return Parse::Reject(400, "Bad Request"),
        };
        let (name, value) = (&line[..colon], &line[colon + 1..]);
        if !name.iter().all(|&b| is_token_byte(b)) {
            return Parse::Reject(400, "Bad Request");
        }
        let name = String::from_utf8_lossy(name).to_ascii_lowercase();
        let value = String::from_utf8_lossy(value).trim().to_string();
        match name.as_str() {
            "content-length" => {
                let parsed: usize = match value.parse() {
                    Ok(n) => n,
                    Err(_) => return Parse::Reject(400, "Bad Request"),
                };
                // Conflicting duplicate Content-Length headers are a
                // request-smuggling vector: reject rather than pick one.
                if content_length.is_some_and(|prev| prev != parsed) {
                    return Parse::Reject(400, "Bad Request");
                }
                if parsed > MAX_BODY_BYTES {
                    return Parse::Reject(413, "Content Too Large");
                }
                content_length = Some(parsed);
            }
            "transfer-encoding" => {
                // Chunked bodies are out of scope for a JSON job API;
                // refusing them outright also closes the TE/CL smuggling
                // class.
                return Parse::Reject(501, "Not Implemented");
            }
            _ => {}
        }
        headers.push((name, value));
    }

    let body_len = content_length.unwrap_or(0);
    let total = head_len + body_len;
    if buf.len() < total {
        return Parse::NeedMore;
    }
    Parse::Complete(
        Request {
            method: String::from_utf8_lossy(method).to_uppercase(),
            target: String::from_utf8_lossy(target).to_string(),
            headers,
            body: buf[head_len..total].to_vec(),
        },
        total,
    )
}

/// Serializes a response. `extra` headers come after the defaults;
/// `keep_alive: false` adds `Connection: close`.
pub fn response(
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
    extra: &[(&str, &str)],
    keep_alive: bool,
) -> Vec<u8> {
    let mut out = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n",
        body.len()
    );
    for (name, value) in extra {
        out.push_str(name);
        out.push_str(": ");
        out.push_str(value);
        out.push_str("\r\n");
    }
    if !keep_alive {
        out.push_str("Connection: close\r\n");
    }
    out.push_str("\r\n");
    let mut bytes = out.into_bytes();
    bytes.extend_from_slice(body);
    bytes
}

/// The header block of a streaming response: no `Content-Length`, the
/// body runs until the connection closes (NDJSON streams).
pub fn stream_head(content_type: &str) -> Vec<u8> {
    format!("HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\nConnection: close\r\n\r\n")
        .into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_get_parses() {
        let buf = b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
        match parse_request(buf) {
            Parse::Complete(req, used) => {
                assert_eq!(req.method, "GET");
                assert_eq!(req.target, "/healthz");
                assert_eq!(req.header("host"), Some("x"));
                assert!(req.body.is_empty());
                assert_eq!(used, buf.len());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn body_waits_for_content_length() {
        let buf = b"POST /jobs HTTP/1.1\r\nContent-Length: 5\r\n\r\nab";
        assert_eq!(parse_request(buf), Parse::NeedMore);
        let buf = b"POST /jobs HTTP/1.1\r\nContent-Length: 5\r\n\r\nabcde";
        match parse_request(buf) {
            Parse::Complete(req, used) => {
                assert_eq!(req.body, b"abcde");
                assert_eq!(used, buf.len());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn consumed_stops_at_request_boundary() {
        let buf = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        match parse_request(buf) {
            Parse::Complete(req, used) => {
                assert_eq!(req.target, "/a");
                assert_eq!(used, 19);
                match parse_request(&buf[used..]) {
                    Parse::Complete(req, _) => assert_eq!(req.target, "/b"),
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_are_terminal_and_typed() {
        assert_eq!(
            parse_request(b"GET/a HTTP/1.1\r\n\r\n"),
            Parse::Reject(400, "Bad Request")
        );
        assert_eq!(
            parse_request(b"GET /a HTTP/2.0\r\n\r\n"),
            Parse::Reject(505, "HTTP Version Not Supported")
        );
        assert_eq!(
            parse_request(b"POST / HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n"),
            Parse::Reject(413, "Content Too Large")
        );
        assert_eq!(
            parse_request(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Parse::Reject(501, "Not Implemented")
        );
        assert_eq!(
            parse_request(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Parse::Reject(400, "Bad Request")
        );
        let long = vec![b'a'; MAX_HEADER_BYTES + 1];
        assert_eq!(
            parse_request(&long),
            Parse::Reject(431, "Request Header Fields Too Large")
        );
    }

    #[test]
    fn conflicting_content_lengths_rejected() {
        let buf = b"POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\nabc";
        assert_eq!(parse_request(buf), Parse::Reject(400, "Bad Request"));
        // Agreeing duplicates are tolerated.
        let buf = b"POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nab";
        assert!(matches!(parse_request(buf), Parse::Complete(_, _)));
    }

    #[test]
    fn response_writer_shapes() {
        let bytes = response(429, "Too Many Requests", "application/json", b"{}",
                             &[("Retry-After", "1")], false);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
        let head = String::from_utf8(stream_head("application/x-ndjson")).unwrap();
        assert!(!head.contains("Content-Length"));
    }
}
