//! Crash-safe progress: an append-only, fsync'd write-ahead log per job,
//! plus the job manifest that `--resume` replays.
//!
//! Byte-identity across a kill/resume is the whole point, so the cell
//! codec is exact: every `f64` is stored as its IEEE-754 bit pattern in
//! hex (`to_bits`), never as decimal text — a resumed campaign must splice
//! checkpointed results into fresh ones without a single ULP of drift.
//!
//! Torn writes are expected, not exceptional: a `kill -9` can truncate
//! the last line mid-byte. Every record therefore carries an FNV-1a
//! checksum, and the loader stops at the first line that fails to parse
//! or verify — the intact prefix is trusted, the tail is recomputed.
//! Duplicate records for a cell (possible if a crash lands between write
//! and the supervisor's bookkeeping) resolve first-write-wins, which
//! keeps replay idempotent.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use platform::{AccidentKind, HazardKind, SimResult};
use units::Seconds;

const WAL_HEADER: &str = "campaignd-wal v1";
const MANIFEST_HEADER: &str = "campaignd-manifest v1";

/// FNV-1a 64-bit over `bytes` — the record checksum and the job-id hash.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn enc_f64(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

fn dec_f64(s: &str) -> Option<f64> {
    (s.len() == 16)
        .then(|| u64::from_str_radix(s, 16).ok())
        .flatten()
        .map(f64::from_bits)
}

fn enc_opt_secs(t: &Option<Seconds>) -> String {
    match t {
        Some(t) => enc_f64(t.secs()),
        None => "-".to_string(),
    }
}

fn dec_opt_secs(s: &str) -> Option<Option<Seconds>> {
    if s == "-" {
        Some(None)
    } else {
        dec_f64(s).map(|x| Some(Seconds::new(x)))
    }
}

fn hazard_token(k: HazardKind) -> &'static str {
    match k {
        HazardKind::H1 => "H1",
        HazardKind::H2 => "H2",
        HazardKind::H3 => "H3",
    }
}

fn dec_hazard(s: &str) -> Option<HazardKind> {
    match s {
        "H1" => Some(HazardKind::H1),
        "H2" => Some(HazardKind::H2),
        "H3" => Some(HazardKind::H3),
        _ => None,
    }
}

fn accident_token(k: AccidentKind) -> &'static str {
    match k {
        AccidentKind::A1 => "A1",
        AccidentKind::A3 => "A3",
    }
}

fn dec_accident(s: &str) -> Option<AccidentKind> {
    match s {
        "A1" => Some(AccidentKind::A1),
        "A3" => Some(AccidentKind::A3),
        _ => None,
    }
}

/// Encodes a result as one `|`-separated field line (no newline).
pub fn encode_result(r: &SimResult) -> String {
    let first_hazard = match &r.first_hazard {
        Some((t, k)) => format!("{}:{}", enc_f64(t.secs()), hazard_token(*k)),
        None => "-".to_string(),
    };
    let hazard_kinds = if r.hazard_kinds.is_empty() {
        "-".to_string()
    } else {
        r.hazard_kinds
            .iter()
            .map(|&k| hazard_token(k))
            .collect::<Vec<_>>()
            .join("+")
    };
    let accident = match &r.accident {
        Some((t, k)) => format!("{}:{}", enc_f64(t.secs()), accident_token(*k)),
        None => "-".to_string(),
    };
    [
        r.seed.to_string(),
        first_hazard,
        hazard_kinds,
        accident,
        r.alert_events.to_string(),
        r.fcw_events.to_string(),
        r.lane_invasions.to_string(),
        enc_f64(r.duration.secs()),
        enc_opt_secs(&r.attack_activated),
        enc_opt_secs(&r.tth),
        enc_opt_secs(&r.driver_noticed),
        enc_opt_secs(&r.driver_engaged),
        r.frames_rewritten.to_string(),
        r.panda_blocked.to_string(),
        enc_opt_secs(&r.invariant_detected),
        enc_opt_secs(&r.monitor_detected),
        r.degraded_ticks.to_string(),
        r.failsafe_ticks.to_string(),
        enc_opt_secs(&r.first_degraded),
        enc_opt_secs(&r.first_failsafe),
        enc_opt_secs(&r.recovery_latency),
        r.faults_injected.to_string(),
        enc_opt_secs(&r.ids_detected),
        r.gate_rejections.to_string(),
    ]
    .join("|")
}

/// Decodes [`encode_result`]'s output; `None` on any malformation.
pub fn decode_result(line: &str) -> Option<SimResult> {
    let fields: Vec<&str> = line.split('|').collect();
    if fields.len() != 24 {
        return None;
    }
    let first_hazard = if fields[1] == "-" {
        None
    } else {
        let (t, k) = fields[1].split_once(':')?;
        Some((Seconds::new(dec_f64(t)?), dec_hazard(k)?))
    };
    let hazard_kinds = if fields[2] == "-" {
        Vec::new()
    } else {
        fields[2]
            .split('+')
            .map(dec_hazard)
            .collect::<Option<Vec<_>>>()?
    };
    let accident = if fields[3] == "-" {
        None
    } else {
        let (t, k) = fields[3].split_once(':')?;
        Some((Seconds::new(dec_f64(t)?), dec_accident(k)?))
    };
    Some(SimResult {
        seed: fields[0].parse().ok()?,
        first_hazard,
        hazard_kinds,
        accident,
        alert_events: fields[4].parse().ok()?,
        fcw_events: fields[5].parse().ok()?,
        lane_invasions: fields[6].parse().ok()?,
        duration: Seconds::new(dec_f64(fields[7])?),
        attack_activated: dec_opt_secs(fields[8])?,
        tth: dec_opt_secs(fields[9])?,
        driver_noticed: dec_opt_secs(fields[10])?,
        driver_engaged: dec_opt_secs(fields[11])?,
        frames_rewritten: fields[12].parse().ok()?,
        panda_blocked: fields[13].parse().ok()?,
        invariant_detected: dec_opt_secs(fields[14])?,
        monitor_detected: dec_opt_secs(fields[15])?,
        degraded_ticks: fields[16].parse().ok()?,
        failsafe_ticks: fields[17].parse().ok()?,
        first_degraded: dec_opt_secs(fields[18])?,
        first_failsafe: dec_opt_secs(fields[19])?,
        recovery_latency: dec_opt_secs(fields[20])?,
        faults_injected: fields[21].parse().ok()?,
        ids_detected: dec_opt_secs(fields[22])?,
        gate_rejections: fields[23].parse().ok()?,
    })
}

fn cell_record(idx: usize, payload: &str) -> String {
    let body = format!("cell\t{idx}\t{payload}");
    format!("{body}\t{:016x}\n", fnv64(body.as_bytes()))
}

/// Appending side of a job's write-ahead log.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
}

impl WalWriter {
    /// Opens (or creates) the WAL at `path` in append mode, writing and
    /// syncing the header when the file is new.
    pub fn open(path: &Path, job_id: &str) -> io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        let mut wal = Self { file };
        if wal.file.metadata()?.len() == 0 {
            wal.file
                .write_all(format!("{WAL_HEADER} {job_id}\n").as_bytes())?;
            wal.file.sync_data()?;
        }
        Ok(wal)
    }

    /// Appends one completed cell. Buffered by the OS until
    /// [`sync`](Self::sync) — the supervisor syncs once per chunk,
    /// trading at most one chunk of recompute for not paying fsync
    /// latency per cell.
    pub fn append_cell(&mut self, idx: usize, result: &SimResult) -> io::Result<()> {
        self.file
            .write_all(cell_record(idx, &encode_result(result)).as_bytes())
    }

    /// Forces everything appended so far to stable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }
}

/// Loads the trusted prefix of a WAL: completed cells keyed by index,
/// first write wins, stopping at the first torn or corrupt line. A
/// missing file is an empty map. A header naming a different job is an
/// error — resuming into someone else's checkpoint must not look like
/// an empty one.
pub fn load_wal(path: &Path, job_id: &str) -> io::Result<BTreeMap<usize, SimResult>> {
    let mut text = String::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_string(&mut text)?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(BTreeMap::new()),
        Err(e) => return Err(e),
    }
    let mut lines = text.split('\n');
    let expected = format!("{WAL_HEADER} {job_id}");
    if lines.next() != Some(expected.as_str()) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: not a WAL for job {job_id}", path.display()),
        ));
    }
    let mut cells = BTreeMap::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some(parsed) = parse_cell_line(line) else {
            break; // torn or corrupt tail: trust only the prefix
        };
        cells.entry(parsed.0).or_insert(parsed.1);
    }
    Ok(cells)
}

fn parse_cell_line(line: &str) -> Option<(usize, SimResult)> {
    let (body, checksum) = line.rsplit_once('\t')?;
    if format!("{:016x}", fnv64(body.as_bytes())) != checksum {
        return None;
    }
    let mut fields = body.splitn(3, '\t');
    if fields.next() != Some("cell") {
        return None;
    }
    let idx: usize = fields.next()?.parse().ok()?;
    let result = decode_result(fields.next()?)?;
    Some((idx, result))
}

/// One replayed manifest entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Job id.
    pub id: String,
    /// Canonical spec line recorded at submission.
    pub canonical: String,
    /// Terminal outcome (`"completed"` / `"failed"`), `None` while the
    /// job is unfinished — the set `--resume` re-enqueues.
    pub done: Option<String>,
}

/// Appending side of the job manifest.
#[derive(Debug)]
pub struct Manifest {
    file: File,
}

impl Manifest {
    /// The manifest path inside a state directory.
    pub fn path_in(state_dir: &Path) -> PathBuf {
        state_dir.join("jobs.manifest")
    }

    /// Opens (or creates) the manifest in append mode.
    pub fn open(state_dir: &Path) -> io::Result<Self> {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(Self::path_in(state_dir))?;
        let mut manifest = Self { file };
        if manifest.file.metadata()?.len() == 0 {
            manifest.file.write_all(MANIFEST_HEADER.as_bytes())?;
            manifest.file.write_all(b"\n")?;
            manifest.file.sync_data()?;
        }
        Ok(manifest)
    }

    /// Records an accepted job. Synced immediately: an accepted job must
    /// survive a crash, or the 202 the client holds is a lie.
    pub fn record_job(&mut self, id: &str, canonical: &str) -> io::Result<()> {
        self.file
            .write_all(format!("job\t{id}\t{canonical}\n").as_bytes())?;
        self.file.sync_data()
    }

    /// Records a terminal job outcome (`"completed"` or `"failed"`).
    pub fn record_done(&mut self, id: &str, outcome: &str) -> io::Result<()> {
        self.file
            .write_all(format!("done\t{id}\t{outcome}\n").as_bytes())?;
        self.file.sync_data()
    }
}

/// Replays the manifest. Missing file → empty. Malformed tail lines are
/// skipped (a torn `job` record was never acknowledged to any client).
pub fn load_manifest(state_dir: &Path) -> io::Result<Vec<ManifestEntry>> {
    let mut text = String::new();
    match File::open(Manifest::path_in(state_dir)) {
        Ok(mut f) => {
            f.read_to_string(&mut text)?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    }
    let mut entries: Vec<ManifestEntry> = Vec::new();
    for line in text.split('\n').skip(1) {
        if let Some(rest) = line.strip_prefix("job\t") {
            if let Some((id, canonical)) = rest.split_once('\t') {
                entries.push(ManifestEntry {
                    id: id.to_string(),
                    canonical: canonical.to_string(),
                    done: None,
                });
            }
        } else if let Some(rest) = line.strip_prefix("done\t") {
            if let Some((id, outcome)) = rest.split_once('\t') {
                for entry in &mut entries {
                    if entry.id == id {
                        entry.done = Some(outcome.to_string());
                    }
                }
            }
        }
    }
    Ok(entries)
}

/// The WAL path for a job inside a state directory.
pub fn wal_path(state_dir: &Path, job_id: &str) -> PathBuf {
    state_dir.join(format!("{job_id}.wal"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(seed: u64) -> SimResult {
        SimResult {
            seed,
            first_hazard: Some((Seconds::new(1.25), HazardKind::H2)),
            hazard_kinds: vec![HazardKind::H2, HazardKind::H3],
            accident: Some((Seconds::new(2.5), AccidentKind::A3)),
            alert_events: 3,
            fcw_events: 0,
            lane_invasions: 1,
            duration: Seconds::new(30.0),
            attack_activated: Some(Seconds::new(5.1)),
            tth: Some(Seconds::new(0.1 + 0.2)), // deliberately inexact decimal
            driver_noticed: None,
            driver_engaged: Some(Seconds::new(6.7)),
            frames_rewritten: 240,
            panda_blocked: 0,
            invariant_detected: None,
            monitor_detected: Some(Seconds::new(5.3)),
            degraded_ticks: 17,
            failsafe_ticks: 0,
            first_degraded: Some(Seconds::new(5.2)),
            first_failsafe: None,
            recovery_latency: None,
            faults_injected: 9,
            ids_detected: None,
            gate_rejections: 4,
        }
    }

    #[test]
    fn codec_round_trips_bit_exactly() {
        let r = sample(42);
        let decoded = decode_result(&encode_result(&r)).unwrap();
        assert_eq!(decoded, r);
        // The inexact decimal survives exactly: bit equality, not display
        // equality.
        assert_eq!(
            decoded.tth.unwrap().secs().to_bits(),
            (0.1f64 + 0.2).to_bits()
        );

        let mut bare = sample(1);
        bare.first_hazard = None;
        bare.hazard_kinds = Vec::new();
        bare.accident = None;
        assert_eq!(decode_result(&encode_result(&bare)).unwrap(), bare);
    }

    #[test]
    fn decode_rejects_malformed_lines() {
        assert!(decode_result("").is_none());
        assert!(decode_result("1|2|3").is_none());
        let mut line = encode_result(&sample(2));
        line.push_str("|extra");
        assert!(decode_result(&line).is_none());
    }

    #[test]
    fn wal_round_trips_and_tolerates_torn_tail() {
        let dir = std::env::temp_dir().join(format!("campaignd-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = wal_path(&dir, "job-test");
        let _ = std::fs::remove_file(&path);

        let mut wal = WalWriter::open(&path, "job-test").unwrap();
        for i in 0..5 {
            wal.append_cell(i, &sample(i as u64)).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);

        let cells = load_wal(&path, "job-test").unwrap();
        assert_eq!(cells.len(), 5);
        assert_eq!(cells[&3], sample(3));

        // Tear the last record mid-line: the prefix must survive.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 10]).unwrap();
        let cells = load_wal(&path, "job-test").unwrap();
        assert_eq!(cells.len(), 4, "torn tail dropped, prefix kept");

        // Corrupt a middle record: everything after it is untrusted.
        let text = String::from_utf8(std::fs::read(&path).unwrap()).unwrap();
        let flipped = text.replacen("cell\t1\t", "cell\t9\t", 1);
        std::fs::write(&path, flipped).unwrap();
        let cells = load_wal(&path, "job-test").unwrap();
        assert_eq!(cells.len(), 1, "checksum break stops the loader");
        assert!(cells.contains_key(&0));

        // A WAL for another job is an error, not an empty checkpoint.
        assert!(load_wal(&path, "job-other").is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn wal_reopen_appends_and_first_write_wins() {
        let dir = std::env::temp_dir().join(format!("campaignd-wal2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = wal_path(&dir, "job-re");
        let _ = std::fs::remove_file(&path);

        let mut wal = WalWriter::open(&path, "job-re").unwrap();
        wal.append_cell(0, &sample(100)).unwrap();
        wal.sync().unwrap();
        drop(wal);
        let mut wal = WalWriter::open(&path, "job-re").unwrap();
        wal.append_cell(0, &sample(200)).unwrap(); // duplicate idx
        wal.append_cell(1, &sample(101)).unwrap();
        wal.sync().unwrap();
        drop(wal);

        let cells = load_wal(&path, "job-re").unwrap();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[&0].seed, 100, "first write wins");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn manifest_replay_orders_and_marks_done() {
        let dir = std::env::temp_dir().join(format!("campaignd-man-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let _ = std::fs::remove_file(Manifest::path_in(&dir));

        let mut manifest = Manifest::open(&dir).unwrap();
        manifest.record_job("job-a", "{\"kind\": \"resilience\"}").unwrap();
        manifest.record_job("job-b", "{\"kind\": \"attack\"}").unwrap();
        manifest.record_done("job-a", "completed").unwrap();
        drop(manifest);

        let entries = load_manifest(&dir).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].id, "job-a");
        assert_eq!(entries[0].done.as_deref(), Some("completed"));
        assert_eq!(entries[1].id, "job-b");
        assert_eq!(entries[1].done, None);

        assert!(load_manifest(Path::new("/nonexistent-dir-xyz")).unwrap().is_empty());
        let _ = std::fs::remove_file(Manifest::path_in(&dir));
    }

    #[test]
    fn fnv_is_the_reference_vector() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
