//! `campaignd` — the campaign daemon binary.
//!
//! ```text
//! campaignd --state-dir DIR [--addr 127.0.0.1:0] [--resume]
//!           [--queue-cap N] [--workers N] [--retries N]
//!           [--backoff-ms N] [--deadline-ms N]
//! ```
//!
//! Prints exactly one `campaignd listening on <addr>` line to stdout once
//! bound (the integration tests parse it), then serves until a
//! `POST /shutdown` drains it.

use std::path::PathBuf;
use std::process::ExitCode;

use campaignd::server::{DaemonConfig, Server};
use campaignd::supervisor::SupervisorConfig;

struct Args {
    addr: String,
    cfg: DaemonConfig,
}

fn usage() -> String {
    "usage: campaignd --state-dir DIR [--addr HOST:PORT] [--resume] \
[--queue-cap N] [--workers N] [--retries N] [--backoff-ms N] [--deadline-ms N]"
        .to_string()
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut addr = "127.0.0.1:0".to_string();
    let mut state_dir: Option<PathBuf> = None;
    let mut resume = false;
    let mut queue_cap = 16usize;
    let mut supervisor = SupervisorConfig::default();

    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => addr = value("--addr")?.clone(),
            "--state-dir" => state_dir = Some(PathBuf::from(value("--state-dir")?)),
            "--resume" => resume = true,
            "--queue-cap" => {
                queue_cap = value("--queue-cap")?
                    .parse()
                    .map_err(|_| "--queue-cap must be an integer".to_string())?;
            }
            "--workers" => {
                supervisor.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers must be an integer".to_string())?;
            }
            "--retries" => {
                supervisor.max_attempts = value("--retries")?
                    .parse()
                    .map_err(|_| "--retries must be an integer".to_string())?;
            }
            "--backoff-ms" => {
                supervisor.backoff_base_ms = value("--backoff-ms")?
                    .parse()
                    .map_err(|_| "--backoff-ms must be an integer".to_string())?;
            }
            "--deadline-ms" => {
                supervisor.deadline_ms = value("--deadline-ms")?
                    .parse()
                    .map_err(|_| "--deadline-ms must be an integer".to_string())?;
            }
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    let state_dir = state_dir.ok_or_else(|| format!("--state-dir is required\n{}", usage()))?;
    Ok(Args {
        addr,
        cfg: DaemonConfig {
            state_dir,
            queue_cap,
            resume,
            supervisor,
            ..DaemonConfig::default()
        },
    })
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let server = match Server::bind(&args.addr, args.cfg) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("campaignd: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(addr) => {
            use std::io::Write;
            let mut out = std::io::stdout();
            let _ = writeln!(out, "campaignd listening on {addr}");
            let _ = out.flush();
        }
        Err(e) => {
            eprintln!("campaignd: local_addr failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("campaignd: {e}");
            ExitCode::FAILURE
        }
    }
}
