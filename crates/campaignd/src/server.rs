//! The daemon: bounded job queue, hardened connection handling, routing,
//! and the supervisor loop that drains the queue through [`crate::supervisor`].
//!
//! Threading model — deliberately boring:
//!
//! * one accept loop ([`accept_loop`]) polling a non-blocking listener so
//!   drain can interrupt it without a self-connection trick;
//! * one connection thread per client, capped at
//!   [`DaemonConfig::max_connections`] (over the cap → immediate 503),
//!   each with read/write timeouts and a per-request wall-clock budget so
//!   a Slowloris peer costs one bounded thread, never the daemon;
//! * one supervisor loop ([`supervisor_loop`]) running queued jobs
//!   sequentially — the *cells* of a job are the parallelism, fanned out
//!   over the platform worker pool, so a second concurrent job would only
//!   fight the first for the same cores.
//!
//! Lock discipline: every lock here (`queue`, `jobs`, `manifest`, and the
//! supervisor's WAL/event locks) is acquired alone — taken, used, dropped
//! before the next — so the lock-order graph stays edge-free by
//! construction (adas-lint R12 audits this).

use std::collections::{BTreeMap, VecDeque};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use crate::checkpoint::{fnv64, load_manifest, load_wal, wal_path, Manifest};
use crate::http::{parse_request, response, stream_head, Parse, Request};
use crate::spec::JobSpec;
use crate::supervisor::{run_job, DaemonStats, JobOutcome, JobProgress, SupervisorConfig};
use crate::wire::{escape, parse_object};

/// Daemon-level configuration (the CLI flags, resolved).
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Durable state directory (manifest + WALs).
    pub state_dir: PathBuf,
    /// Maximum queued (not yet running) jobs before `POST /jobs` sheds
    /// with 429.
    pub queue_cap: usize,
    /// Replay the manifest and resume unfinished jobs on startup.
    pub resume: bool,
    /// Supervision policy for every job.
    pub supervisor: SupervisorConfig,
    /// Per-read socket timeout in milliseconds.
    pub read_timeout_ms: u64,
    /// Wall-clock budget for one request to arrive in full (the
    /// Slowloris bound), also the keep-alive idle timeout.
    pub request_deadline_ms: u64,
    /// Maximum concurrent connection threads.
    pub max_connections: u64,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        Self {
            state_dir: PathBuf::from("campaignd-state"),
            queue_cap: 16,
            resume: false,
            supervisor: SupervisorConfig::default(),
            read_timeout_ms: 250,
            request_deadline_ms: 5_000,
            max_connections: 32,
        }
    }
}

/// Lifecycle of a job inside the daemon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    /// Accepted, waiting in the queue.
    Queued,
    /// The supervisor is executing it.
    Running,
    /// Finished; the report is available.
    Completed,
    /// Terminally failed (quarantine, deadline, or I/O), with the reason.
    Failed(String),
    /// Stopped by drain with progress checkpointed; `--resume` continues.
    Interrupted,
}

impl JobStatus {
    fn label(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Completed => "completed",
            JobStatus::Failed(_) => "failed",
            JobStatus::Interrupted => "interrupted",
        }
    }
}

/// One job's full state, shared between connection threads and the
/// supervisor.
#[derive(Debug)]
pub struct JobState {
    /// Job id (`job-<ordinal>-<hash>`).
    pub id: String,
    /// The parsed spec.
    pub spec: JobSpec,
    /// Lifecycle status.
    pub status: Mutex<JobStatus>,
    /// Live counters and the NDJSON event log.
    pub progress: Arc<JobProgress>,
    /// The rendered report, once completed.
    pub report: Mutex<Option<String>>,
}

/// Shared daemon state.
pub struct ServerState {
    cfg: DaemonConfig,
    queue: Mutex<VecDeque<String>>,
    queue_cv: Condvar,
    jobs: Mutex<BTreeMap<String, Arc<JobState>>>,
    manifest: Mutex<Manifest>,
    next_ordinal: AtomicU64,
    accepted: AtomicU64,
    shed: AtomicU64,
    connections: AtomicU64,
    stats: Arc<DaemonStats>,
    draining: AtomicBool,
}

/// The bound daemon, ready to [`run`](Server::run).
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds `addr`, opens the state directory, and (with `cfg.resume`)
    /// replays the manifest: finished jobs get their status and report
    /// rebuilt from checkpoints, unfinished ones are re-enqueued.
    pub fn bind(addr: &str, cfg: DaemonConfig) -> std::io::Result<Self> {
        std::fs::create_dir_all(&cfg.state_dir)?;
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let manifest = Manifest::open(&cfg.state_dir)?;
        let entries = load_manifest(&cfg.state_dir)?;

        let state = Arc::new(ServerState {
            next_ordinal: AtomicU64::new(entries.len() as u64),
            cfg: cfg.clone(),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            jobs: Mutex::new(BTreeMap::new()),
            manifest: Mutex::new(manifest),
            accepted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            stats: Arc::new(DaemonStats::default()),
            draining: AtomicBool::new(false),
        });

        if cfg.resume {
            for entry in entries {
                let Ok(obj) = parse_object(entry.canonical.as_bytes()) else {
                    continue;
                };
                let Ok(spec) = JobSpec::from_object(&obj) else {
                    continue;
                };
                let total = spec.plan().len() as u64;
                let progress = Arc::new(JobProgress::new(total));
                let status = match entry.done.as_deref() {
                    Some("completed") => {
                        // Rebuild the report from the WAL so reports
                        // survive restarts without re-simulating.
                        let path = wal_path(&cfg.state_dir, &entry.id);
                        match load_wal(&path, &entry.id) {
                            Ok(cells) if cells.len() as u64 == total => {
                                let results: Vec<_> = cells.into_values().collect();
                                let report = spec.report(&results);
                                let job = Arc::new(JobState {
                                    id: entry.id.clone(),
                                    spec,
                                    status: Mutex::new(JobStatus::Completed),
                                    progress,
                                    report: Mutex::new(Some(report)),
                                });
                                insert_job(&state, job);
                                continue;
                            }
                            _ => JobStatus::Failed(
                                "completed in a previous run but checkpoint is incomplete"
                                    .to_string(),
                            ),
                        }
                    }
                    Some(_) => JobStatus::Failed("failed in a previous run".to_string()),
                    None => JobStatus::Queued,
                };
                let queued = status == JobStatus::Queued;
                let job = Arc::new(JobState {
                    id: entry.id.clone(),
                    spec,
                    status: Mutex::new(status),
                    progress,
                    report: Mutex::new(None),
                });
                insert_job(&state, job);
                if queued {
                    let mut queue = state.queue.lock().unwrap_or_else(PoisonError::into_inner);
                    queue.push_back(entry.id);
                    drop(queue);
                }
            }
        }
        Ok(Self { listener, state })
    }

    /// The bound local address (the test harness parses this).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until drained: runs the supervisor loop on its own thread
    /// and the accept loop on this one, then waits for in-flight
    /// connections to finish.
    pub fn run(self) -> std::io::Result<()> {
        let supervisor_state = Arc::clone(&self.state);
        let supervisor = std::thread::Builder::new()
            .name("campaignd-supervisor".to_string())
            .spawn(move || supervisor_loop(&supervisor_state))?;
        accept_loop(&self.listener, &self.state);
        self.state.queue_cv.notify_all();
        let _ = supervisor.join();
        // Graceful drain: give in-flight connection threads a bounded
        // window to flush their responses.
        let deadline = Instant::now() + Duration::from_secs(2);
        while self.state.connections.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        Ok(())
    }
}

fn insert_job(state: &Arc<ServerState>, job: Arc<JobState>) {
    let mut jobs = state.jobs.lock().unwrap_or_else(PoisonError::into_inner);
    jobs.insert(job.id.clone(), job);
}

fn lookup_job(state: &Arc<ServerState>, id: &str) -> Option<Arc<JobState>> {
    let jobs = state.jobs.lock().unwrap_or_else(PoisonError::into_inner);
    jobs.get(id).cloned()
}

/// Accepts connections until drain. Non-blocking accept + sleep keeps the
/// loop interruptible without signals or a wakeup socket.
fn accept_loop(listener: &TcpListener, state: &Arc<ServerState>) {
    loop {
        if state.draining.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                if state.connections.load(Ordering::SeqCst) >= state.cfg.max_connections {
                    // Over the connection cap: shed immediately rather
                    // than queueing unbounded handler threads.
                    let _ = write_all(&stream, &response(
                        503,
                        "Service Unavailable",
                        "application/json",
                        b"{\"error\": \"connection limit\"}",
                        &[("Retry-After", "1")],
                        false,
                    ));
                    continue;
                }
                state.connections.fetch_add(1, Ordering::SeqCst);
                let conn_state = Arc::clone(state);
                let spawned = std::thread::Builder::new()
                    .name("campaignd-conn".to_string())
                    .spawn(move || {
                        handle_connection(stream, &conn_state);
                        conn_state.connections.fetch_sub(1, Ordering::SeqCst);
                    });
                if spawned.is_err() {
                    state.connections.fetch_sub(1, Ordering::SeqCst);
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn write_all(mut stream: &TcpStream, bytes: &[u8]) -> std::io::Result<()> {
    stream.write_all(bytes)
}

/// Reads requests off one connection until it closes, times out, or a
/// response demands closing. Incremental parsing with a per-request
/// wall-clock budget: a peer dribbling header bytes gets 408, not a
/// parked thread forever.
fn handle_connection(stream: TcpStream, state: &Arc<ServerState>) {
    let read_timeout = Duration::from_millis(state.cfg.read_timeout_ms.max(1));
    if stream.set_read_timeout(Some(read_timeout)).is_err() {
        return;
    }
    let _ = stream.set_write_timeout(Some(Duration::from_millis(1_000)));
    let mut buf: Vec<u8> = Vec::new();
    let mut request_started = Instant::now();
    loop {
        let req = match parse_request(&buf) {
            Parse::Complete(req, used) => {
                buf.drain(..used);
                req
            }
            Parse::Reject(status, reason) => {
                let body = format!("{{\"error\": \"{}\"}}", escape(reason));
                let _ = write_all(
                    &stream,
                    &response(status, reason, "application/json", body.as_bytes(), &[], false),
                );
                return;
            }
            Parse::NeedMore => {
                if request_started.elapsed().as_millis() as u64
                    >= state.cfg.request_deadline_ms.max(1)
                {
                    if !buf.is_empty() {
                        let _ = write_all(
                            &stream,
                            &response(
                                408,
                                "Request Timeout",
                                "application/json",
                                b"{\"error\": \"request timeout\"}",
                                &[],
                                false,
                            ),
                        );
                    }
                    return;
                }
                let mut chunk = [0u8; 4096];
                match (&stream).read(&mut chunk) {
                    Ok(0) => return, // peer closed
                    Ok(n) => buf.extend_from_slice(&chunk[..n]),
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut => {}
                    Err(_) => return,
                }
                continue;
            }
        };
        let keep_alive = route(&req, &stream, state);
        if !keep_alive {
            return;
        }
        request_started = Instant::now();
    }
}

fn json_response(status: u16, reason: &'static str, body: String) -> Vec<u8> {
    response(status, reason, "application/json", body.as_bytes(), &[], true)
}

/// Dispatches one request; returns whether to keep the connection alive.
fn route(req: &Request, stream: &TcpStream, state: &Arc<ServerState>) -> bool {
    let path = req.target.split('?').next().unwrap_or("");
    let reply = match (req.method.as_str(), path) {
        ("GET", "/healthz") => json_response(
            200,
            "OK",
            format!(
                "{{\"ok\": true, \"draining\": {}}}",
                state.draining.load(Ordering::SeqCst)
            ),
        ),
        ("GET", "/stats") => json_response(200, "OK", stats_body(state)),
        ("POST", "/jobs") => submit_job(req, state),
        ("POST", "/shutdown") => {
            state.draining.store(true, Ordering::SeqCst);
            state.queue_cv.notify_all();
            let bytes = response(
                202,
                "Accepted",
                "application/json",
                b"{\"ok\": true, \"draining\": true}",
                &[],
                false,
            );
            let _ = write_all(stream, &bytes);
            return false;
        }
        ("GET", path) => {
            if let Some(rest) = path.strip_prefix("/jobs/") {
                match rest.split_once('/') {
                    None => job_status_body(state, rest),
                    Some((id, "report")) => job_report_body(state, id),
                    Some((id, "stream")) => {
                        stream_job(stream, state, id);
                        return false; // streams always close
                    }
                    Some(_) => not_found(),
                }
            } else {
                not_found()
            }
        }
        (_, "/healthz" | "/stats" | "/jobs" | "/shutdown") => response(
            405,
            "Method Not Allowed",
            "application/json",
            b"{\"error\": \"method not allowed\"}",
            &[],
            true,
        ),
        _ => not_found(),
    };
    write_all(stream, &reply).is_ok()
}

fn not_found() -> Vec<u8> {
    json_response(404, "Not Found", "{\"error\": \"not found\"}".to_string())
}

fn stats_body(state: &Arc<ServerState>) -> String {
    let queue_depth = {
        let queue = state.queue.lock().unwrap_or_else(PoisonError::into_inner);
        queue.len()
    };
    let (queued, running, completed, failed, interrupted) = {
        let jobs = state.jobs.lock().unwrap_or_else(PoisonError::into_inner);
        let mut counts = (0u64, 0u64, 0u64, 0u64, 0u64);
        for job in jobs.values() {
            let status = job.status.lock().unwrap_or_else(PoisonError::into_inner);
            match *status {
                JobStatus::Queued => counts.0 += 1,
                JobStatus::Running => counts.1 += 1,
                JobStatus::Completed => counts.2 += 1,
                JobStatus::Failed(_) => counts.3 += 1,
                JobStatus::Interrupted => counts.4 += 1,
            }
        }
        counts
    };
    let (cell_count, cell_mean, spark) = state.stats.cell_seconds_summary();
    format!(
        "{{\"queue_depth\": {queue_depth}, \"queue_cap\": {}, \"accepted\": {}, \
\"shed\": {}, \"in_flight_cells\": {}, \"cells_done\": {}, \"retries\": {}, \
\"quarantined\": {}, \"jobs\": {{\"queued\": {queued}, \"running\": {running}, \
\"completed\": {completed}, \"failed\": {failed}, \"interrupted\": {interrupted}}}, \
\"cell_seconds\": {{\"count\": {cell_count}, \"mean\": {cell_mean:.6}, \
\"sparkline\": \"{}\"}}, \"draining\": {}}}",
        state.cfg.queue_cap,
        state.accepted.load(Ordering::SeqCst),
        state.shed.load(Ordering::SeqCst),
        state.stats.in_flight.load(Ordering::SeqCst),
        state.stats.cells_done.load(Ordering::SeqCst),
        state.stats.retries.load(Ordering::SeqCst),
        state.stats.quarantined.load(Ordering::SeqCst),
        escape(&spark),
        state.draining.load(Ordering::SeqCst),
    )
}

fn submit_job(req: &Request, state: &Arc<ServerState>) -> Vec<u8> {
    if state.draining.load(Ordering::SeqCst) {
        return response(
            503,
            "Service Unavailable",
            "application/json",
            b"{\"error\": \"draining\"}",
            &[],
            true,
        );
    }
    let spec = match parse_object(&req.body).and_then(|obj| JobSpec::from_object(&obj)) {
        Ok(spec) => spec,
        Err(message) => {
            return json_response(
                400,
                "Bad Request",
                format!("{{\"error\": \"{}\"}}", escape(&message)),
            )
        }
    };
    let canonical = spec.canonical();
    let ordinal = state.next_ordinal.fetch_add(1, Ordering::SeqCst);
    let id = format!(
        "job-{ordinal:04}-{:08x}",
        fnv64(canonical.as_bytes()) & 0xffff_ffff
    );

    // Backpressure: reserve a queue slot or shed, in one lock hold.
    {
        let mut queue = state.queue.lock().unwrap_or_else(PoisonError::into_inner);
        if queue.len() >= state.cfg.queue_cap {
            drop(queue);
            state.shed.fetch_add(1, Ordering::SeqCst);
            return response(
                429,
                "Too Many Requests",
                "application/json",
                b"{\"error\": \"queue full\"}",
                &[("Retry-After", "1")],
                true,
            );
        }
        queue.push_back(id.clone());
    }

    // Durability before acknowledgement: the 202 must survive a crash.
    {
        let mut manifest = state.manifest.lock().unwrap_or_else(PoisonError::into_inner);
        if manifest.record_job(&id, &canonical).is_err() {
            drop(manifest);
            let mut queue = state.queue.lock().unwrap_or_else(PoisonError::into_inner);
            queue.retain(|queued| queued != &id);
            drop(queue);
            return json_response(
                500,
                "Internal Server Error",
                "{\"error\": \"manifest write failed\"}".to_string(),
            );
        }
    }

    let total = spec.plan().len() as u64;
    let job = Arc::new(JobState {
        id: id.clone(),
        spec,
        status: Mutex::new(JobStatus::Queued),
        progress: Arc::new(JobProgress::new(total)),
        report: Mutex::new(None),
    });
    insert_job(state, job);
    state.accepted.fetch_add(1, Ordering::SeqCst);
    state.queue_cv.notify_all();
    let queue_depth = {
        let queue = state.queue.lock().unwrap_or_else(PoisonError::into_inner);
        queue.len()
    };
    json_response(
        202,
        "Accepted",
        format!(
            "{{\"id\": \"{id}\", \"cells_total\": {total}, \"queue_depth\": {queue_depth}}}"
        ),
    )
}

fn job_status_body(state: &Arc<ServerState>, id: &str) -> Vec<u8> {
    let Some(job) = lookup_job(state, id) else {
        return not_found();
    };
    let (label, reason) = {
        let status = job.status.lock().unwrap_or_else(PoisonError::into_inner);
        let reason = match &*status {
            JobStatus::Failed(reason) => format!(", \"reason\": \"{}\"", escape(reason)),
            _ => String::new(),
        };
        (status.label(), reason)
    };
    let quarantined = {
        let held = job
            .progress
            .quarantined
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let listed: Vec<String> = held.iter().map(usize::to_string).collect();
        listed.join(", ")
    };
    json_response(
        200,
        "OK",
        format!(
            "{{\"id\": \"{id}\", \"status\": \"{label}\", \"cells_total\": {}, \
\"cells_done\": {}, \"retries\": {}, \"quarantined\": [{quarantined}]{reason}}}",
            job.progress.cells_total,
            job.progress.cells_done.load(Ordering::SeqCst),
            job.progress.retries.load(Ordering::SeqCst),
        ),
    )
}

fn job_report_body(state: &Arc<ServerState>, id: &str) -> Vec<u8> {
    let Some(job) = lookup_job(state, id) else {
        return not_found();
    };
    let status = {
        let held = job.status.lock().unwrap_or_else(PoisonError::into_inner);
        held.clone()
    };
    match status {
        JobStatus::Completed => {
            let report = {
                let held = job.report.lock().unwrap_or_else(PoisonError::into_inner);
                held.clone()
            };
            match report {
                Some(report) => json_response(200, "OK", report),
                None => json_response(
                    500,
                    "Internal Server Error",
                    "{\"error\": \"report missing\"}".to_string(),
                ),
            }
        }
        JobStatus::Failed(reason) => json_response(
            410,
            "Gone",
            format!("{{\"error\": \"{}\"}}", escape(&reason)),
        ),
        _ => response(
            409,
            "Conflict",
            "application/json",
            b"{\"error\": \"job not finished\"}",
            &[("Retry-After", "1")],
            true,
        ),
    }
}

/// Streams a job's NDJSON event log, then live events until the job
/// finishes. A dead or slow client hits the write timeout and only its
/// own thread unwinds.
fn stream_job(stream: &TcpStream, state: &Arc<ServerState>, id: &str) {
    let Some(job) = lookup_job(state, id) else {
        let _ = write_all(stream, &not_found());
        return;
    };
    if write_all(stream, &stream_head("application/x-ndjson")).is_err() {
        return;
    }
    let mut seen = 0usize;
    loop {
        let (fresh, finished) = job
            .progress
            .wait_events(seen, Duration::from_millis(200));
        for line in &fresh {
            if write_all(stream, line.as_bytes()).is_err()
                || write_all(stream, b"\n").is_err()
            {
                return; // client went away; the campaign does not care
            }
        }
        seen += fresh.len();
        if finished {
            let (rest, _) = job.progress.wait_events(seen, Duration::from_millis(0));
            for line in &rest {
                if write_all(stream, line.as_bytes()).is_err()
                    || write_all(stream, b"\n").is_err()
                {
                    return;
                }
            }
            return;
        }
    }
}

/// Pops and runs queued jobs until drain. One job at a time: cell-level
/// parallelism comes from the worker pool underneath.
fn supervisor_loop(state: &Arc<ServerState>) {
    loop {
        let next = {
            let mut queue = state.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                // Drain check before the pop: queued-but-unstarted jobs
                // stay queued (and un-`done` in the manifest) so a
                // `--resume` picks them up; only the in-flight job gets
                // its in-flight cells finished.
                if state.draining.load(Ordering::SeqCst) {
                    break None;
                }
                if let Some(id) = queue.pop_front() {
                    break Some(id);
                }
                let (reacquired, _) = state
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(100))
                    .unwrap_or_else(PoisonError::into_inner);
                queue = reacquired;
            }
        };
        let Some(id) = next else { return };

        // The submit path publishes to the jobs map right after the queue
        // reservation; tolerate the tiny in-between window.
        let job = loop {
            if let Some(job) = lookup_job(state, &id) {
                break job;
            }
            std::thread::sleep(Duration::from_millis(1));
        };
        set_status(&job, JobStatus::Running);
        let outcome = run_job(
            &state.cfg.supervisor,
            &id,
            &job.spec,
            &state.cfg.state_dir,
            &job.progress,
            &state.stats,
            &state.draining,
        );
        match outcome {
            Ok(JobOutcome::Completed { report }) => {
                {
                    let mut held = job.report.lock().unwrap_or_else(PoisonError::into_inner);
                    *held = Some(report);
                }
                set_status(&job, JobStatus::Completed);
                record_done(state, &id, "completed");
            }
            Ok(JobOutcome::Failed { reason }) => {
                set_status(&job, JobStatus::Failed(reason));
                record_done(state, &id, "failed");
            }
            Ok(JobOutcome::Interrupted) => {
                set_status(&job, JobStatus::Interrupted);
                // No manifest record: resume re-enqueues it.
            }
            Err(e) => {
                set_status(&job, JobStatus::Failed(format!("i/o error: {e}")));
                record_done(state, &id, "failed");
            }
        }
    }
}

fn set_status(job: &Arc<JobState>, status: JobStatus) {
    let mut held = job.status.lock().unwrap_or_else(PoisonError::into_inner);
    *held = status;
}

fn record_done(state: &Arc<ServerState>, id: &str, outcome: &str) {
    let mut manifest = state.manifest.lock().unwrap_or_else(PoisonError::into_inner);
    let _ = manifest.record_done(id, outcome);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_cfg(tag: &str) -> DaemonConfig {
        let state_dir = std::env::temp_dir().join(format!(
            "campaignd-srv-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&state_dir);
        DaemonConfig {
            state_dir,
            supervisor: SupervisorConfig {
                workers: 2,
                backoff_base_ms: 1,
                ..SupervisorConfig::default()
            },
            ..DaemonConfig::default()
        }
    }

    #[test]
    fn bind_creates_state_dir_and_reports_addr() {
        let cfg = temp_cfg("bind");
        let server = Server::bind("127.0.0.1:0", cfg.clone()).unwrap();
        let addr = server.local_addr().unwrap();
        assert!(addr.port() > 0);
        assert!(Manifest::path_in(&cfg.state_dir).exists());
        let _ = std::fs::remove_dir_all(&cfg.state_dir);
    }

    #[test]
    fn status_labels_are_wire_stable() {
        assert_eq!(JobStatus::Queued.label(), "queued");
        assert_eq!(JobStatus::Failed("x".into()).label(), "failed");
        assert_eq!(JobStatus::Interrupted.label(), "interrupted");
    }
}
