//! Per-job supervision: chunked execution over the worker pool with
//! cell-level panic isolation, bounded deterministic retry, wall-clock
//! deadlines, quarantine, and per-chunk checkpointing.
//!
//! The supervisor never trusts a cell. Every attempt runs inside
//! [`platform::pool::catch_cell`], so a panicking simulation becomes an
//! `Err(CellPanic)` in that cell's slot instead of poisoning the batch
//! (the pool's own latch would re-raise the *first* panic and abandon the
//! submission). Failed cells are retried serially with exponential
//! backoff — `base * 2^(attempt-1)`, a fixed deterministic schedule, not
//! jitter — and a cell that exhausts its attempt budget is *quarantined*:
//! recorded, reported, and routed around, so one pathological seed cannot
//! wedge a million-cell campaign.
//!
//! Progress is durable at chunk granularity: completed cells stream
//! through [`platform::experiment::run_campaign_cells_observed`]'s
//! index-ordered hook into the WAL as they finish, and the file is
//! fsync'd once per chunk. A kill at any instant loses at most one
//! chunk of recompute and zero completed-and-synced cells.

use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use platform::experiment::{run_campaign_cells_observed, RunnerConfig};
use platform::pool::{catch_cell, CellPanic};
use platform::trace::Histogram;
use platform::SimResult;

use crate::checkpoint::{load_wal, wal_path, WalWriter};
use crate::spec::{CellSpec, JobSpec};
use crate::wire::escape;

/// Supervision policy for every job the daemon runs.
#[derive(Debug, Clone, Copy)]
pub struct SupervisorConfig {
    /// Pool workers per chunk (0 = auto: every core).
    pub workers: usize,
    /// Total attempts per cell before quarantine (first run + retries).
    pub max_attempts: u32,
    /// Base of the exponential retry backoff, in milliseconds.
    pub backoff_base_ms: u64,
    /// Per-job wall-clock deadline in milliseconds (0 = unbounded).
    pub deadline_ms: u64,
    /// Cells per chunk (0 = auto: `4 *` resolved workers).
    pub chunk_cells: usize,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            max_attempts: 3,
            backoff_base_ms: 10,
            deadline_ms: 0,
            chunk_cells: 0,
        }
    }
}

/// Daemon-wide execution counters, shared by the supervisor (writes) and
/// `/stats` (reads).
#[derive(Debug, Default)]
pub struct DaemonStats {
    /// Cells completed successfully (first try or retry).
    pub cells_done: AtomicU64,
    /// Retry attempts performed.
    pub retries: AtomicU64,
    /// Cells quarantined after exhausting their attempt budget.
    pub quarantined: AtomicU64,
    /// Cell attempts currently executing on pool workers.
    pub in_flight: AtomicU64,
    /// Wall-clock seconds per successful cell attempt, 0–1 s in 20 bins.
    pub cell_seconds: Mutex<Option<Histogram>>,
}

impl DaemonStats {
    fn record_cell_seconds(&self, secs: f64) {
        let mut guard = self
            .cell_seconds
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        guard
            .get_or_insert_with(|| Histogram::new(0.0, 1.0, 20))
            .record(secs);
    }

    /// `(count, mean seconds, sparkline)` of the cell-duration histogram.
    pub fn cell_seconds_summary(&self) -> (u64, f64, String) {
        let guard = self
            .cell_seconds
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        match guard.as_ref() {
            Some(h) => (h.count(), h.mean(), h.sparkline()),
            None => (0, 0.0, "∅".to_string()),
        }
    }
}

/// Live progress of one job: counters for `/jobs/<id>`, the NDJSON event
/// log for `/jobs/<id>/stream`, and the wakeup for blocked streamers.
#[derive(Debug)]
pub struct JobProgress {
    /// Cells in the plan.
    pub cells_total: u64,
    /// Cells completed (including checkpointed ones adopted on resume).
    pub cells_done: AtomicU64,
    /// Retry attempts this job consumed.
    pub retries: AtomicU64,
    /// Quarantined cell indices.
    pub quarantined: Mutex<Vec<usize>>,
    events: Mutex<Vec<String>>,
    events_cv: Condvar,
    /// Set once the job reaches a terminal state (or is interrupted).
    pub finished: AtomicBool,
}

impl JobProgress {
    /// Fresh progress for a plan of `cells_total` cells.
    pub fn new(cells_total: u64) -> Self {
        Self {
            cells_total,
            cells_done: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            quarantined: Mutex::new(Vec::new()),
            events: Mutex::new(Vec::new()),
            events_cv: Condvar::new(),
            finished: AtomicBool::new(false),
        }
    }

    /// Appends one NDJSON event line and wakes streaming subscribers.
    pub fn push_event(&self, line: String) {
        let mut guard = self.events.lock().unwrap_or_else(PoisonError::into_inner);
        // adas-lint: allow(R14, reason = "the event log is an arrival-ordered journal by contract; campaign results merge by index in the WAL and result slots, never through this log")
        guard.push(line);
        drop(guard);
        self.events_cv.notify_all();
    }

    /// Marks the job finished and wakes streamers so they can drain and
    /// close.
    pub fn mark_finished(&self) {
        self.finished.store(true, Ordering::SeqCst);
        self.events_cv.notify_all();
    }

    /// Returns events after index `seen` and the finished flag, blocking
    /// up to `timeout` when nothing new is available yet.
    pub fn wait_events(&self, seen: usize, timeout: Duration) -> (Vec<String>, bool) {
        let deadline = Instant::now() + timeout;
        let mut guard = self.events.lock().unwrap_or_else(PoisonError::into_inner);
        // Predicate loop: spurious wakeups re-check and re-wait for the
        // remaining budget.
        while guard.len() <= seen && !self.finished.load(Ordering::SeqCst) {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (reacquired, _) = self
                .events_cv
                .wait_timeout(guard, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            guard = reacquired;
        }
        let fresh = guard.get(seen..).unwrap_or_default().to_vec();
        drop(guard);
        (fresh, self.finished.load(Ordering::SeqCst))
    }
}

/// Terminal (or interrupted) outcome of one supervised job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOutcome {
    /// Every cell completed; the final report is rendered.
    Completed {
        /// The `BENCH_*`-shaped report.
        report: String,
    },
    /// The job is terminally failed (quarantine or deadline).
    Failed {
        /// Human-readable reason, also the last stream event.
        reason: String,
    },
    /// Drain was requested mid-job: progress is checkpointed, the job is
    /// *not* terminal — a `--resume` picks it up where the WAL ends.
    Interrupted,
}

type Attempted = (u32, f64, Result<SimResult, CellPanic>);

fn attempt_cell(
    gi: usize,
    cell: &CellSpec,
    spec: &JobSpec,
    attempts: &[AtomicU32],
) -> Attempted {
    let attempt = attempts[gi].fetch_add(1, Ordering::Relaxed) + 1;
    let started = Instant::now();
    let delay_ms = spec.chaos.delay_for(gi);
    let panic_budget = spec.chaos.panics_for(gi);
    let result = catch_cell(move || {
        if delay_ms > 0 {
            std::thread::sleep(Duration::from_millis(delay_ms));
        }
        if attempt <= panic_budget {
            // The chaos tests' injected fault: a deliberate panic on the
            // cell's first `panic_budget` attempts, caught one line up by
            // `catch_cell` and healed by the retry ladder.
            // adas-lint: allow(R7, reason = "chaos fault injection, caught by the enclosing catch_cell and healed by the retry ladder")
            panic!("chaos: injected panic (cell {gi}, attempt {attempt})");
        }
        cell.run()
    });
    (attempt, started.elapsed().as_secs_f64(), result)
}

/// Runs one job to an outcome, checkpointing into `state_dir`.
///
/// On entry the WAL (if any) is replayed and only missing cells execute;
/// the returned `Completed` report is therefore byte-identical whether
/// the job ran once uninterrupted or across any number of resumes — the
/// chaos test's central assertion.
pub fn run_job(
    cfg: &SupervisorConfig,
    job_id: &str,
    spec: &JobSpec,
    state_dir: &Path,
    progress: &Arc<JobProgress>,
    stats: &Arc<DaemonStats>,
    drain: &AtomicBool,
) -> std::io::Result<JobOutcome> {
    let started = Instant::now();
    let deadline_hit =
        |now: Instant| cfg.deadline_ms > 0 && now.duration_since(started).as_millis() as u64 >= cfg.deadline_ms;

    let plan: Arc<[CellSpec]> = spec.plan().into();
    let n = plan.len();
    let path = wal_path(state_dir, job_id);
    let checkpointed = load_wal(&path, job_id)?;
    let wal = Arc::new(Mutex::new(WalWriter::open(&path, job_id)?));

    progress
        .cells_done
        .store(checkpointed.len() as u64, Ordering::SeqCst);
    progress.push_event(format!(
        "{{\"event\": \"job\", \"id\": \"{job_id}\", \"status\": \"running\", \
\"cells_total\": {n}, \"checkpointed\": {}}}",
        checkpointed.len()
    ));

    let mut results: Vec<Option<SimResult>> = vec![None; n];
    for (&idx, result) in &checkpointed {
        if idx < n {
            results[idx] = Some(result.clone());
        }
    }
    let missing: Vec<usize> = (0..n).filter(|i| results[*i].is_none()).collect();

    let attempts: Arc<Vec<AtomicU32>> = Arc::new((0..n).map(|_| AtomicU32::new(0)).collect());
    let workers = RunnerConfig::with_workers(if cfg.workers == 0 {
        platform::experiment::detected_cores()
    } else {
        cfg.workers
    });
    let chunk_cells = if cfg.chunk_cells == 0 {
        4 * workers.worker_count(n.max(1))
    } else {
        cfg.chunk_cells
    }
    .max(1);

    let mut quarantine: Vec<usize> = Vec::new();
    for chunk in missing.chunks(chunk_cells) {
        if drain.load(Ordering::SeqCst) {
            return interrupt(job_id, progress, &wal);
        }
        if deadline_hit(Instant::now()) {
            return fail(
                job_id,
                progress,
                &wal,
                format!(
                    "deadline exceeded after {} of {n} cells",
                    progress.cells_done.load(Ordering::SeqCst)
                ),
            );
        }

        // Pooled first pass over the chunk: panics captured per cell,
        // successes checkpointed and streamed in index order as the
        // frontier advances.
        let chunk_specs: Vec<(usize, CellSpec)> =
            chunk.iter().map(|&gi| (gi, plan[gi])).collect();
        let run_spec = spec.clone();
        let run_attempts = Arc::clone(&attempts);
        let run_stats = Arc::clone(stats);
        let hook_wal = Arc::clone(&wal);
        let hook_progress = Arc::clone(progress);
        let hook_stats = Arc::clone(stats);
        let hook_chunk: Vec<usize> = chunk.to_vec();
        let wal_error: Arc<Mutex<Option<std::io::Error>>> = Arc::new(Mutex::new(None));
        let hook_wal_error = Arc::clone(&wal_error);
        let outcomes = run_campaign_cells_observed(
            workers,
            chunk_specs,
            move |&(gi, cell)| {
                run_stats.in_flight.fetch_add(1, Ordering::SeqCst);
                let attempted = attempt_cell(gi, &cell, &run_spec, &run_attempts);
                run_stats.in_flight.fetch_sub(1, Ordering::SeqCst);
                attempted
            },
            move |ci, (attempt, secs, outcome)| {
                let gi = hook_chunk[ci];
                match outcome {
                    Ok(result) => {
                        let mut writer =
                            hook_wal.lock().unwrap_or_else(PoisonError::into_inner);
                        if let Err(e) = writer.append_cell(gi, result) {
                            let mut slot = hook_wal_error
                                .lock()
                                .unwrap_or_else(PoisonError::into_inner);
                            slot.get_or_insert(e);
                        }
                        drop(writer);
                        hook_progress.cells_done.fetch_add(1, Ordering::SeqCst);
                        hook_stats.cells_done.fetch_add(1, Ordering::SeqCst);
                        hook_stats.record_cell_seconds(*secs);
                        hook_progress.push_event(format!(
                            "{{\"event\": \"cell\", \"idx\": {gi}, \"status\": \"ok\", \
\"attempt\": {attempt}}}"
                        ));
                    }
                    Err(panic) => {
                        hook_progress.push_event(format!(
                            "{{\"event\": \"cell\", \"idx\": {gi}, \"status\": \"panic\", \
\"attempt\": {attempt}, \"message\": \"{}\"}}",
                            escape(&panic.message)
                        ));
                    }
                }
            },
        );
        let mut held_error = wal_error.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(e) = held_error.take() {
            return Err(e);
        }
        drop(held_error);
        wal.lock().unwrap_or_else(PoisonError::into_inner).sync()?;

        // Serial retry ladder for the chunk's failures, with deterministic
        // exponential backoff between attempts.
        let mut retried_any = false;
        for (ci, (_, _, outcome)) in outcomes.iter().enumerate() {
            let gi = chunk[ci];
            match outcome {
                Ok(result) => results[gi] = Some(result.clone()),
                Err(_) => {
                    let healed = retry_cell(
                        cfg, spec, &plan, gi, &attempts, progress, stats, drain, &started,
                    );
                    match healed {
                        Retry::Ok(result) => {
                            let mut writer =
                                wal.lock().unwrap_or_else(PoisonError::into_inner);
                            writer.append_cell(gi, &result)?;
                            drop(writer);
                            retried_any = true;
                            results[gi] = Some(*result);
                            progress.cells_done.fetch_add(1, Ordering::SeqCst);
                            stats.cells_done.fetch_add(1, Ordering::SeqCst);
                        }
                        Retry::Quarantined => quarantine.push(gi),
                        Retry::Drained => return interrupt(job_id, progress, &wal),
                        Retry::DeadlineHit => {
                            return fail(
                                job_id,
                                progress,
                                &wal,
                                format!(
                                    "deadline exceeded after {} of {n} cells",
                                    progress.cells_done.load(Ordering::SeqCst)
                                ),
                            )
                        }
                    }
                }
            }
        }
        if retried_any {
            wal.lock().unwrap_or_else(PoisonError::into_inner).sync()?;
        }
    }

    if !quarantine.is_empty() {
        let listed: Vec<String> = quarantine.iter().map(usize::to_string).collect();
        let mut held = progress
            .quarantined
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        held.extend_from_slice(&quarantine);
        drop(held);
        return fail(
            job_id,
            progress,
            &wal,
            format!(
                "{} cell(s) quarantined after {} attempts each: [{}]",
                quarantine.len(),
                cfg.max_attempts,
                listed.join(", ")
            ),
        );
    }

    let complete: Vec<SimResult> = results.into_iter().flatten().collect();
    debug_assert_eq!(complete.len(), n);
    let report = spec.report(&complete);
    progress.push_event(format!(
        "{{\"event\": \"job\", \"id\": \"{job_id}\", \"status\": \"completed\", \
\"cells_total\": {n}}}"
    ));
    progress.mark_finished();
    Ok(JobOutcome::Completed { report })
}

enum Retry {
    Ok(Box<SimResult>),
    Quarantined,
    Drained,
    DeadlineHit,
}

#[allow(clippy::too_many_arguments)]
fn retry_cell(
    cfg: &SupervisorConfig,
    spec: &JobSpec,
    plan: &[CellSpec],
    gi: usize,
    attempts: &[AtomicU32],
    progress: &Arc<JobProgress>,
    stats: &Arc<DaemonStats>,
    drain: &AtomicBool,
    job_started: &Instant,
) -> Retry {
    loop {
        let tried = attempts[gi].load(Ordering::Relaxed);
        if tried >= cfg.max_attempts {
            progress.push_event(format!(
                "{{\"event\": \"cell\", \"idx\": {gi}, \"status\": \"quarantined\", \
\"attempts\": {tried}}}"
            ));
            stats.quarantined.fetch_add(1, Ordering::SeqCst);
            return Retry::Quarantined;
        }
        if drain.load(Ordering::SeqCst) {
            return Retry::Drained;
        }
        if cfg.deadline_ms > 0
            && job_started.elapsed().as_millis() as u64 >= cfg.deadline_ms
        {
            return Retry::DeadlineHit;
        }
        // Deterministic schedule: 1x, 2x, 4x ... the base per retry rank.
        let backoff = cfg.backoff_base_ms.saturating_mul(1u64 << (tried - 1).min(16));
        std::thread::sleep(Duration::from_millis(backoff));
        stats.retries.fetch_add(1, Ordering::SeqCst);
        progress.retries.fetch_add(1, Ordering::SeqCst);
        let (attempt, secs, outcome) = attempt_cell(gi, &plan[gi], spec, attempts);
        match outcome {
            Ok(result) => {
                stats.record_cell_seconds(secs);
                progress.push_event(format!(
                    "{{\"event\": \"cell\", \"idx\": {gi}, \"status\": \"retry_ok\", \
\"attempt\": {attempt}}}"
                ));
                return Retry::Ok(Box::new(result));
            }
            Err(panic) => {
                progress.push_event(format!(
                    "{{\"event\": \"cell\", \"idx\": {gi}, \"status\": \"panic\", \
\"attempt\": {attempt}, \"message\": \"{}\"}}",
                    escape(&panic.message)
                ));
            }
        }
    }
}

fn interrupt(
    job_id: &str,
    progress: &Arc<JobProgress>,
    wal: &Arc<Mutex<WalWriter>>,
) -> std::io::Result<JobOutcome> {
    wal.lock().unwrap_or_else(PoisonError::into_inner).sync()?;
    progress.push_event(format!(
        "{{\"event\": \"job\", \"id\": \"{job_id}\", \"status\": \"interrupted\"}}"
    ));
    progress.mark_finished();
    Ok(JobOutcome::Interrupted)
}

fn fail(
    job_id: &str,
    progress: &Arc<JobProgress>,
    wal: &Arc<Mutex<WalWriter>>,
    reason: String,
) -> std::io::Result<JobOutcome> {
    wal.lock().unwrap_or_else(PoisonError::into_inner).sync()?;
    progress.push_event(format!(
        "{{\"event\": \"job\", \"id\": \"{job_id}\", \"status\": \"failed\", \
\"reason\": \"{}\"}}",
        escape(&reason)
    ));
    progress.mark_finished();
    Ok(JobOutcome::Failed { reason })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ChaosKnobs, JobKind};
    use defense::DefensePolicy;

    fn tiny_job(chaos: ChaosKnobs) -> JobSpec {
        JobSpec {
            kind: JobKind::Resilience {
                defense: DefensePolicy::Degrade,
            },
            base_seed: 3,
            reps: 1,
            chaos,
        }
    }

    fn temp_state(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "campaignd-sup-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn run(
        cfg: &SupervisorConfig,
        job_id: &str,
        spec: &JobSpec,
        dir: &Path,
    ) -> (JobOutcome, Arc<JobProgress>) {
        let progress = Arc::new(JobProgress::new(spec.plan().len() as u64));
        let stats = Arc::new(DaemonStats::default());
        let outcome = run_job(
            cfg,
            job_id,
            spec,
            dir,
            &progress,
            &stats,
            &AtomicBool::new(false),
        )
        .unwrap();
        (outcome, progress)
    }

    #[test]
    fn chaos_panics_are_retried_to_a_byte_identical_report() {
        let dir = temp_state("retry");
        let clean = tiny_job(ChaosKnobs::default());
        let chaotic = tiny_job(ChaosKnobs {
            panic_cells: vec![(3, 1), (17, 2), (100, 1)],
            delay_cells: Vec::new(),
        });
        let cfg = SupervisorConfig {
            workers: 4,
            backoff_base_ms: 1,
            ..SupervisorConfig::default()
        };
        let (baseline, _) = run(&cfg, "job-clean", &clean, &dir);
        let (disturbed, progress) = run(&cfg, "job-chaos", &chaotic, &dir);
        match (baseline, disturbed) {
            (JobOutcome::Completed { report: a }, JobOutcome::Completed { report: b }) => {
                assert_eq!(a, b, "injected panics must not change the report");
            }
            other => panic!("{other:?}"),
        }
        assert!(progress.retries.load(Ordering::SeqCst) >= 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn exhausted_attempts_quarantine_and_fail_the_job() {
        let dir = temp_state("quarantine");
        let spec = tiny_job(ChaosKnobs {
            panic_cells: vec![(5, 1000)], // never succeeds
            delay_cells: Vec::new(),
        });
        let cfg = SupervisorConfig {
            workers: 2,
            max_attempts: 3,
            backoff_base_ms: 1,
            ..SupervisorConfig::default()
        };
        let (outcome, progress) = run(&cfg, "job-q", &spec, &dir);
        match outcome {
            JobOutcome::Failed { reason } => {
                assert!(reason.contains("quarantined"), "{reason}");
                assert!(reason.contains('5'), "{reason}");
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(
            *progress.quarantined.lock().unwrap(),
            vec![5],
            "exactly the cursed cell is quarantined"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn deadline_fails_the_job_before_completion() {
        let dir = temp_state("deadline");
        let spec = tiny_job(ChaosKnobs {
            panic_cells: Vec::new(),
            delay_cells: vec![(0, 50), (1, 50), (2, 50), (3, 50)],
        });
        let cfg = SupervisorConfig {
            workers: 1,
            deadline_ms: 1,
            chunk_cells: 2,
            ..SupervisorConfig::default()
        };
        let (outcome, _) = run(&cfg, "job-dl", &spec, &dir);
        match outcome {
            JobOutcome::Failed { reason } => assert!(reason.contains("deadline"), "{reason}"),
            other => panic!("{other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_recomputes_only_missing_cells_bit_identically() {
        let dir = temp_state("resume");
        let spec = tiny_job(ChaosKnobs::default());
        let cfg = SupervisorConfig {
            workers: 4,
            ..SupervisorConfig::default()
        };
        // Uninterrupted baseline in a separate job id.
        let (baseline, _) = run(&cfg, "job-base", &spec, &dir);

        // First pass under an early drain: some cells land, then stop.
        let progress = Arc::new(JobProgress::new(spec.plan().len() as u64));
        let stats = Arc::new(DaemonStats::default());
        let small_chunks = SupervisorConfig {
            chunk_cells: 16,
            ..cfg
        };
        // Drain immediately after the first chunk: flip the flag from a
        // watcher thread once a few cells complete.
        let watcher_progress = Arc::clone(&progress);
        let flag = Arc::new(AtomicBool::new(false));
        let watcher_flag = Arc::clone(&flag);
        let watcher = std::thread::spawn(move || {
            while watcher_progress.cells_done.load(Ordering::SeqCst) < 8 {
                std::thread::sleep(Duration::from_millis(1));
            }
            watcher_flag.store(true, Ordering::SeqCst);
        });
        let outcome =
            run_job(&small_chunks, "job-res", &spec, &dir, &progress, &stats, &flag).unwrap();
        watcher.join().unwrap();
        assert_eq!(outcome, JobOutcome::Interrupted);
        let done_first = progress.cells_done.load(Ordering::SeqCst);
        assert!(done_first >= 8, "some progress was checkpointed");
        assert!(
            (done_first as usize) < spec.plan().len(),
            "the job was genuinely interrupted"
        );

        // Resume: only the missing cells run, the report matches the
        // uninterrupted baseline byte for byte.
        let progress2 = Arc::new(JobProgress::new(spec.plan().len() as u64));
        let resumed = run_job(
            &cfg,
            "job-res",
            &spec,
            &dir,
            &progress2,
            &Arc::new(DaemonStats::default()),
            &AtomicBool::new(false),
        )
        .unwrap();
        match (baseline, resumed) {
            (JobOutcome::Completed { report: a }, JobOutcome::Completed { report: b }) => {
                assert_eq!(a, b, "resume must be invisible in the report");
            }
            other => panic!("{other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
