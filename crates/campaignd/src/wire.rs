//! Minimal flat-JSON wire codec for the job API.
//!
//! The vendored `serde` is an API stub, so — like every report writer in
//! this workspace — campaignd hand-rolls its JSON. Parsing is scoped to
//! exactly what job submissions need: one flat object whose values are
//! strings, unsigned integers, booleans, or arrays of `[int, int]` pairs
//! (the chaos knobs). Anything else is a parse error, not a guess.

use std::collections::BTreeMap;

/// A value in a flat job-submission object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// A JSON string.
    Str(String),
    /// A non-negative integer.
    UInt(u64),
    /// A boolean.
    Bool(bool),
    /// An array of `[a, b]` integer pairs.
    Pairs(Vec<(u64, u64)>),
}

/// Parsed key → value map (keys are unescaped JSON strings).
pub type Object = BTreeMap<String, Value>;

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\r' | b'\n'))
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    let escaped = self.bytes.get(self.pos + 1);
                    match escaped {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        _ => return Err(format!("unsupported escape at byte {}", self.pos)),
                    }
                    self.pos += 2;
                }
                Some(&b) if b >= 0x20 => {
                    // Raw UTF-8 passes through byte-wise; keys and enum
                    // tokens the daemon actually interprets are ASCII.
                    out.push(b as char);
                    self.pos += 1;
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn uint(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected digit at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("integer overflow at byte {start}"))
    }

    fn pairs(&mut self) -> Result<Vec<(u64, u64)>, String> {
        self.eat(b'[')?;
        let mut out = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            self.eat(b'[')?;
            let a = self.uint()?;
            self.eat(b',')?;
            let b = self.uint()?;
            self.eat(b']')?;
            out.push((a, b));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(out);
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => Ok(Value::Pairs(self.pairs()?)),
            Some(b't') if self.bytes[self.pos..].starts_with(b"true") => {
                self.pos += 4;
                Ok(Value::Bool(true))
            }
            Some(b'f') if self.bytes[self.pos..].starts_with(b"false") => {
                self.pos += 5;
                Ok(Value::Bool(false))
            }
            Some(b) if b.is_ascii_digit() => Ok(Value::UInt(self.uint()?)),
            _ => Err(format!("unsupported value at byte {}", self.pos)),
        }
    }
}

/// Parses one flat JSON object. Trailing bytes after the closing brace
/// (other than whitespace) are an error.
pub fn parse_object(bytes: &[u8]) -> Result<Object, String> {
    let mut cur = Cursor { bytes, pos: 0 };
    cur.eat(b'{')?;
    let mut out = Object::new();
    if cur.peek() == Some(b'}') {
        cur.pos += 1;
    } else {
        loop {
            let key = cur.string()?;
            cur.eat(b':')?;
            let value = cur.value()?;
            out.insert(key, value);
            match cur.peek() {
                Some(b',') => cur.pos += 1,
                Some(b'}') => {
                    cur.pos += 1;
                    break;
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", cur.pos)),
            }
        }
    }
    cur.skip_ws();
    if cur.pos != bytes.len() {
        return Err(format!("trailing bytes at {}", cur.pos));
    }
    Ok(out)
}

/// Escapes a string for embedding in a JSON document.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_job_submission() {
        let obj = parse_object(
            br#"{"kind": "resilience", "base_seed": 7, "reps": 2,
                "defense": "degrade", "panic_cells": [[3, 1], [10, 2]],
                "delay_cells": [], "strict": true}"#,
        )
        .unwrap();
        assert_eq!(obj["kind"], Value::Str("resilience".into()));
        assert_eq!(obj["base_seed"], Value::UInt(7));
        assert_eq!(obj["panic_cells"], Value::Pairs(vec![(3, 1), (10, 2)]));
        assert_eq!(obj["delay_cells"], Value::Pairs(vec![]));
        assert_eq!(obj["strict"], Value::Bool(true));
    }

    #[test]
    fn rejects_trailing_garbage_and_nesting() {
        assert!(parse_object(b"{} x").is_err());
        assert!(parse_object(br#"{"a": {"b": 1}}"#).is_err());
        assert!(parse_object(br#"{"a": -1}"#).is_err());
        assert!(parse_object(br#"{"a": 1"#).is_err());
        assert!(parse_object(b"").is_err());
        assert!(parse_object(br#"{"a": [[1]]}"#).is_err());
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "a\"b\\c\nd";
        let doc = format!(r#"{{"k": "{}"}}"#, escape(nasty));
        let obj = parse_object(doc.as_bytes()).unwrap();
        assert_eq!(obj["k"], Value::Str(nasty.to_string()));
    }

    #[test]
    fn empty_object_parses() {
        assert!(parse_object(b"{}").unwrap().is_empty());
        assert!(parse_object(b"  { }  ").unwrap().is_empty());
    }
}
