//! campaignd — the durable front-end the campaign runners were missing.
//!
//! The paper's full attack/defense matrix needs campaigns to run as a
//! long-lived *service*, not one-shot `cargo bench` invocations — and a
//! service driving millions of safety-critical simulations must itself
//! survive worker panics, slow clients, overload, and whole-process
//! restarts without losing or corrupting a single cell. The daemon is
//! therefore built robustness-first:
//!
//! * **Bounded queue, explicit backpressure** — `POST /jobs` either
//!   enqueues (202) or sheds load (429 + `Retry-After`) while the queue is
//!   at capacity; memory use is bounded by construction, not by hope.
//! * **Supervision** ([`supervisor`]) — cells execute through
//!   [`platform::pool::submit_catching`]'s per-cell panic capture; a
//!   panicked cell is retried with deterministic exponential backoff and,
//!   past the attempt budget, quarantined so one pathological seed cannot
//!   wedge the campaign. Per-job wall-clock deadlines bound runaway jobs.
//! * **Checkpoint/resume** ([`checkpoint`]) — every completed cell is
//!   appended to a write-ahead log keyed by the campaign's seed mix and
//!   fsync'd per chunk; `campaignd --resume` replays the job manifest and
//!   recomputes only the missing cells. The chaos test asserts the final
//!   report is byte-identical to an undisturbed run.
//! * **Hardened HTTP** ([`http`]) — a hand-rolled incremental HTTP/1.1
//!   parser over `std::net` (the vendor-stub culture rules out tokio):
//!   read timeouts, header/body caps, Slowloris-resistant accumulation
//!   deadlines, pipelining, and graceful drain on `POST /shutdown`.
//!
//! Everything is `std`-only; determinism comes from the platform layer
//! (seed mixing, plan-order aggregation), robustness from this one.

#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod http;
pub mod server;
pub mod spec;
pub mod supervisor;
pub mod wire;
