//! Job payloads: the bench campaigns, re-expressed as service jobs.
//!
//! A job is a campaign the platform layer already knows how to plan — an
//! attack sweep ([`platform::experiment::plan_attack_campaign`]) or a
//! fault-resilience sweep ([`platform::resilience::plan_resilience_campaign`])
//! — plus the supervision-only chaos knobs the robustness tests use to
//! inject cell panics and delays. The knobs live in the *spec* (and its
//! canonical encoding, and thus the job id) because a resumed daemon must
//! re-apply them; they never change the simulation results, only how many
//! attempts it takes to produce them.

use attack_core::{AttackType, StrategyKind};
use defense::DefensePolicy;
use platform::experiment::{detected_cores, plan_attack_campaign, CampaignConfig, RunSpec};
use platform::resilience::{
    aggregate_resilience_results, plan_resilience_campaign, ResilienceConfig, ResilienceSpec,
};
use platform::SimResult;

use crate::wire::{Object, Value};

/// Which campaign family the job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// One attack type under one scheduling strategy, no defense
    /// (the Table IV shape).
    Attack {
        /// Scheduling strategy.
        strategy: StrategyKind,
        /// The attack type swept over the scenario matrix.
        attack: AttackType,
    },
    /// The full fault × intensity × scenario sweep under one defense
    /// policy (the `BENCH_resilience.json` shape).
    Resilience {
        /// Defense deployment for every run.
        defense: DefensePolicy,
    },
}

/// Supervision-only fault injection, applied per cell index.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosKnobs {
    /// `(cell index, k)`: the cell's first `k` attempts panic before the
    /// real simulation runs. Exercises retry and (for `k` past the
    /// attempt budget) quarantine.
    pub panic_cells: Vec<(usize, u32)>,
    /// `(cell index, milliseconds)`: every attempt at the cell sleeps
    /// first. Widens kill/overload windows in the chaos tests.
    pub delay_cells: Vec<(usize, u64)>,
}

impl ChaosKnobs {
    /// Panic budget for a cell (0 = never panics).
    pub fn panics_for(&self, idx: usize) -> u32 {
        self.panic_cells
            .iter()
            .find(|(i, _)| *i == idx)
            .map_or(0, |(_, k)| *k)
    }

    /// Injected delay for a cell, in milliseconds.
    pub fn delay_for(&self, idx: usize) -> u64 {
        self.delay_cells
            .iter()
            .find(|(i, _)| *i == idx)
            .map_or(0, |(_, ms)| *ms)
    }
}

/// A submitted job: campaign family, seeding, and chaos knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Campaign family and its parameters.
    pub kind: JobKind,
    /// Base seed every run seed derives from.
    pub base_seed: u64,
    /// Repetitions per campaign cell.
    pub reps: u32,
    /// Supervision-layer fault injection.
    pub chaos: ChaosKnobs,
}

/// One planned cell of a job.
#[derive(Debug, Clone, Copy)]
pub enum CellSpec {
    /// An attack-campaign run.
    Attack(RunSpec),
    /// A resilience-campaign run.
    Resilience(ResilienceSpec),
}

impl CellSpec {
    /// Executes the cell.
    pub fn run(&self) -> SimResult {
        match self {
            CellSpec::Attack(spec) => spec.run(),
            CellSpec::Resilience(spec) => spec.run(),
        }
    }
}

fn strategy_token(s: StrategyKind) -> &'static str {
    match s {
        StrategyKind::RandomStDur => "random_st_dur",
        StrategyKind::RandomSt => "random_st",
        StrategyKind::RandomDur => "random_dur",
        StrategyKind::ContextAware => "context_aware",
    }
}

fn parse_strategy(token: &str) -> Option<StrategyKind> {
    StrategyKind::ALL
        .into_iter()
        .find(|&s| strategy_token(s) == token)
}

fn attack_token(a: AttackType) -> &'static str {
    match a {
        AttackType::Acceleration => "acceleration",
        AttackType::Deceleration => "deceleration",
        AttackType::SteeringLeft => "steering_left",
        AttackType::SteeringRight => "steering_right",
        AttackType::AccelerationSteering => "acceleration_steering",
        AttackType::DecelerationSteering => "deceleration_steering",
    }
}

fn parse_attack(token: &str) -> Option<AttackType> {
    AttackType::ALL.into_iter().find(|&a| attack_token(a) == token)
}

fn parse_defense(token: &str) -> Option<DefensePolicy> {
    [
        DefensePolicy::Off,
        DefensePolicy::Observe,
        DefensePolicy::Degrade,
        DefensePolicy::FailSafe,
    ]
    .into_iter()
    .find(|d| d.label() == token)
}

fn pairs_field(obj: &Object, key: &str) -> Result<Vec<(u64, u64)>, String> {
    match obj.get(key) {
        None => Ok(Vec::new()),
        Some(Value::Pairs(pairs)) => Ok(pairs.clone()),
        Some(_) => Err(format!("'{key}' must be an array of [int, int] pairs")),
    }
}

fn uint_field(obj: &Object, key: &str, default: u64) -> Result<u64, String> {
    match obj.get(key) {
        None => Ok(default),
        Some(Value::UInt(n)) => Ok(*n),
        Some(_) => Err(format!("'{key}' must be a non-negative integer")),
    }
}

fn str_field<'a>(obj: &'a Object, key: &str) -> Result<Option<&'a str>, String> {
    match obj.get(key) {
        None => Ok(None),
        Some(Value::Str(s)) => Ok(Some(s.as_str())),
        Some(_) => Err(format!("'{key}' must be a string")),
    }
}

impl JobSpec {
    /// Builds a spec from a parsed submission object; the error string is
    /// what the client sees in the 400 body.
    pub fn from_object(obj: &Object) -> Result<Self, String> {
        let kind = match str_field(obj, "kind")? {
            Some("attack") => {
                let strategy = str_field(obj, "strategy")?
                    .and_then(parse_strategy)
                    .ok_or("'strategy' must be one of random_st_dur|random_st|random_dur|context_aware")?;
                let attack = str_field(obj, "attack")?
                    .and_then(parse_attack)
                    .ok_or("'attack' must name one of the six attack types")?;
                JobKind::Attack { strategy, attack }
            }
            Some("resilience") => {
                let defense = match str_field(obj, "defense")? {
                    None => DefensePolicy::Degrade,
                    Some(token) => parse_defense(token)
                        .ok_or("'defense' must be one of off|observe|degrade|fail_safe")?,
                };
                JobKind::Resilience { defense }
            }
            _ => return Err("'kind' must be \"attack\" or \"resilience\"".to_string()),
        };
        let reps = u32::try_from(uint_field(obj, "reps", 1)?.max(1))
            .map_err(|_| "'reps' out of range".to_string())?;
        let chaos = ChaosKnobs {
            panic_cells: pairs_field(obj, "panic_cells")?
                .into_iter()
                .map(|(i, k)| (i as usize, k.min(u64::from(u32::MAX)) as u32))
                .collect(),
            delay_cells: pairs_field(obj, "delay_cells")?
                .into_iter()
                .map(|(i, ms)| (i as usize, ms))
                .collect(),
        };
        Ok(Self {
            kind,
            base_seed: uint_field(obj, "base_seed", 7)?,
            reps,
            chaos,
        })
    }

    /// Canonical single-line encoding: deterministic field order, parses
    /// back via [`from_object`](Self::from_object). This string — not the
    /// client's original body — is what the manifest records and the job
    /// id hashes, so resubmitting a semantically identical job reproduces
    /// the same identity.
    pub fn canonical(&self) -> String {
        let kind_fields = match self.kind {
            JobKind::Attack { strategy, attack } => format!(
                "\"kind\": \"attack\", \"strategy\": \"{}\", \"attack\": \"{}\"",
                strategy_token(strategy),
                attack_token(attack)
            ),
            JobKind::Resilience { defense } => format!(
                "\"kind\": \"resilience\", \"defense\": \"{}\"",
                defense.label()
            ),
        };
        let pairs = |cells: &[(usize, u64)]| {
            let items: Vec<String> = cells.iter().map(|(i, v)| format!("[{i}, {v}]")).collect();
            format!("[{}]", items.join(", "))
        };
        let panics: Vec<(usize, u64)> = self
            .chaos
            .panic_cells
            .iter()
            .map(|&(i, k)| (i, u64::from(k)))
            .collect();
        format!(
            "{{{kind_fields}, \"base_seed\": {}, \"reps\": {}, \"panic_cells\": {}, \"delay_cells\": {}}}",
            self.base_seed,
            self.reps,
            pairs(&panics),
            pairs(&self.chaos.delay_cells),
        )
    }

    /// Expands the job into its plan-ordered cell list.
    pub fn plan(&self) -> Vec<CellSpec> {
        match self.kind {
            JobKind::Attack { strategy, attack } => {
                let cfg = CampaignConfig {
                    base_seed: self.base_seed,
                    ..CampaignConfig::smoke(strategy, self.reps)
                };
                plan_attack_campaign(&cfg, attack)
                    .into_iter()
                    .map(CellSpec::Attack)
                    .collect()
            }
            JobKind::Resilience { defense } => {
                let cfg = ResilienceConfig::new(self.base_seed, self.reps).with_defense(defense);
                plan_resilience_campaign(&cfg)
                    .into_iter()
                    .map(CellSpec::Resilience)
                    .collect()
            }
        }
    }

    /// Renders the final report from the complete plan-ordered results.
    ///
    /// Resilience jobs emit exactly [`platform::resilience::ResilienceReport::to_json`]
    /// — the `BENCH_resilience.json` shape the chaos test asserts
    /// byte-identity on. Attack jobs emit a compact Table IV-shaped
    /// aggregate.
    pub fn report(&self, results: &[SimResult]) -> String {
        match self.kind {
            JobKind::Resilience { defense } => {
                let cfg = ResilienceConfig::new(self.base_seed, self.reps).with_defense(defense);
                aggregate_resilience_results(&cfg, results).to_json()
            }
            JobKind::Attack { strategy, attack } => {
                let hazardous = results.iter().filter(|r| r.hazardous()).count();
                let accidents = results.iter().filter(|r| r.accident.is_some()).count();
                let silent = results.iter().filter(|r| r.hazard_without_alert()).count();
                let tth: Vec<f64> = results
                    .iter()
                    .filter_map(|r| r.tth.map(|t| t.secs()))
                    .collect();
                let mean_tth = if tth.is_empty() {
                    "null".to_string()
                } else {
                    format!("{:.3}", tth.iter().sum::<f64>() / tth.len() as f64)
                };
                format!(
                    "{{\n  \"bench\": \"campaign\",\n  \"kind\": \"attack\",\n  \
\"strategy\": \"{}\",\n  \"attack\": \"{}\",\n  \"base_seed\": {},\n  \
\"reps_per_cell\": {},\n  \"cores\": {},\n  \"total_runs\": {},\n  \
\"hazardous_runs\": {},\n  \"accident_runs\": {},\n  \
\"hazard_no_alert_runs\": {},\n  \"mean_tth_s\": {}\n}}\n",
                    strategy.label(),
                    attack.label(),
                    self.base_seed,
                    self.reps,
                    detected_cores(),
                    results.len(),
                    hazardous,
                    accidents,
                    silent,
                    mean_tth,
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::parse_object;

    #[test]
    fn canonical_round_trips() {
        let obj = parse_object(
            br#"{"kind": "resilience", "defense": "fail_safe", "base_seed": 11,
                "reps": 2, "panic_cells": [[3, 1]], "delay_cells": [[0, 250]]}"#,
        )
        .unwrap();
        let spec = JobSpec::from_object(&obj).unwrap();
        let canonical = spec.canonical();
        let reparsed = JobSpec::from_object(&parse_object(canonical.as_bytes()).unwrap()).unwrap();
        assert_eq!(spec, reparsed);
        assert_eq!(canonical, reparsed.canonical());
    }

    #[test]
    fn defaults_and_errors() {
        let obj = parse_object(br#"{"kind": "resilience"}"#).unwrap();
        let spec = JobSpec::from_object(&obj).unwrap();
        assert_eq!(spec.base_seed, 7);
        assert_eq!(spec.reps, 1);
        assert_eq!(spec.kind, JobKind::Resilience { defense: DefensePolicy::Degrade });

        let bad = parse_object(br#"{"kind": "nope"}"#).unwrap();
        assert!(JobSpec::from_object(&bad).is_err());
        let bad = parse_object(br#"{"kind": "attack", "strategy": "x", "attack": "acceleration"}"#)
            .unwrap();
        assert!(JobSpec::from_object(&bad).is_err());
    }

    #[test]
    fn attack_plan_matches_platform_planner() {
        let obj = parse_object(
            br#"{"kind": "attack", "strategy": "context_aware",
                "attack": "steering_right", "base_seed": 5, "reps": 1}"#,
        )
        .unwrap();
        let spec = JobSpec::from_object(&obj).unwrap();
        let plan = spec.plan();
        let cfg = CampaignConfig {
            base_seed: 5,
            ..CampaignConfig::smoke(StrategyKind::ContextAware, 1)
        };
        let reference = plan_attack_campaign(&cfg, AttackType::SteeringRight);
        assert_eq!(plan.len(), reference.len());
        for (cell, want) in plan.iter().zip(&reference) {
            match cell {
                CellSpec::Attack(got) => assert_eq!(got.seed, want.seed),
                CellSpec::Resilience(_) => panic!("attack plan produced resilience cell"),
            }
        }
    }

    #[test]
    fn resilience_report_is_the_bench_shape() {
        let obj = parse_object(br#"{"kind": "resilience", "reps": 1}"#).unwrap();
        let spec = JobSpec::from_object(&obj).unwrap();
        let results: Vec<SimResult> = spec.plan().iter().take(0).map(CellSpec::run).collect();
        let report = spec.report(&results);
        assert!(report.contains("\"bench\": \"resilience\""));
        assert!(report.ends_with("}\n"));
    }

    #[test]
    fn chaos_knob_lookup() {
        let knobs = ChaosKnobs {
            panic_cells: vec![(3, 2)],
            delay_cells: vec![(0, 100)],
        };
        assert_eq!(knobs.panics_for(3), 2);
        assert_eq!(knobs.panics_for(4), 0);
        assert_eq!(knobs.delay_for(0), 100);
        assert_eq!(knobs.delay_for(3), 0);
    }
}
