//! The chaos gauntlet: one campaign submitted to a daemon that is then
//! abused — injected worker panics, a stream client that vanishes
//! mid-read, and a SIGKILL mid-campaign followed by a `--resume` restart.
//! The final report must be byte-identical to an undisturbed in-process
//! run of the same campaign, with every cell present exactly once in the
//! write-ahead checkpoint.

mod common;

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use campaignd::checkpoint::load_wal;
use common::{http, job_id, temp_state, wait_for_status, Daemon};
use platform::experiment::RunnerConfig;
use platform::resilience::{run_resilience_campaign_with, ResilienceConfig};

#[test]
fn kill_resume_and_misbehaving_clients_leave_the_report_byte_identical() {
    let state = temp_state("chaos");

    // Undisturbed truth, computed in-process from the canonical campaign
    // identity shared with the `resilience` bench (seed 7, Degrade),
    // pinned to one rep for test speed.
    let cfg = ResilienceConfig {
        reps: 1,
        ..bench::canonical_resilience_config()
    };
    let expected = run_resilience_campaign_with(RunnerConfig::default(), &cfg).to_json();

    let mut daemon = Daemon::launch(&state, &["--backoff-ms", "1"]);

    // Chaos knob 1: cells 2 and 9 panic on their first attempt, cell 40
    // dawdles — the retry ladder must heal all of it invisibly.
    let spec = "{\"kind\": \"resilience\", \"base_seed\": 7, \"reps\": 1, \
\"panic_cells\": [[2, 1], [9, 1]], \"delay_cells\": [[40, 30]]}";
    let (status, body) = http(&daemon.addr, "POST", "/jobs", Some(spec));
    assert_eq!(status, 202, "{body}");
    let id = job_id(&body);

    // Chaos knob 2: a streaming client that reads a couple of events and
    // disappears without so much as a FIN wave.
    let mut stream = TcpStream::connect(&daemon.addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
        .write_all(format!("GET /jobs/{id}/stream HTTP/1.1\r\n\r\n").as_bytes())
        .unwrap();
    let mut lines = BufReader::new(stream).lines();
    let mut events_seen = 0;
    for line in lines.by_ref() {
        let line = line.unwrap();
        if line.starts_with('{') {
            events_seen += 1;
            if events_seen >= 2 {
                break;
            }
        }
    }
    assert!(events_seen >= 2, "stream produced events before the rugpull");
    drop(lines);

    // Chaos knob 3: SIGKILL once real progress is checkpointed.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, body) = http(&daemon.addr, "GET", &format!("/jobs/{id}"), None);
        assert_eq!(status, 200, "{body}");
        let done: u64 = body
            .split("\"cells_done\": ")
            .nth(1)
            .and_then(|t| t.split(|c: char| !c.is_ascii_digit()).next())
            .and_then(|d| d.parse().ok())
            .unwrap_or(0);
        if done >= 8 {
            break;
        }
        if body.contains("\"status\": \"completed\"") {
            break; // too fast to catch mid-flight; resume still exercises the WAL path
        }
        assert!(Instant::now() < deadline, "no progress before kill: {body}");
        std::thread::sleep(Duration::from_millis(20));
    }
    daemon.kill();

    // Restart over the same state directory: the manifest replays the
    // unfinished job, the WAL supplies the finished cells, and only the
    // missing ones recompute.
    let mut revived = Daemon::launch(&state, &["--resume", "--backoff-ms", "1"]);
    wait_for_status(&revived.addr, &id, "completed", Duration::from_secs(180));
    let (status, report) = http(&revived.addr, "GET", &format!("/jobs/{id}/report"), None);
    assert_eq!(status, 200);
    assert_eq!(
        report, expected,
        "panics + client loss + kill + resume must be invisible in the report"
    );

    // Zero lost, zero duplicated: the WAL resolves to exactly one result
    // per cell index.
    let wal = load_wal(&state.join(format!("{id}.wal")), &id).unwrap();
    assert_eq!(wal.len(), 216, "every cell checkpointed exactly once");
    assert_eq!(*wal.keys().next().unwrap(), 0);
    assert_eq!(*wal.keys().last().unwrap(), 215);

    // The report survives a second restart without any recompute: it is
    // rebuilt from the WAL at bind time.
    revived.shutdown();
    let mut archived = Daemon::launch(&state, &["--resume"]);
    let (status, report2) = http(&archived.addr, "GET", &format!("/jobs/{id}/report"), None);
    assert_eq!(status, 200);
    assert_eq!(report2, expected, "reports are durable across restarts");
    archived.shutdown();
    let _ = std::fs::remove_dir_all(&state);
}
