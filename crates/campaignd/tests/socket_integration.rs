//! Real-socket integration tests: the spawned `campaignd` binary serving
//! HTTP over an ephemeral port — health, stats, submission, report
//! identity against an in-process run, backpressure, and graceful drain.

mod common;

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use common::{http, job_id, read_response, temp_state, wait_for_status, Daemon};
use platform::experiment::RunnerConfig;
use platform::resilience::{run_resilience_campaign_with, ResilienceConfig};

#[test]
fn health_errors_and_pipelining() {
    let state = temp_state("health");
    let mut daemon = Daemon::launch(&state, &[]);

    let (status, body) = http(&daemon.addr, "GET", "/healthz", None);
    assert_eq!(status, 200);
    assert!(body.contains("\"ok\": true"), "{body}");

    let (status, body) = http(&daemon.addr, "GET", "/stats", None);
    assert_eq!(status, 200);
    for key in ["queue_depth", "queue_cap", "shed", "cells_done", "jobs"] {
        assert!(body.contains(key), "missing {key} in {body}");
    }

    assert_eq!(http(&daemon.addr, "GET", "/nope", None).0, 404);
    assert_eq!(http(&daemon.addr, "GET", "/jobs/job-9999-ffffffff", None).0, 404);
    assert_eq!(http(&daemon.addr, "DELETE", "/healthz", None).0, 405);
    let (status, body) = http(&daemon.addr, "POST", "/jobs", Some("{\"kind\": \"nope\"}"));
    assert_eq!(status, 400);
    assert!(body.contains("error"), "{body}");
    // Malformed framing is rejected with a typed error, not a hang.
    let (status, _) = http(&daemon.addr, "G@T", "/healthz", None);
    assert_eq!(status, 400);

    // Two pipelined requests on one connection get two responses.
    let mut stream = TcpStream::connect(&daemon.addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\n\r\nGET /stats HTTP/1.1\r\n\r\n")
        .unwrap();
    let mut carry = Vec::new();
    let (first, _) = read_response(&mut stream, &mut carry);
    let (second, body) = read_response(&mut stream, &mut carry);
    assert_eq!((first, second), (200, 200));
    assert!(body.contains("queue_depth"), "{body}");

    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&state);
}

#[test]
fn submitted_job_reproduces_the_in_process_report() {
    let state = temp_state("report");
    let mut daemon = Daemon::launch(&state, &[]);

    let (status, body) = http(
        &daemon.addr,
        "POST",
        "/jobs",
        Some("{\"kind\": \"resilience\", \"base_seed\": 7, \"reps\": 1}"),
    );
    assert_eq!(status, 202, "{body}");
    assert!(body.contains("\"cells_total\": 216"), "{body}");
    let id = job_id(&body);

    // Before completion the report endpoint says "not yet", typed.
    let (status, _) = http(&daemon.addr, "GET", &format!("/jobs/{id}/report"), None);
    assert_eq!(status, 409);

    // The NDJSON stream emits parseable event lines while the job runs.
    let mut stream = TcpStream::connect(&daemon.addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
        .write_all(format!("GET /jobs/{id}/stream HTTP/1.1\r\n\r\n").as_bytes())
        .unwrap();
    let mut lines = BufReader::new(stream).lines();
    let mut head = String::new();
    for line in lines.by_ref() {
        let line = line.unwrap();
        if line.is_empty() {
            break; // end of the response head
        }
        head.push_str(&line);
    }
    assert!(head.contains("application/x-ndjson"), "{head}");
    let first_event = lines.next().unwrap().unwrap();
    assert!(
        first_event.starts_with("{\"event\": \"job\""),
        "{first_event}"
    );
    drop(lines); // a vanishing stream client must not disturb the job

    wait_for_status(&daemon.addr, &id, "completed", Duration::from_secs(180));
    let (status, report) = http(&daemon.addr, "GET", &format!("/jobs/{id}/report"), None);
    assert_eq!(status, 200);

    // The canonical campaign identity (seed 7, Degrade defense) shared
    // with the `resilience` bench target, pinned to one rep for test
    // speed — exactly what the submitted job asked for.
    let cfg = ResilienceConfig {
        reps: 1,
        ..bench::canonical_resilience_config()
    };
    let expected = run_resilience_campaign_with(RunnerConfig::default(), &cfg).to_json();
    assert_eq!(
        report, expected,
        "daemon report must be byte-identical to the in-process campaign"
    );

    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&state);
}

#[test]
fn overload_sheds_with_429_and_drain_is_graceful() {
    let state = temp_state("overload");
    let mut daemon = Daemon::launch(&state, &["--queue-cap", "1", "--workers", "1"]);

    // Job A: cell 0 sleeps long enough to pin the single worker.
    let slow = "{\"kind\": \"resilience\", \"base_seed\": 7, \"reps\": 1, \
\"delay_cells\": [[0, 1500], [1, 1500]]}";
    let (status, body) = http(&daemon.addr, "POST", "/jobs", Some(slow));
    assert_eq!(status, 202, "{body}");
    let id_a = job_id(&body);
    wait_for_status(&daemon.addr, &id_a, "running", Duration::from_secs(10));

    // Job B fills the queue (cap 1); job C is shed with backpressure.
    let (status, body) = http(&daemon.addr, "POST", "/jobs", Some(slow));
    assert_eq!(status, 202, "{body}");
    let mut stream = TcpStream::connect(&daemon.addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let payload = slow;
    stream
        .write_all(
            format!(
                "POST /jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n{payload}",
                payload.len()
            )
            .as_bytes(),
        )
        .unwrap();
    let mut raw = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        use std::io::Read;
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                raw.extend_from_slice(&chunk[..n]);
                if raw.windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let text = String::from_utf8_lossy(&raw);
    assert!(text.starts_with("HTTP/1.1 429"), "{text}");
    assert!(text.contains("Retry-After: 1"), "{text}");

    let (_, stats) = http(&daemon.addr, "GET", "/stats", None);
    assert!(stats.contains("\"shed\": 1"), "{stats}");
    assert!(stats.contains("\"queue_depth\": 1"), "{stats}");

    // Drain: the running job is interrupted at a chunk boundary (its WAL
    // keeps the finished cells), the queued job is left for resume, and
    // the process exits cleanly.
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&state);
}
