//! Shared harness for the campaignd socket tests: spawns the real binary,
//! parses its `campaignd listening on <addr>` line, and speaks just
//! enough HTTP/1.1 as a client to exercise the API.

// Each integration test binary compiles its own copy of this module and
// uses a different subset of it.
#![allow(dead_code)]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// A spawned daemon process bound to an ephemeral port.
pub struct Daemon {
    child: Child,
    /// `host:port` the daemon is listening on.
    pub addr: String,
    /// Its durable state directory (kept across restarts for resume).
    pub state_dir: PathBuf,
}

impl Daemon {
    /// Spawns `campaignd --state-dir <dir> --addr 127.0.0.1:0 <extra>` and
    /// waits for the listening line.
    pub fn launch(state_dir: &std::path::Path, extra: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_campaignd"))
            .arg("--state-dir")
            .arg(state_dir)
            .arg("--addr")
            .arg("127.0.0.1:0")
            .args(extra)
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn campaignd");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = BufReader::new(stdout).lines();
        let banner = lines
            .next()
            .expect("daemon printed a line")
            .expect("readable stdout");
        let addr = banner
            .strip_prefix("campaignd listening on ")
            .unwrap_or_else(|| panic!("unexpected banner: {banner}"))
            .to_string();
        Daemon {
            child,
            addr,
            state_dir: state_dir.to_path_buf(),
        }
    }

    /// SIGKILLs the daemon (the chaos tests' mid-campaign crash).
    pub fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// Requests a drain via `POST /shutdown` and waits (bounded) for a
    /// clean exit.
    pub fn shutdown(&mut self) {
        let _ = http(&self.addr, "POST", "/shutdown", None);
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            match self.child.try_wait().expect("try_wait") {
                Some(status) => {
                    assert!(status.success(), "daemon exited with {status}");
                    return;
                }
                None if Instant::now() >= deadline => {
                    self.kill();
                    panic!("daemon did not drain within the deadline");
                }
                None => std::thread::sleep(Duration::from_millis(50)),
            }
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Fresh per-test state directory under the system temp dir.
pub fn temp_state(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("campaignd-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One HTTP exchange on a fresh connection; returns `(status, body)`.
/// Parses `Content-Length` framing (all non-stream daemon responses).
pub fn http(addr: &str, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let payload = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: campaignd\r\nContent-Length: {}\r\n\r\n{payload}",
        payload.len()
    );
    stream.write_all(request.as_bytes()).expect("write request");
    read_response(&mut stream, &mut Vec::new())
}

/// Reads one `Content-Length`-framed response.
///
/// `carry` holds bytes read past the end of this response (the next
/// pipelined response); pass the same buffer to the next call.
pub fn read_response(stream: &mut TcpStream, carry: &mut Vec<u8>) -> (u16, String) {
    let mut buf = std::mem::take(carry);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(i) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break i + 4;
        }
        let n = stream.read(&mut chunk).expect("read response head");
        assert!(n > 0, "connection closed before response head completed");
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable status line: {head}"));
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            let (name, value) = l.split_once(':')?;
            name.eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse().ok())?
        })
        .expect("daemon responses carry Content-Length");
    while buf.len() < head_end + content_length {
        let n = stream.read(&mut chunk).expect("read response body");
        assert!(n > 0, "connection closed mid-body");
        buf.extend_from_slice(&chunk[..n]);
    }
    let body = String::from_utf8_lossy(&buf[head_end..head_end + content_length]).to_string();
    *carry = buf.split_off(head_end + content_length);
    (status, body)
}

/// Extracts the `"id"` value from a `POST /jobs` 202 body.
pub fn job_id(body: &str) -> String {
    let tail = body
        .split("\"id\": \"")
        .nth(1)
        .unwrap_or_else(|| panic!("no id in {body}"));
    tail.split('"').next().unwrap().to_string()
}

/// Polls `GET /jobs/<id>` until its status string matches, panicking
/// after `timeout`.
pub fn wait_for_status(addr: &str, id: &str, wanted: &str, timeout: Duration) -> String {
    let deadline = Instant::now() + timeout;
    loop {
        let (status, body) = http(addr, "GET", &format!("/jobs/{id}"), None);
        assert_eq!(status, 200, "{body}");
        if body.contains(&format!("\"status\": \"{wanted}\"")) {
            return body;
        }
        assert!(
            Instant::now() < deadline,
            "job {id} never reached {wanted}; last: {body}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
}
