//! Golden fixtures and a deterministic fuzz smoke test for the
//! incremental HTTP/1.1 request parser.
//!
//! Same philosophy as `crates/lint/tests/fuzz_smoke.rs`: no external
//! fuzzer, just a fixed-seed splitmix64 stream driving byte-level
//! mutations (splice, truncate, duplicate, crossover) over a corpus of
//! realistic requests. Every mutant must classify without panicking, with
//! a bit-identical classification on a second pass, and with a `consumed`
//! count that never exceeds the buffer — the invariants the connection
//! loop's `drain(..used)` depends on.

use campaignd::http::{parse_request, Parse, MAX_BODY_BYTES, MAX_HEADER_BYTES};

// ---------------------------------------------------------------- golden

#[test]
fn golden_malformed_headers_are_rejected_not_parsed() {
    // Missing HTTP version token.
    assert!(matches!(
        parse_request(b"GET /healthz\r\n\r\n"),
        Parse::Reject(400, _)
    ));
    // Garbage method byte.
    assert!(matches!(
        parse_request(b"G@T / HTTP/1.1\r\n\r\n"),
        Parse::Reject(400, _)
    ));
    // Unsupported protocol version.
    assert!(matches!(
        parse_request(b"GET / HTTP/2.0\r\n\r\n"),
        Parse::Reject(505, _)
    ));
    // Conflicting duplicate Content-Length values.
    assert!(matches!(
        parse_request(b"POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\nab"),
        Parse::Reject(400, _)
    ));
    // Transfer-Encoding is declared unimplemented, never mis-framed.
    assert!(matches!(
        parse_request(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
        Parse::Reject(501, _)
    ));
    // Non-numeric Content-Length.
    assert!(matches!(
        parse_request(b"POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n"),
        Parse::Reject(400, _)
    ));
}

#[test]
fn golden_oversized_inputs_are_bounded() {
    // A header block that never terminates is rejected at the cap, not
    // buffered forever (the Slowloris memory bound).
    let mut endless = b"GET / HTTP/1.1\r\n".to_vec();
    while endless.len() <= MAX_HEADER_BYTES {
        endless.extend_from_slice(b"X-Padding: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n");
    }
    assert!(matches!(parse_request(&endless), Parse::Reject(431, _)));

    // A declared body over the cap is rejected from the header alone,
    // before any body bytes arrive.
    let big = format!(
        "POST /jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
        MAX_BODY_BYTES + 1
    );
    assert!(matches!(parse_request(big.as_bytes()), Parse::Reject(413, _)));

    // At the cap exactly it is allowed — the limit is a limit, not an
    // off-by-one.
    let at_cap = format!(
        "POST /jobs HTTP/1.1\r\nContent-Length: {MAX_BODY_BYTES}\r\n\r\n"
    );
    assert!(matches!(parse_request(at_cap.as_bytes()), Parse::NeedMore));
}

#[test]
fn golden_pipelined_requests_consume_exact_boundaries() {
    let wire = b"GET /healthz HTTP/1.1\r\n\r\nPOST /jobs HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}GET /stats HTTP/1.1\r\n\r\n";
    let mut buf = wire.to_vec();
    let mut seen = Vec::new();
    while let Parse::Complete(req, used) = parse_request(&buf) {
        assert!(used <= buf.len(), "consumed beyond the buffer");
        seen.push((req.method.clone(), req.target.clone(), req.body.len()));
        buf.drain(..used);
    }
    assert_eq!(
        seen,
        vec![
            ("GET".to_string(), "/healthz".to_string(), 0),
            ("POST".to_string(), "/jobs".to_string(), 2),
            ("GET".to_string(), "/stats".to_string(), 0),
        ]
    );
    assert!(buf.is_empty(), "nothing left after the pipeline drains");
}

#[test]
fn golden_partial_requests_wait_for_more() {
    let full = b"POST /jobs HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody";
    for cut in 0..full.len() {
        assert!(
            matches!(parse_request(&full[..cut]), Parse::NeedMore),
            "prefix of {cut} bytes must wait, not misparse"
        );
    }
    match parse_request(full) {
        Parse::Complete(req, used) => {
            assert_eq!(used, full.len());
            assert_eq!(req.body, b"body");
        }
        other => panic!("full request must complete, got {other:?}"),
    }
}

// ------------------------------------------------------------ fuzz smoke

/// splitmix64, restated locally (same generator as `units::mix`).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Seed corpus: the request shapes the daemon actually serves.
const CORPUS: [&[u8]; 6] = [
    b"GET /healthz HTTP/1.1\r\nHost: localhost\r\n\r\n",
    b"GET /stats HTTP/1.0\r\n\r\n",
    b"POST /jobs HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: 31\r\n\r\n{\"kind\": \"resilience\", \"reps\": 1}",
    b"GET /jobs/job-0001-abcdef01/report HTTP/1.1\r\nConnection: keep-alive\r\n\r\n",
    b"POST /shutdown HTTP/1.1\r\nContent-Length: 0\r\n\r\n",
    b"GET /jobs/x/stream HTTP/1.1\r\nAccept: application/x-ndjson\r\n\r\nGET /stats HTTP/1.1\r\n\r\n",
];

/// Bytes that stress the framing state machine when spliced in.
const SPICE: &[u8] = b"\r\n\t :/0123456789GETPOST.length\x00\x7f\xff";

fn mutate(rng: &mut Rng) -> Vec<u8> {
    let mut bytes = CORPUS[rng.below(CORPUS.len())].to_vec();
    for _ in 0..=rng.below(4) {
        match rng.below(4) {
            0 => {
                let at = rng.below(bytes.len() + 1);
                let n = 1 + rng.below(8);
                let run: Vec<u8> = (0..n).map(|_| SPICE[rng.below(SPICE.len())]).collect();
                bytes.splice(at..at, run);
            }
            1 => {
                let at = rng.below(bytes.len() + 1);
                bytes.truncate(at);
            }
            2 => {
                if !bytes.is_empty() {
                    let a = rng.below(bytes.len());
                    let b = a + rng.below(bytes.len() - a);
                    let slice = bytes[a..b].to_vec();
                    let at = rng.below(bytes.len() + 1);
                    bytes.splice(at..at, slice);
                }
            }
            _ => {
                let other = CORPUS[rng.below(CORPUS.len())];
                let cut_a = rng.below(bytes.len() + 1);
                let cut_b = rng.below(other.len() + 1);
                bytes.truncate(cut_a);
                bytes.extend_from_slice(&other[cut_b..]);
            }
        }
    }
    bytes
}

/// Flattens a parse outcome to a comparable classification.
fn classify(buf: &[u8]) -> String {
    match parse_request(buf) {
        Parse::NeedMore => "need-more".to_string(),
        Parse::Reject(status, reason) => format!("reject {status} {reason}"),
        Parse::Complete(req, used) => {
            assert!(used <= buf.len(), "consumed {used} of a {}-byte buffer", buf.len());
            format!(
                "complete {} {} headers={} body={} used={used}",
                req.method,
                req.target,
                req.headers.len(),
                req.body.len()
            )
        }
    }
}

#[test]
fn fuzz_smoke_mutants_never_panic_and_classify_deterministically() {
    let mut rng = Rng(0x5EED_CAFE_D00D_0001);
    for round in 0..600 {
        let mutant = mutate(&mut rng);
        let first = classify(&mutant);
        let second = classify(&mutant);
        assert_eq!(first, second, "round {round}: classification must be pure");

        // Incremental invariant: feeding any prefix never does worse than
        // wait or reach the same terminal classification early.
        if first.starts_with("complete") {
            let cut = mutant.len() / 2;
            match parse_request(&mutant[..cut]) {
                Parse::Complete(_, used) => assert!(used <= cut),
                Parse::NeedMore | Parse::Reject(..) => {}
            }
        }
    }
}
