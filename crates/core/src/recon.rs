//! Offline reconnaissance: the attacker's preparation step.
//!
//! The paper's attacker "can gather information about the system
//! configuration by monitoring and decoding the communication traffic"
//! (§III-B) and designs the attack "based on offline code/data analysis to
//! infer the safety constraints and parameters described in Equations
//! (1)–(3)". This module implements both halves against captured traffic:
//!
//! * [`analyze_can`] — CAN reverse-engineering in the style of READ /
//!   LibreCAN: per-id rates, bit-level activity, rolling-counter detection,
//!   Honda-checksum detection and contiguous-signal-field inference, from a
//!   raw [`canbus::Capture`].
//! * [`SafetyEnvelopeEstimate`] — recovers the ADAS output limits
//!   (`limit_accel`, `limit_brake`, `limit_steer`) from an observed
//!   `carControl` history, which is exactly what the strategic value
//!   corruption needs as its constraint set.

use std::collections::BTreeMap;

use canbus::checksum::verify_honda_checksum;
use canbus::CanFrame;
use msgbus::schema::CarControl;
use serde::{Deserialize, Serialize};
use units::{Accel, Angle, Tick};

/// A contiguous big-endian bit field inferred from traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InferredField {
    /// Index of the first (most significant) active byte.
    pub start_byte: usize,
    /// Number of bytes the field spans.
    pub byte_len: usize,
}

/// Everything learned about one CAN id.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MessageProfile {
    /// The frame identifier.
    pub id: u16,
    /// Frames observed.
    pub count: usize,
    /// Mean inter-arrival time in ticks.
    pub period_ticks: f64,
    /// Payload length.
    pub dlc: u8,
    /// Per-bit toggle counts (frame-bit addressing, byte 0 bit 7 = index 7).
    pub bit_toggles: Vec<u32>,
    /// Whether the low nibble of the last byte verifies as a Honda checksum
    /// on every observed frame.
    pub honda_checksum: bool,
    /// Whether bits 5–4 of the last byte behave as a mod-4 rolling counter.
    pub rolling_counter: bool,
    /// Contiguous multi-bit data fields (excluding counter/checksum bytes).
    pub fields: Vec<InferredField>,
}

impl MessageProfile {
    /// Heuristic: command messages are periodic, checksummed and counted.
    pub fn looks_like_actuator_command(&self) -> bool {
        self.honda_checksum && self.rolling_counter && self.count >= 10
    }
}

/// Analyzes captured CAN records into per-id profiles.
pub fn analyze_can(records: &[(Tick, CanFrame)]) -> BTreeMap<u16, MessageProfile> {
    let mut grouped: BTreeMap<u16, Vec<(Tick, CanFrame)>> = BTreeMap::new();
    for (t, f) in records {
        grouped.entry(f.id()).or_default().push((*t, *f));
    }
    grouped
        .into_iter()
        .map(|(id, frames)| (id, profile_one(id, &frames)))
        .collect()
}

fn profile_one(id: u16, frames: &[(Tick, CanFrame)]) -> MessageProfile {
    let dlc = frames.first().map_or(0, |(_, f)| f.dlc());
    let nbits = dlc as usize * 8;

    // Inter-arrival statistics.
    let mut deltas = Vec::new();
    for pair in frames.windows(2) {
        deltas.push(pair[1].0 - pair[0].0);
    }
    let period_ticks = if deltas.is_empty() {
        0.0
    } else {
        deltas.iter().sum::<u64>() as f64 / deltas.len() as f64
    };

    // Bit toggle counts.
    let mut bit_toggles = vec![0u32; nbits];
    for pair in frames.windows(2) {
        let a = pair[0].1;
        let b = pair[1].1;
        for (i, toggles) in bit_toggles.iter_mut().enumerate() {
            let byte = i / 8;
            let bit = 7 - (i % 8);
            let xa = (a.data().get(byte).copied().unwrap_or(0) >> bit) & 1;
            let xb = (b.data().get(byte).copied().unwrap_or(0) >> bit) & 1;
            if xa != xb {
                *toggles += 1;
            }
        }
    }

    // Checksum hypothesis: every frame verifies under the Honda rule.
    let honda_checksum = !frames.is_empty()
        && frames
            .iter()
            .all(|(_, f)| verify_honda_checksum(id, f.data()));

    // Counter hypothesis: bits 5-4 of the last byte increment mod 4.
    let rolling_counter = dlc > 0 && {
        let mut ok = 0usize;
        let mut total = 0usize;
        for pair in frames.windows(2) {
            let c0 = (pair[0].1.data()[dlc as usize - 1] >> 4) & 0x3;
            let c1 = (pair[1].1.data()[dlc as usize - 1] >> 4) & 0x3;
            total += 1;
            if c1 == (c0 + 1) & 0x3 {
                ok += 1;
            }
        }
        total > 0 && ok as f64 / total as f64 > 0.95
    };

    // Field inference: contiguous runs of bytes containing toggling bits,
    // excluding the tail byte when it hosts counter/checksum.
    let data_bytes = if honda_checksum || rolling_counter {
        dlc as usize - 1
    } else {
        dlc as usize
    };
    let mut fields = Vec::new();
    let mut run_start: Option<usize> = None;
    for byte in 0..data_bytes {
        let active = (0..8).any(|b| bit_toggles[byte * 8 + b] > 0);
        match (active, run_start) {
            (true, None) => run_start = Some(byte),
            (false, Some(s)) => {
                fields.push(InferredField {
                    start_byte: s,
                    byte_len: byte - s,
                });
                run_start = None;
            }
            _ => {}
        }
    }
    if let Some(s) = run_start {
        fields.push(InferredField {
            start_byte: s,
            byte_len: data_bytes - s,
        });
    }

    MessageProfile {
        id,
        count: frames.len(),
        period_ticks,
        dlc,
        bit_toggles,
        honda_checksum,
        rolling_counter,
        fields,
    }
}

/// The safety envelope recovered from observed `carControl` traffic — the
/// constraint set of Eq. 1. A strategic attacker chooses values inside these
/// bounds so the ADAS software checks (and the driver's sense of "normal")
/// are never violated.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SafetyEnvelopeEstimate {
    /// Largest commanded acceleration seen.
    pub accel_max: Accel,
    /// Strongest commanded braking seen.
    pub brake_min: Accel,
    /// Largest commanded steering magnitude seen.
    pub steer_max: Angle,
    /// Samples the estimate is based on.
    pub samples: usize,
}

impl SafetyEnvelopeEstimate {
    /// Builds the estimate from an eavesdropped command history.
    pub fn from_controls<'a>(controls: impl IntoIterator<Item = &'a CarControl>) -> Self {
        let mut est = Self {
            accel_max: Accel::ZERO,
            brake_min: Accel::ZERO,
            steer_max: Angle::ZERO,
            samples: 0,
        };
        for c in controls {
            est.accel_max = est.accel_max.max(c.accel);
            est.brake_min = est.brake_min.min(c.accel);
            est.steer_max = est.steer_max.max(c.steer.abs());
            est.samples += 1;
        }
        est
    }

    /// Whether a candidate injection value would sit inside the observed
    /// envelope (and hence pass any check calibrated to it).
    pub fn accel_in_envelope(&self, a: Accel) -> bool {
        a <= self.accel_max && a >= self.brake_min
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canbus::{Encoder, VirtualCarDbc};

    fn command_traffic(n: u64) -> Vec<(Tick, CanFrame)> {
        let dbc = VirtualCarDbc::new();
        let mut enc = Encoder::new();
        let mut records = Vec::new();
        for i in 0..n {
            let angle = 0.2 * ((i as f64) * 0.05).sin();
            let f = enc
                .encode(
                    dbc.steering_control(),
                    &[("STEER_ANGLE_CMD", angle), ("STEER_REQ", 1.0)],
                )
                .unwrap();
            records.push((Tick::new(i), f));
        }
        records
    }

    #[test]
    fn recognises_the_steering_command_message() {
        let records = command_traffic(200);
        let profiles = analyze_can(&records);
        let p = &profiles[&0xE4];
        assert_eq!(p.count, 200);
        assert!((p.period_ticks - 1.0).abs() < 1e-9, "100 Hz message");
        assert!(p.honda_checksum, "checksum hypothesis confirmed");
        assert!(p.rolling_counter, "counter hypothesis confirmed");
        assert!(p.looks_like_actuator_command());
        // The angle field occupies the leading bytes.
        assert!(!p.fields.is_empty());
        assert_eq!(p.fields[0].start_byte, 0);
    }

    #[test]
    fn static_messages_have_no_fields() {
        // A message whose payload never changes has nothing to attack.
        let frames: Vec<(Tick, CanFrame)> = (0..50)
            .map(|i| (Tick::new(i), CanFrame::new(0x123, &[7, 7, 7, 7]).unwrap()))
            .collect();
        let profiles = analyze_can(&frames);
        let p = &profiles[&0x123];
        assert!(p.fields.is_empty());
        assert!(!p.honda_checksum || p.count == 0 || !p.rolling_counter);
        assert!(!p.looks_like_actuator_command());
    }

    #[test]
    fn mixed_traffic_is_separated_by_id() {
        let mut records = command_traffic(100);
        for i in 0..60u64 {
            records.push((
                Tick::new(i * 2),
                CanFrame::new(0x1D0, &[i as u8, 0, 0, 0, 0, 0, 0, 0]).unwrap(),
            ));
        }
        let profiles = analyze_can(&records);
        assert_eq!(profiles.len(), 2);
        assert_eq!(profiles[&0xE4].count, 100);
        assert_eq!(profiles[&0x1D0].count, 60);
        assert!((profiles[&0x1D0].period_ticks - 2.0).abs() < 1e-9);
    }

    #[test]
    fn envelope_estimate_brackets_the_commands() {
        use units::Accel;
        let history: Vec<CarControl> = (0..100)
            .map(|i| CarControl {
                accel: Accel::from_mps2(-3.5 + 0.055 * i as f64),
                steer: Angle::from_degrees(0.4 * ((i as f64) * 0.3).sin()),
            })
            .collect();
        let est = SafetyEnvelopeEstimate::from_controls(&history);
        assert_eq!(est.samples, 100);
        assert!((est.brake_min.mps2() + 3.5).abs() < 1e-9);
        assert!(est.accel_max.mps2() > 1.9);
        assert!(est.steer_max.degrees() <= 0.4 + 1e-9);
        assert!(est.accel_in_envelope(Accel::from_mps2(1.0)));
        assert!(!est.accel_in_envelope(Accel::from_mps2(-4.0)));
    }

    #[test]
    fn empty_history_is_harmless() {
        let est = SafetyEnvelopeEstimate::from_controls(&[]);
        assert_eq!(est.samples, 0);
        let profiles = analyze_can(&[]);
        assert!(profiles.is_empty());
    }
}
