//! Safety context inference: turning eavesdropped messages into the
//! human-interpretable state variables of the safety specification.

use serde::{Deserialize, Serialize};
use units::{Distance, Seconds, Speed, Tick};

use crate::eavesdrop::Eavesdropper;

/// Half the car's width. The attacker knows the target platform; 1.82 m is
/// the width of the simulated sedan.
const HALF_WIDTH: Distance = Distance::meters(0.91);

/// The inferred system context at one instant — the variables of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ContextState {
    /// Ego speed (from GPS).
    pub v_ego: Speed,
    /// Cruise set-speed (from `carState`).
    pub v_cruise: Speed,
    /// Whether a lead vehicle is currently tracked by the radar.
    pub lead_present: bool,
    /// Headway time `HWT = relative distance / current speed`.
    pub hwt: Option<Seconds>,
    /// Relative speed `RS = v_ego − v_lead` (positive = closing).
    pub rs: Option<Speed>,
    /// Distance from the car's left side to the left lane line.
    pub d_left: Distance,
    /// Distance from the car's right side to the right lane line.
    pub d_right: Distance,
}

/// Maintains a [`ContextState`] from live bus traffic.
#[derive(Debug)]
pub struct ContextInference {
    taps: Eavesdropper,
    state: ContextState,
    /// Ticks since the last radar message carrying a lead.
    lead_age: u32,
}

/// A lead older than this (0.3 s) is considered lost.
const LEAD_STALE_TICKS: u32 = 30;

impl ContextInference {
    /// Creates an inference engine over an existing set of taps.
    pub fn new(taps: Eavesdropper) -> Self {
        Self {
            taps,
            state: ContextState {
                d_left: Distance::meters(0.94),
                d_right: Distance::meters(0.94),
                ..ContextState::default()
            },
            lead_age: LEAD_STALE_TICKS,
        }
    }

    /// The current inferred context.
    pub fn state(&self) -> ContextState {
        self.state
    }

    /// Drains fresh messages and refreshes the context. Call once per tick.
    pub fn update(&mut self, _tick: Tick) -> ContextState {
        let obs = self.taps.drain();
        self.absorb(&obs)
    }

    /// Folds one tick's observations into the context — the bus-free core
    /// of [`update`](Self::update). A batched lane that synthesizes its
    /// [`Observations`](crate::Observations) directly (no pub/sub hop)
    /// calls this instead; the math is the shared code path, so the two
    /// entry points cannot drift apart.
    pub fn absorb(&mut self, obs: &crate::Observations) -> ContextState {
        if let Some(gps) = obs.gps {
            self.state.v_ego = gps.speed;
        }
        if let Some(car) = obs.car_state {
            self.state.v_cruise = car.v_cruise;
        }
        if let Some(model) = obs.lane {
            self.state.d_left = model.left_line - HALF_WIDTH;
            self.state.d_right = model.right_line - HALF_WIDTH;
        }
        match obs.radar {
            Some(radar) => match radar.lead {
                Some(lead) => {
                    self.lead_age = 0;
                    self.state.lead_present = true;
                    self.state.rs = Some(self.state.v_ego - lead.v_lead);
                    self.state.hwt = (self.state.v_ego.mps() > 0.5)
                        .then(|| lead.d_rel / self.state.v_ego);
                }
                None => {
                    self.lead_age = self.lead_age.saturating_add(1);
                }
            },
            None => {
                self.lead_age = self.lead_age.saturating_add(1);
            }
        }
        if self.lead_age >= LEAD_STALE_TICKS {
            self.state.lead_present = false;
            self.state.rs = None;
            self.state.hwt = None;
        }
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msgbus::schema::{CarState, GpsLocation, LaneModel, LeadTrack, RadarState};
    use msgbus::{Bus, Payload};
    use units::{Accel, Angle};

    fn setup() -> (Bus, ContextInference) {
        let bus = Bus::new();
        let taps = Eavesdropper::new(&bus);
        (bus, ContextInference::new(taps))
    }

    fn publish_full(bus: &Bus, v_ego: f64, gap: f64, v_lead: f64, offset: f64) {
        bus.publish(
            Tick::ZERO,
            Payload::GpsLocationExternal(GpsLocation {
                speed: Speed::from_mps(v_ego),
                bearing: Angle::ZERO,
            }),
        );
        bus.publish(
            Tick::ZERO,
            Payload::CarState(CarState {
                v_ego: Speed::from_mps(v_ego),
                a_ego: Accel::ZERO,
                steering_angle: Angle::ZERO,
                v_cruise: Speed::from_mph(60.0),
                cruise_enabled: true,
            }),
        );
        bus.publish(
            Tick::ZERO,
            Payload::ModelV2(LaneModel {
                left_line: Distance::meters(1.85 - offset),
                right_line: Distance::meters(1.85 + offset),
                lane_width: Distance::meters(3.7),
                curvature: 0.0,
            }),
        );
        bus.publish(
            Tick::ZERO,
            Payload::RadarState(RadarState {
                lead: Some(LeadTrack {
                    d_rel: Distance::meters(gap),
                    v_lead: Speed::from_mps(v_lead),
                    a_lead: Accel::ZERO,
                }),
            }),
        );
    }

    #[test]
    fn derives_hwt_and_rs() {
        let (bus, mut inf) = setup();
        publish_full(&bus, 26.8224, 53.6448, 15.0, 0.0);
        let s = inf.update(Tick::ZERO);
        assert!(s.lead_present);
        assert!((s.hwt.unwrap().secs() - 2.0).abs() < 1e-9, "HWT = d/v");
        assert!((s.rs.unwrap().mps() - 11.8224).abs() < 1e-9, "RS = v - v_lead");
        assert!((s.v_cruise.mph() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn derives_edge_distances() {
        let (bus, mut inf) = setup();
        // Car 0.5 m left of centre.
        publish_full(&bus, 26.8, 60.0, 15.0, 0.5);
        let s = inf.update(Tick::ZERO);
        // left line at 1.35 from centreline; minus half width 0.91.
        assert!((s.d_left.raw() - 0.44).abs() < 1e-9);
        assert!((s.d_right.raw() - 1.44).abs() < 1e-9);
    }

    #[test]
    fn hwt_undefined_at_standstill() {
        let (bus, mut inf) = setup();
        publish_full(&bus, 0.0, 60.0, 15.0, 0.0);
        let s = inf.update(Tick::ZERO);
        assert!(s.hwt.is_none(), "no division by ~zero speed");
        assert!(s.lead_present);
    }

    #[test]
    fn lead_goes_stale_without_detections() {
        let (bus, mut inf) = setup();
        publish_full(&bus, 26.8, 60.0, 15.0, 0.0);
        inf.update(Tick::ZERO);
        assert!(inf.state().lead_present);
        for i in 0..LEAD_STALE_TICKS {
            bus.publish(
                Tick::new(i as u64),
                Payload::RadarState(RadarState { lead: None }),
            );
            inf.update(Tick::new(i as u64));
        }
        let s = inf.state();
        assert!(!s.lead_present);
        assert!(s.hwt.is_none());
        assert!(s.rs.is_none());
    }

    #[test]
    fn state_persists_between_sparse_messages() {
        let (bus, mut inf) = setup();
        publish_full(&bus, 20.0, 60.0, 15.0, 0.0);
        inf.update(Tick::ZERO);
        // No new messages this tick: speed estimate retained.
        let s = inf.update(Tick::new(1));
        assert_eq!(s.v_ego, Speed::from_mps(20.0));
    }
}
