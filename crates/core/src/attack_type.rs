//! The six attack types of the paper's Table II and their component actions.

use serde::{Deserialize, Serialize};

/// Which way a steering attack pushes the car.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SteerDirection {
    /// Toward the neighbouring lane (positive steering angle).
    Left,
    /// Toward the nearby guardrail (negative steering angle).
    Right,
}

impl SteerDirection {
    /// Sign of the steering angle for this direction.
    pub fn sign(self) -> f64 {
        match self {
            SteerDirection::Left => 1.0,
            SteerDirection::Right => -1.0,
        }
    }
}

/// An elementary unsafe control action (the `u₁..u₄` of Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttackAction {
    /// `u₁`: maximum gas, zero brake.
    Accelerate,
    /// `u₂`: maximum brake, zero gas.
    Decelerate,
    /// `u₃` / `u₄`: steer toward a lane edge.
    Steer(SteerDirection),
}

/// The attack types of Table II: each experiment injects faults into one
/// output variable or a combination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttackType {
    /// Corrupt gas (max) and brake (zero).
    Acceleration,
    /// Corrupt brake (max) and gas (zero).
    Deceleration,
    /// Corrupt the steering angle toward the left.
    SteeringLeft,
    /// Corrupt the steering angle toward the right.
    SteeringRight,
    /// Corrupt gas and steering together.
    AccelerationSteering,
    /// Corrupt brake and steering together.
    DecelerationSteering,
}

impl AttackType {
    /// All six types, in the paper's table order.
    pub const ALL: [AttackType; 6] = [
        AttackType::Acceleration,
        AttackType::Deceleration,
        AttackType::SteeringLeft,
        AttackType::SteeringRight,
        AttackType::AccelerationSteering,
        AttackType::DecelerationSteering,
    ];

    /// Whether this type corrupts the longitudinal command, and in which
    /// direction (`Some(Accelerate)` / `Some(Decelerate)`).
    pub fn longitudinal(self) -> Option<AttackAction> {
        match self {
            AttackType::Acceleration | AttackType::AccelerationSteering => {
                Some(AttackAction::Accelerate)
            }
            AttackType::Deceleration | AttackType::DecelerationSteering => {
                Some(AttackAction::Decelerate)
            }
            AttackType::SteeringLeft | AttackType::SteeringRight => None,
        }
    }

    /// Whether this type corrupts steering. Pure steering types have a fixed
    /// direction; combined types choose per-context (`None` direction here).
    pub fn steering(self) -> Option<Option<SteerDirection>> {
        match self {
            AttackType::SteeringLeft => Some(Some(SteerDirection::Left)),
            AttackType::SteeringRight => Some(Some(SteerDirection::Right)),
            AttackType::AccelerationSteering | AttackType::DecelerationSteering => Some(None),
            AttackType::Acceleration | AttackType::Deceleration => None,
        }
    }

    /// The type's position in [`AttackType::ALL`] — the paper's table order.
    ///
    /// Infallible by construction (a `match`, not a scan), so it cannot
    /// alias an unmapped type to 0 the way a fallback-on-`position()` did;
    /// adding a variant without extending this is a compile error. Campaign
    /// seed derivation depends on these exact values staying stable.
    pub const fn index(self) -> usize {
        match self {
            AttackType::Acceleration => 0,
            AttackType::Deceleration => 1,
            AttackType::SteeringLeft => 2,
            AttackType::SteeringRight => 3,
            AttackType::AccelerationSteering => 4,
            AttackType::DecelerationSteering => 5,
        }
    }

    /// Display label matching the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            AttackType::Acceleration => "Acceleration",
            AttackType::Deceleration => "Deceleration",
            AttackType::SteeringLeft => "Steering-Left",
            AttackType::SteeringRight => "Steering-Right",
            AttackType::AccelerationSteering => "Acceleration-Steering",
            AttackType::DecelerationSteering => "Deceleration-Steering",
        }
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exactly-representable values
mod tests {
    use super::*;

    #[test]
    fn component_breakdown_matches_table_ii() {
        use AttackAction::*;
        assert_eq!(AttackType::Acceleration.longitudinal(), Some(Accelerate));
        assert_eq!(AttackType::Acceleration.steering(), None);
        assert_eq!(AttackType::Deceleration.longitudinal(), Some(Decelerate));
        assert_eq!(
            AttackType::SteeringLeft.steering(),
            Some(Some(SteerDirection::Left))
        );
        assert_eq!(AttackType::SteeringLeft.longitudinal(), None);
        assert_eq!(
            AttackType::AccelerationSteering.longitudinal(),
            Some(Accelerate)
        );
        assert_eq!(AttackType::AccelerationSteering.steering(), Some(None));
        assert_eq!(
            AttackType::DecelerationSteering.longitudinal(),
            Some(Decelerate)
        );
    }

    #[test]
    fn labels_match_paper() {
        let labels: Vec<_> = AttackType::ALL.iter().map(|t| t.label()).collect();
        assert_eq!(
            labels,
            vec![
                "Acceleration",
                "Deceleration",
                "Steering-Left",
                "Steering-Right",
                "Acceleration-Steering",
                "Deceleration-Steering"
            ]
        );
    }

    #[test]
    fn index_matches_position_in_all() {
        for (i, t) in AttackType::ALL.into_iter().enumerate() {
            assert_eq!(t.index(), i, "{t:?}");
        }
    }

    #[test]
    fn steer_direction_signs() {
        assert_eq!(SteerDirection::Left.sign(), 1.0);
        assert_eq!(SteerDirection::Right.sign(), -1.0);
    }
}
