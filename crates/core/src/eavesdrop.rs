//! Step 1 of the attack: eavesdropping on the pub/sub messaging.
//!
//! Cereal-style buses have no access control — anything on the device can
//! subscribe (paper Fig. 3). The eavesdropper taps the four streams the
//! attack needs and exposes the latest sample of each.

use msgbus::schema::{CarState, GpsLocation, LaneModel, RadarState};
use msgbus::{Bus, Envelope, Payload, Subscriber, Topic};

/// The latest samples drained in one tick (fields are `None` when no new
/// message arrived on that stream).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Observations {
    /// Latest `gpsLocationExternal`.
    pub gps: Option<GpsLocation>,
    /// Latest `modelV2`.
    pub lane: Option<LaneModel>,
    /// Latest `radarState`.
    pub radar: Option<RadarState>,
    /// Latest `carState`.
    pub car_state: Option<CarState>,
}

/// Passive subscriptions to the sensor and state topics.
#[derive(Debug)]
pub struct Eavesdropper {
    sub: Subscriber,
    messages_seen: u64,
    /// Drain scratch, reused every tick so steady-state taps stay
    /// allocation-free.
    scratch: Vec<Envelope>,
}

impl Eavesdropper {
    /// Subscribes to the four streams the context inference needs.
    pub fn new(bus: &Bus) -> Self {
        Self {
            sub: bus.subscribe(&[
                Topic::GpsLocationExternal,
                Topic::ModelV2,
                Topic::RadarState,
                Topic::CarState,
            ]),
            messages_seen: 0,
            scratch: Vec::new(),
        }
    }

    /// Total messages intercepted so far.
    pub fn messages_seen(&self) -> u64 {
        self.messages_seen
    }

    /// Drains queued traffic, keeping the newest sample per stream.
    pub fn drain(&mut self) -> Observations {
        let mut obs = Observations::default();
        self.sub.drain_into(&mut self.scratch);
        for env in self.scratch.drain(..) {
            self.messages_seen += 1;
            match env.into_payload() {
                Payload::GpsLocationExternal(g) => obs.gps = Some(g),
                Payload::ModelV2(m) => obs.lane = Some(m),
                Payload::RadarState(r) => obs.radar = Some(r),
                Payload::CarState(c) => obs.car_state = Some(c),
                _ => {}
            }
        }
        obs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use units::{Angle, Speed, Tick};

    #[test]
    fn taps_all_four_streams() {
        let bus = Bus::new();
        let mut tap = Eavesdropper::new(&bus);
        bus.publish(
            Tick::ZERO,
            Payload::GpsLocationExternal(GpsLocation {
                speed: Speed::from_mph(60.0),
                bearing: Angle::ZERO,
            }),
        );
        bus.publish(Tick::ZERO, Payload::ModelV2(LaneModel::default()));
        bus.publish(Tick::ZERO, Payload::RadarState(RadarState::default()));
        bus.publish(Tick::ZERO, Payload::CarState(CarState::default()));
        let obs = tap.drain();
        assert!(obs.gps.is_some());
        assert!(obs.lane.is_some());
        assert!(obs.radar.is_some());
        assert!(obs.car_state.is_some());
        assert_eq!(tap.messages_seen(), 4);
    }

    #[test]
    fn newest_sample_wins() {
        let bus = Bus::new();
        let mut tap = Eavesdropper::new(&bus);
        for mph in [10.0, 20.0, 30.0] {
            bus.publish(
                Tick::ZERO,
                Payload::GpsLocationExternal(GpsLocation {
                    speed: Speed::from_mph(mph),
                    bearing: Angle::ZERO,
                }),
            );
        }
        let obs = tap.drain();
        assert!((obs.gps.unwrap().speed.mph() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn control_topics_are_ignored() {
        let bus = Bus::new();
        let mut tap = Eavesdropper::new(&bus);
        bus.publish(
            Tick::ZERO,
            Payload::CarControl(msgbus::schema::CarControl::default()),
        );
        let obs = tap.drain();
        assert_eq!(obs, Observations::default());
        assert_eq!(tap.messages_seen(), 0, "not even subscribed");
    }

    #[test]
    fn empty_drain_is_default() {
        let bus = Bus::new();
        let mut tap = Eavesdropper::new(&bus);
        assert_eq!(tap.drain(), Observations::default());
    }
}
