//! Step 4 of the attack: strategic value corruption (paper Eq. 1–3).
//!
//! The attacker wants to maximise hazard probability while staying inside
//! every envelope that is checked — the ADAS software limits, the firmware
//! (Panda) limits, and the human driver's anomaly perception:
//!
//! ```text
//! minimize_TTH  max Pr{ x_{t+TTH} ∈ Hazardous }
//!   s.t.  brake ≥ limit_brake,  accel ≤ limit_accel,  Δsteer < limit_steer,
//!         v̂_{t+1} ≤ 1.1 v_cruise                                    (Eq. 1)
//!         v̂_{t+1|t} = v̂_t + accel·Δt                                (Eq. 2)
//!         v̂_{t+1}  = v̂_{t+1|t} + K_t (v_{t+1} − v̂_{t+1|t})          (Eq. 3)
//! ```
//!
//! The per-axis solution is bang-bang: drive each corrupted output at the
//! binding constraint. Only the acceleration axis needs the speed predictor:
//! near the overspeed ceiling the injected value tapers so the *next-step*
//! predicted speed never crosses `1.1 v_cruise`.

use serde::{Deserialize, Serialize};
use units::{limits, Accel, Angle, Speed, DT};

use crate::{AttackAction, SteerDirection, ValueMode};

/// The actuator values to inject this cycle. `None` leaves that actuator's
/// frames untouched.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct AttackValues {
    /// Value for the gas message (`ACCEL_CMD`).
    pub accel: Option<Accel>,
    /// Value for the brake message (`BRAKE_CMD`, negative).
    pub brake: Option<Accel>,
    /// Value for the steering message (`STEER_ANGLE_CMD`).
    pub steer: Option<Angle>,
}

/// The Kalman-style one-step speed predictor of Eq. 2–3.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpeedPredictor {
    v_hat: f64,
    gain: f64,
    initialized: bool,
}

impl Default for SpeedPredictor {
    fn default() -> Self {
        Self::new(0.3)
    }
}

impl SpeedPredictor {
    /// Creates a predictor with Kalman gain `K_t` (held constant — the
    /// filter reaches steady state within a few samples anyway).
    ///
    /// # Panics
    ///
    /// Panics if the gain is outside `(0, 1]`.
    pub fn new(gain: f64) -> Self {
        assert!(gain > 0.0 && gain <= 1.0, "gain must be in (0, 1]");
        Self {
            v_hat: 0.0,
            gain,
            initialized: false,
        }
    }

    /// Current speed estimate `v̂_t`.
    pub fn estimate(&self) -> Speed {
        Speed::from_mps(self.v_hat)
    }

    /// Eq. 2: propagate the estimate through the injected acceleration.
    pub fn predict(&mut self, accel: Accel) {
        self.v_hat += accel.mps2() * DT.secs();
    }

    /// Eq. 3: correct with the next eavesdropped speed measurement.
    pub fn correct(&mut self, measured: Speed) {
        if !self.initialized {
            self.v_hat = measured.mps();
            self.initialized = true;
        } else {
            self.v_hat += self.gain * (measured.mps() - self.v_hat);
        }
    }
}

/// Computes injected values for the active attack actions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorruptionPolicy {
    mode: ValueMode,
    predictor: SpeedPredictor,
}

/// Fixed-mode values: the ADAS software limits (Table III footnote 1).
/// The attacker reads the same canonical constants the defender enforces —
/// the paper's premise that fixed values sit exactly at the checked bounds.
const FIXED_ACCEL: Accel = Accel::from_mps2(limits::SW_ACCEL_MAX_MPS2);
const FIXED_BRAKE: Accel = Accel::from_mps2(limits::SW_BRAKE_MIN_MPS2);
const FIXED_STEER_DEG: f64 = limits::SW_STEER_MAX_DEG;

/// Strategic-mode values: the strict envelope (Table III footnote 2).
const STRATEGIC_ACCEL: Accel = Accel::from_mps2(limits::STRICT_ACCEL_MAX_MPS2);
const STRATEGIC_BRAKE: Accel = Accel::from_mps2(limits::STRICT_BRAKE_MIN_MPS2);
const STRATEGIC_STEER_DEG: f64 = limits::STRICT_STEER_MAX_DEG;
/// Eq. 1 overspeed ceiling.
const OVERSPEED_FACTOR: f64 = limits::STRICT_OVERSPEED_FACTOR;

impl CorruptionPolicy {
    /// Creates a policy for the given value mode.
    pub fn new(mode: ValueMode) -> Self {
        Self {
            mode,
            predictor: SpeedPredictor::default(),
        }
    }

    /// The value mode in use.
    pub fn mode(&self) -> ValueMode {
        self.mode
    }

    /// Feeds the latest eavesdropped ego speed (Eq. 3).
    pub fn observe_speed(&mut self, v: Speed) {
        self.predictor.correct(v);
    }

    /// Current speed estimate (exposed for analysis).
    pub fn speed_estimate(&self) -> Speed {
        self.predictor.estimate()
    }

    /// Computes this cycle's injected values for the active actions and
    /// propagates the speed predictor through them (Eq. 2).
    pub fn values(
        &mut self,
        longitudinal: Option<AttackAction>,
        steer: Option<SteerDirection>,
        v_cruise: Speed,
    ) -> AttackValues {
        let mut out = AttackValues::default();

        match longitudinal {
            Some(AttackAction::Accelerate) => {
                let accel = match self.mode {
                    ValueMode::Fixed => FIXED_ACCEL,
                    ValueMode::Strategic => {
                        // Largest accel keeping v̂_{t+1} ≤ 1.1 v_cruise.
                        let ceiling = v_cruise.mps() * OVERSPEED_FACTOR;
                        let headroom = (ceiling - self.predictor.estimate().mps()) / DT.secs();
                        Accel::from_mps2(headroom.clamp(0.0, STRATEGIC_ACCEL.mps2()))
                    }
                };
                out.accel = Some(accel);
                out.brake = Some(Accel::ZERO);
                self.predictor.predict(accel);
            }
            Some(AttackAction::Decelerate) => {
                let brake = match self.mode {
                    ValueMode::Fixed => FIXED_BRAKE,
                    ValueMode::Strategic => STRATEGIC_BRAKE,
                };
                out.accel = Some(Accel::ZERO);
                out.brake = Some(brake);
                self.predictor.predict(brake);
            }
            // Steering corruption carries no longitudinal component; the
            // steer half is applied below.
            None | Some(AttackAction::Steer(_)) => {}
        }

        if let Some(direction) = steer {
            let magnitude = match self.mode {
                ValueMode::Fixed => FIXED_STEER_DEG,
                ValueMode::Strategic => STRATEGIC_STEER_DEG,
            };
            out.steer = Some(Angle::from_degrees(direction.sign() * magnitude));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_values_match_table_iii_footnote_1() {
        let mut p = CorruptionPolicy::new(ValueMode::Fixed);
        let v = p.values(
            Some(AttackAction::Accelerate),
            Some(SteerDirection::Right),
            Speed::from_mph(60.0),
        );
        assert_eq!(v.accel, Some(Accel::from_mps2(2.4)));
        assert_eq!(v.brake, Some(Accel::ZERO));
        assert_eq!(v.steer, Some(Angle::from_degrees(-0.5)));

        let v = p.values(Some(AttackAction::Decelerate), None, Speed::from_mph(60.0));
        assert_eq!(v.brake, Some(Accel::from_mps2(-4.0)));
        assert_eq!(v.accel, Some(Accel::ZERO));
        assert_eq!(v.steer, None);
    }

    #[test]
    fn strategic_values_match_table_iii_footnote_2() {
        let mut p = CorruptionPolicy::new(ValueMode::Strategic);
        p.observe_speed(Speed::from_mph(60.0));
        let v = p.values(
            Some(AttackAction::Decelerate),
            Some(SteerDirection::Left),
            Speed::from_mph(60.0),
        );
        assert_eq!(v.brake, Some(Accel::from_mps2(-3.5)));
        assert_eq!(v.steer, Some(Angle::from_degrees(0.25)));
    }

    #[test]
    fn strategic_accel_respects_overspeed_ceiling() {
        let mut p = CorruptionPolicy::new(ValueMode::Strategic);
        let cruise = Speed::from_mph(60.0);
        p.observe_speed(cruise);
        // Far from the ceiling: full strategic acceleration.
        let v = p.values(Some(AttackAction::Accelerate), None, cruise);
        assert_eq!(v.accel, Some(Accel::from_mps2(2.0)));
        // At the ceiling (give the Eq. 3 gain time to converge): essentially
        // no further acceleration.
        for _ in 0..200 {
            p.observe_speed(Speed::from_mps(cruise.mps() * 1.1));
        }
        let v = p.values(Some(AttackAction::Accelerate), None, cruise);
        assert!(v.accel.unwrap().mps2() < 0.05, "got {:?}", v.accel);
    }

    #[test]
    fn strategic_accel_never_overshoots_in_closed_loop() {
        // Simulate the speed actually following the injected accel exactly.
        let mut p = CorruptionPolicy::new(ValueMode::Strategic);
        let cruise = Speed::from_mph(60.0);
        let mut v = cruise.mps();
        p.observe_speed(Speed::from_mps(v));
        for _ in 0..5000 {
            let vals = p.values(Some(AttackAction::Accelerate), None, cruise);
            let a = vals.accel.unwrap().mps2();
            assert!((0.0..=2.0).contains(&a));
            v += a * DT.secs();
            p.observe_speed(Speed::from_mps(v));
            assert!(
                v <= cruise.mps() * 1.1 + 1e-6,
                "speed {v} exceeded the 1.1x ceiling"
            );
        }
        // And the attack drives speed essentially *to* the ceiling.
        assert!(v > cruise.mps() * 1.099);
    }

    #[test]
    fn predictor_tracks_measurements() {
        let mut sp = SpeedPredictor::new(0.3);
        sp.correct(Speed::from_mps(20.0));
        assert_eq!(sp.estimate(), Speed::from_mps(20.0), "first sample snaps");
        sp.predict(Accel::from_mps2(2.0));
        assert!((sp.estimate().mps() - 20.02).abs() < 1e-12);
        sp.correct(Speed::from_mps(20.5));
        let expected = 20.02 + 0.3 * (20.5 - 20.02);
        assert!((sp.estimate().mps() - expected).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "gain must be in (0, 1]")]
    fn predictor_rejects_bad_gain() {
        let _ = SpeedPredictor::new(0.0);
    }

    #[test]
    fn no_actions_no_values() {
        let mut p = CorruptionPolicy::new(ValueMode::Strategic);
        assert_eq!(
            p.values(None, None, Speed::from_mph(60.0)),
            AttackValues::default()
        );
    }
}
