//! The assembled attack engine.

use canbus::CanFrame;
use msgbus::Bus;
use units::Tick;

use crate::{
    AttackAction, AttackConfig, AttackScheduler, AttackTimeline, AttackValues, ContextInference,
    ContextState, ContextTable, CorruptionPolicy, Eavesdropper, Injector, SteerDirection,
};

/// The Context-Aware attack engine: eavesdrop → infer → schedule → corrupt.
///
/// Drive it with two calls per control cycle: [`AttackEngine::observe`]
/// right after the sensors publish, and [`AttackEngine::process_frames`] on
/// the actuator frames in flight. Call [`AttackEngine::halt`] the moment the
/// driver engages — the paper's engine stops injecting immediately to avoid
/// a tug-of-war the driver would certainly notice.
#[derive(Debug)]
pub struct AttackEngine {
    config: AttackConfig,
    inference: ContextInference,
    table: ContextTable,
    scheduler: AttackScheduler,
    policy: CorruptionPolicy,
    injector: Injector,
    timeline: AttackTimeline,
    active: bool,
    values: AttackValues,
    /// Direction chosen for combined attacks; sticky for the whole run so
    /// the attack does not flip-flop between edges.
    steer_direction: Option<SteerDirection>,
    /// Whether the longitudinal action is currently running (match-or-hold).
    long_running: bool,
    /// The steering action currently running, if any (match-or-hold).
    steer_running: Option<SteerDirection>,
}

impl AttackEngine {
    /// Creates an engine subscribed to the bus's sensor/state topics.
    pub fn new(bus: &Bus, config: AttackConfig) -> Self {
        Self {
            config,
            inference: ContextInference::new(Eavesdropper::new(bus)),
            table: ContextTable::standard(config.rule_params),
            scheduler: match config.window_override {
                Some((start, duration)) => AttackScheduler::fixed_window(start, duration),
                None => AttackScheduler::new(config.strategy, config.seed),
            },
            policy: CorruptionPolicy::new(config.value_mode),
            injector: Injector::new(),
            timeline: AttackTimeline::new(),
            active: false,
            values: AttackValues::default(),
            steer_direction: None,
            long_running: false,
            steer_running: None,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AttackConfig {
        &self.config
    }

    /// The most recently inferred context.
    pub fn context(&self) -> ContextState {
        self.inference.state()
    }

    /// Whether the attack is injecting this cycle.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// The values currently being injected.
    pub fn values(&self) -> AttackValues {
        self.values
    }

    /// The attack timeline (activation, halt, activity).
    pub fn timeline(&self) -> &AttackTimeline {
        &self.timeline
    }

    /// Total CAN frames rewritten so far.
    pub fn frames_rewritten(&self) -> u64 {
        self.injector.rewritten()
    }

    /// Stops the attack permanently (driver engagement).
    pub fn halt(&mut self, tick: Tick) {
        self.scheduler.halt();
        self.timeline.record_halt(tick);
        self.active = false;
        self.values = AttackValues::default();
    }

    /// Consumes fresh bus traffic, refreshes the context, and decides
    /// whether — and with which values — to inject this cycle.
    pub fn observe(&mut self, tick: Tick) {
        let state = self.inference.update(tick);
        self.decide(tick, state);
    }

    /// Whether the engine can never inject again at or after `tick`: the
    /// driver halted it, the Context-Aware burst completed, or the random
    /// window is wholly in the past. A dormant engine's observe/decide
    /// cycle mutates nothing an inactive engine exposes, so hot loops may
    /// skip [`observe`](Self::observe)/[`observe_with`](Self::observe_with)
    /// entirely once this returns true.
    pub fn dormant(&self, tick: Tick) -> bool {
        self.scheduler.exhausted(tick)
    }

    /// Bus-free variant of [`observe`](Self::observe): the caller hands the
    /// tick's eavesdropped samples directly instead of draining a
    /// subscriber. Batched lanes use this — the harness publishes at most
    /// one message per stream per tick, so newest-wins draining and a
    /// direct feed see identical traffic.
    pub fn observe_with(&mut self, tick: Tick, obs: &crate::Observations) {
        let state = self.inference.absorb(obs);
        self.decide(tick, state);
    }

    /// The schedule/corrupt decision shared by both observe entry points.
    fn decide(&mut self, tick: Tick, state: ContextState) {
        self.policy.observe_speed(state.v_ego);

        // Per-action activity with match-or-hold semantics: the attack's
        // *primary* action starts when its Table-I context matches and keeps
        // running while the relaxed hold condition is true — the paper's
        // context-aware *duration* selection. For combined attack types the
        // longitudinal action is primary and the steering corruption rides
        // along whenever the attack is live ("both control actions are
        // activated", §III-C); a pure steering type is gated by its own
        // edge context.
        let long_now = self.config.attack_type.longitudinal().is_some_and(|action| {
            self.table.action_matches(&state, action)
                || (self.long_running && self.table.action_holds(&state, action))
        });
        let steer_context: Option<SteerDirection> = match self.config.attack_type.steering() {
            Some(Some(dir)) => {
                // Pure steering type: gated by its own context, with hold.
                let running = self.steer_running.is_some()
                    && self.table.action_holds(&state, AttackAction::Steer(dir));
                (running || self.table.action_matches(&state, AttackAction::Steer(dir)))
                    .then_some(dir)
            }
            _ => None,
        };

        let context_active = if self.config.attack_type.longitudinal().is_some() {
            long_now
        } else {
            steer_context.is_some()
        };
        self.active = self.scheduler.update(tick, context_active);

        if self.active {
            let longitudinal = self.config.attack_type.longitudinal();
            let direction = match self.config.attack_type.steering() {
                None => None,
                Some(Some(d)) => Some(d),
                // Combined type: steering rider toward the nearest edge,
                // sticky for the rest of the run.
                Some(None) => Some(
                    self.steer_direction
                        .unwrap_or_else(|| nearest_edge(&state)),
                ),
            };
            self.long_running = long_now && longitudinal.is_some();
            self.steer_running = steer_context;
            self.steer_direction = direction.or(self.steer_direction);
            self.values = self.policy.values(longitudinal, direction, state.v_cruise);
            self.timeline.record_active(tick);
        } else {
            self.long_running = false;
            self.steer_running = None;
            self.values = AttackValues::default();
        }
    }

    /// Rewrites in-flight actuator frames while the attack is active.
    pub fn process_frames(&mut self, _tick: Tick, frames: Vec<CanFrame>) -> Vec<CanFrame> {
        if self.active {
            self.injector.apply_all(frames, &self.values)
        } else {
            frames
        }
    }

    /// In-place variant of [`process_frames`](Self::process_frames): rewrites
    /// the frames where they sit instead of consuming and reallocating the
    /// batch — the harness hot path calls this once per tick.
    pub fn process_frames_in_place(&mut self, _tick: Tick, frames: &mut [CanFrame]) {
        if self.active {
            self.injector.apply_in_place(frames, &self.values);
        }
    }
}

/// The lane edge the car is currently closer to.
fn nearest_edge(state: &ContextState) -> SteerDirection {
    if state.d_right <= state.d_left {
        SteerDirection::Right
    } else {
        SteerDirection::Left
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exactly-representable values
mod tests {
    use super::*;
    use crate::{AttackType, StrategyKind, ValueMode};
    use canbus::{decode, Encoder, VirtualCarDbc};
    use msgbus::schema::{CarState, GpsLocation, LaneModel, LeadTrack, RadarState};
    use msgbus::Payload;
    use units::{Accel, Angle, Distance, Seconds, Speed};

    fn publish(bus: &Bus, tick: Tick, v_mph: f64, gap: f64, v_lead_mph: f64, offset: f64) {
        bus.publish(
            tick,
            Payload::GpsLocationExternal(GpsLocation {
                speed: Speed::from_mph(v_mph),
                bearing: Angle::ZERO,
            }),
        );
        bus.publish(
            tick,
            Payload::CarState(CarState {
                v_ego: Speed::from_mph(v_mph),
                v_cruise: Speed::from_mph(60.0),
                cruise_enabled: true,
                ..CarState::default()
            }),
        );
        bus.publish(
            tick,
            Payload::ModelV2(LaneModel {
                left_line: Distance::meters(1.85 - offset),
                right_line: Distance::meters(1.85 + offset),
                lane_width: Distance::meters(3.7),
                curvature: 0.0,
            }),
        );
        bus.publish(
            tick,
            Payload::RadarState(RadarState {
                lead: Some(LeadTrack {
                    d_rel: Distance::meters(gap),
                    v_lead: Speed::from_mph(v_lead_mph),
                    a_lead: Accel::ZERO,
                }),
            }),
        );
    }

    fn engine(attack_type: AttackType, strategy: StrategyKind, mode: ValueMode, bus: &Bus) -> AttackEngine {
        AttackEngine::new(
            bus,
            AttackConfig {
                attack_type,
                strategy,
                value_mode: mode,
                seed: 11,
                ..AttackConfig::default()
            },
        )
    }

    #[test]
    fn context_aware_acceleration_waits_for_rule_1() {
        let bus = Bus::new();
        let mut eng = engine(
            AttackType::Acceleration,
            StrategyKind::ContextAware,
            ValueMode::Strategic,
            &bus,
        );
        // Far lead: HWT = 100 / 26.8 = 3.7 s > t_safe, no trigger.
        publish(&bus, Tick::ZERO, 60.0, 100.0, 35.0, 0.0);
        eng.observe(Tick::ZERO);
        assert!(!eng.is_active());
        // Closing inside t_safe: trigger.
        publish(&bus, Tick::new(1), 60.0, 50.0, 35.0, 0.0);
        eng.observe(Tick::new(1));
        assert!(eng.is_active());
        assert_eq!(eng.timeline().activated_at(), Some(Tick::new(1)));
        let v = eng.values();
        assert_eq!(v.accel, Some(Accel::from_mps2(2.0)), "strategic limit");
        assert_eq!(v.brake, Some(Accel::ZERO));
        assert_eq!(v.steer, None);
    }

    #[test]
    fn injection_rewrites_frames_with_valid_checksums() {
        let bus = Bus::new();
        let mut eng = engine(
            AttackType::Acceleration,
            StrategyKind::ContextAware,
            ValueMode::Fixed,
            &bus,
        );
        publish(&bus, Tick::ZERO, 60.0, 50.0, 35.0, 0.0);
        eng.observe(Tick::ZERO);
        assert!(eng.is_active());

        let dbc = VirtualCarDbc::new();
        let mut enc = Encoder::new();
        let frames = vec![
            enc.encode(dbc.gas_command(), &[("ACCEL_CMD", 0.4)]).unwrap(),
            enc.encode(dbc.brake_command(), &[("BRAKE_CMD", -1.0)]).unwrap(),
        ];
        let out = eng.process_frames(Tick::ZERO, frames);
        let gas = decode(dbc.gas_command(), &out[0]).unwrap();
        let brake = decode(dbc.brake_command(), &out[1]).unwrap();
        assert!((gas["ACCEL_CMD"] - 2.4).abs() < 1e-9, "fixed value injected");
        assert_eq!(brake["BRAKE_CMD"], 0.0, "brake zeroed");
        assert_eq!(eng.frames_rewritten(), 2);
    }

    #[test]
    fn steering_right_triggers_at_right_edge_only() {
        let bus = Bus::new();
        let mut eng = engine(
            AttackType::SteeringRight,
            StrategyKind::ContextAware,
            ValueMode::Strategic,
            &bus,
        );
        // Centred: right edge distance = 1.85 - 0.91 = 0.94 m, no trigger.
        publish(&bus, Tick::ZERO, 60.0, 100.0, 35.0, 0.0);
        eng.observe(Tick::ZERO);
        assert!(!eng.is_active());
        // Hugging the right line (offset -0.9): d_right = 0.04 <= 0.1.
        publish(&bus, Tick::new(1), 60.0, 100.0, 35.0, -0.9);
        eng.observe(Tick::new(1));
        assert!(eng.is_active());
        assert_eq!(eng.values().steer, Some(Angle::from_degrees(-0.25)));
    }

    #[test]
    fn combined_attack_rides_steering_on_the_primary_context() {
        let bus = Bus::new();
        let mut eng = engine(
            AttackType::AccelerationSteering,
            StrategyKind::ContextAware,
            ValueMode::Fixed,
            &bus,
        );
        // The acceleration (primary) context matches: both control actions
        // are activated (paper §III-C), steering toward the nearest edge —
        // the right one, since the car sits right of centre.
        publish(&bus, Tick::ZERO, 60.0, 50.0, 35.0, -0.25);
        eng.observe(Tick::ZERO);
        assert!(eng.is_active());
        let v = eng.values();
        assert_eq!(v.accel, Some(Accel::from_mps2(2.4)));
        assert_eq!(v.steer, Some(Angle::from_degrees(-0.5)), "nearest edge");
        // The direction stays sticky even if the car is later pushed left.
        publish(&bus, Tick::new(1), 60.0, 45.0, 35.0, 0.4);
        eng.observe(Tick::new(1));
        assert_eq!(eng.values().steer, Some(Angle::from_degrees(-0.5)));
    }

    #[test]
    fn combined_attack_waits_for_the_primary_context() {
        let bus = Bus::new();
        let mut eng = engine(
            AttackType::DecelerationSteering,
            StrategyKind::ContextAware,
            ValueMode::Strategic,
            &bus,
        );
        // Closing on a slow lead: the deceleration context (rule 2) does NOT
        // match even though the car hugs the right edge — the combined
        // attack stays quiet.
        publish(&bus, Tick::ZERO, 60.0, 50.0, 35.0, -0.9);
        eng.observe(Tick::ZERO);
        assert!(!eng.is_active(), "steering context alone must not launch it");
        // Lead pulling away with a big gap: rule 2 matches, both actions go.
        publish(&bus, Tick::new(1), 60.0, 120.0, 65.0, -0.9);
        eng.observe(Tick::new(1));
        assert!(eng.is_active());
        let v = eng.values();
        assert_eq!(v.brake, Some(Accel::from_mps2(-3.5)));
        assert_eq!(v.steer, Some(Angle::from_degrees(-0.25)));
    }

    #[test]
    fn combined_attack_under_random_strategy_injects_everything() {
        let bus = Bus::new();
        let mut eng = engine(
            AttackType::AccelerationSteering,
            StrategyKind::RandomSt,
            ValueMode::Fixed,
            &bus,
        );
        // Benign context, car slightly right of centre; advance into the
        // random window.
        let mut saw_both = false;
        for i in 0..units::STEPS_PER_SIM {
            publish(&bus, Tick::new(i), 60.0, 200.0, 60.0, -0.25);
            eng.observe(Tick::new(i));
            if eng.is_active() {
                let v = eng.values();
                assert_eq!(v.accel, Some(Accel::from_mps2(2.4)));
                assert_eq!(
                    v.steer,
                    Some(Angle::from_degrees(-0.5)),
                    "nearest edge is the right one"
                );
                saw_both = true;
            }
        }
        assert!(saw_both);
    }

    #[test]
    fn halt_stops_injection_permanently() {
        let bus = Bus::new();
        let mut eng = engine(
            AttackType::Acceleration,
            StrategyKind::ContextAware,
            ValueMode::Strategic,
            &bus,
        );
        publish(&bus, Tick::ZERO, 60.0, 50.0, 35.0, 0.0);
        eng.observe(Tick::ZERO);
        assert!(eng.is_active());
        eng.halt(Tick::new(1));
        publish(&bus, Tick::new(2), 60.0, 45.0, 35.0, 0.0);
        eng.observe(Tick::new(2));
        assert!(!eng.is_active());
        assert_eq!(eng.timeline().halted_at(), Some(Tick::new(1)));
        let dbc = VirtualCarDbc::new();
        let mut enc = Encoder::new();
        let frame = enc.encode(dbc.gas_command(), &[("ACCEL_CMD", 0.4)]).unwrap();
        let out = eng.process_frames(Tick::new(2), vec![frame]);
        assert_eq!(out[0], frame, "no tampering after halt");
    }

    #[test]
    fn random_strategy_ignores_context() {
        let bus = Bus::new();
        let mut eng = engine(
            AttackType::Deceleration,
            StrategyKind::RandomSt,
            ValueMode::Fixed,
            &bus,
        );
        // Benign context the whole time; the attack still fires in its
        // random window.
        let mut fired = 0u64;
        for i in 0..units::STEPS_PER_SIM {
            publish(&bus, Tick::new(i), 60.0, 50.0, 35.0, 0.0);
            eng.observe(Tick::new(i));
            if eng.is_active() {
                fired += 1;
                assert_eq!(eng.values().brake, Some(Accel::from_mps2(-4.0)));
            }
        }
        assert_eq!(fired, 250, "2.5 s window");
        let start = eng.timeline().activated_at().unwrap().time();
        assert!(start >= Seconds::new(5.0) && start <= Seconds::new(40.0));
    }

    #[test]
    fn context_aware_deceleration_stops_below_beta1() {
        let bus = Bus::new();
        let mut eng = engine(
            AttackType::Deceleration,
            StrategyKind::ContextAware,
            ValueMode::Strategic,
            &bus,
        );
        // Lead pulling away with large headway: rule 2 matches at 60 mph.
        publish(&bus, Tick::ZERO, 60.0, 90.0, 65.0, 0.0);
        eng.observe(Tick::ZERO);
        assert!(eng.is_active());
        // Speed has dropped below beta1 (25 mph): context exits, attack ends.
        publish(&bus, Tick::new(1), 20.0, 150.0, 65.0, 0.0);
        eng.observe(Tick::new(1));
        assert!(!eng.is_active());
    }
}
