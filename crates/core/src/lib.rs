//! The Context-Aware safety-critical attack engine — the primary
//! contribution of *Strategic Safety-Critical Attacks Against an Advanced
//! Driver Assistance System* (Zhou et al., DSN 2022).
//!
//! The engine executes the four-step procedure of the paper's §III-C:
//!
//! 1. **Eavesdropping** ([`Eavesdropper`]) — subscribe to the ADAS's pub/sub
//!    messaging (`gpsLocationExternal`, `modelV2`, `radarState`, …) exactly
//!    like a legitimate module would; there is no authentication.
//! 2. **Safety context inference** ([`ContextInference`]) — derive the
//!    human-interpretable state variables of the safety specification:
//!    headway time `HWT`, relative speed `RS`, distances to the lane edges
//!    `d_left` / `d_right`.
//! 3. **Attack type and activation-time selection** ([`ContextTable`],
//!    [`AttackScheduler`]) — match the live state against the STPA-style
//!    context table (Table I) and activate the attack in the most critical
//!    context; or, for the baselines, at a random time.
//! 4. **Strategic value corruption** ([`CorruptionPolicy`], [`Injector`]) —
//!    translate the attack action into actuator values that stay inside the
//!    ADAS safety envelope (Eq. 1–3, with a Kalman-style speed predictor
//!    keeping `v ≤ 1.1 v_cruise`), rewrite the target CAN frames and repair
//!    their checksums.
//!
//! [`AttackEngine`] glues the steps together and records an
//! [`AttackTimeline`] (`t_a`, `t_d`, …) for evaluation.
//!
//! # Examples
//!
//! ```
//! use attack_core::{AttackConfig, AttackEngine, AttackType, StrategyKind, ValueMode};
//! use msgbus::Bus;
//!
//! let bus = Bus::new();
//! let config = AttackConfig {
//!     attack_type: AttackType::Acceleration,
//!     strategy: StrategyKind::ContextAware,
//!     value_mode: ValueMode::Strategic,
//!     seed: 7,
//!     ..AttackConfig::default()
//! };
//! let engine = AttackEngine::new(&bus, config);
//! assert!(!engine.is_active(), "waits for a critical context");
//! ```

#![forbid(unsafe_code)]
#![deny(clippy::float_cmp)]

#![warn(missing_docs)]

mod attack_type;
mod config;
mod context;
mod corruption;
mod eavesdrop;
mod engine;
mod injector;
pub mod recon;
mod rules;
mod scheduler;
mod timeline;

pub use attack_type::{AttackAction, AttackType, SteerDirection};
pub use config::{AttackConfig, ValueMode};
pub use context::{ContextInference, ContextState};
pub use corruption::{AttackValues, CorruptionPolicy, SpeedPredictor};
pub use eavesdrop::{Eavesdropper, Observations};
pub use engine::AttackEngine;
pub use injector::Injector;
pub use rules::{ContextRule, ContextTable, PotentialHazard, RuleParams};
pub use scheduler::{AttackScheduler, StrategyKind};
pub use timeline::AttackTimeline;
