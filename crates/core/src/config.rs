//! Attack-engine configuration.

use serde::{Deserialize, Serialize};
use units::Seconds;

use crate::{AttackType, RuleParams, StrategyKind};

/// How attack values are chosen (paper Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ValueMode {
    /// Use the maximum limits defined in the ADAS software:
    /// `steer = 0.5°`, `brake = −4 m/s²`, `accel = 2.4 m/s²`. Passes the
    /// software checks but is noticeable to the driver and would be caught
    /// by Panda-style firmware checks.
    Fixed,
    /// Dynamically choose values per Eq. 1–3: `steer = 0.25°`,
    /// `brake = −3.5 m/s²`, `accel ≤ 2 m/s²` modulated to keep the predicted
    /// speed under `1.1 × v_cruise`. Evades the firmware checks *and* the
    /// driver's anomaly perception.
    Strategic,
}

/// Full configuration of one attack campaign run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttackConfig {
    /// Which output variables to corrupt (Table II).
    pub attack_type: AttackType,
    /// When to start and how long to run (Table III).
    pub strategy: StrategyKind,
    /// How to choose the injected values (Table III).
    pub value_mode: ValueMode,
    /// Seed for the strategy's random draws.
    pub seed: u64,
    /// Context-table thresholds.
    pub rule_params: RuleParams,
    /// Explicit `(start, duration)` window overriding the strategy's
    /// scheduling. Used for parameter-space sweeps (paper Fig. 8).
    pub window_override: Option<(Seconds, Seconds)>,
}

impl Default for AttackConfig {
    /// The paper's headline configuration: Context-Aware strategy with
    /// strategic value corruption.
    fn default() -> Self {
        Self {
            attack_type: AttackType::Acceleration,
            strategy: StrategyKind::ContextAware,
            value_mode: ValueMode::Strategic,
            seed: 0,
            rule_params: RuleParams::default(),
            window_override: None,
        }
    }
}

impl AttackConfig {
    /// The value mode Table III prescribes for a strategy: strategic values
    /// for Context-Aware, fixed values for every random baseline.
    pub fn canonical_value_mode(strategy: StrategyKind) -> ValueMode {
        match strategy {
            StrategyKind::ContextAware => ValueMode::Strategic,
            _ => ValueMode::Fixed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_headline_attack() {
        let c = AttackConfig::default();
        assert_eq!(c.strategy, StrategyKind::ContextAware);
        assert_eq!(c.value_mode, ValueMode::Strategic);
    }

    #[test]
    fn canonical_modes_match_table_iii() {
        assert_eq!(
            AttackConfig::canonical_value_mode(StrategyKind::ContextAware),
            ValueMode::Strategic
        );
        for s in [
            StrategyKind::RandomStDur,
            StrategyKind::RandomSt,
            StrategyKind::RandomDur,
        ] {
            assert_eq!(AttackConfig::canonical_value_mode(s), ValueMode::Fixed);
        }
    }
}
