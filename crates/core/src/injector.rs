//! CAN frame rewriting with checksum repair (paper Fig. 4).

use canbus::{rewrite_signal, CanFrame, VirtualCarDbc};

use crate::AttackValues;

/// Rewrites in-flight actuator frames with attack values, preserving the
/// rolling counter and recomputing the checksum so receivers accept them.
#[derive(Debug, Default)]
pub struct Injector {
    dbc: VirtualCarDbc,
    rewritten: u64,
}

impl Injector {
    /// Creates an injector over the virtual car's DBC.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total frames rewritten so far.
    pub fn rewritten(&self) -> u64 {
        self.rewritten
    }

    /// Applies the attack values to one frame. Frames the attack does not
    /// target pass through unchanged.
    pub fn apply(&mut self, frame: CanFrame, values: &AttackValues) -> CanFrame {
        let out = if frame.id() == self.dbc.steering_control().id {
            values.steer.map(|steer| {
                rewrite_signal(
                    self.dbc.steering_control(),
                    &frame,
                    "STEER_ANGLE_CMD",
                    steer.degrees(),
                )
            })
        } else if frame.id() == self.dbc.gas_command().id {
            values.accel.map(|accel| {
                rewrite_signal(self.dbc.gas_command(), &frame, "ACCEL_CMD", accel.mps2())
            })
        } else if frame.id() == self.dbc.brake_command().id {
            values.brake.map(|brake| {
                rewrite_signal(self.dbc.brake_command(), &frame, "BRAKE_CMD", brake.mps2())
            })
        } else {
            None
        };
        match out {
            // Values are always chosen within signal ranges, so rewrite
            // failures cannot occur with a well-formed frame; pass the frame
            // through untouched if one somehow does.
            Some(Ok(modified)) => {
                if modified != frame {
                    self.rewritten += 1;
                }
                modified
            }
            _ => frame,
        }
    }

    /// Applies the attack values to a whole batch.
    pub fn apply_all(&mut self, frames: Vec<CanFrame>, values: &AttackValues) -> Vec<CanFrame> {
        frames.into_iter().map(|f| self.apply(f, values)).collect()
    }

    /// In-place variant of [`apply_all`](Self::apply_all): rewrites targeted
    /// frames where they sit, allocating nothing ([`CanFrame`] is `Copy`).
    pub fn apply_in_place(&mut self, frames: &mut [CanFrame], values: &AttackValues) {
        for frame in frames {
            *frame = self.apply(*frame, values);
        }
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exactly-representable values
mod tests {
    use super::*;
    use canbus::{decode, Encoder};
    use units::{Accel, Angle};

    fn command_frames(accel: f64, brake: f64, steer: f64) -> Vec<CanFrame> {
        let dbc = VirtualCarDbc::new();
        let mut enc = Encoder::new();
        vec![
            enc.encode(dbc.steering_control(), &[("STEER_ANGLE_CMD", steer)])
                .unwrap(),
            enc.encode(dbc.gas_command(), &[("ACCEL_CMD", accel)]).unwrap(),
            enc.encode(dbc.brake_command(), &[("BRAKE_CMD", brake)]).unwrap(),
        ]
    }

    #[test]
    fn rewrites_only_targeted_signals() {
        let mut inj = Injector::new();
        let frames = command_frames(0.5, 0.0, 0.1);
        let values = AttackValues {
            accel: None,
            brake: None,
            steer: Some(Angle::from_degrees(-0.5)),
        };
        let out = inj.apply_all(frames.clone(), &values);
        let dbc = VirtualCarDbc::new();
        // Steering changed and still verifies.
        let steer = decode(dbc.steering_control(), &out[0]).unwrap();
        assert!((steer["STEER_ANGLE_CMD"] + 0.5).abs() < 1e-9);
        // Gas and brake untouched, bit for bit.
        assert_eq!(out[1], frames[1]);
        assert_eq!(out[2], frames[2]);
        assert_eq!(inj.rewritten(), 1);
    }

    #[test]
    fn acceleration_attack_maxes_gas_and_zeroes_brake() {
        let mut inj = Injector::new();
        let frames = command_frames(0.3, -1.2, 0.0);
        let values = AttackValues {
            accel: Some(Accel::from_mps2(2.4)),
            brake: Some(Accel::ZERO),
            steer: None,
        };
        let out = inj.apply_all(frames, &values);
        let dbc = VirtualCarDbc::new();
        let gas = decode(dbc.gas_command(), &out[1]).unwrap();
        let brake = decode(dbc.brake_command(), &out[2]).unwrap();
        assert!((gas["ACCEL_CMD"] - 2.4).abs() < 1e-9);
        assert_eq!(brake["BRAKE_CMD"], 0.0);
        assert_eq!(inj.rewritten(), 2);
    }

    #[test]
    fn rewritten_frames_verify_at_the_receiver() {
        let mut inj = Injector::new();
        let frames = command_frames(0.0, 0.0, 0.0);
        let values = AttackValues {
            accel: Some(Accel::from_mps2(2.0)),
            brake: Some(Accel::from_mps2(0.0)),
            steer: Some(Angle::from_degrees(0.25)),
        };
        let dbc = VirtualCarDbc::new();
        for frame in inj.apply_all(frames, &values) {
            let spec = dbc.by_id(frame.id()).unwrap();
            assert!(
                decode(spec, &frame).is_ok(),
                "checksum repaired on {frame}"
            );
        }
    }

    #[test]
    fn unrelated_frames_pass_through() {
        let mut inj = Injector::new();
        let other = CanFrame::new(0x1D0, &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        let values = AttackValues {
            accel: Some(Accel::from_mps2(2.4)),
            brake: Some(Accel::ZERO),
            steer: Some(Angle::from_degrees(0.5)),
        };
        assert_eq!(inj.apply(other, &values), other);
        assert_eq!(inj.rewritten(), 0);
    }

    #[test]
    fn identical_value_does_not_count_as_rewrite() {
        let mut inj = Injector::new();
        let frames = command_frames(2.4, 0.0, 0.0);
        let values = AttackValues {
            accel: Some(Accel::from_mps2(2.4)),
            brake: None,
            steer: None,
        };
        let _ = inj.apply_all(frames, &values);
        assert_eq!(inj.rewritten(), 0, "bit-identical output is not tampering");
    }
}
