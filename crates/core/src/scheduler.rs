//! Step 3 of the attack: activation-time and duration selection —
//! the four strategies of the paper's Table III.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use units::{Seconds, Tick};

/// The attack strategies compared in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StrategyKind {
    /// Start ~ U[5, 40] s, duration ~ U[0.5, 2.5] s (first baseline).
    RandomStDur,
    /// Start ~ U[5, 40] s, duration fixed at the 2.5 s average driver
    /// reaction time (second baseline).
    RandomSt,
    /// Context-inferred start, duration ~ U[0.5, 2.5] s (third baseline).
    RandomDur,
    /// Context-inferred start; runs for as long as the critical context
    /// holds (the paper's strategy).
    ContextAware,
}

impl StrategyKind {
    /// All strategies, in the paper's table order.
    pub const ALL: [StrategyKind; 4] = [
        StrategyKind::RandomStDur,
        StrategyKind::RandomSt,
        StrategyKind::RandomDur,
        StrategyKind::ContextAware,
    ];

    /// Display label matching the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            StrategyKind::RandomStDur => "Random-ST+DUR",
            StrategyKind::RandomSt => "Random-ST",
            StrategyKind::RandomDur => "Random-DUR",
            StrategyKind::ContextAware => "Context-Aware",
        }
    }

    /// Whether the strategy's start time is context-inferred.
    pub fn context_started(self) -> bool {
        matches!(self, StrategyKind::RandomDur | StrategyKind::ContextAware)
    }
}

/// Decides, each tick, whether the attack should be firing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackScheduler {
    kind: StrategyKind,
    /// Random start (random-start strategies), drawn at construction.
    random_start: Tick,
    /// Drawn duration, where applicable.
    duration: Option<Seconds>,
    /// First tick at which the attack actually fired.
    started: Option<Tick>,
    /// Whether a Context-Aware burst has already run to completion.
    completed: bool,
    /// Latched off (driver engaged).
    halted: bool,
}

impl AttackScheduler {
    /// Creates a scheduler with an explicit start and duration, bypassing
    /// the random draws. Used for parameter-space sweeps (the paper's
    /// Fig. 8), where start time and duration are the swept variables.
    pub fn fixed_window(start: Seconds, duration: Seconds) -> Self {
        Self {
            kind: StrategyKind::RandomStDur,
            random_start: Tick::from_time(start),
            duration: Some(duration),
            started: None,
            completed: false,
            halted: false,
        }
    }

    /// Creates a scheduler, drawing any random parameters from `seed`.
    pub fn new(kind: StrategyKind, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        // Uniform [5, 40] s start, [0.5, 2.5] s duration (Table III).
        let random_start = Tick::from_time(Seconds::new(rng.gen_range(5.0..40.0)));
        let random_duration = Seconds::new(rng.gen_range(0.5..2.5));
        let duration = match kind {
            StrategyKind::RandomStDur | StrategyKind::RandomDur => Some(random_duration),
            StrategyKind::RandomSt => Some(Seconds::new(2.5)),
            StrategyKind::ContextAware => None,
        };
        Self {
            kind,
            random_start,
            duration,
            started: None,
            completed: false,
            halted: false,
        }
    }

    /// The strategy in use.
    pub fn kind(&self) -> StrategyKind {
        self.kind
    }

    /// The drawn duration, if the strategy has one.
    pub fn duration(&self) -> Option<Seconds> {
        self.duration
    }

    /// The drawn random start (meaningful for random-start strategies).
    pub fn random_start(&self) -> Tick {
        self.random_start
    }

    /// When the attack first fired, if it has.
    pub fn started(&self) -> Option<Tick> {
        self.started
    }

    /// Latches the scheduler off — the attack engine stops as soon as the
    /// driver engages (paper §IV-B).
    pub fn halt(&mut self) {
        self.halted = true;
    }

    /// Whether the scheduler has been halted.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Whether the scheduler can never fire again at or after `tick`:
    /// halted, a completed Context-Aware burst, or a random window wholly
    /// in the past. Pure — [`Self::update`] mutates nothing once this is
    /// true, so a caller may skip the whole observe/decide cycle without
    /// affecting any observable behaviour.
    pub fn exhausted(&self, tick: Tick) -> bool {
        if self.halted {
            return true;
        }
        match self.kind {
            StrategyKind::RandomStDur | StrategyKind::RandomSt => match self.duration {
                Some(dur) => tick >= self.random_start && tick.since(self.random_start) >= dur,
                None => true, // fail-closed dormant forever
            },
            StrategyKind::RandomDur => match (self.started, self.duration) {
                (None, _) => false,
                (Some(start), Some(dur)) => tick.since(start) >= dur,
                (Some(_), None) => true,
            },
            StrategyKind::ContextAware => self.completed,
        }
    }

    /// Returns whether the attack fires at `tick`, given whether the target
    /// context currently matches.
    pub fn update(&mut self, tick: Tick, context_active: bool) -> bool {
        if self.halted {
            return false;
        }
        let active = match self.kind {
            // Fail closed: a random strategy without a drawn duration is a
            // construction bug, and the scheduler sits on the per-tick
            // control path — the attack stays dormant rather than panicking
            // the loop.
            StrategyKind::RandomStDur | StrategyKind::RandomSt => match self.duration {
                Some(dur) => tick >= self.random_start && tick.since(self.random_start) < dur,
                None => false,
            },
            StrategyKind::RandomDur => match (self.started, self.duration) {
                (None, _) => context_active,
                (Some(start), Some(dur)) => tick.since(start) < dur,
                (Some(_), None) => false,
            },
            // One burst per run: the engine launches at the first critical
            // context and runs while it holds; re-arming after the burst
            // would both raise the detection surface (a car that brakes in
            // waves is obviously faulty) and waste the element of surprise.
            StrategyKind::ContextAware => {
                if self.completed {
                    false
                } else {
                    if self.started.is_some() && !context_active {
                        self.completed = true;
                    }
                    !self.completed && context_active
                }
            }
        };
        if active && self.started.is_none() {
            self.started = Some(tick);
        }
        active
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_window(s: &mut AttackScheduler, ticks: u64, context: bool) -> Vec<u64> {
        (0..ticks)
            .filter(|&i| s.update(Tick::new(i), context))
            .collect()
    }

    #[test]
    fn random_st_dur_window_is_within_bounds() {
        for seed in 0..50 {
            let mut s = AttackScheduler::new(StrategyKind::RandomStDur, seed);
            let active = run_window(&mut s, 5000, false);
            assert!(!active.is_empty());
            let start = active[0] as f64 * 0.01;
            let dur = active.len() as f64 * 0.01;
            assert!((5.0..40.0).contains(&start), "seed {seed}: start {start}");
            assert!((0.45..2.55).contains(&dur), "seed {seed}: duration {dur}");
            // Contiguous window.
            assert_eq!(active.last().unwrap() - active[0] + 1, active.len() as u64);
        }
    }

    #[test]
    fn random_st_has_fixed_2_5s_duration() {
        let mut s = AttackScheduler::new(StrategyKind::RandomSt, 3);
        let active = run_window(&mut s, 5000, false);
        assert_eq!(active.len(), 250, "2.5 s at 10 ms per tick");
    }

    #[test]
    fn random_dur_starts_with_context() {
        let mut s = AttackScheduler::new(StrategyKind::RandomDur, 9);
        // No context, never fires.
        assert!(run_window(&mut s, 1000, false).is_empty());
        // Context appears at tick 1000: fires immediately, for the drawn
        // duration, even after context disappears.
        assert!(s.update(Tick::new(1000), true));
        assert_eq!(s.started(), Some(Tick::new(1000)));
        let dur_ticks = (s.duration().unwrap().secs() / 0.01).ceil() as u64;
        let mut active = 1;
        for i in 1001..5000 {
            if s.update(Tick::new(i), false) {
                active += 1;
            }
        }
        assert_eq!(active, dur_ticks);
    }

    #[test]
    fn context_aware_is_a_single_burst() {
        let mut s = AttackScheduler::new(StrategyKind::ContextAware, 1);
        assert!(!s.update(Tick::new(0), false));
        assert!(s.update(Tick::new(1), true));
        assert!(s.update(Tick::new(2), true));
        assert!(!s.update(Tick::new(3), false), "stops when context exits");
        assert!(
            !s.update(Tick::new(4), true),
            "one burst per run: no re-arming after completion"
        );
        assert_eq!(s.started(), Some(Tick::new(1)));
    }

    #[test]
    fn exhausted_matches_update_going_quiet_forever() {
        // Random window: exhausted exactly once the window has passed.
        let mut s = AttackScheduler::new(StrategyKind::RandomSt, 7);
        let active = run_window(&mut s, 5000, false);
        let last = *active.last().unwrap();
        assert!(!s.exhausted(Tick::new(last)), "still firing");
        assert!(s.exhausted(Tick::new(last + 1)), "window passed");
        assert!(!s.exhausted(Tick::new(0)), "window still ahead");

        // Context-Aware: exhausted only after the burst completes.
        let mut s = AttackScheduler::new(StrategyKind::ContextAware, 1);
        assert!(!s.exhausted(Tick::new(0)), "may still trigger");
        assert!(s.update(Tick::new(1), true));
        assert!(!s.exhausted(Tick::new(2)), "burst running");
        assert!(!s.update(Tick::new(2), false));
        assert!(s.exhausted(Tick::new(3)), "one burst per run");

        // Halt is terminal for every strategy.
        let mut s = AttackScheduler::new(StrategyKind::RandomDur, 3);
        s.halt();
        assert!(s.exhausted(Tick::new(0)));
    }

    #[test]
    fn halt_latches_off() {
        let mut s = AttackScheduler::new(StrategyKind::ContextAware, 1);
        assert!(s.update(Tick::new(0), true));
        s.halt();
        for i in 1..100 {
            assert!(!s.update(Tick::new(i), true));
        }
        assert!(s.halted());
    }

    #[test]
    fn same_seed_same_draws() {
        let a = AttackScheduler::new(StrategyKind::RandomStDur, 42);
        let b = AttackScheduler::new(StrategyKind::RandomStDur, 42);
        assert_eq!(a.random_start(), b.random_start());
        assert_eq!(a.duration(), b.duration());
        let c = AttackScheduler::new(StrategyKind::RandomStDur, 43);
        assert!(a.random_start() != c.random_start() || a.duration() != c.duration());
    }

    #[test]
    fn labels_match_paper() {
        let labels: Vec<_> = StrategyKind::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(
            labels,
            vec!["Random-ST+DUR", "Random-ST", "Random-DUR", "Context-Aware"]
        );
    }
}
