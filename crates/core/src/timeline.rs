//! Attack timeline bookkeeping (paper Fig. 2).

use serde::{Deserialize, Serialize};
use units::{Seconds, Tick};

/// The timestamps of the attack-propagation timeline: activation `t_a`,
/// halting (driver engagement `t_ex`), plus activity counters. The hazard
/// time `t_h` — and hence TTH — is recorded by the platform's hazard
/// detector, which owns ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct AttackTimeline {
    activated_at: Option<Tick>,
    halted_at: Option<Tick>,
    active_ticks: u64,
    last_active: Option<Tick>,
}

impl AttackTimeline {
    /// Creates an empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one tick of attack activity.
    pub fn record_active(&mut self, tick: Tick) {
        if self.activated_at.is_none() {
            self.activated_at = Some(tick);
        }
        self.active_ticks += 1;
        self.last_active = Some(tick);
    }

    /// Records the halt (driver engagement).
    pub fn record_halt(&mut self, tick: Tick) {
        if self.halted_at.is_none() {
            self.halted_at = Some(tick);
        }
    }

    /// First activation (`t_a`), if the attack ever fired.
    pub fn activated_at(&self) -> Option<Tick> {
        self.activated_at
    }

    /// When the attack was halted by driver engagement, if it was.
    pub fn halted_at(&self) -> Option<Tick> {
        self.halted_at
    }

    /// Total ticks the attack was actively injecting.
    pub fn active_ticks(&self) -> u64 {
        self.active_ticks
    }

    /// The last tick the attack injected on.
    pub fn last_active(&self) -> Option<Tick> {
        self.last_active
    }

    /// Total active injection time.
    pub fn active_duration(&self) -> Seconds {
        Seconds::new(self.active_ticks as f64 * units::DT.secs())
    }

    /// Time-to-hazard for a hazard at `t_h`: `t_h − t_a`. `None` if the
    /// attack never activated or the hazard predates it.
    pub fn tth(&self, hazard_at: Tick) -> Option<Seconds> {
        let t_a = self.activated_at?;
        (hazard_at >= t_a).then(|| hazard_at.since(t_a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_first_activation_only() {
        let mut t = AttackTimeline::new();
        t.record_active(Tick::new(100));
        t.record_active(Tick::new(101));
        t.record_active(Tick::new(500)); // re-activation after a gap
        assert_eq!(t.activated_at(), Some(Tick::new(100)));
        assert_eq!(t.active_ticks(), 3);
        assert_eq!(t.last_active(), Some(Tick::new(500)));
        assert!((t.active_duration().secs() - 0.03).abs() < 1e-12);
    }

    #[test]
    fn tth_measures_from_activation() {
        let mut t = AttackTimeline::new();
        t.record_active(Tick::new(2000));
        assert_eq!(t.tth(Tick::new(2250)), Some(Seconds::new(2.5)));
        assert_eq!(t.tth(Tick::new(1999)), None, "hazard before activation");
    }

    #[test]
    fn tth_without_activation_is_none() {
        let t = AttackTimeline::new();
        assert_eq!(t.tth(Tick::new(100)), None);
    }

    #[test]
    fn halt_is_latched() {
        let mut t = AttackTimeline::new();
        t.record_halt(Tick::new(300));
        t.record_halt(Tick::new(400));
        assert_eq!(t.halted_at(), Some(Tick::new(300)));
    }
}
