//! The safety context table (paper Table I): the STPA-derived mapping from
//! system context to unsafe control action.

use serde::{Deserialize, Serialize};
use units::{Distance, Seconds, Speed};

use crate::{AttackAction, ContextState, SteerDirection};

/// The hazard a rule's unsafe action can lead to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PotentialHazard {
    /// H1: violating the safe following distance (→ forward collision A1).
    H1,
    /// H2: stopping/slowing with no lead present (→ rear-end collision A2).
    H2,
    /// H3: driving out of lane (→ road-side / neighbour-lane collision A3).
    H3,
}

/// Tunable thresholds of the context table. The paper gives ranges
/// (`t_safe ∈ [2,3] s`, `β₁, β₂ ∈ [20,35] mph`); the attacker fixes them from
/// domain knowledge.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RuleParams {
    /// Safe headway-time threshold.
    pub t_safe: Seconds,
    /// Minimum speed for a Deceleration attack to be worthwhile.
    pub beta1: Speed,
    /// Minimum speed for a Steering attack to be worthwhile.
    pub beta2: Speed,
    /// Lane-edge proximity threshold. The paper's Table I uses 0.1 m
    /// against CARLA's geometry; our lane-perception drift is larger, so the
    /// attacker treats "within 0.3 m of the edge" as at-the-edge.
    pub edge_threshold: Distance,
}

impl Default for RuleParams {
    fn default() -> Self {
        Self {
            t_safe: Seconds::new(2.4),
            beta1: Speed::from_mph(20.0),
            beta2: Speed::from_mph(25.0),
            edge_threshold: Distance::meters(0.45),
        }
    }
}

/// One row of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContextRule {
    /// Row number (1–4), for display.
    pub id: u8,
    /// The unsafe control action the rule licenses.
    pub action: AttackAction,
    /// The hazard the action can cause in this context.
    pub hazard: PotentialHazard,
}

/// Slack added to the headway threshold while an acceleration attack holds.
const HOLD_HWT_SLACK: Seconds = Seconds::new(1.0);
/// RS may dip slightly negative (sensor dither) without aborting a running
/// acceleration attack.
const HOLD_RS_SLACK: Speed = Speed::from_mps(-0.5);
/// A running steering attack tolerates the edge distance re-growing to this
/// much (perception jitter) before giving up.
const HOLD_EDGE_SLACK: Distance = Distance::meters(0.6);

impl ContextRule {
    /// Whether the live context matches this rule.
    pub fn matches(&self, s: &ContextState, p: &RuleParams) -> bool {
        match self.action {
            // Rule 1: HWT <= t_safe ∧ RS > 0 — accelerating rams the lead.
            AttackAction::Accelerate => match (s.hwt, s.rs) {
                (Some(hwt), Some(rs)) => hwt <= p.t_safe && rs > Speed::ZERO,
                _ => false,
            },
            // Rule 2: (HWT > t_safe ∧ RS <= 0, or no lead at all) ∧ fast —
            // braking hard strands the car in traffic.
            AttackAction::Decelerate => {
                let no_threat = match (s.hwt, s.rs) {
                    (Some(hwt), Some(rs)) => hwt > p.t_safe && rs <= Speed::ZERO,
                    _ => !s.lead_present,
                };
                no_threat && s.v_ego > p.beta1
            }
            // Rules 3/4: already at a lane edge and fast — steering over the
            // edge leaves the lane before the ALC can respond.
            AttackAction::Steer(SteerDirection::Left) => {
                s.d_left <= p.edge_threshold && s.v_ego > p.beta2
            }
            AttackAction::Steer(SteerDirection::Right) => {
                s.d_right <= p.edge_threshold && s.v_ego > p.beta2
            }
        }
    }

    /// Whether a *running* attack on this rule's action should keep going —
    /// a relaxed version of [`ContextRule::matches`]. The paper's strategy
    /// selects the attack *duration* context-sensitively: once launched at
    /// the critical moment, the attack runs until the hazard goal becomes
    /// unreachable (target lost, car slowed below the useful range, car left
    /// the targeted lane edge), not until the first sensor-noise blip.
    pub fn holds(&self, s: &ContextState, p: &RuleParams) -> bool {
        match self.action {
            AttackAction::Accelerate => match (s.hwt, s.rs) {
                (Some(hwt), Some(rs)) => {
                    hwt <= p.t_safe + HOLD_HWT_SLACK && rs > HOLD_RS_SLACK
                }
                _ => false,
            },
            AttackAction::Decelerate => s.v_ego > p.beta1,
            AttackAction::Steer(SteerDirection::Left) => {
                s.d_left <= HOLD_EDGE_SLACK && s.v_ego > p.beta2
            }
            AttackAction::Steer(SteerDirection::Right) => {
                s.d_right <= HOLD_EDGE_SLACK && s.v_ego > p.beta2
            }
        }
    }
}

/// The full context table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContextTable {
    rules: Vec<ContextRule>,
    params: RuleParams,
}

impl Default for ContextTable {
    fn default() -> Self {
        Self::standard(RuleParams::default())
    }
}

impl ContextTable {
    /// Builds the paper's four-row table with the given thresholds.
    pub fn standard(params: RuleParams) -> Self {
        Self {
            rules: vec![
                ContextRule {
                    id: 1,
                    action: AttackAction::Accelerate,
                    hazard: PotentialHazard::H1,
                },
                ContextRule {
                    id: 2,
                    action: AttackAction::Decelerate,
                    hazard: PotentialHazard::H2,
                },
                ContextRule {
                    id: 3,
                    action: AttackAction::Steer(SteerDirection::Left),
                    hazard: PotentialHazard::H3,
                },
                ContextRule {
                    id: 4,
                    action: AttackAction::Steer(SteerDirection::Right),
                    hazard: PotentialHazard::H3,
                },
            ],
            params,
        }
    }

    /// The thresholds in use.
    pub fn params(&self) -> &RuleParams {
        &self.params
    }

    /// The rules.
    pub fn rules(&self) -> &[ContextRule] {
        &self.rules
    }

    /// All unsafe actions licensed by the current context.
    pub fn matching_actions(&self, state: &ContextState) -> Vec<AttackAction> {
        self.rules
            .iter()
            .filter(|r| r.matches(state, &self.params))
            .map(|r| r.action)
            .collect()
    }

    /// Whether a specific action is licensed by the current context.
    pub fn action_matches(&self, state: &ContextState, action: AttackAction) -> bool {
        self.rules
            .iter()
            .any(|r| r.action == action && r.matches(state, &self.params))
    }

    /// Whether a *running* attack on `action` should keep going (see
    /// [`ContextRule::holds`]).
    pub fn action_holds(&self, state: &ContextState, action: AttackAction) -> bool {
        self.rules
            .iter()
            .any(|r| r.action == action && r.holds(state, &self.params))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> ContextState {
        ContextState {
            v_ego: Speed::from_mph(60.0),
            v_cruise: Speed::from_mph(60.0),
            lead_present: true,
            hwt: Some(Seconds::new(2.0)),
            rs: Some(Speed::from_mph(25.0)),
            d_left: Distance::meters(0.5),
            d_right: Distance::meters(1.4),
        }
    }

    #[test]
    fn rule1_fires_when_closing_inside_t_safe() {
        let table = ContextTable::default();
        let s = state();
        assert!(table.action_matches(&s, AttackAction::Accelerate));
        // Not closing: no match.
        let mut s2 = s;
        s2.rs = Some(Speed::from_mph(-5.0));
        assert!(!table.action_matches(&s2, AttackAction::Accelerate));
        // Large headway: no match.
        let mut s3 = s;
        s3.hwt = Some(Seconds::new(3.0));
        assert!(!table.action_matches(&s3, AttackAction::Accelerate));
    }

    #[test]
    fn rule2_fires_without_a_threatening_lead() {
        let table = ContextTable::default();
        // Case A: lead far and pulling away.
        let mut s = state();
        s.hwt = Some(Seconds::new(4.0));
        s.rs = Some(Speed::from_mph(-2.0));
        assert!(table.action_matches(&s, AttackAction::Decelerate));
        // Case B: no lead at all.
        let mut s = state();
        s.lead_present = false;
        s.hwt = None;
        s.rs = None;
        assert!(table.action_matches(&s, AttackAction::Decelerate));
        // Too slow: pointless.
        s.v_ego = Speed::from_mph(20.0);
        assert!(!table.action_matches(&s, AttackAction::Decelerate));
    }

    #[test]
    fn rules_3_and_4_fire_at_the_matching_edge() {
        let table = ContextTable::default();
        let mut s = state();
        s.d_left = Distance::meters(0.05);
        assert!(table.action_matches(&s, AttackAction::Steer(SteerDirection::Left)));
        assert!(!table.action_matches(&s, AttackAction::Steer(SteerDirection::Right)));
        s.d_left = Distance::meters(0.5);
        s.d_right = Distance::meters(0.02);
        assert!(table.action_matches(&s, AttackAction::Steer(SteerDirection::Right)));
        // Slow car: no steering attack.
        s.v_ego = Speed::from_mph(20.0);
        assert!(!table.action_matches(&s, AttackAction::Steer(SteerDirection::Right)));
    }

    #[test]
    fn multiple_contexts_can_match_simultaneously() {
        let table = ContextTable::default();
        let mut s = state();
        s.d_right = Distance::meters(0.05);
        let actions = table.matching_actions(&s);
        assert!(actions.contains(&AttackAction::Accelerate));
        assert!(actions.contains(&AttackAction::Steer(SteerDirection::Right)));
        assert_eq!(actions.len(), 2);
    }

    #[test]
    fn no_lead_means_no_acceleration_context() {
        let table = ContextTable::default();
        let mut s = state();
        s.lead_present = false;
        s.hwt = None;
        s.rs = None;
        assert!(!table.action_matches(&s, AttackAction::Accelerate));
    }

    #[test]
    fn table_has_four_rows_with_expected_hazards() {
        let table = ContextTable::default();
        let hazards: Vec<_> = table.rules().iter().map(|r| r.hazard).collect();
        assert_eq!(
            hazards,
            vec![
                PotentialHazard::H1,
                PotentialHazard::H2,
                PotentialHazard::H3,
                PotentialHazard::H3
            ]
        );
    }
}
