//! Per-attack-type breakdown probe for the random baselines (a
//! calibration companion to the `calibrate` binary).

use attack_core::{AttackType, StrategyKind, ValueMode};
use platform::experiment::{plan_attack_campaign, run_parallel, CampaignConfig};
fn main() {
    for strategy in [StrategyKind::RandomSt, StrategyKind::RandomStDur] {
        println!("== {} ==", strategy.label());
        for t in AttackType::ALL {
            let mut cfg = CampaignConfig::smoke(strategy, 5);
            cfg.value_mode = ValueMode::Fixed;
            let r = run_parallel(&plan_attack_campaign(&cfg, t));
            let haz = r.iter().filter(|x| x.hazardous()).count();
            let acc = r.iter().filter(|x| x.accident.is_some()).count();
            let h1 = r.iter().filter(|x| x.has_hazard(platform::HazardKind::H1)).count();
            let h2 = r.iter().filter(|x| x.has_hazard(platform::HazardKind::H2)).count();
            let h3 = r.iter().filter(|x| x.has_hazard(platform::HazardKind::H3)).count();
            println!("{:<22} haz {:>2}/60 acc {:>2} (H1 {h1} H2 {h2} H3 {h3})", t.label(), haz, acc);
        }
    }
}
