//! Calibration probe: prints attack-free statistics (hazards, invasions,
//! alerts, lateral-offset distribution) and per-attack-type context trigger
//! rates, to tune noise/threshold parameters against the paper's
//! Observations 1–3.

use attack_core::{AttackConfig, AttackType, StrategyKind, ValueMode};
use driver_model::DriverConfig;
use platform::experiment::{mix_seed, plan_no_attack_campaign, run_parallel, RunSpec};
use platform::{Harness, HarnessConfig};
use driving_sim::Scenario;

fn main() {
    let reps: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);

    // --- Attack-free campaign -------------------------------------------
    let specs = plan_no_attack_campaign(reps, 0xCA11B, DriverConfig::alert());
    let results = run_parallel(&specs);
    let sims = results.len();
    let hazards = results.iter().filter(|r| r.hazardous()).count();
    let alerts: u64 = results.iter().map(|r| r.alert_events).sum();
    let invasions: u64 = results.iter().map(|r| r.lane_invasions).sum();
    let secs: f64 = results.iter().map(|r| r.duration.secs()).sum();
    let driver_engaged = results.iter().filter(|r| r.driver_engaged.is_some()).count();
    println!("== attack-free ({sims} sims) ==");
    println!("hazards: {hazards}  (must be 0)");
    println!("alert events: {alerts}  (paper: ~2 per 1440)");
    println!("driver engagements: {driver_engaged}  (must be 0)");
    println!("invasions/s: {:.3}  (paper: 0.46)", invasions as f64 / secs);
    use platform::HazardKind;
    for kind in [HazardKind::H1, HazardKind::H2, HazardKind::H3] {
        let c = results.iter().filter(|r| r.has_hazard(kind)).count();
        if c > 0 {
            println!("  {kind:?}: {c}");
        }
    }
    let accidents = results.iter().filter(|r| r.accident.is_some()).count();
    println!("  accidents: {accidents}");

    // Offset distribution of one run.
    let scenario = Scenario::matrix()[4]; // S2 @ 70 m
    let mut h = Harness::new(HarnessConfig::no_attack(scenario, 42));
    let mut ds = Vec::new();
    while !h.finished() {
        h.step();
        ds.push(h.world().ego().d().raw());
    }
    let mean = ds.iter().sum::<f64>() / ds.len() as f64;
    let std = (ds.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / ds.len() as f64).sqrt();
    let max = ds.iter().cloned().fold(f64::MIN, f64::max);
    let min = ds.iter().cloned().fold(f64::MAX, f64::min);
    println!("offset: mean {mean:.3} std {std:.3} range [{min:.3}, {max:.3}]");

    // --- Context trigger rates per attack type ---------------------------
    println!("\n== context-aware trigger rates ({} sims each) ==", reps as usize * 12);
    for attack_type in AttackType::ALL {
        let mut specs = Vec::new();
        for (si, scenario) in Scenario::matrix().into_iter().enumerate() {
            for rep in 0..reps {
                let seed = mix_seed(7, &[si as u64, rep as u64]);
                specs.push(RunSpec {
                    attack: Some(AttackConfig {
                        attack_type,
                        strategy: StrategyKind::ContextAware,
                        value_mode: ValueMode::Strategic,
                        seed,
                        ..AttackConfig::default()
                    }),
                    scenario,
                    seed,
                    driver: DriverConfig::alert(),
                    panda_enabled: false,
                    defense: defense::DefensePolicy::Off,
                });
            }
        }
        let results = run_parallel(&specs);
        let n = results.len();
        let triggered = results.iter().filter(|r| r.attack_activated.is_some()).count();
        let hazards = results.iter().filter(|r| r.hazardous()).count();
        let accidents = results.iter().filter(|r| r.accident.is_some()).count();
        let alerted = results.iter().filter(|r| r.alerted()).count();
        let tths: Vec<f64> = results.iter().filter_map(|r| r.tth.map(|t| t.secs())).collect();
        let tth_mean = if tths.is_empty() { f64::NAN } else { tths.iter().sum::<f64>() / tths.len() as f64 };
        let mean_start: f64 = results
            .iter()
            .filter_map(|r| r.attack_activated.map(|t| t.secs()))
            .sum::<f64>()
            / triggered.max(1) as f64;
        println!(
            "{:<22} trig {:>3}/{n}  haz {:>3}  acc {:>3}  alert {:>2}  TTH {:>5.2}  t_a {:>5.1}",
            attack_type.label(),
            triggered,
            hazards,
            accidents,
            alerted,
            tth_mean,
            mean_start,
        );
    }
}
