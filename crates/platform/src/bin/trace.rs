//! Flight-recorder CLI: replay a seeded run with the recorder attached and
//! dump its trace — or diff two runs to find where they diverge.
//!
//! ```text
//! cargo run --release --bin trace -- --scenario S2 --gap 100 --seed 3 \
//!     --attack steer-right --mode fixed --last 20 --csv /tmp/run.csv
//! cargo run --release --bin trace -- --scenario S1 --gap 70 --seed 5 \
//!     --attack accel --diff-seed 6
//! ```

use attack_core::{AttackConfig, AttackType, StrategyKind, ValueMode};
use driver_model::DriverConfig;
use driving_sim::{Scenario, ScenarioId};
use platform::trace::{diff, to_csv, to_json, TraceConfig, TraceRecorder};
use platform::{Harness, HarnessConfig, SimResult};
use units::Distance;

struct Args {
    scenario: ScenarioId,
    gap: f64,
    seed: u64,
    attack: Option<AttackType>,
    strategy: StrategyKind,
    mode: ValueMode,
    driver: DriverConfig,
    panda: bool,
    last: usize,
    csv: Option<String>,
    json: Option<String>,
    diff_seed: Option<u64>,
}

const USAGE: &str = "usage: trace [options]
  --scenario S1|S2|S3|S4   lead behaviour (default S1)
  --gap METERS             initial gap (default 70)
  --seed N                 world/sensor seed (default 0)
  --attack KIND            accel|decel|steer-left|steer-right|
                           accel-steer|decel-steer|none (default none)
  --strategy KIND          context-aware|random-st|random-dur|random-st-dur
                           (default context-aware)
  --mode fixed|strategic   value-corruption mode (default strategic)
  --driver alert|inattentive   simulated driver (default alert)
  --panda                  enable Panda firmware checks
  --last N                 trace-tail rows to print (default 15)
  --csv PATH               write the full trace as CSV
  --json PATH              write the full trace as JSON
  --diff-seed M            run again with seed M and report the divergence";

fn fail(msg: &str) -> ! {
    eprintln!("trace: {msg}\n\n{USAGE}");
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        scenario: ScenarioId::S1,
        gap: 70.0,
        seed: 0,
        attack: None,
        strategy: StrategyKind::ContextAware,
        mode: ValueMode::Strategic,
        driver: DriverConfig::alert(),
        panda: false,
        last: 15,
        csv: None,
        json: None,
        diff_seed: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| fail(&format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--scenario" => {
                args.scenario = match value("--scenario").as_str() {
                    "S1" | "s1" => ScenarioId::S1,
                    "S2" | "s2" => ScenarioId::S2,
                    "S3" | "s3" => ScenarioId::S3,
                    "S4" | "s4" => ScenarioId::S4,
                    other => fail(&format!("unknown scenario {other:?}")),
                }
            }
            "--gap" => {
                args.gap = value("--gap")
                    .parse()
                    .unwrap_or_else(|_| fail("--gap needs a number"))
            }
            "--seed" => {
                args.seed = value("--seed")
                    .parse()
                    .unwrap_or_else(|_| fail("--seed needs an integer"))
            }
            "--attack" => {
                args.attack = match value("--attack").as_str() {
                    "none" => None,
                    "accel" => Some(AttackType::Acceleration),
                    "decel" => Some(AttackType::Deceleration),
                    "steer-left" => Some(AttackType::SteeringLeft),
                    "steer-right" => Some(AttackType::SteeringRight),
                    "accel-steer" => Some(AttackType::AccelerationSteering),
                    "decel-steer" => Some(AttackType::DecelerationSteering),
                    other => fail(&format!("unknown attack {other:?}")),
                }
            }
            "--strategy" => {
                args.strategy = match value("--strategy").as_str() {
                    "context-aware" => StrategyKind::ContextAware,
                    "random-st" => StrategyKind::RandomSt,
                    "random-dur" => StrategyKind::RandomDur,
                    "random-st-dur" => StrategyKind::RandomStDur,
                    other => fail(&format!("unknown strategy {other:?}")),
                }
            }
            "--mode" => {
                args.mode = match value("--mode").as_str() {
                    "fixed" => ValueMode::Fixed,
                    "strategic" => ValueMode::Strategic,
                    other => fail(&format!("unknown mode {other:?}")),
                }
            }
            "--driver" => {
                args.driver = match value("--driver").as_str() {
                    "alert" => DriverConfig::alert(),
                    "inattentive" => DriverConfig::inattentive(),
                    other => fail(&format!("unknown driver {other:?}")),
                }
            }
            "--panda" => args.panda = true,
            "--last" => {
                args.last = value("--last")
                    .parse()
                    .unwrap_or_else(|_| fail("--last needs an integer"))
            }
            "--csv" => args.csv = Some(value("--csv")),
            "--json" => args.json = Some(value("--json")),
            "--diff-seed" => {
                args.diff_seed = Some(
                    value("--diff-seed")
                        .parse()
                        .unwrap_or_else(|_| fail("--diff-seed needs an integer")),
                )
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0)
            }
            other => fail(&format!("unknown flag {other:?}")),
        }
    }
    args
}

fn config_for(args: &Args, seed: u64) -> HarnessConfig {
    let scenario = Scenario::new(args.scenario, Distance::meters(args.gap));
    let mut cfg = match args.attack {
        Some(attack_type) => HarnessConfig::with_attack(
            scenario,
            seed,
            AttackConfig {
                attack_type,
                strategy: args.strategy,
                value_mode: args.mode,
                ..AttackConfig::default()
            },
        ),
        None => HarnessConfig::no_attack(scenario, seed),
    };
    cfg.driver = args.driver;
    cfg.panda_enabled = args.panda;
    cfg.traced(TraceConfig::full_run())
}

fn write_or_die(path: &str, contents: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("trace: cannot write {path}: {e}");
        std::process::exit(1);
    }
}

fn replay(args: &Args, seed: u64) -> (SimResult, TraceRecorder) {
    let (result, recorder) = Harness::new(config_for(args, seed)).run_traced();
    (result, recorder.expect("tracing is always on in this binary"))
}

fn opt_time(t: Option<units::Seconds>) -> String {
    t.map_or("-".to_string(), |s| format!("{:.2}s", s.secs()))
}

fn print_summary(args: &Args, seed: u64, result: &SimResult, rec: &TraceRecorder) {
    println!(
        "run: scenario {} gap {:.0} m seed {} attack {}",
        args.scenario.label(),
        args.gap,
        seed,
        args.attack.map_or("none", AttackType::label),
    );
    println!(
        "outcome: hazards {:?}  accident {}  alerts {}  attack t_a {}  driver t_d {} t_ex {}",
        result.hazard_kinds,
        result
            .accident
            .map_or("-".to_string(), |(t, k)| format!("{k:?}@{:.2}s", t.secs())),
        result.alert_events,
        opt_time(result.attack_activated),
        opt_time(result.driver_noticed),
        opt_time(result.driver_engaged),
    );
    let m = rec.metrics();
    println!(
        "metrics: {} ticks  bus {:?}  rewritten {}  panda-blocked {}  attack-active {}  driver-engaged {}",
        m.ticks,
        m.bus_published,
        m.frames_rewritten,
        m.panda_blocked,
        m.attack_active_ticks,
        m.driver_engaged_ticks,
    );
    println!(
        "distributions: hwt mean {:.2}s {}  accel mean {:+.2} {}  lane-offset mean {:+.2} m {}",
        m.headway.mean(),
        m.headway.sparkline(),
        m.applied_accel.mean(),
        m.applied_accel.sparkline(),
        m.lane_offset.mean(),
        m.lane_offset.sparkline(),
    );
    if rec.events().is_empty() {
        println!("events: none");
    } else {
        println!("events:");
        for e in rec.events() {
            println!("  {e}");
        }
    }
    println!("last {} ticks:\n{}", args.last, rec.tail_table(args.last));
}

fn main() {
    let args = parse_args();
    let (result, rec) = replay(&args, args.seed);
    print_summary(&args, args.seed, &result, &rec);

    if let Some(path) = &args.csv {
        write_or_die(path, &to_csv(rec.ring().iter()));
        println!("wrote {} ticks of CSV to {path}", rec.ring().len());
    }
    if let Some(path) = &args.json {
        write_or_die(path, &to_json(rec.ring().iter()));
        println!("wrote {} ticks of JSON to {path}", rec.ring().len());
    }

    if let Some(other_seed) = args.diff_seed {
        println!("\n=== diff against seed {other_seed} ===");
        let (other_result, other_rec) = replay(&args, other_seed);
        print_summary(&args, other_seed, &other_result, &other_rec);
        let d = diff(rec.ring().iter(), other_rec.ring().iter());
        println!("{d}");
    }
}
