//! Aggregation of [`SimResult`]s into the paper's table rows.

use serde::{Deserialize, Serialize};

use crate::{HazardKind, SimResult};

/// Mean and standard deviation of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MeanStd {
    /// Sample mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Sample count.
    pub n: usize,
}

/// Computes mean ± std of a sample.
pub fn mean_std(samples: &[f64]) -> MeanStd {
    let n = samples.len();
    if n == 0 {
        return MeanStd::default();
    }
    let mean = samples.iter().sum::<f64>() / n as f64;
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
    MeanStd {
        mean,
        std: var.sqrt(),
        n,
    }
}

/// One row of the paper's Table IV: aggregate outcome of a strategy's
/// campaign with an alert driver.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StrategyAggregate {
    /// Strategy label.
    pub label: String,
    /// Number of simulations.
    pub sims: usize,
    /// Simulations in which the ADAS raised at least one alert.
    pub alerted: usize,
    /// Simulations with at least one hazard.
    pub hazards: usize,
    /// Simulations ending in an accident.
    pub accidents: usize,
    /// Simulations with a hazard but no alert.
    pub hazards_no_alert: usize,
    /// Lane-invasion events per simulated second, across the campaign.
    pub invasions_per_sec: f64,
    /// Time-to-hazard over the hazardous, attack-activated simulations.
    pub tth: MeanStd,
    /// FCW events across the campaign (Observation 2 expects 0).
    pub fcw_events: u64,
}

impl StrategyAggregate {
    /// Aggregates a campaign.
    pub fn from_results(label: impl Into<String>, results: &[SimResult]) -> Self {
        let sims = results.len();
        let alerted = results.iter().filter(|r| r.alerted()).count();
        let hazards = results.iter().filter(|r| r.hazardous()).count();
        let accidents = results.iter().filter(|r| r.accident.is_some()).count();
        let hazards_no_alert = results.iter().filter(|r| r.hazard_without_alert()).count();
        let total_secs: f64 = results.iter().map(|r| r.duration.secs()).sum();
        let total_invasions: u64 = results.iter().map(|r| r.lane_invasions).sum();
        let tths: Vec<f64> = results
            .iter()
            .filter_map(|r| r.tth.map(|t| t.secs()))
            .collect();
        let fcw_events = results.iter().map(|r| r.fcw_events).sum();
        Self {
            label: label.into(),
            sims,
            alerted,
            hazards,
            accidents,
            hazards_no_alert,
            invasions_per_sec: if total_secs > 0.0 {
                total_invasions as f64 / total_secs
            } else {
                0.0
            },
            tth: mean_std(&tths),
            fcw_events,
        }
    }

    /// Percentage helper: `count / sims`.
    pub fn pct(&self, count: usize) -> f64 {
        if self.sims == 0 {
            0.0
        } else {
            100.0 * count as f64 / self.sims as f64
        }
    }
}

/// One row of the paper's Table V: a per-attack-type comparison of paired
/// campaigns (with an alert driver vs. with an inattentive driver, same
/// seeds), used to attribute prevented and newly-introduced hazards to the
/// driver.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PairedAggregate {
    /// Attack-type label.
    pub label: String,
    /// Number of simulation pairs.
    pub sims: usize,
    /// With-driver campaign: alerted simulations.
    pub alerted: usize,
    /// With-driver campaign: hazardous simulations.
    pub hazards: usize,
    /// With-driver campaign: accidents.
    pub accidents: usize,
    /// With-driver TTH.
    pub tth: MeanStd,
    /// No-driver campaign: hazardous simulations.
    pub hazards_no_driver: usize,
    /// No-driver campaign: accidents.
    pub accidents_no_driver: usize,
    /// Pairs where the no-driver run was hazardous but the with-driver run
    /// avoided every hazard kind of the no-driver run.
    pub prevented_hazards: usize,
    /// Pairs where the with-driver run has a hazard kind the no-driver run
    /// did not (hazards introduced by the intervention itself).
    pub new_hazards: usize,
    /// Pairs where the no-driver run crashed and the with-driver run did not.
    pub prevented_accidents: usize,
}

impl PairedAggregate {
    /// Builds the paired aggregate. `with_driver[i]` and `no_driver[i]` must
    /// share a seed.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths or mismatched seeds.
    pub fn from_pairs(
        label: impl Into<String>,
        with_driver: &[SimResult],
        no_driver: &[SimResult],
    ) -> Self {
        assert_eq!(with_driver.len(), no_driver.len(), "campaigns must pair up");
        let mut prevented_hazards = 0;
        let mut new_hazards = 0;
        let mut prevented_accidents = 0;
        for (w, n) in with_driver.iter().zip(no_driver) {
            assert_eq!(w.seed, n.seed, "pairs must share seeds");
            let kinds_w: Vec<HazardKind> = w.hazard_kinds.clone();
            let kinds_n: Vec<HazardKind> = n.hazard_kinds.clone();
            if n.hazardous() && kinds_n.iter().all(|k| !kinds_w.contains(k)) {
                prevented_hazards += 1;
            }
            if kinds_w.iter().any(|k| !kinds_n.contains(k)) {
                new_hazards += 1;
            }
            if n.accident.is_some() && w.accident.is_none() {
                prevented_accidents += 1;
            }
        }
        let tths: Vec<f64> = with_driver
            .iter()
            .filter_map(|r| r.tth.map(|t| t.secs()))
            .collect();
        Self {
            label: label.into(),
            sims: with_driver.len(),
            alerted: with_driver.iter().filter(|r| r.alerted()).count(),
            hazards: with_driver.iter().filter(|r| r.hazardous()).count(),
            accidents: with_driver.iter().filter(|r| r.accident.is_some()).count(),
            tth: mean_std(&tths),
            hazards_no_driver: no_driver.iter().filter(|r| r.hazardous()).count(),
            accidents_no_driver: no_driver.iter().filter(|r| r.accident.is_some()).count(),
            prevented_hazards,
            new_hazards,
            prevented_accidents,
        }
    }

    /// Percentage helper.
    pub fn pct(&self, count: usize) -> f64 {
        if self.sims == 0 {
            0.0
        } else {
            100.0 * count as f64 / self.sims as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AccidentKind;
    use units::Seconds;

    fn result(
        seed: u64,
        hazards: Vec<HazardKind>,
        accident: bool,
        alerts: u64,
        tth: Option<f64>,
    ) -> SimResult {
        SimResult {
            seed,
            first_hazard: hazards.first().map(|k| (Seconds::new(20.0), *k)),
            hazard_kinds: hazards,
            accident: accident.then_some((Seconds::new(25.0), AccidentKind::A1)),
            alert_events: alerts,
            fcw_events: 0,
            lane_invasions: 10,
            duration: Seconds::new(50.0),
            attack_activated: Some(Seconds::new(18.0)),
            tth: tth.map(Seconds::new),
            driver_noticed: None,
            driver_engaged: None,
            frames_rewritten: 100,
            panda_blocked: 0,
            invariant_detected: None,
            monitor_detected: None,
            degraded_ticks: 0,
            failsafe_ticks: 0,
            first_degraded: None,
            first_failsafe: None,
            recovery_latency: None,
            faults_injected: 0,
            ids_detected: None,
            gate_rejections: 0,
        }
    }

    #[test]
    fn mean_std_basics() {
        let ms = mean_std(&[2.0, 4.0]);
        assert!((ms.mean - 3.0).abs() < 1e-12);
        assert!((ms.std - 1.0).abs() < 1e-12);
        assert_eq!(ms.n, 2);
        assert_eq!(mean_std(&[]), MeanStd::default());
    }

    #[test]
    fn strategy_aggregate_counts() {
        let results = vec![
            result(0, vec![HazardKind::H1], true, 0, Some(2.0)),
            result(1, vec![HazardKind::H3], false, 2, Some(3.0)),
            result(2, vec![], false, 0, None),
        ];
        let agg = StrategyAggregate::from_results("Test", &results);
        assert_eq!(agg.sims, 3);
        assert_eq!(agg.hazards, 2);
        assert_eq!(agg.accidents, 1);
        assert_eq!(agg.alerted, 1);
        assert_eq!(agg.hazards_no_alert, 1, "H1 run had no alert");
        assert_eq!(agg.tth.n, 2);
        assert!((agg.tth.mean - 2.5).abs() < 1e-12);
        assert!((agg.invasions_per_sec - 30.0 / 150.0).abs() < 1e-12);
        assert!((agg.pct(2) - 66.66).abs() < 0.01);
    }

    #[test]
    fn paired_aggregate_attributes_prevention_and_new_hazards() {
        // Pair 0: no-driver H1; with-driver nothing -> prevented.
        // Pair 1: no-driver H1 + crash; with-driver H2 only -> prevented
        //         (the H1 is gone), new hazard (H2 appeared), prevented
        //         accident.
        // Pair 2: both H3 -> neither prevented nor new.
        let with_driver = vec![
            result(0, vec![], false, 0, None),
            result(1, vec![HazardKind::H2], false, 0, Some(4.0)),
            result(2, vec![HazardKind::H3], true, 1, Some(1.5)),
        ];
        let no_driver = vec![
            result(0, vec![HazardKind::H1], false, 0, Some(2.0)),
            result(1, vec![HazardKind::H1], true, 0, Some(2.0)),
            result(2, vec![HazardKind::H3], true, 0, Some(1.5)),
        ];
        let agg = PairedAggregate::from_pairs("Acceleration", &with_driver, &no_driver);
        assert_eq!(agg.prevented_hazards, 2);
        assert_eq!(agg.new_hazards, 1);
        assert_eq!(agg.prevented_accidents, 1);
        assert_eq!(agg.hazards, 2);
        assert_eq!(agg.hazards_no_driver, 3);
        assert_eq!(agg.accidents, 1);
        assert_eq!(agg.accidents_no_driver, 2);
    }

    #[test]
    #[should_panic(expected = "pairs must share seeds")]
    fn paired_aggregate_rejects_mismatched_seeds() {
        let a = vec![result(0, vec![], false, 0, None)];
        let b = vec![result(1, vec![], false, 0, None)];
        let _ = PairedAggregate::from_pairs("x", &a, &b);
    }
}
