//! Defense-evaluation campaigns: every defense deployment against every
//! threat the platform can mount.
//!
//! Where [`experiment`](crate::experiment) measures the *undefended* attack
//! surface and [`resilience`](crate::resilience) measures graceful
//! degradation under a fixed deployment, this module crosses the two: each
//! [`DefensePolicy`] (off / observe / degrade / fail-safe) runs against a
//! clean baseline, the paper's stealthiest Context-Aware strategic attacker,
//! and the full fault matrix. The aggregate answers three questions per
//! (policy, threat) cell:
//!
//! 1. **Detection** — did any detector fire, which one, and how long after
//!    the threat's onset?
//! 2. **Outcome** — hazard/accident rates with the policy acting vs.
//!    observing, i.e. does acting on detections actually buy safety?
//! 3. **False positives** — on the clean threat every detection, gate
//!    rejection and forced degradation is spurious and must be zero.
//!
//! Every run is seeded through [`mix_seed`] with the policy *excluded* from
//! the seed, so the same (threat, scenario, rep) sees the same world and
//! noise under every policy — cells differ only by the defense. Campaigns
//! are bit-reproducible across worker counts (asserted by the `defense`
//! bench before `BENCH_defense.json` is written).

use attack_core::{AttackConfig, AttackType, StrategyKind, ValueMode};
use defense::DefensePolicy;
use driving_sim::Scenario;
use faultinj::{FaultKind, FaultSchedule, FaultSpec, FaultTarget};
use serde::{Deserialize, Serialize};
use units::Seconds;

use crate::experiment::{mix_seed, run_campaign_cells, RunnerConfig};
use crate::resilience::{FAULT_DURATION, FAULT_START, INTENSITIES};
use crate::{Harness, HarnessConfig, SimResult};

/// The defense deployments a campaign sweeps, weakest to strongest.
pub const POLICIES: [DefensePolicy; 4] = [
    DefensePolicy::Off,
    DefensePolicy::Observe,
    DefensePolicy::Degrade,
    DefensePolicy::FailSafe,
];

/// One threat a campaign mounts against each defense deployment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Threat {
    /// No attack, no faults: the false-positive baseline.
    Clean,
    /// The paper's stealthiest case: a Context-Aware attack with strategic
    /// values.
    Attack(AttackType),
    /// One fault kind at one intensity over the standard resilience window.
    Fault(FaultKind, f64),
}

impl Threat {
    /// Stable snake-case label used in reports and `BENCH_defense.json`.
    pub fn label(&self) -> String {
        match self {
            Threat::Clean => "clean".to_string(),
            Threat::Attack(t) => format!("attack_{}", t.label()),
            Threat::Fault(k, i) => format!("fault_{}@{:.1}", k.label(), i),
        }
    }

    /// When the threat starts acting on the run, if it is scheduled (an
    /// attack's onset is context-dependent and read from the result
    /// instead).
    fn scheduled_onset(&self) -> Option<Seconds> {
        match self {
            Threat::Clean | Threat::Attack(_) => None,
            Threat::Fault(..) => Some(units::Tick::new(FAULT_START).time()),
        }
    }
}

/// The full threat list: clean, all six Context-Aware attack types, and the
/// complete fault matrix at the resilience intensities.
pub fn threat_matrix() -> Vec<Threat> {
    let mut threats = vec![Threat::Clean];
    threats.extend(AttackType::ALL.into_iter().map(Threat::Attack));
    for kind in FaultKind::ALL {
        for &intensity in &INTENSITIES {
            threats.push(Threat::Fault(kind, intensity));
        }
    }
    threats
}

/// Configuration of a defense campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DefenseCampaignConfig {
    /// Base seed mixed into every run's seed.
    pub base_seed: u64,
    /// Repetitions per (policy, threat, scenario cell).
    pub reps: u32,
}

impl DefenseCampaignConfig {
    /// A campaign with the given base seed and repetition count.
    pub fn new(base_seed: u64, reps: u32) -> Self {
        Self { base_seed, reps }
    }
}

/// One planned run of a defense campaign.
#[derive(Debug, Clone, Copy)]
pub struct DefenseSpec {
    /// Defense deployment under test.
    pub policy: DefensePolicy,
    /// The threat mounted against it.
    pub threat: Threat,
    /// The scenario cell.
    pub scenario: Scenario,
    /// Run seed. Identical across policies for the same
    /// (threat, scenario, rep), so policy columns are directly comparable.
    pub seed: u64,
}

impl DefenseSpec {
    /// The harness configuration of the run.
    pub fn harness_config(&self) -> HarnessConfig {
        let base = match self.threat {
            Threat::Clean => HarnessConfig::no_attack(self.scenario, self.seed),
            Threat::Attack(attack_type) => HarnessConfig::with_attack(
                self.scenario,
                self.seed,
                AttackConfig {
                    attack_type,
                    strategy: StrategyKind::ContextAware,
                    value_mode: ValueMode::Strategic,
                    seed: self.seed,
                    ..AttackConfig::default()
                },
            ),
            Threat::Fault(kind, intensity) => {
                let spec = FaultSpec::window(kind, FaultTarget::All, FAULT_START, FAULT_DURATION)
                    .with_intensity(intensity);
                HarnessConfig::no_attack(self.scenario, self.seed)
                    .with_faults(FaultSchedule::single(spec))
            }
        };
        base.with_defense(self.policy)
    }

    /// Executes the run.
    pub fn run(&self) -> SimResult {
        Harness::new(self.harness_config()).run()
    }
}

/// Expands a campaign into its work list, policy-major then threat then
/// scenario then repetition — the fixed order the aggregator relies on.
pub fn plan_defense_campaign(cfg: &DefenseCampaignConfig) -> Vec<DefenseSpec> {
    let threats = threat_matrix();
    let mut specs = Vec::new();
    for &policy in &POLICIES {
        for (ti, &threat) in threats.iter().enumerate() {
            for (si, scenario) in Scenario::matrix().into_iter().enumerate() {
                for rep in 0..cfg.reps {
                    specs.push(DefenseSpec {
                        policy,
                        threat,
                        scenario,
                        // The policy is deliberately NOT mixed in: paired
                        // cells share world seeds.
                        seed: mix_seed(cfg.base_seed, &[ti as u64, si as u64, rep as u64]),
                    });
                }
            }
        }
    }
    specs
}

/// Aggregate outcome of one (policy, threat) campaign cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DefenseCell {
    /// Policy label ([`DefensePolicy::label`]).
    pub policy: String,
    /// Threat label ([`Threat::label`]).
    pub threat: String,
    /// Runs aggregated.
    pub runs: u64,
    /// Runs with at least one hazard.
    pub hazardous_runs: u64,
    /// Runs ending in an accident.
    pub accident_runs: u64,
    /// Runs in which any detector (IDS, control-invariant, context
    /// monitor) alarmed.
    pub detected_runs: u64,
    /// Runs in which the CAN IDS alarmed.
    pub ids_detected_runs: u64,
    /// Runs in which the control-invariant detector alarmed.
    pub invariant_detected_runs: u64,
    /// Runs in which the context monitor alarmed.
    pub monitor_detected_runs: u64,
    /// Runs in which the plausibility gates rejected at least one reading.
    pub gate_rejection_runs: u64,
    /// Total readings the gates rejected (or flagged, under observe).
    pub gate_rejections: u64,
    /// Runs that left the nominal degradation state at least once.
    pub degraded_runs: u64,
    /// Runs with at least one spurious FCW (meaningful on fault/clean
    /// threats, which mount no attack).
    pub false_fcw_runs: u64,
    /// Mean seconds from threat onset to the earliest detection, over the
    /// runs where both are defined. `None` when no run was detected.
    pub mean_detection_s: Option<f64>,
}

impl DefenseCell {
    fn from_results(policy: DefensePolicy, threat: Threat, results: &[SimResult]) -> Self {
        let earliest = |r: &SimResult| -> Option<Seconds> {
            [r.ids_detected, r.invariant_detected, r.monitor_detected]
                .into_iter()
                .flatten()
                .reduce(Seconds::min)
        };
        let latencies: Vec<f64> = results
            .iter()
            .filter_map(|r| {
                let d = earliest(r)?;
                let onset = threat.scheduled_onset().or(r.attack_activated)?;
                (d >= onset).then(|| (d - onset).secs())
            })
            .collect();
        Self {
            policy: policy.label().to_string(),
            threat: threat.label(),
            runs: results.len() as u64,
            hazardous_runs: results.iter().filter(|r| r.hazardous()).count() as u64,
            accident_runs: results.iter().filter(|r| r.accident.is_some()).count() as u64,
            detected_runs: results.iter().filter(|r| earliest(r).is_some()).count() as u64,
            ids_detected_runs: results.iter().filter(|r| r.ids_detected.is_some()).count() as u64,
            invariant_detected_runs: results
                .iter()
                .filter(|r| r.invariant_detected.is_some())
                .count() as u64,
            monitor_detected_runs: results
                .iter()
                .filter(|r| r.monitor_detected.is_some())
                .count() as u64,
            gate_rejection_runs: results.iter().filter(|r| r.gate_rejections > 0).count() as u64,
            gate_rejections: results.iter().map(|r| r.gate_rejections).sum(),
            degraded_runs: results.iter().filter(|r| r.degraded_ticks > 0).count() as u64,
            false_fcw_runs: results.iter().filter(|r| r.fcw_events > 0).count() as u64,
            mean_detection_s: (!latencies.is_empty())
                .then(|| latencies.iter().sum::<f64>() / latencies.len() as f64),
        }
    }

    fn to_json(&self) -> String {
        let detection = match self.mean_detection_s {
            Some(s) => format!("{s:.3}"),
            None => "null".to_string(),
        };
        format!(
            "{{\"policy\": \"{}\", \"threat\": \"{}\", \"runs\": {}, \
\"hazardous_runs\": {}, \"accident_runs\": {}, \"detected_runs\": {}, \
\"ids_detected_runs\": {}, \"invariant_detected_runs\": {}, \
\"monitor_detected_runs\": {}, \"gate_rejection_runs\": {}, \
\"gate_rejections\": {}, \"degraded_runs\": {}, \"false_fcw_runs\": {}, \
\"mean_detection_s\": {}}}",
            self.policy,
            self.threat,
            self.runs,
            self.hazardous_runs,
            self.accident_runs,
            self.detected_runs,
            self.ids_detected_runs,
            self.invariant_detected_runs,
            self.monitor_detected_runs,
            self.gate_rejection_runs,
            self.gate_rejections,
            self.degraded_runs,
            self.false_fcw_runs,
            detection,
        )
    }
}

/// A full campaign's aggregate: one [`DefenseCell`] per (policy, threat),
/// in sweep order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DefenseReport {
    /// Base seed of the campaign.
    pub base_seed: u64,
    /// Repetitions per cell the campaign was planned with.
    pub reps: u32,
    /// Total runs executed.
    pub total_runs: u64,
    /// Per-(policy, threat) aggregates.
    pub cells: Vec<DefenseCell>,
}

impl DefenseReport {
    /// Renders the report as deterministic, fixed-precision JSON
    /// (hand-rolled; the vendored `serde` is an API stub).
    pub fn to_json(&self) -> String {
        let cells: Vec<String> = self
            .cells
            .iter()
            .map(|c| format!("    {}", c.to_json()))
            .collect();
        format!(
            "{{\n  \"bench\": \"defense\",\n  \"base_seed\": {},\n  \
\"reps_per_cell\": {},\n  \"cores\": {},\n  \"total_runs\": {},\n  \
\"cells\": [\n{}\n  ]\n}}\n",
            self.base_seed,
            self.reps,
            crate::experiment::detected_cores(),
            self.total_runs,
            cells.join(",\n"),
        )
    }

    /// The cell for a (policy, threat) pair, if the campaign ran it.
    pub fn cell(&self, policy: DefensePolicy, threat: &Threat) -> Option<&DefenseCell> {
        let (p, t) = (policy.label(), threat.label());
        self.cells
            .iter()
            .find(|c| c.policy == p && c.threat == t)
    }
}

/// Runs a defense campaign with an explicit runner configuration.
pub fn run_defense_campaign_with(
    runner: RunnerConfig,
    cfg: &DefenseCampaignConfig,
) -> DefenseReport {
    let specs = plan_defense_campaign(cfg);
    let results = run_campaign_cells(runner, specs, DefenseSpec::run);
    let threats = threat_matrix();
    let per_cell = Scenario::matrix().len() * cfg.reps.max(1) as usize;
    let cells = results
        .chunks(per_cell)
        .enumerate()
        .map(|(ci, chunk)| {
            let policy = POLICIES[ci / threats.len()];
            let threat = threats[ci % threats.len()];
            DefenseCell::from_results(policy, threat, chunk)
        })
        .collect();
    DefenseReport {
        base_seed: cfg.base_seed,
        reps: cfg.reps,
        total_runs: results.len() as u64,
        cells,
    }
}

/// Runs a defense campaign with the default (all-cores) runner.
pub fn run_defense_campaign(cfg: &DefenseCampaignConfig) -> DefenseReport {
    run_defense_campaign_with(RunnerConfig::default(), cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_covers_every_policy_threat_cell_deterministically() {
        let cfg = DefenseCampaignConfig::new(3, 2);
        let a = plan_defense_campaign(&cfg);
        let b = plan_defense_campaign(&cfg);
        let threats = threat_matrix();
        assert_eq!(
            a.len(),
            POLICIES.len() * threats.len() * Scenario::matrix().len() * 2
        );
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.policy, y.policy);
            assert_eq!(x.threat, y.threat);
        }
    }

    #[test]
    fn paired_policies_share_world_seeds() {
        let cfg = DefenseCampaignConfig::new(3, 1);
        let specs = plan_defense_campaign(&cfg);
        let per_policy = specs.len() / POLICIES.len();
        for i in 0..per_policy {
            let off = &specs[i];
            for p in 1..POLICIES.len() {
                let other = &specs[p * per_policy + i];
                assert_eq!(off.seed, other.seed, "policy must not perturb the seed");
                assert_eq!(off.threat, other.threat);
            }
        }
    }

    #[test]
    fn threat_labels_are_unique() {
        let threats = threat_matrix();
        let mut labels: Vec<String> = threats.iter().map(Threat::label).collect();
        let n = labels.len();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), n);
        assert!(labels.contains(&"clean".to_string()));
    }

    #[test]
    fn spec_config_carries_policy_and_threat() {
        let spec = DefenseSpec {
            policy: DefensePolicy::FailSafe,
            threat: Threat::Fault(FaultKind::CanBusOff, 1.0),
            scenario: Scenario::matrix()[0],
            seed: 5,
        };
        let hc = spec.harness_config();
        assert_eq!(hc.defense, DefensePolicy::FailSafe);
        assert!(hc.attack.is_none());
        assert!(!hc.faults.is_empty());

        let spec = DefenseSpec {
            threat: Threat::Attack(AttackType::Acceleration),
            ..spec
        };
        let hc = spec.harness_config();
        assert!(hc.attack.is_some());
        assert!(hc.faults.is_empty());
    }

    #[test]
    fn empty_cell_reports_null_detection() {
        let cell = DefenseCell::from_results(DefensePolicy::Off, Threat::Clean, &[]);
        assert_eq!(cell.mean_detection_s, None);
        assert!(cell.to_json().contains("\"mean_detection_s\": null"));
    }
}
