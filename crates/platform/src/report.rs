//! Result export: CSV for per-run records, a compact text summary for
//! campaign aggregates.

use crate::metrics::StrategyAggregate;
use crate::SimResult;

/// CSV header matching [`sim_results_csv`].
pub const CSV_HEADER: &str = "seed,hazard,first_hazard_s,first_hazard_kind,accident_s,accident_kind,\
alert_events,fcw_events,lane_invasions,attack_activated_s,tth_s,driver_noticed_s,\
driver_engaged_s,frames_rewritten,panda_blocked,invariant_detected_s,monitor_detected_s";

fn opt_secs(v: Option<units::Seconds>) -> String {
    v.map_or(String::new(), |t| format!("{:.2}", t.secs()))
}

/// Renders a batch of results as CSV (header included), one row per run.
pub fn sim_results_csv(results: &[SimResult]) -> String {
    let mut out = String::from(CSV_HEADER);
    out.push('\n');
    for r in results {
        let (h_t, h_k) = match r.first_hazard {
            Some((t, k)) => (format!("{:.2}", t.secs()), format!("{k:?}")),
            None => (String::new(), String::new()),
        };
        let (a_t, a_k) = match r.accident {
            Some((t, k)) => (format!("{:.2}", t.secs()), format!("{k:?}")),
            None => (String::new(), String::new()),
        };
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
            r.seed,
            u8::from(r.hazardous()),
            h_t,
            h_k,
            a_t,
            a_k,
            r.alert_events,
            r.fcw_events,
            r.lane_invasions,
            opt_secs(r.attack_activated),
            opt_secs(r.tth),
            opt_secs(r.driver_noticed),
            opt_secs(r.driver_engaged),
            r.frames_rewritten,
            r.panda_blocked,
            opt_secs(r.invariant_detected),
            opt_secs(r.monitor_detected),
        ));
    }
    out
}

/// One-paragraph textual summary of a campaign aggregate.
pub fn summarize(agg: &StrategyAggregate) -> String {
    format!(
        "{}: {} sims — hazards {} ({:.1}%), accidents {} ({:.1}%), alerts {} ({:.1}%), \
         hazards-without-alert {} ({:.1}%), TTH {:.2}±{:.2} s (n={}), \
         lane invasions {:.3}/s, FCW events {}",
        agg.label,
        agg.sims,
        agg.hazards,
        agg.pct(agg.hazards),
        agg.accidents,
        agg.pct(agg.accidents),
        agg.alerted,
        agg.pct(agg.alerted),
        agg.hazards_no_alert,
        agg.pct(agg.hazards_no_alert),
        agg.tth.mean,
        agg.tth.std,
        agg.tth.n,
        agg.invasions_per_sec,
        agg.fcw_events,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AccidentKind, HazardKind};
    use units::Seconds;

    fn result() -> SimResult {
        SimResult {
            seed: 42,
            first_hazard: Some((Seconds::new(20.5), HazardKind::H1)),
            hazard_kinds: vec![HazardKind::H1],
            accident: Some((Seconds::new(22.0), AccidentKind::A1)),
            alert_events: 1,
            fcw_events: 0,
            lane_invasions: 3,
            duration: Seconds::new(50.0),
            attack_activated: Some(Seconds::new(15.0)),
            tth: Some(Seconds::new(5.5)),
            driver_noticed: None,
            driver_engaged: None,
            frames_rewritten: 500,
            panda_blocked: 0,
            invariant_detected: Some(Seconds::new(16.1)),
            monitor_detected: None,
            degraded_ticks: 0,
            failsafe_ticks: 0,
            first_degraded: None,
            first_failsafe: None,
            recovery_latency: None,
            faults_injected: 0,
            ids_detected: None,
            gate_rejections: 0,
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = sim_results_csv(&[result(), result()]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], CSV_HEADER);
        assert!(lines[1].starts_with("42,1,20.50,H1,22.00,A1,1,0,3,15.00,5.50"));
        // Column count is stable.
        assert_eq!(
            lines[1].split(',').count(),
            CSV_HEADER.split(',').count()
        );
    }

    #[test]
    fn csv_empty_optionals_are_blank() {
        let mut r = result();
        r.first_hazard = None;
        r.hazard_kinds.clear();
        r.accident = None;
        r.tth = None;
        let csv = sim_results_csv(&[r]);
        let row = csv.lines().nth(1).unwrap();
        assert!(row.starts_with("42,0,,,,,"));
    }

    #[test]
    fn summary_mentions_the_headline_numbers() {
        let agg = StrategyAggregate::from_results("Context-Aware", &[result()]);
        let s = summarize(&agg);
        assert!(s.contains("Context-Aware"));
        assert!(s.contains("hazards 1 (100.0%)"));
        assert!(s.contains("TTH 5.50"));
    }
}
