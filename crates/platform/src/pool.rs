//! A persistent work-stealing worker pool for campaign-cell fan-out.
//!
//! The experiment campaigns (attack, resilience, defense, throughput) all
//! reduce to the same shape: a planned `Vec` of independent cells, each a
//! full simulation run, whose results must come back in plan order. The
//! original runner spawned a fresh set of scoped threads per campaign and
//! handed out cells from a single atomic counter; this module replaces that
//! with one process-wide pool whose workers are spawned once, parked on a
//! condvar between campaigns, and reused — so a session that runs a
//! throughput sweep, a resilience matrix and a defense ladder back-to-back
//! pays thread-spawn cost exactly once.
//!
//! Scheduling is work-stealing over per-participant deques: a job's task
//! indices are split into contiguous blocks (one per participant, for
//! cache-friendly walks over the spec array), each participant pops its own
//! block from the front and steals from the *back* of a victim's block when
//! it runs dry. The submitting thread always participates in its own job,
//! which keeps a single-core box at full utilisation and makes nested
//! submission deadlock-free: an inner job's submitter drives that job to
//! completion itself even if every pool worker is busy with the outer one.
//!
//! Everything here is safe code — the crate forbids `unsafe`. The price is
//! a `'static` bound on jobs: callers hand the pool owned state (e.g. an
//! `Arc<[RunSpec]>`) rather than borrowing from the submitting stack frame.
//! Borrow-based generic maps (the lint crate's analysis fan-out) stay on
//! the scoped runner in [`crate::experiment::run_parallel_map_with`].
//!
//! Every lock acquisition recovers from poisoning with
//! [`PoisonError::into_inner`] instead of unwrapping (R12). That is sound
//! here because no guard is ever held across user code that can panic: a
//! task runs inside `catch_unwind` *between* guard scopes, so a poisoned
//! mutex can only mean a sibling died from a secondary effect of a panic
//! that is already latched and re-thrown at the submit site — the counters
//! and deques the guards protect are structurally consistent, and killing
//! every later campaign on a flag would turn one failed cell into a
//! permanently dead pool.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};

/// One submitted fan-out: `total` index-addressed tasks, type-erased behind
/// a boxed closure that writes each result into a caller-held slot.
struct Job {
    /// One deque per participant slot, seeded with contiguous index blocks.
    queues: Vec<Mutex<VecDeque<usize>>>,
    /// Next participant slot to claim (wraps modulo `queues.len()`).
    claims: AtomicUsize,
    /// Runs task `i` and stores its result.
    run_one: Box<dyn Fn(usize) + Send + Sync>,
    /// Number of tasks in the job.
    total: usize,
    /// Completed-task count; the submitter waits on [`Job::done_cv`].
    done: Mutex<usize>,
    done_cv: Condvar,
    /// First panic payload caught while running a task; re-thrown at the
    /// submit site so a panicking cell fails the campaign, not a worker.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Job {
    fn new(participants: usize, total: usize, run_one: Box<dyn Fn(usize) + Send + Sync>) -> Self {
        let mut queues = Vec::with_capacity(participants);
        let mut next = 0usize;
        for p in 0..participants {
            // Contiguous blocks, sized within one of each other.
            let take = (total - next) / (participants - p);
            queues.push(Mutex::new((next..next + take).collect()));
            next += take;
        }
        Self {
            queues,
            claims: AtomicUsize::new(0),
            run_one,
            total,
            done: Mutex::new(0),
            done_cv: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    /// Whether every task has been claimed (not necessarily finished).
    /// Used by the pool to stop routing new participants at a spent job.
    fn drained(&self) -> bool {
        self.queues
            .iter()
            .all(|q| q.lock().unwrap_or_else(PoisonError::into_inner).is_empty())
    }

    /// Claims a participant slot and runs tasks — own block first, stolen
    /// tail-ends after — until no task remains anywhere. Panics from a task
    /// are caught and latched; the task still counts as done so the
    /// submitter wakes and can re-throw.
    fn participate(&self) {
        let slot = self.claims.fetch_add(1, Ordering::Relaxed) % self.queues.len();
        loop {
            // The own-queue pop is its own statement so the temporary
            // guard dies at the `;` before `steal` touches the other
            // queues (R12): two participants stealing from each other
            // while each holds its own queue lock would deadlock.
            let own = self.queues[slot]
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_front();
            let Some(i) = own.or_else(|| self.steal(slot)) else { break };
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| (self.run_one)(i))) {
                let mut first = self.panic.lock().unwrap_or_else(PoisonError::into_inner);
                first.get_or_insert(payload);
            }
            let mut done = self.done.lock().unwrap_or_else(PoisonError::into_inner);
            *done += 1;
            if *done == self.total {
                self.done_cv.notify_all();
            }
        }
    }

    /// Steals a task from the back of another participant's deque.
    fn steal(&self, slot: usize) -> Option<usize> {
        let k = self.queues.len();
        (1..k).find_map(|off| {
            self.queues[(slot + off) % k]
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_back()
        })
    }

    /// Blocks until every task has finished.
    fn wait(&self) {
        let mut done = self.done.lock().unwrap_or_else(PoisonError::into_inner);
        while *done < self.total {
            done = self
                .done_cv
                .wait(done)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// The process-wide pool: a queue of live jobs and the lazily grown set of
/// persistent workers parked on [`WorkerPool::work`].
struct WorkerPool {
    state: Mutex<PoolState>,
    work: Condvar,
}

struct PoolState {
    jobs: VecDeque<Arc<Job>>,
    spawned: usize,
}

fn pool() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(|| WorkerPool {
        state: Mutex::new(PoolState {
            jobs: VecDeque::new(),
            spawned: 0,
        }),
        work: Condvar::new(),
    })
}

/// A persistent worker: grab the front live job, help until it is drained,
/// park until the next submission. Workers never exit; between campaigns
/// they cost one parked OS thread each.
///
/// # Errors
///
/// Returns the OS error when the thread cannot be spawned; the caller
/// degrades to fewer participants instead of dying (R7: fail closed).
fn spawn_worker(p: &'static WorkerPool) -> std::io::Result<()> {
    std::thread::Builder::new()
        .name("campaign-worker".into())
        .spawn(move || loop {
            let job = {
                let mut st = p.state.lock().unwrap_or_else(PoisonError::into_inner);
                loop {
                    st.jobs.retain(|j| !j.drained());
                    if let Some(j) = st.jobs.front() {
                        break Arc::clone(j);
                    }
                    st = p.work.wait(st).unwrap_or_else(PoisonError::into_inner);
                }
            };
            job.participate();
        })
        .map(|_| ())
}

/// Maps `f` over `0..n` on the persistent pool, preserving index order.
///
/// `workers` is the total participant count *including* the calling thread;
/// the pool is grown (never shrunk) to supply the other `workers - 1`.
/// With `workers <= 1` or `n <= 1` the map degenerates to a plain serial
/// loop on the caller with no pool interaction at all — that is the exact
/// single-worker path the reproducibility tests pin against.
///
/// The `'static` bounds are what keep this crate's `forbid(unsafe_code)`
/// honest: the job may be picked up by a detached worker, so it cannot
/// borrow from the submitting stack frame. Campaign runners satisfy it by
/// moving their planned spec vector into an `Arc<[_]>` (see
/// [`crate::experiment::run_campaign_cells`]).
///
/// # Panics
///
/// Re-raises the first panic any task raised, after all tasks finished.
pub fn run_indexed<T, F>(workers: usize, n: usize, f: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(usize) -> T + Send + Sync + 'static,
{
    if n == 0 {
        return Vec::new();
    }
    if workers <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let participants = workers.min(n);
    let slots: Arc<Vec<Mutex<Option<T>>>> = Arc::new((0..n).map(|_| Mutex::new(None)).collect());
    let sink = Arc::clone(&slots);
    let job = Arc::new(Job::new(
        participants,
        n,
        Box::new(move |i| {
            let value = f(i);
            *sink[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(value);
        }),
    ));

    let p = pool();
    // Reserve the missing workers under the lock, but spawn them outside
    // it (R12): `thread::spawn` calls into the OS, and a worker that wakes
    // instantly would block on the very pool lock the submitter still
    // holds.
    let reserved = {
        let mut st = p.state.lock().unwrap_or_else(PoisonError::into_inner);
        let missing = (participants - 1).saturating_sub(st.spawned);
        st.spawned += missing;
        missing
    };
    let mut started = 0;
    for _ in 0..reserved {
        if spawn_worker(p).is_err() {
            break;
        }
        started += 1;
    }
    if started < reserved {
        // Fail closed: return the reservations the OS refused. The job
        // still completes — the submitting thread always participates.
        let mut st = p.state.lock().unwrap_or_else(PoisonError::into_inner);
        st.spawned -= reserved - started;
    }
    {
        let mut st = p.state.lock().unwrap_or_else(PoisonError::into_inner);
        st.jobs.push_back(Arc::clone(&job));
    }
    p.work.notify_all();

    job.participate();
    job.wait();
    {
        let mut st = p.state.lock().unwrap_or_else(PoisonError::into_inner);
        st.jobs.retain(|j| !Arc::ptr_eq(j, &job));
    }
    if let Some(payload) = job
        .panic
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .take()
    {
        resume_unwind(payload);
    }
    slots
        .iter()
        .map(|slot| {
            slot.lock()
                .unwrap_or_else(PoisonError::into_inner)
                .take()
                // adas-lint: allow(R7, reason = "collection runs after the pool latch re-raised any worker panic; every index in 0..n was dispatched exactly once, so each slot holds a value")
                .expect("every task ran exactly once")
        })
        .collect()
}

/// A panic caught from one task of a [`submit_catching`] submission,
/// reduced to its message so the value is `Send + Sync` and can be stored,
/// logged, and retried without carrying the raw `Box<dyn Any>` payload
/// around.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellPanic {
    /// The panic message (`&str` / `String` payloads), or a placeholder for
    /// non-string payloads.
    pub message: String,
}

impl std::fmt::Display for CellPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task panicked: {}", self.message)
    }
}

/// Runs `f`, converting a panic into `Err(CellPanic)` instead of unwinding.
///
/// This is the per-task capture primitive behind [`submit_catching`];
/// supervisors (campaignd) also use it directly so a retry wrapper and the
/// pool agree on what a caught panic looks like.
pub fn catch_cell<T>(f: impl FnOnce() -> T) -> Result<T, CellPanic> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|payload| {
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "<non-string panic payload>".to_string());
        CellPanic { message }
    })
}

/// [`run_indexed`], but each task's panic is captured as a per-task
/// `Err(CellPanic)` instead of being latched and re-raised at the submit
/// site.
///
/// `run_indexed` deliberately fails the whole submission on the *first*
/// latched panic — right for benches, where a panicking cell invalidates
/// the campaign — but a supervising service needs the opposite: the other
/// `n - 1` results must survive so only the failed cell is retried. Every
/// task runs to a `Result`; nothing is lost and nothing is re-thrown.
pub fn submit_catching<T, F>(workers: usize, n: usize, f: F) -> Vec<Result<T, CellPanic>>
where
    T: Send + 'static,
    F: Fn(usize) -> T + Send + Sync + 'static,
{
    run_indexed(workers, n, move |i| catch_cell(|| f(i)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::time::Duration;

    #[test]
    fn preserves_order() {
        let out = run_indexed(4, 64, |i| i * 3);
        assert_eq!(out, (0..64).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton_jobs() {
        assert!(run_indexed::<usize, _>(8, 0, |i| i).is_empty());
        assert_eq!(run_indexed(8, 1, |i| i + 7), vec![7]);
    }

    #[test]
    fn single_worker_is_serial_on_the_caller() {
        let caller = std::thread::current().id();
        let out = run_indexed(1, 5, move |i| {
            assert_eq!(std::thread::current().id(), caller);
            i
        });
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn stealing_rebalances_a_skewed_block() {
        // Task 0 is pathologically slow; with contiguous block seeding the
        // rest of its block must be stolen for the job to finish promptly.
        let out = run_indexed(4, 32, |i| {
            if i == 0 {
                std::thread::sleep(Duration::from_millis(60));
            }
            i as u64
        });
        assert_eq!(out, (0..32).collect::<Vec<u64>>());
    }

    #[test]
    fn pool_persists_across_jobs() {
        // Back-to-back jobs reuse the grown pool; totals must be exact for
        // both, proving no task is lost or duplicated across submissions.
        for round in 0..5u64 {
            let sum = AtomicU64::new(0);
            let sum = Arc::new(sum);
            let s = Arc::clone(&sum);
            run_indexed(4, 100, move |i| {
                s.fetch_add(i as u64 + round, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), 4950 + 100 * round);
        }
    }

    #[test]
    fn nested_submission_completes() {
        // An outer job whose tasks each submit an inner job: the inner
        // submitter participates in its own job, so this cannot deadlock
        // even if every pool worker is parked inside the outer job.
        let out = run_indexed(3, 6, |i| {
            let inner = run_indexed(2, 4, move |j| i * 10 + j);
            inner.iter().sum::<usize>()
        });
        let expect: Vec<usize> = (0..6).map(|i| (0..4).map(|j| i * 10 + j).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn task_panic_propagates_to_the_submitter() {
        let result = std::panic::catch_unwind(|| {
            run_indexed(4, 16, |i| {
                if i == 9 {
                    panic!("cell 9 exploded");
                }
                i
            })
        });
        let payload = result.expect_err("panic must reach the submitter");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "cell 9 exploded");

        // The pool survives the panic and keeps serving jobs.
        assert_eq!(run_indexed(4, 8, |i| i), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn submit_catching_captures_every_panic_and_keeps_the_rest() {
        // Regression: run_indexed re-raises only the *first* latched panic
        // and abandons the whole submission's results. With two panicking
        // cells, submit_catching must return both failures individually
        // and every other result intact — that is what lets a supervisor
        // retry exactly the failed cells instead of losing the batch.
        let out = submit_catching(4, 16, |i| {
            if i == 3 {
                panic!("cell 3 exploded");
            }
            if i == 11 {
                panic!("cell 11 exploded");
            }
            i * 2
        });
        assert_eq!(out.len(), 16);
        for (i, r) in out.iter().enumerate() {
            match (i, r) {
                (3, Err(p)) => assert_eq!(p.message, "cell 3 exploded"),
                (11, Err(p)) => assert_eq!(p.message, "cell 11 exploded"),
                (_, Ok(v)) => assert_eq!(*v, i * 2),
                (_, r) => panic!("cell {i}: unexpected {r:?}"),
            }
        }
        // The pool itself never saw a panic: subsequent plain submissions
        // are unaffected.
        assert_eq!(run_indexed(4, 4, |i| i), vec![0, 1, 2, 3]);
    }

    #[test]
    fn submit_catching_single_worker_and_string_payloads() {
        // The serial fast path must behave identically, and `String`
        // payloads (panic! with formatting) must round-trip their message.
        let out = submit_catching(1, 3, |i| {
            if i == 1 {
                panic!("formatted {}", 42);
            }
            i
        });
        assert!(matches!(&out[0], Ok(0)));
        assert_eq!(out[1].as_ref().unwrap_err().message, "formatted 42");
        assert!(matches!(&out[2], Ok(2)));
    }

    #[test]
    fn catch_cell_passes_values_through() {
        assert_eq!(catch_cell(|| 7u32), Ok(7));
        let err = catch_cell(|| -> u32 { panic!("boom") }).unwrap_err();
        assert_eq!(err.message, "boom");
        assert_eq!(err.to_string(), "task panicked: boom");
    }
}
