//! Hazard and accident detection (paper §III-A).
//!
//! * **H1** — the AV violates the safe following-distance constraint.
//! * **H2** — the AV decelerates toward a stop although no lead vehicle
//!   justifies it (blocking traffic).
//! * **H3** — the AV drives out of its lane.
//! * **A1** — collision with the lead vehicle; **A3** — collision with
//!   road-side objects (the guardrails). A2 (being rear-ended) needs
//!   following traffic, which the paper's scenarios do not include; like the
//!   paper's accident counts, ours only contain A1/A3.

use driving_sim::{CollisionKind, World, RADAR_RANGE};
use serde::{Deserialize, Serialize};
use units::{Distance, Seconds, Speed, Tick};

/// Hazardous system states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HazardKind {
    /// Safe following distance violated.
    H1,
    /// Unjustified (near-)stop in traffic.
    H2,
    /// Out of lane.
    H3,
}

/// Accidents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccidentKind {
    /// Collision with the lead vehicle.
    A1,
    /// Collision with a road-side object (guardrail).
    A3,
}

impl From<CollisionKind> for AccidentKind {
    fn from(c: CollisionKind) -> Self {
        match c {
            CollisionKind::LeadVehicle => AccidentKind::A1,
            CollisionKind::Guardrail | CollisionKind::NeighborVehicle => AccidentKind::A3,
        }
    }
}

/// Detection thresholds. Defaults are chosen so that *no* hazard fires in
/// attack-free operation (validated by the no-attack campaign) while every
/// attack-induced unsafe state is caught.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HazardParams {
    /// H1 fires when headway time drops below this (or the gap below
    /// [`HazardParams::h1_min_gap`]).
    pub h1_headway: Seconds,
    /// H1 minimum absolute gap.
    pub h1_min_gap: Distance,
    /// H2 fires when speed drops below this while no close lead justifies
    /// slowing and the driver intended much faster cruise.
    pub h2_speed: Speed,
    /// A lead within this multiple of the ACC desired gap justifies slowing.
    pub h2_gap_factor: f64,
    /// H3 fires when a car edge is beyond a lane line by more than this…
    pub h3_margin: Distance,
    /// …sustained for this long.
    pub h3_sustain: Seconds,
}

impl Default for HazardParams {
    fn default() -> Self {
        Self {
            h1_headway: Seconds::new(0.65),
            h1_min_gap: Distance::meters(6.0),
            h2_speed: Speed::from_mps(9.2),
            h2_gap_factor: 1.5,
            h3_margin: Distance::meters(0.35),
            h3_sustain: Seconds::new(0.2),
        }
    }
}

/// Watches ground truth and records the first occurrence of each hazard and
/// of the accident.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HazardDetector {
    params: HazardParams,
    first_h1: Option<Tick>,
    first_h2: Option<Tick>,
    first_h3: Option<Tick>,
    accident: Option<(Tick, AccidentKind)>,
    h3_streak: u32,
}

impl Default for HazardDetector {
    fn default() -> Self {
        Self::new(HazardParams::default())
    }
}

impl HazardDetector {
    /// Creates a detector.
    pub fn new(params: HazardParams) -> Self {
        Self {
            params,
            first_h1: None,
            first_h2: None,
            first_h3: None,
            accident: None,
            h3_streak: 0,
        }
    }

    /// First occurrence of a given hazard.
    pub fn first(&self, kind: HazardKind) -> Option<Tick> {
        match kind {
            HazardKind::H1 => self.first_h1,
            HazardKind::H2 => self.first_h2,
            HazardKind::H3 => self.first_h3,
        }
    }

    /// The earliest hazard of any kind.
    pub fn first_any(&self) -> Option<(Tick, HazardKind)> {
        let mut best: Option<(Tick, HazardKind)> = None;
        for (tick, kind) in [
            (self.first_h1, HazardKind::H1),
            (self.first_h2, HazardKind::H2),
            (self.first_h3, HazardKind::H3),
        ]
        .iter()
        .filter_map(|(t, k)| t.map(|t| (t, *k)))
        {
            if best.is_none_or(|(bt, _)| tick < bt) {
                best = Some((tick, kind));
            }
        }
        best
    }

    /// The accident, if one occurred.
    pub fn accident(&self) -> Option<(Tick, AccidentKind)> {
        self.accident
    }

    /// Consecutive ticks the ego has spent beyond the lane edge so far —
    /// the internal counter behind H3's sustained-excursion requirement,
    /// exposed for the flight recorder.
    pub fn h3_streak(&self) -> u32 {
        self.h3_streak
    }

    /// A compact cumulative mask of the hazards seen so far (bit 0 = H1,
    /// bit 1 = H2, bit 2 = H3), for per-tick trace records.
    pub fn mask(&self) -> u8 {
        u8::from(self.first_h1.is_some())
            | u8::from(self.first_h2.is_some()) << 1
            | u8::from(self.first_h3.is_some()) << 2
    }

    /// All hazard kinds that occurred.
    pub fn kinds(&self) -> Vec<HazardKind> {
        [
            (self.first_h1, HazardKind::H1),
            (self.first_h2, HazardKind::H2),
            (self.first_h3, HazardKind::H3),
        ]
        .into_iter()
        .filter_map(|(t, k)| t.map(|_| k))
        .collect()
    }

    /// Inspects the world after a step. Call once per tick.
    pub fn step(&mut self, world: &World) {
        let tick = world.now();
        let ego = world.ego();
        let v = ego.speed();
        let gap = world.gap();
        let lead_visible = gap > Distance::ZERO && gap < RADAR_RANGE;

        // H1: too close to the lead.
        if self.first_h1.is_none()
            && lead_visible
            && v.mps() > 1.0
            && (gap < self.params.h1_min_gap || gap / v < self.params.h1_headway)
        {
            self.first_h1 = Some(tick);
        }

        // H2: slowed below the threshold although the road ahead is clear
        // (no lead within 1.5x the ACC's desired following gap) while the
        // cruise intent is much faster.
        if self.first_h2.is_none() && v < self.params.h2_speed {
            let desired_gap = 4.0 + 2.2 * v.mps();
            let road_clear = !lead_visible || gap.raw() > self.params.h2_gap_factor * desired_gap;
            let intent_fast = world.scenario().cruise_speed.mps() > 2.0 * self.params.h2_speed.mps();
            if road_clear && intent_fast {
                self.first_h2 = Some(tick);
            }
        }

        // H3: an edge beyond a lane line by the margin, sustained.
        let road = world.road();
        let beyond_left = ego.left_edge() - road.left_line();
        let beyond_right = road.right_line() - ego.right_edge();
        let out = beyond_left > self.params.h3_margin || beyond_right > self.params.h3_margin;
        if out {
            self.h3_streak += 1;
            let needed = (self.params.h3_sustain.secs() / units::DT.secs()).round() as u32;
            if self.first_h3.is_none() && self.h3_streak >= needed {
                self.first_h3 = Some(tick);
            }
        } else {
            self.h3_streak = 0;
        }

        // Accidents come straight from the world's collision detection.
        if self.accident.is_none() {
            if let Some((t, kind)) = world.collision() {
                self.accident = Some((t, kind.into()));
                // A guardrail strike implies the lane was left, even if the
                // sustain window had not elapsed yet: a hazard always
                // precedes (or coincides with) its accident.
                let lateral_crash = matches!(
                    kind,
                    CollisionKind::Guardrail | CollisionKind::NeighborVehicle
                );
                if lateral_crash && self.first_h3.is_none() {
                    self.first_h3 = Some(t);
                }
                if kind == CollisionKind::LeadVehicle && self.first_h1.is_none() {
                    self.first_h1 = Some(t);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use driving_sim::{ActuatorCommand, Scenario, ScenarioId};
    use units::{Accel, Angle};

    fn world(id: ScenarioId, gap: f64) -> World {
        World::new(Scenario::new(id, Distance::meters(gap)), 7)
    }

    /// Steering that holds the paper's curve.
    fn curve_hold() -> ActuatorCommand {
        ActuatorCommand {
            accel: Accel::ZERO,
            steer: Angle::from_radians(2.0 * 2.7 / 2500.0),
        }
    }

    #[test]
    fn h1_fires_before_collision_when_ramming_lead() {
        let mut w = world(ScenarioId::S1, 50.0);
        let mut det = HazardDetector::default();
        let mut h1_at = None;
        for _ in 0..1000 {
            w.step(curve_hold());
            det.step(&w);
            if h1_at.is_none() {
                h1_at = det.first(HazardKind::H1);
            }
            if det.accident().is_some() {
                break;
            }
        }
        let h1 = h1_at.expect("H1 occurs");
        let (crash, kind) = det.accident().expect("A1 follows");
        assert_eq!(kind, AccidentKind::A1);
        assert!(h1 < crash, "hazard strictly precedes the accident");
        assert_eq!(det.first_any().unwrap().1, HazardKind::H1);
    }

    #[test]
    fn h2_fires_when_braking_to_stop_on_clear_road() {
        let mut w = world(ScenarioId::S2, 100.0);
        let mut det = HazardDetector::default();
        // Hard brake from 60 mph; the lead pulls away.
        for _ in 0..3000 {
            w.step(ActuatorCommand {
                accel: Accel::from_mps2(-3.5),
                steer: Angle::from_radians(2.0 * 2.7 / 2500.0),
            });
            det.step(&w);
        }
        let h2 = det.first(HazardKind::H2).expect("H2 fires");
        // From 26.8 m/s at -3.5 m/s^2, 10 m/s is reached around 4.8 s
        // (first-order actuator lag included).
        let t = h2.time().secs();
        assert!((3.0..7.0).contains(&t), "H2 at {t}");
    }

    #[test]
    fn h2_does_not_fire_when_following_a_slow_lead() {
        // Ego slows to a crawl behind a close, slow lead: justified.
        let mut w = world(ScenarioId::S1, 30.0);
        let mut det = HazardDetector::default();
        for _ in 0..2000 {
            let cmd = if w.gap().raw() < 25.0 {
                ActuatorCommand {
                    accel: Accel::from_mps2(-2.0),
                    steer: Angle::from_radians(2.0 * 2.7 / 2500.0),
                }
            } else {
                curve_hold()
            };
            w.step(cmd);
            det.step(&w);
        }
        assert!(det.first(HazardKind::H2).is_none());
    }

    #[test]
    fn h3_fires_on_sustained_lane_departure() {
        let mut w = world(ScenarioId::S2, 200.0);
        let mut det = HazardDetector::default();
        for _ in 0..400 {
            w.step(ActuatorCommand {
                accel: Accel::ZERO,
                steer: Angle::from_degrees(-0.5),
            });
            det.step(&w);
            if det.accident().is_some() {
                break;
            }
        }
        let h3 = det.first(HazardKind::H3).expect("H3 fires");
        let (crash, kind) = det.accident().expect("A3 follows at the rail");
        assert_eq!(kind, AccidentKind::A3);
        assert!(h3 <= crash);
    }

    #[test]
    fn h3_needs_sustained_excursion() {
        let mut det = HazardDetector::new(HazardParams {
            h3_sustain: Seconds::new(0.2),
            ..HazardParams::default()
        });
        let mut w = world(ScenarioId::S2, 200.0);
        // A brief clip over the line (fewer than 20 ticks) must not fire:
        // drive out for 10 ticks' worth, then straighten. Simulated directly
        // on the streak logic by feeding a world that is only momentarily out.
        for _ in 0..5 {
            w.step(ActuatorCommand {
                accel: Accel::ZERO,
                steer: Angle::from_degrees(-0.5),
            });
            det.step(&w);
        }
        assert!(det.first(HazardKind::H3).is_none(), "5 ticks is not sustained");
    }

    #[test]
    fn nominal_following_produces_no_hazards() {
        let mut w = world(ScenarioId::S2, 70.0);
        let mut det = HazardDetector::default();
        let mut prev_d = w.ego().d().raw();
        for _ in 0..units::STEPS_PER_SIM {
            // Simple safe policy: lane-keep against the disturbance, brake
            // in proportion to closing speed when nearer than 55 m.
            let d = w.ego().d().raw();
            let d_rate = (d - prev_d) / units::DT.secs();
            prev_d = d;
            let steer = Angle::from_radians(2.7 / 800.0 - 0.004 * d - 0.008 * d_rate);
            let closing = w.relative_speed().mps();
            let accel = if w.gap().raw() < 55.0 && closing > -1.0 {
                Accel::from_mps2(-1.2 * (closing + 1.0).clamp(0.0, 3.0))
            } else {
                Accel::ZERO
            };
            w.step(ActuatorCommand { accel, steer });
            det.step(&w);
        }
        assert_eq!(det.first_any(), None);
        assert_eq!(det.accident(), None);
        assert!(det.kinds().is_empty());
    }
}
