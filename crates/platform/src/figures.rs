//! Data series for the paper's figures.

use attack_core::{AttackConfig, AttackType, StrategyKind, ValueMode};
use driver_model::DriverConfig;
use driving_sim::{Scenario, ScenarioId};
use serde::{Deserialize, Serialize};
use units::{Distance, Seconds};

use crate::{Harness, HarnessConfig};

/// One sample of the ego trajectory (Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrajectorySample {
    /// Simulated time.
    pub t: Seconds,
    /// Lateral offset from the lane centre (positive left).
    pub lateral: Distance,
    /// Left lane line position (constant, for plotting).
    pub left_line: Distance,
    /// Right lane line position.
    pub right_line: Distance,
    /// Whether the car is currently touching/over a lane line.
    pub invading: bool,
}

/// Fig. 7: the lateral trajectory of an attack-free run, sampled every
/// `stride` ticks, plus the total invasion count.
pub fn fig7_trajectory(seed: u64, stride: u64) -> (Vec<TrajectorySample>, u64) {
    let scenario = Scenario::new(ScenarioId::S2, Distance::meters(70.0));
    let mut harness = Harness::new(HarnessConfig::no_attack(scenario, seed));
    let mut samples = Vec::new();
    while !harness.finished() {
        let tick = harness.step();
        if tick.index().is_multiple_of(stride) {
            let world = harness.world();
            samples.push(TrajectorySample {
                t: tick.time(),
                lateral: world.ego().d(),
                left_line: world.road().left_line(),
                right_line: world.road().right_line(),
                invading: world.is_invading_lane(),
            });
        }
    }
    let invasions = harness.world().lane_invasions();
    (samples, invasions)
}

/// One point of the Fig. 8 parameter space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig8Point {
    /// Attack start time.
    pub start: Seconds,
    /// Attack duration.
    pub duration: Seconds,
    /// Whether the run ended in a hazard (solid dot in the paper).
    pub hazardous: bool,
    /// Whether this point came from the Context-Aware strategy (orange
    /// diamonds in the paper) rather than the sweep grid.
    pub context_aware: bool,
}

/// Fig. 8: sweeps `start × duration` for the Acceleration attack on one
/// scenario, plus Context-Aware reference runs.
///
/// `starts` and `durations` are in seconds. The grid uses the same
/// strategic values as the Context-Aware reference runs, so the sweep
/// varies only the two parameters of interest. Note this reproduction's
/// vehicle needs longer injections than the paper's (its ACC recovers more
/// strongly), so sweep durations beyond the paper's 2.5 s to see the
/// critical-duration boundary (EXPERIMENTS.md discusses the scaling).
pub fn fig8_parameter_space(
    starts: &[f64],
    durations: &[f64],
    context_aware_runs: u64,
    seed: u64,
    driver: DriverConfig,
) -> Vec<Fig8Point> {
    let scenario = Scenario::new(ScenarioId::S1, Distance::meters(100.0));
    let mut points = Vec::new();
    for &start in starts {
        for &duration in durations {
            let attack = AttackConfig {
                attack_type: AttackType::Acceleration,
                strategy: StrategyKind::RandomStDur,
                // Strategic values, like the Context-Aware runs: the sweep
                // varies only the start time and duration.
                value_mode: ValueMode::Strategic,
                seed,
                window_override: Some((Seconds::new(start), Seconds::new(duration))),
                ..AttackConfig::default()
            };
            let mut cfg = HarnessConfig::with_attack(scenario, seed, attack);
            cfg.driver = driver;
            let result = Harness::new(cfg).run();
            points.push(Fig8Point {
                start: Seconds::new(start),
                duration: Seconds::new(duration),
                hazardous: result.hazardous(),
                context_aware: false,
            });
        }
    }
    for rep in 0..context_aware_runs {
        let run_seed = crate::experiment::mix_seed(seed, &[rep, 0xCA]);
        let attack = AttackConfig {
            attack_type: AttackType::Acceleration,
            strategy: StrategyKind::ContextAware,
            value_mode: ValueMode::Strategic,
            seed: run_seed,
            ..AttackConfig::default()
        };
        let mut cfg = HarnessConfig::with_attack(scenario, run_seed, attack);
        cfg.driver = driver;
        let result = Harness::new(cfg).run();
        if let Some(t_a) = result.attack_activated {
            points.push(Fig8Point {
                start: t_a,
                duration: result.tth.unwrap_or(Seconds::new(0.0)),
                hazardous: result.hazardous(),
                context_aware: true,
            });
        }
    }
    points
}

/// Renders Fig. 8 points as a TSV table (start, duration, hazard, source).
pub fn render_fig8(points: &[Fig8Point]) -> String {
    let mut out = String::from("start_s\tduration_s\thazard\tsource\n");
    for p in points {
        out.push_str(&format!(
            "{:.2}\t{:.2}\t{}\t{}\n",
            p.start.secs(),
            p.duration.secs(),
            if p.hazardous { 1 } else { 0 },
            if p.context_aware { "context-aware" } else { "grid" },
        ));
    }
    out
}

/// Renders Fig. 7 samples as a TSV table.
pub fn render_fig7(samples: &[TrajectorySample]) -> String {
    let mut out = String::from("t_s\tlateral_m\tleft_line_m\tright_line_m\tinvading\n");
    for s in samples {
        out.push_str(&format!(
            "{:.2}\t{:.3}\t{:.3}\t{:.3}\t{}\n",
            s.t.secs(),
            s.lateral.raw(),
            s.left_line.raw(),
            s.right_line.raw(),
            u8::from(s.invading),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_samples_cover_the_run() {
        let (samples, _invasions) = fig7_trajectory(11, 100);
        assert_eq!(samples.len(), 50, "one sample per second");
        assert!(samples.iter().all(|s| s.lateral.raw().abs() < 1.85),
            "attack-free run stays inside the lane bounds");
        let text = render_fig7(&samples);
        assert!(text.lines().count() == 51);
    }

    #[test]
    fn fig8_grid_is_complete() {
        let points =
            fig8_parameter_space(&[10.0, 30.0], &[0.5, 2.0], 0, 5, DriverConfig::inattentive());
        assert_eq!(points.len(), 4);
        let text = render_fig8(&points);
        assert!(text.contains("grid"));
    }
}
