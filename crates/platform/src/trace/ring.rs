//! Fixed-capacity ring buffer of [`TickRecord`]s.

use super::record::TickRecord;

/// A bounded, overwrite-oldest buffer of per-tick records.
///
/// The capacity bounds a run's trace memory regardless of length; a
/// full-run trace needs `units::STEPS_PER_SIM` slots. Iteration is always
/// chronological, starting from the oldest retained record.
#[derive(Debug, Clone)]
pub struct TraceRing {
    slots: Vec<TickRecord>,
    capacity: usize,
    /// Index of the next slot to overwrite once the ring is full.
    head: usize,
    /// Total records ever pushed (may exceed `capacity`).
    pushed: u64,
}

impl TraceRing {
    /// Creates an empty ring holding at most `capacity` records.
    ///
    /// A zero capacity is clamped to 1 so `push` is always well-defined.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            slots: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            pushed: 0,
        }
    }

    /// Appends a record, overwriting the oldest once full.
    pub fn record(&mut self, record: TickRecord) {
        if self.slots.len() < self.capacity {
            // adas-lint: allow(R13, reason = "fills a fixed-capacity ring pre-reserved by new(); push never reallocates, and once full every record overwrites in place")
            self.slots.push(record);
        } else {
            self.slots[self.head] = record;
            self.head = (self.head + 1) % self.capacity;
        }
        self.pushed += 1;
    }

    /// Number of records currently retained.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no records have been retained.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total records ever pushed, including overwritten ones.
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// The most recent record, if any.
    pub fn last(&self) -> Option<&TickRecord> {
        if self.slots.is_empty() {
            None
        } else if self.slots.len() < self.capacity {
            self.slots.last()
        } else {
            let idx = (self.head + self.capacity - 1) % self.capacity;
            Some(&self.slots[idx])
        }
    }

    /// Iterates over retained records in chronological order.
    pub fn iter(&self) -> impl Iterator<Item = &TickRecord> + '_ {
        let (wrapped, fresh) = self.slots.split_at(self.head);
        fresh.iter().chain(wrapped.iter())
    }

    /// The last `n` records in chronological order.
    pub fn tail(&self, n: usize) -> Vec<&TickRecord> {
        let len = self.len();
        self.iter().skip(len.saturating_sub(n)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::record::{DegradationCode, DriverPhaseCode};

    fn record(tick: u64) -> TickRecord {
        TickRecord {
            tick,
            ego_s: tick as f64,
            ego_d: 0.0,
            ego_v: 0.0,
            ego_a: 0.0,
            ego_steer_deg: 0.0,
            lead_s: 0.0,
            lead_v: 0.0,
            gap: f64::NAN,
            hwt: f64::NAN,
            engaged: true,
            acc_desired: 0.0,
            acc_cmd: 0.0,
            alc_desired_deg: 0.0,
            alc_cmd_deg: 0.0,
            alc_saturated: false,
            cmd_accel: 0.0,
            cmd_steer_deg: 0.0,
            applied_accel: 0.0,
            applied_steer_deg: 0.0,
            bus_published: [tick; msgbus::Topic::COUNT],
            attack_active: false,
            frames_rewritten: 0,
            panda_blocked: 0,
            alert_events: 0,
            driver_phase: DriverPhaseCode::Monitoring,
            hazard_mask: 0,
            h3_streak: 0,
            collided: false,
            fault_mask: 0,
            faults_injected: 0,
            degradation: DegradationCode::Nominal,
            gate_rejections: 0,
            ids: crate::trace::IdsCode::Nominal,
        }
    }

    #[test]
    fn fills_then_wraps_keeping_the_newest() {
        let mut ring = TraceRing::new(8);
        for t in 0..20 {
            ring.record(record(t));
        }
        assert_eq!(ring.len(), 8);
        assert_eq!(ring.total_pushed(), 20);
        let ticks: Vec<u64> = ring.iter().map(|r| r.tick).collect();
        assert_eq!(ticks, (12..20).collect::<Vec<_>>(), "oldest overwritten");
        assert_eq!(ring.last().unwrap().tick, 19);
    }

    #[test]
    fn chronological_before_wrap() {
        let mut ring = TraceRing::new(8);
        for t in 0..5 {
            ring.record(record(t));
        }
        let ticks: Vec<u64> = ring.iter().map(|r| r.tick).collect();
        assert_eq!(ticks, vec![0, 1, 2, 3, 4]);
        assert_eq!(ring.last().unwrap().tick, 4);
    }

    #[test]
    fn tail_returns_newest_in_order() {
        let mut ring = TraceRing::new(4);
        for t in 0..11 {
            ring.record(record(t));
        }
        let tail: Vec<u64> = ring.tail(2).iter().map(|r| r.tick).collect();
        assert_eq!(tail, vec![9, 10]);
        let all: Vec<u64> = ring.tail(100).iter().map(|r| r.tick).collect();
        assert_eq!(all, vec![7, 8, 9, 10], "tail larger than ring is the ring");
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut ring = TraceRing::new(0);
        ring.record(record(1));
        ring.record(record(2));
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.last().unwrap().tick, 2);
    }
}
