//! Run- and campaign-level aggregation: counters and fixed-bin histograms.

use msgbus::Topic;

use crate::SimResult;

/// A fixed-range linear-bin histogram with saturating under/overflow bins.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
    sum: f64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal-width bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range must be non-empty");
        Self {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
            sum: 0.0,
        }
    }

    /// Records one sample; `NaN` samples are ignored.
    pub fn record(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        self.count += 1;
        self.sum += x;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let i = (((x - self.lo) / w) as usize).min(self.bins.len() - 1);
            self.bins[i] += 1;
        }
    }

    /// Adds another histogram's samples; the ranges must match.
    ///
    /// # Panics
    ///
    /// Panics if the two histograms have different ranges or bin counts.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bins.len(), other.bins.len(), "bin counts must match");
        // Bitwise identity: merging only makes sense for histograms built
        // with the same constructor parameters, not merely close ones.
        assert!(
            self.lo.to_bits() == other.lo.to_bits() && self.hi.to_bits() == other.hi.to_bits(),
            "histogram ranges must match"
        );
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Number of recorded (non-NaN) samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the recorded samples (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// The bin counts, plus under/overflow totals.
    pub fn bins(&self) -> (&[u64], u64, u64) {
        (&self.bins, self.underflow, self.overflow)
    }

    /// A compact one-line ASCII sparkline of the distribution.
    pub fn sparkline(&self) -> String {
        const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let max = self.bins.iter().copied().max().unwrap_or(0);
        if max == 0 {
            return "∅".to_string();
        }
        self.bins
            .iter()
            .map(|&b| GLYPHS[((b * (GLYPHS.len() as u64 - 1)) / max) as usize])
            .collect()
    }
}

/// Per-run counters and distributions maintained by the recorder.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetrics {
    /// Ticks recorded.
    pub ticks: u64,
    /// Bus publishes per topic, indexed by [`Topic::index`].
    pub bus_published: [u64; Topic::COUNT],
    /// CAN frames rewritten by the attack.
    pub frames_rewritten: u64,
    /// Frames blocked by Panda firmware checks.
    pub panda_blocked: u64,
    /// ADAS alert events.
    pub alert_events: u64,
    /// Ticks the attack spent actively injecting.
    pub attack_active_ticks: u64,
    /// Ticks the driver spent in physical control.
    pub driver_engaged_ticks: u64,
    /// Ticks the ADAS spent in any degraded (non-nominal) state.
    pub degraded_ticks: u64,
    /// Ticks the ADAS spent in the fail-safe state.
    pub failsafe_ticks: u64,
    /// Fault injections performed by the fault engine.
    pub faults_injected: u64,
    /// Headway-time distribution (s), 0–10 s in 40 bins.
    pub headway: Histogram,
    /// Applied-acceleration distribution (m/s²), −5–3 in 40 bins.
    pub applied_accel: Histogram,
    /// Lane-offset distribution (m), −2–2 in 40 bins.
    pub lane_offset: Histogram,
}

impl Default for RunMetrics {
    fn default() -> Self {
        Self {
            ticks: 0,
            bus_published: [0; Topic::COUNT],
            frames_rewritten: 0,
            panda_blocked: 0,
            alert_events: 0,
            attack_active_ticks: 0,
            driver_engaged_ticks: 0,
            degraded_ticks: 0,
            failsafe_ticks: 0,
            faults_injected: 0,
            headway: Histogram::new(0.0, 10.0, 40),
            applied_accel: Histogram::new(-5.0, 3.0, 40),
            lane_offset: Histogram::new(-2.0, 2.0, 40),
        }
    }
}

impl RunMetrics {
    /// Folds one tick record into the running totals.
    pub(crate) fn observe(&mut self, r: &super::record::TickRecord) {
        self.ticks += 1;
        // Counters in the record are cumulative; keep the latest totals.
        self.bus_published = r.bus_published;
        self.frames_rewritten = r.frames_rewritten;
        self.panda_blocked = r.panda_blocked;
        self.alert_events = r.alert_events;
        self.attack_active_ticks += u64::from(r.attack_active);
        self.driver_engaged_ticks +=
            u64::from(r.driver_phase == super::record::DriverPhaseCode::Engaged);
        self.degraded_ticks +=
            u64::from(r.degradation != super::record::DegradationCode::Nominal);
        self.failsafe_ticks +=
            u64::from(r.degradation == super::record::DegradationCode::FailSafe);
        self.faults_injected = r.faults_injected;
        self.headway.record(r.hwt);
        self.applied_accel.record(r.applied_accel);
        self.lane_offset.record(r.ego_d);
    }
}

/// Campaign-level aggregate: [`RunMetrics`] summed over every run plus
/// outcome counts from the [`SimResult`]s, merged by the parallel runner.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CampaignMetrics {
    /// Runs aggregated.
    pub runs: u64,
    /// Runs with at least one hazard.
    pub hazardous_runs: u64,
    /// Runs ending in an accident.
    pub accident_runs: u64,
    /// Runs in which the attack activated.
    pub activated_runs: u64,
    /// Element-wise sums of the per-run counters and histograms.
    pub totals: RunMetrics,
}

impl CampaignMetrics {
    /// Folds one run into the aggregate.
    pub fn absorb_run(&mut self, metrics: &RunMetrics, result: &SimResult) {
        self.runs += 1;
        self.hazardous_runs += u64::from(result.hazardous());
        self.accident_runs += u64::from(result.accident.is_some());
        self.activated_runs += u64::from(result.attack_activated.is_some());
        self.totals.ticks += metrics.ticks;
        for (a, b) in self
            .totals
            .bus_published
            .iter_mut()
            .zip(&metrics.bus_published)
        {
            *a += b;
        }
        self.totals.frames_rewritten += metrics.frames_rewritten;
        self.totals.panda_blocked += metrics.panda_blocked;
        self.totals.alert_events += metrics.alert_events;
        self.totals.attack_active_ticks += metrics.attack_active_ticks;
        self.totals.driver_engaged_ticks += metrics.driver_engaged_ticks;
        self.totals.degraded_ticks += metrics.degraded_ticks;
        self.totals.failsafe_ticks += metrics.failsafe_ticks;
        self.totals.faults_injected += metrics.faults_injected;
        self.totals.headway.merge(&metrics.headway);
        self.totals.applied_accel.merge(&metrics.applied_accel);
        self.totals.lane_offset.merge(&metrics.lane_offset);
    }

    /// Merges another campaign aggregate (e.g. a worker's partial).
    pub fn merge(&mut self, other: &CampaignMetrics) {
        self.runs += other.runs;
        self.hazardous_runs += other.hazardous_runs;
        self.accident_runs += other.accident_runs;
        self.activated_runs += other.activated_runs;
        self.totals.ticks += other.totals.ticks;
        for (a, b) in self
            .totals
            .bus_published
            .iter_mut()
            .zip(&other.totals.bus_published)
        {
            *a += b;
        }
        self.totals.frames_rewritten += other.totals.frames_rewritten;
        self.totals.panda_blocked += other.totals.panda_blocked;
        self.totals.alert_events += other.totals.alert_events;
        self.totals.attack_active_ticks += other.totals.attack_active_ticks;
        self.totals.driver_engaged_ticks += other.totals.driver_engaged_ticks;
        self.totals.degraded_ticks += other.totals.degraded_ticks;
        self.totals.failsafe_ticks += other.totals.failsafe_ticks;
        self.totals.faults_injected += other.totals.faults_injected;
        self.totals.headway.merge(&other.totals.headway);
        self.totals.applied_accel.merge(&other.totals.applied_accel);
        self.totals.lane_offset.merge(&other.totals.lane_offset);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bins_and_moments() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [0.5, 1.5, 1.6, 9.99, -1.0, 10.0, f64::NAN] {
            h.record(x);
        }
        let (bins, under, over) = h.bins();
        assert_eq!(bins[0], 1);
        assert_eq!(bins[1], 2);
        assert_eq!(bins[9], 1);
        assert_eq!(under, 1);
        assert_eq!(over, 1);
        assert_eq!(h.count(), 6, "NaN ignored");
    }

    #[test]
    fn histogram_merge_adds_samples() {
        let mut a = Histogram::new(0.0, 1.0, 4);
        let mut b = Histogram::new(0.0, 1.0, 4);
        a.record(0.1);
        b.record(0.9);
        b.record(0.95);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        let (bins, _, _) = a.bins();
        assert_eq!(bins[0], 1);
        assert_eq!(bins[3], 2);
    }

    #[test]
    #[should_panic(expected = "ranges must match")]
    fn histogram_merge_rejects_mismatched_ranges() {
        let mut a = Histogram::new(0.0, 1.0, 4);
        let b = Histogram::new(0.0, 2.0, 4);
        a.merge(&b);
    }
}
