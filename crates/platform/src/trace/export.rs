//! Trace serialization (CSV, JSON) and trace-to-trace divergence diffs.
//!
//! Serialization is hand-rolled with fixed-precision formatting so golden
//! files are byte-stable across platforms; floats are written with `{:.4}`
//! and `NaN` becomes an empty CSV cell / JSON `null`.

use msgbus::Topic;

use super::record::TickRecord;

/// CSV header matching [`csv_row`] column for column.
pub const CSV_HEADER: &str = "tick,time_s,ego_s,ego_d,ego_v,ego_a,ego_steer_deg,\
lead_s,lead_v,gap,hwt,engaged,acc_desired,acc_cmd,alc_desired_deg,alc_cmd_deg,\
alc_saturated,cmd_accel,cmd_steer_deg,applied_accel,applied_steer_deg,\
bus_total,attack_active,frames_rewritten,panda_blocked,alert_events,\
driver_phase,hazard_mask,h3_streak,collided,\
fault_mask,faults_injected,degradation,gate_rejections,ids";

fn cell(x: f64) -> String {
    if x.is_nan() {
        String::new()
    } else {
        format!("{x:.4}")
    }
}

fn csv_row(r: &TickRecord) -> String {
    format!(
        "{},{:.2},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
        r.tick,
        r.time_secs(),
        cell(r.ego_s),
        cell(r.ego_d),
        cell(r.ego_v),
        cell(r.ego_a),
        cell(r.ego_steer_deg),
        cell(r.lead_s),
        cell(r.lead_v),
        cell(r.gap),
        cell(r.hwt),
        u8::from(r.engaged),
        cell(r.acc_desired),
        cell(r.acc_cmd),
        cell(r.alc_desired_deg),
        cell(r.alc_cmd_deg),
        u8::from(r.alc_saturated),
        cell(r.cmd_accel),
        cell(r.cmd_steer_deg),
        cell(r.applied_accel),
        cell(r.applied_steer_deg),
        r.bus_published_total(),
        u8::from(r.attack_active),
        r.frames_rewritten,
        r.panda_blocked,
        r.alert_events,
        r.driver_phase.as_char(),
        r.hazard_mask,
        r.h3_streak,
        u8::from(r.collided),
        r.fault_mask,
        r.faults_injected,
        r.degradation.as_char(),
        r.gate_rejections,
        r.ids.as_char(),
    )
}

/// Renders records as CSV with a header row and trailing newline.
pub fn to_csv<'a>(records: impl IntoIterator<Item = &'a TickRecord>) -> String {
    let mut out = String::from(CSV_HEADER);
    out.push('\n');
    for r in records {
        out.push_str(&csv_row(r));
        out.push('\n');
    }
    out
}

fn json_num(x: f64) -> String {
    if x.is_nan() {
        "null".to_string()
    } else {
        format!("{x:.4}")
    }
}

/// Renders records as a JSON array of objects (hand-rolled; the vendored
/// `serde` is an API stub without real serialization).
pub fn to_json<'a>(records: impl IntoIterator<Item = &'a TickRecord>) -> String {
    let mut out = String::from("[\n");
    let mut first = true;
    for r in records {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let topics: Vec<String> = Topic::ALL
            .iter()
            .map(|t| format!("\"{}\":{}", t.service_name(), r.bus_published[t.index()]))
            .collect();
        out.push_str(&format!(
            "  {{\"tick\":{},\"time_s\":{:.2},\"ego\":{{\"s\":{},\"d\":{},\"v\":{},\"a\":{},\"steer_deg\":{}}},\
\"lead\":{{\"s\":{},\"v\":{}}},\"gap\":{},\"hwt\":{},\"engaged\":{},\
\"acc\":{{\"desired\":{},\"cmd\":{}}},\"alc\":{{\"desired_deg\":{},\"cmd_deg\":{},\"saturated\":{}}},\
\"cmd\":{{\"accel\":{},\"steer_deg\":{}}},\"applied\":{{\"accel\":{},\"steer_deg\":{}}},\
\"bus\":{{{}}},\"attack_active\":{},\"frames_rewritten\":{},\"panda_blocked\":{},\
\"alert_events\":{},\"driver_phase\":\"{}\",\"hazard_mask\":{},\"h3_streak\":{},\"collided\":{},\
\"fault_mask\":{},\"faults_injected\":{},\"degradation\":\"{}\",\
\"gate_rejections\":{},\"ids\":\"{}\"}}",
            r.tick,
            r.time_secs(),
            json_num(r.ego_s),
            json_num(r.ego_d),
            json_num(r.ego_v),
            json_num(r.ego_a),
            json_num(r.ego_steer_deg),
            json_num(r.lead_s),
            json_num(r.lead_v),
            json_num(r.gap),
            json_num(r.hwt),
            r.engaged,
            json_num(r.acc_desired),
            json_num(r.acc_cmd),
            json_num(r.alc_desired_deg),
            json_num(r.alc_cmd_deg),
            r.alc_saturated,
            json_num(r.cmd_accel),
            json_num(r.cmd_steer_deg),
            json_num(r.applied_accel),
            json_num(r.applied_steer_deg),
            topics.join(","),
            r.attack_active,
            r.frames_rewritten,
            r.panda_blocked,
            r.alert_events,
            r.driver_phase.as_char(),
            r.hazard_mask,
            r.h3_streak,
            r.collided,
            r.fault_mask,
            r.faults_injected,
            r.degradation.as_char(),
            r.gate_rejections,
            r.ids.as_char(),
        ));
    }
    out.push_str("\n]\n");
    out
}

/// Where and how two traces diverge, field by field.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceDiff {
    /// First tick at which any field differs (None: identical prefix).
    pub first_divergence_tick: Option<u64>,
    /// Ticks compared (the shorter trace bounds the comparison).
    pub ticks_compared: u64,
    /// Length difference `a.len() as i64 - b.len() as i64`.
    pub length_delta: i64,
    /// Max |Δ| per continuous field: (name, max delta, tick of max).
    pub max_deltas: Vec<(&'static str, f64, u64)>,
}

impl TraceDiff {
    /// Whether the compared prefixes are identical and equally long.
    pub fn identical(&self) -> bool {
        self.first_divergence_tick.is_none() && self.length_delta == 0
    }
}

impl std::fmt::Display for TraceDiff {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.first_divergence_tick {
            None if self.length_delta == 0 => {
                write!(f, "traces identical over {} ticks", self.ticks_compared)
            }
            None => write!(
                f,
                "traces identical over {} shared ticks (length delta {:+})",
                self.ticks_compared, self.length_delta
            ),
            Some(t) => {
                writeln!(
                    f,
                    "first divergence at tick {} (t={:.2}s), {} ticks compared",
                    t,
                    t as f64 * units::DT.secs(),
                    self.ticks_compared
                )?;
                for (name, delta, tick) in &self.max_deltas {
                    if *delta > 0.0 {
                        writeln!(f, "  {name:<18} max |Δ| {delta:>12.6} at tick {tick}")?;
                    }
                }
                Ok(())
            }
        }
    }
}

/// `NaN`-aware absolute difference: two NaNs are equal, NaN vs number is
/// treated as an infinite difference so it registers as a divergence.
fn delta(a: f64, b: f64) -> f64 {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => 0.0,
        (false, false) => (a - b).abs(),
        _ => f64::INFINITY,
    }
}

/// Compares two traces tick-for-tick; records must be aligned (same tick
/// indices), which holds for runs of the same scenario.
pub fn diff<'a>(
    a: impl IntoIterator<Item = &'a TickRecord>,
    b: impl IntoIterator<Item = &'a TickRecord>,
) -> TraceDiff {
    type FieldGetter = fn(&TickRecord) -> f64;
    // Every continuous field; the discrete remainder is compared exactly in
    // `discrete_equal` (a plain `ra != rb` would flag NaN == NaN ticks).
    const FIELDS: [(&str, FieldGetter); 17] = [
        ("ego_s", |r| r.ego_s),
        ("ego_d", |r| r.ego_d),
        ("ego_v", |r| r.ego_v),
        ("ego_a", |r| r.ego_a),
        ("ego_steer_deg", |r| r.ego_steer_deg),
        ("lead_s", |r| r.lead_s),
        ("lead_v", |r| r.lead_v),
        ("gap", |r| r.gap),
        ("hwt", |r| r.hwt),
        ("acc_desired", |r| r.acc_desired),
        ("acc_cmd", |r| r.acc_cmd),
        ("alc_desired_deg", |r| r.alc_desired_deg),
        ("alc_cmd_deg", |r| r.alc_cmd_deg),
        ("cmd_accel", |r| r.cmd_accel),
        ("cmd_steer_deg", |r| r.cmd_steer_deg),
        ("applied_accel", |r| r.applied_accel),
        ("applied_steer_deg", |r| r.applied_steer_deg),
    ];
    fn discrete_equal(a: &TickRecord, b: &TickRecord) -> bool {
        a.tick == b.tick
            && a.engaged == b.engaged
            && a.alc_saturated == b.alc_saturated
            && a.bus_published == b.bus_published
            && a.attack_active == b.attack_active
            && a.frames_rewritten == b.frames_rewritten
            && a.panda_blocked == b.panda_blocked
            && a.alert_events == b.alert_events
            && a.driver_phase == b.driver_phase
            && a.hazard_mask == b.hazard_mask
            && a.h3_streak == b.h3_streak
            && a.collided == b.collided
            && a.fault_mask == b.fault_mask
            && a.faults_injected == b.faults_injected
            && a.degradation == b.degradation
            && a.gate_rejections == b.gate_rejections
            && a.ids == b.ids
    }
    let mut max_deltas: Vec<(&'static str, f64, u64)> =
        FIELDS.iter().map(|(n, _)| (*n, 0.0, 0)).collect();
    let mut first_divergence_tick = None;
    let mut ticks_compared = 0u64;
    let mut a = a.into_iter();
    let mut b = b.into_iter();
    let mut len_a = 0i64;
    let mut len_b = 0i64;
    loop {
        match (a.next(), b.next()) {
            (Some(ra), Some(rb)) => {
                len_a += 1;
                len_b += 1;
                ticks_compared += 1;
                let mut diverged = !discrete_equal(ra, rb);
                for ((_, get), slot) in FIELDS.iter().zip(max_deltas.iter_mut()) {
                    let d = delta(get(ra), get(rb));
                    if d > slot.1 {
                        slot.1 = d;
                        slot.2 = ra.tick;
                    }
                    diverged |= d > 0.0;
                }
                if diverged && first_divergence_tick.is_none() {
                    first_divergence_tick = Some(ra.tick);
                }
            }
            (Some(_), None) => len_a += 1,
            (None, Some(_)) => len_b += 1,
            (None, None) => break,
        }
    }
    TraceDiff {
        first_divergence_tick,
        ticks_compared,
        length_delta: len_a - len_b,
        max_deltas,
    }
}

#[cfg(test)]
mod tests {
    use super::super::record::{DegradationCode, DriverPhaseCode, IdsCode};
    use super::*;

    fn record(tick: u64, ego_v: f64) -> TickRecord {
        TickRecord {
            tick,
            ego_s: tick as f64 * 0.3,
            ego_d: 0.01,
            ego_v,
            ego_a: 0.0,
            ego_steer_deg: 0.0,
            lead_s: 100.0,
            lead_v: 29.0,
            gap: f64::NAN,
            hwt: f64::NAN,
            engaged: true,
            acc_desired: 0.5,
            acc_cmd: 0.5,
            alc_desired_deg: 0.0,
            alc_cmd_deg: 0.0,
            alc_saturated: false,
            cmd_accel: 0.5,
            cmd_steer_deg: 0.0,
            applied_accel: 0.5,
            applied_steer_deg: 0.0,
            bus_published: [tick + 1; Topic::COUNT],
            attack_active: false,
            frames_rewritten: 0,
            panda_blocked: 0,
            alert_events: 0,
            driver_phase: DriverPhaseCode::Monitoring,
            hazard_mask: 0,
            h3_streak: 0,
            collided: false,
            fault_mask: 0,
            faults_injected: 0,
            degradation: DegradationCode::Nominal,
            gate_rejections: 0,
            ids: IdsCode::Nominal,
        }
    }

    #[test]
    fn csv_has_header_and_blank_nan_cells() {
        let records = [record(0, 29.0)];
        let csv = to_csv(records.iter());
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some(CSV_HEADER));
        let row = lines.next().unwrap();
        assert_eq!(
            row.split(',').count(),
            CSV_HEADER.split(',').count(),
            "row and header column counts match"
        );
        // gap and hwt are NaN -> consecutive empty cells before `engaged`.
        assert!(row.contains(",,,1,"), "NaN cells render empty: {row}");
    }

    #[test]
    fn json_renders_nan_as_null() {
        let records = [record(3, 29.0)];
        let json = to_json(records.iter());
        assert!(json.contains("\"gap\":null"));
        assert!(json.contains("\"tick\":3"));
        assert!(json.contains("\"radarState\":4"));
    }

    #[test]
    fn diff_identical_traces() {
        let a = [record(0, 29.0), record(1, 29.1)];
        let d = diff(a.iter(), a.iter());
        assert!(d.identical());
        assert_eq!(d.ticks_compared, 2);
    }

    #[test]
    fn diff_finds_first_divergence_and_max_delta() {
        let a = [record(0, 29.0), record(1, 29.0), record(2, 29.0)];
        let mut b = a;
        b[1].ego_v = 29.5;
        b[2].ego_v = 31.0;
        let d = diff(a.iter(), b.iter());
        assert_eq!(d.first_divergence_tick, Some(1));
        let ego_v = d.max_deltas.iter().find(|(n, _, _)| *n == "ego_v").unwrap();
        assert!((ego_v.1 - 2.0).abs() < 1e-12);
        assert_eq!(ego_v.2, 2);
    }

    #[test]
    fn diff_reports_length_mismatch() {
        let a = [record(0, 29.0), record(1, 29.0)];
        let b = [record(0, 29.0)];
        let d = diff(a.iter(), b.iter());
        assert_eq!(d.length_delta, 1);
        assert!(!d.identical());
    }
}
