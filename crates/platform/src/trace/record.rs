//! The per-tick snapshot captured by the flight recorder.

use msgbus::Topic;

/// Coarse driver state, one byte per tick in the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriverPhaseCode {
    /// Hands off, monitoring.
    Monitoring,
    /// Anomaly noticed; reaction clock running.
    Reacting,
    /// Driver physically in control.
    Engaged,
}

impl DriverPhaseCode {
    /// Single-character rendering for trace tables (`-`, `R`, `E`).
    pub fn as_char(self) -> char {
        match self {
            DriverPhaseCode::Monitoring => '-',
            DriverPhaseCode::Reacting => 'R',
            DriverPhaseCode::Engaged => 'E',
        }
    }
}

/// ADAS degradation-ladder state, one byte per tick in the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradationCode {
    /// Full functionality.
    Nominal,
    /// Lateral assistance shed (camera stream degraded).
    AlcOff,
    /// Longitudinal assistance shed; gentle deceleration.
    AccOff,
    /// Controlled fail-safe stop in progress.
    FailSafe,
}

impl DegradationCode {
    /// Single-character rendering for trace tables (`-`, `L`, `A`, `F`).
    pub fn as_char(self) -> char {
        match self {
            DegradationCode::Nominal => '-',
            DegradationCode::AlcOff => 'L',
            DegradationCode::AccOff => 'A',
            DegradationCode::FailSafe => 'F',
        }
    }
}

/// CAN-IDS verdict at the end of the tick, one byte per tick in the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdsCode {
    /// No check has a non-zero score (or no IDS is attached).
    Nominal,
    /// Some score is non-zero but below its threshold.
    Suspicious,
    /// A score crossed its threshold.
    Alarm,
}

impl IdsCode {
    /// Single-character rendering for trace tables (`-`, `S`, `!`).
    pub fn as_char(self) -> char {
        match self {
            IdsCode::Nominal => '-',
            IdsCode::Suspicious => 'S',
            IdsCode::Alarm => '!',
        }
    }
}

/// One tick of the Fig. 5 pipeline, captured *after* `world.step` and the
/// hazard check so every field reflects the executed cycle.
///
/// Counters (`bus_published`, `frames_rewritten`, …) are **cumulative**
/// run totals, not per-tick deltas: cumulative values stay meaningful
/// after ring-buffer wraparound and make divergence diffs stable.
/// `gap`/`hwt` are `NaN` when undefined (no lead in range / ego stopped);
/// the CSV export renders `NaN` as an empty cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TickRecord {
    /// Tick index (10 ms steps).
    pub tick: u64,
    /// Ego longitudinal position (m).
    pub ego_s: f64,
    /// Ego lateral offset from lane centre (m).
    pub ego_d: f64,
    /// Ego speed (m/s).
    pub ego_v: f64,
    /// Ego realized acceleration (m/s²).
    pub ego_a: f64,
    /// Ego steering-wheel angle (deg).
    pub ego_steer_deg: f64,
    /// Lead longitudinal position (m).
    pub lead_s: f64,
    /// Lead speed (m/s).
    pub lead_v: f64,
    /// Bumper-to-bumper gap (m); `NaN` when no lead is in range.
    pub gap: f64,
    /// Headway time gap/v_ego (s); `NaN` when undefined.
    pub hwt: f64,
    /// Whether the ADAS is engaged (longitudinal+lateral control active).
    pub engaged: bool,
    /// ACC raw desired acceleration (m/s²).
    pub acc_desired: f64,
    /// ACC clamped command (m/s²).
    pub acc_cmd: f64,
    /// ALC raw desired road-wheel angle (deg).
    pub alc_desired_deg: f64,
    /// ALC clamped command (deg).
    pub alc_cmd_deg: f64,
    /// Whether the ALC hit its saturation limit this cycle.
    pub alc_saturated: bool,
    /// Acceleration decoded at the actuator after the MITM stage (m/s²).
    pub cmd_accel: f64,
    /// Steering decoded at the actuator after the MITM stage (deg).
    pub cmd_steer_deg: f64,
    /// Acceleration actually applied to the world (driver may override).
    pub applied_accel: f64,
    /// Steering actually applied to the world (deg).
    pub applied_steer_deg: f64,
    /// Cumulative bus publishes per topic, indexed by [`Topic::index`].
    pub bus_published: [u64; Topic::COUNT],
    /// Whether the attack engine was injecting this tick.
    pub attack_active: bool,
    /// Cumulative CAN frames rewritten by the attack.
    pub frames_rewritten: u64,
    /// Cumulative frames blocked by Panda firmware checks.
    pub panda_blocked: u64,
    /// Cumulative ADAS alert events.
    pub alert_events: u64,
    /// Driver phase at the end of the tick.
    pub driver_phase: DriverPhaseCode,
    /// Cumulative hazard mask (bit 0 = H1, bit 1 = H2, bit 2 = H3).
    pub hazard_mask: u8,
    /// The H3 detector's consecutive-ticks-beyond-edge counter.
    pub h3_streak: u32,
    /// Whether the world has recorded a collision.
    pub collided: bool,
    /// Bitmask of fault kinds actively firing this tick
    /// (bit = [`faultinj::FaultKind::index`]); 0 when no engine is attached.
    pub fault_mask: u16,
    /// Cumulative count of fault injections performed by the engine.
    pub faults_injected: u64,
    /// ADAS degradation-ladder state at the end of the tick.
    pub degradation: DegradationCode,
    /// Cumulative readings withheld/flagged by the plausibility gates.
    pub gate_rejections: u64,
    /// CAN-IDS verdict at the end of the tick.
    pub ids: IdsCode,
}

impl TickRecord {
    /// Simulated time of the record in seconds.
    pub fn time_secs(&self) -> f64 {
        self.tick as f64 * units::DT.secs()
    }

    /// Total bus publishes across all topics.
    pub fn bus_published_total(&self) -> u64 {
        self.bus_published.iter().sum()
    }
}

/// A notable state transition extracted from the per-tick stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// The attack engine started injecting.
    AttackActivated,
    /// The attack engine stopped injecting (window over, or halted).
    AttackDeactivated,
    /// The ADAS raised one or more alerts this tick.
    AlertRaised,
    /// The driver noticed an anomaly (entered the reacting phase).
    DriverNoticed,
    /// The driver took over (entered the engaged phase).
    DriverEngaged,
    /// A hazard kind occurred for the first time.
    Hazard(crate::HazardKind),
    /// The world recorded a collision.
    Collision,
    /// The ADAS degradation ladder moved to a new state.
    DegradationChanged(DegradationCode),
    /// The CAN IDS crossed into its alarm state.
    IdsAlarm,
}

/// A [`TraceEventKind`] stamped with its tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Tick at which the transition was observed.
    pub tick: u64,
    /// What happened.
    pub kind: TraceEventKind,
}

impl std::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let t = self.tick as f64 * units::DT.secs();
        let label = match self.kind {
            TraceEventKind::AttackActivated => "attack activated".to_string(),
            TraceEventKind::AttackDeactivated => "attack deactivated".to_string(),
            TraceEventKind::AlertRaised => "ADAS alert".to_string(),
            TraceEventKind::DriverNoticed => "driver noticed anomaly".to_string(),
            TraceEventKind::DriverEngaged => "driver engaged".to_string(),
            TraceEventKind::Hazard(kind) => format!("hazard {kind:?}"),
            TraceEventKind::Collision => "collision".to_string(),
            TraceEventKind::DegradationChanged(code) => {
                format!("degradation -> {}", code.as_char())
            }
            TraceEventKind::IdsAlarm => "CAN IDS alarm".to_string(),
        };
        write!(f, "t={t:6.2}s  tick {:>5}  {label}", self.tick)
    }
}
