//! Flight recorder: a zero-cost-when-disabled per-tick observability layer.
//!
//! The recorder snapshots the full Fig. 5 pipeline once per tick — ego and
//! lead kinematics, per-topic bus traffic, CAN rewrites, attack-engine and
//! driver-model state, hazard-detector internals — into a bounded
//! [`TraceRing`], folds each tick into [`RunMetrics`], and derives discrete
//! [`TraceEvent`]s (attack on/off, alerts, driver takeover, hazards,
//! collision) by edge-comparing consecutive records.
//!
//! When [`TraceConfig::enabled`] is false the harness holds no recorder at
//! all; the only per-tick cost is a single `Option` branch. The recorder
//! never consumes simulation RNG and never subscribes to the bus, so a run
//! is bit-identical with tracing on or off (asserted in `tests/trace.rs`).

mod counters;
mod export;
mod record;
mod ring;

pub use counters::{CampaignMetrics, Histogram, RunMetrics};
pub use export::{diff, to_csv, to_json, TraceDiff, CSV_HEADER};
pub use record::{
    DegradationCode, DriverPhaseCode, IdsCode, TickRecord, TraceEvent, TraceEventKind,
};
pub use ring::TraceRing;

use crate::HazardKind;

/// Whether and how much a [`Harness`](crate::Harness) records.
///
/// `Copy` so it can live inside the `Copy` `HarnessConfig`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Whether to attach a recorder at all.
    pub enabled: bool,
    /// Ring capacity in ticks; older records are overwritten.
    pub capacity: usize,
}

impl TraceConfig {
    /// Tracing off (the default): no recorder is allocated.
    pub const fn disabled() -> Self {
        Self {
            enabled: false,
            capacity: 0,
        }
    }

    /// Tracing on with a ring of `capacity` ticks.
    pub const fn enabled(capacity: usize) -> Self {
        Self {
            enabled: true,
            capacity,
        }
    }

    /// Tracing on with room for every tick of a full run.
    pub const fn full_run() -> Self {
        Self::enabled(units::STEPS_PER_SIM as usize)
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// The per-run flight recorder owned by a tracing [`Harness`](crate::Harness).
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    ring: TraceRing,
    metrics: RunMetrics,
    events: Vec<TraceEvent>,
    prev: Option<TickRecord>,
}

impl TraceRecorder {
    /// Creates an empty recorder for the given configuration.
    pub fn new(config: TraceConfig) -> Self {
        Self {
            ring: TraceRing::new(config.capacity),
            metrics: RunMetrics::default(),
            events: Vec::new(),
            prev: None,
        }
    }

    /// Ingests one end-of-tick record: pushes it into the ring, folds it
    /// into the run metrics, and emits events for every edge relative to
    /// the previous record.
    pub fn record(&mut self, r: TickRecord) {
        self.derive_events(&r);
        self.metrics.observe(&r);
        self.ring.record(r);
        self.prev = Some(r);
    }

    fn derive_events(&mut self, r: &TickRecord) {
        let tick = r.tick;
        let prev = self.prev;
        let was = move |f: fn(&TickRecord) -> bool| prev.as_ref().map(f).unwrap_or(false);
        let prev_count = move |f: fn(&TickRecord) -> u64| prev.as_ref().map(f).unwrap_or(0);
        let prev_mask = prev.map(|p| p.hazard_mask).unwrap_or(0);

        if r.attack_active && !was(|p| p.attack_active) {
            self.push_event(tick, TraceEventKind::AttackActivated);
        }
        if !r.attack_active && was(|p| p.attack_active) {
            self.push_event(tick, TraceEventKind::AttackDeactivated);
        }
        if r.alert_events > prev_count(|p| p.alert_events) {
            self.push_event(tick, TraceEventKind::AlertRaised);
        }
        let phase_rank = |c: DriverPhaseCode| match c {
            DriverPhaseCode::Monitoring => 0,
            DriverPhaseCode::Reacting => 1,
            DriverPhaseCode::Engaged => 2,
        };
        let prev_rank = prev.map(|p| phase_rank(p.driver_phase)).unwrap_or(0);
        if phase_rank(r.driver_phase) > prev_rank {
            if r.driver_phase == DriverPhaseCode::Reacting {
                self.push_event(tick, TraceEventKind::DriverNoticed);
            } else {
                if prev_rank == 0 {
                    self.push_event(tick, TraceEventKind::DriverNoticed);
                }
                self.push_event(tick, TraceEventKind::DriverEngaged);
            }
        }
        let new_bits = r.hazard_mask & !prev_mask;
        for (bit, kind) in [
            (1u8, HazardKind::H1),
            (2, HazardKind::H2),
            (4, HazardKind::H3),
        ] {
            if new_bits & bit != 0 {
                self.push_event(tick, TraceEventKind::Hazard(kind));
            }
        }
        if r.collided && !was(|p| p.collided) {
            self.push_event(tick, TraceEventKind::Collision);
        }
        let prev_degradation = prev
            .map(|p| p.degradation)
            .unwrap_or(DegradationCode::Nominal);
        if r.degradation != prev_degradation {
            self.push_event(tick, TraceEventKind::DegradationChanged(r.degradation));
        }
        let prev_ids = prev.map(|p| p.ids).unwrap_or(IdsCode::Nominal);
        if r.ids == IdsCode::Alarm && prev_ids != IdsCode::Alarm {
            self.push_event(tick, TraceEventKind::IdsAlarm);
        }
    }

    fn push_event(&mut self, tick: u64, kind: TraceEventKind) {
        // adas-lint: allow(R13, reason = "events are rare edge-triggered transitions (engage, collide, degrade), not per-tick appends; the steady-state alloc gate runs with tracing attached and stays at zero")
        self.events.push(TraceEvent { tick, kind });
    }

    /// The retained per-tick records.
    pub fn ring(&self) -> &TraceRing {
        &self.ring
    }

    /// The running per-run metrics.
    pub fn metrics(&self) -> &RunMetrics {
        &self.metrics
    }

    /// The derived state-transition events, in tick order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Renders the newest `n` retained ticks as an aligned text table,
    /// suitable for inclusion in a panic message.
    pub fn tail_table(&self, n: usize) -> String {
        let mut out = String::from(
            "  tick   t(s)    ego_s   ego_v   ego_a    gap     hwt  acc_cmd  appl_a  \
d(m)   drv hz\n",
        );
        let opt = |x: f64| {
            if x.is_nan() {
                "     --".to_string()
            } else {
                format!("{x:7.2}")
            }
        };
        for r in self.ring.tail(n) {
            out.push_str(&format!(
                "{:>6} {:6.2} {:8.2} {:7.2} {:7.2} {} {} {:8.2} {:7.2} {:5.2}   {}  {:03b}{}\n",
                r.tick,
                r.time_secs(),
                r.ego_s,
                r.ego_v,
                r.ego_a,
                opt(r.gap),
                opt(r.hwt),
                r.acc_cmd,
                r.applied_accel,
                r.ego_d,
                r.driver_phase.as_char(),
                r.hazard_mask,
                if r.collided { " COLLIDED" } else { "" },
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_record(tick: u64) -> TickRecord {
        TickRecord {
            tick,
            ego_s: 0.0,
            ego_d: 0.0,
            ego_v: 29.0,
            ego_a: 0.0,
            ego_steer_deg: 0.0,
            lead_s: 100.0,
            lead_v: 29.0,
            gap: 95.0,
            hwt: 3.2,
            engaged: true,
            acc_desired: 0.0,
            acc_cmd: 0.0,
            alc_desired_deg: 0.0,
            alc_cmd_deg: 0.0,
            alc_saturated: false,
            cmd_accel: 0.0,
            cmd_steer_deg: 0.0,
            applied_accel: 0.0,
            applied_steer_deg: 0.0,
            bus_published: [tick + 1; msgbus::Topic::COUNT],
            attack_active: false,
            frames_rewritten: 0,
            panda_blocked: 0,
            alert_events: 0,
            driver_phase: DriverPhaseCode::Monitoring,
            hazard_mask: 0,
            h3_streak: 0,
            collided: false,
            fault_mask: 0,
            faults_injected: 0,
            degradation: DegradationCode::Nominal,
            gate_rejections: 0,
            ids: IdsCode::Nominal,
        }
    }

    #[test]
    fn edges_become_events_exactly_once() {
        let mut rec = TraceRecorder::new(TraceConfig::enabled(16));
        rec.record(base_record(0));
        let mut r1 = base_record(1);
        r1.attack_active = true;
        rec.record(r1);
        let mut r2 = base_record(2);
        r2.attack_active = true;
        rec.record(r2);
        let mut r3 = base_record(3);
        r3.attack_active = false;
        r3.hazard_mask = 0b100;
        rec.record(r3);
        let kinds: Vec<TraceEventKind> = rec.events().iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TraceEventKind::AttackActivated,
                TraceEventKind::AttackDeactivated,
                TraceEventKind::Hazard(HazardKind::H3),
            ]
        );
        assert_eq!(rec.events()[0].tick, 1);
        assert_eq!(rec.events()[2].tick, 3);
    }

    #[test]
    fn driver_phase_jump_emits_both_transitions() {
        let mut rec = TraceRecorder::new(TraceConfig::enabled(4));
        rec.record(base_record(0));
        let mut r1 = base_record(1);
        r1.driver_phase = DriverPhaseCode::Engaged;
        rec.record(r1);
        let kinds: Vec<TraceEventKind> = rec.events().iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![TraceEventKind::DriverNoticed, TraceEventKind::DriverEngaged],
            "a Monitoring->Engaged jump implies the driver noticed too"
        );
    }

    #[test]
    fn ids_alarm_edge_is_one_event_until_it_clears() {
        let mut rec = TraceRecorder::new(TraceConfig::enabled(8));
        rec.record(base_record(0));
        for t in 1..4u64 {
            let mut r = base_record(t);
            r.ids = IdsCode::Alarm;
            rec.record(r);
        }
        let mut r4 = base_record(4);
        r4.ids = IdsCode::Suspicious;
        rec.record(r4);
        let mut r5 = base_record(5);
        r5.ids = IdsCode::Alarm;
        rec.record(r5);
        let alarms: Vec<u64> = rec
            .events()
            .iter()
            .filter(|e| e.kind == TraceEventKind::IdsAlarm)
            .map(|e| e.tick)
            .collect();
        assert_eq!(alarms, vec![1, 5], "one event per entry into Alarm");
    }

    #[test]
    fn metrics_track_active_ticks_and_latest_totals() {
        let mut rec = TraceRecorder::new(TraceConfig::enabled(4));
        for t in 0..10u64 {
            let mut r = base_record(t);
            r.attack_active = t >= 5;
            r.frames_rewritten = if t >= 5 { (t - 4) * 3 } else { 0 };
            rec.record(r);
        }
        assert_eq!(rec.metrics().ticks, 10);
        assert_eq!(rec.metrics().attack_active_ticks, 5);
        assert_eq!(rec.metrics().frames_rewritten, 15, "cumulative, not sum");
        assert_eq!(rec.ring().len(), 4, "ring bounded independently of metrics");
    }

    #[test]
    fn tail_table_renders_nan_as_dashes() {
        let mut rec = TraceRecorder::new(TraceConfig::enabled(4));
        let mut r = base_record(0);
        r.gap = f64::NAN;
        r.hwt = f64::NAN;
        rec.record(r);
        let table = rec.tail_table(4);
        assert!(table.contains("--"), "NaN cells: {table}");
        assert!(table.lines().count() >= 2);
    }
}
