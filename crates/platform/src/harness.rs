//! One lock-step simulation run: ADAS + simulator + driver + attack engine.
//!
//! The data flow per 10 ms tick mirrors the paper's Fig. 5:
//!
//! ```text
//! sensors ──publish──▶ msgbus ──▶ ADAS ──CAN frames──▶ [attack engine MITM]
//!                        ▲                                    │
//!                        └── attacker eavesdrops        [Panda checks]
//!                                                             ▼
//! hazard detector ◀── world.step(cmd) ◀── driver override? ◀── actuators
//! ```

use attack_core::{AttackConfig, AttackEngine};
use defense::{
    CanIds, ContextMonitor, ContextObservation, ControlInvariantDetector, DefensePolicy,
    IdsConfig, IdsVerdict,
};
use driver_model::{Driver, DriverConfig, DriverPhase, Observation};
use driving_sim::{ActuatorCommand, Scenario, SensorSuite, World, RADAR_RANGE};
use faultinj::{FaultEngine, FaultSchedule};
use msgbus::schema::CarControl;
use msgbus::{Bus, Payload};
use openadas::{Adas, AdasOutput, CommandEncoder, DegradationState, GateConfig, PandaSafety};
use serde::{Deserialize, Serialize};
use units::{Seconds, Tick};

use crate::trace::{
    DegradationCode, DriverPhaseCode, IdsCode, TickRecord, TraceConfig, TraceRecorder,
};
use crate::{AccidentKind, HazardDetector, HazardKind, HazardParams};

/// Configuration of one simulation run.
#[derive(Debug, Clone, Copy)]
pub struct HarnessConfig {
    /// The driving scenario.
    pub scenario: Scenario,
    /// Seed for sensor noise and the attack's random draws.
    pub seed: u64,
    /// The attack to mount, if any.
    pub attack: Option<AttackConfig>,
    /// The simulated driver.
    pub driver: DriverConfig,
    /// Whether Panda-style firmware checks gate the actuator frames. The
    /// paper's CARLA setup leaves them disabled.
    pub panda_enabled: bool,
    /// How the defense stack is deployed: which detectors attach
    /// (control-invariant, context monitor, plausibility gates, CAN IDS)
    /// and whether their verdicts act on the vehicle. `Off` reproduces the
    /// paper's undefended ADAS; `Observe` is the old record-only
    /// `defenses_enabled` mode; `Degrade`/`FailSafe` make detections force
    /// the degradation ladder.
    pub defense: DefensePolicy,
    /// Hazard detection thresholds.
    pub hazard_params: HazardParams,
    /// Flight-recorder settings. Disabled by default; when disabled the
    /// harness allocates no recorder and pays only one branch per tick.
    pub trace: TraceConfig,
    /// Deterministic fault schedule. Empty by default; when empty the
    /// harness attaches no fault engine and the sensor/CAN paths are
    /// bit-identical to a fault-free build.
    pub faults: FaultSchedule,
}

impl HarnessConfig {
    /// An attack-free run with an alert driver.
    pub fn no_attack(scenario: Scenario, seed: u64) -> Self {
        Self {
            scenario,
            seed,
            attack: None,
            driver: DriverConfig::alert(),
            panda_enabled: false,
            defense: DefensePolicy::Off,
            hazard_params: HazardParams::default(),
            trace: TraceConfig::disabled(),
            faults: FaultSchedule::empty(),
        }
    }

    /// An attacked run with an alert driver.
    pub fn with_attack(scenario: Scenario, seed: u64, attack: AttackConfig) -> Self {
        Self {
            attack: Some(attack),
            ..Self::no_attack(scenario, seed)
        }
    }

    /// The same run with the flight recorder attached.
    pub fn traced(self, trace: TraceConfig) -> Self {
        Self { trace, ..self }
    }

    /// The same run with a fault schedule attached.
    pub fn with_faults(self, faults: FaultSchedule) -> Self {
        Self { faults, ..self }
    }

    /// The same run with the given defense policy.
    pub fn with_defense(self, defense: DefensePolicy) -> Self {
        Self { defense, ..self }
    }
}

/// Everything measured in one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// Seed of the run.
    pub seed: u64,
    /// First hazard (time and kind), if any.
    pub first_hazard: Option<(Seconds, HazardKind)>,
    /// All hazard kinds that occurred.
    pub hazard_kinds: Vec<HazardKind>,
    /// The accident, if one occurred.
    pub accident: Option<(Seconds, AccidentKind)>,
    /// ADAS alert events raised during the run.
    pub alert_events: u64,
    /// Forward-collision-warning events (Observation 2 expects zero).
    pub fcw_events: u64,
    /// Lane-invasion events.
    pub lane_invasions: u64,
    /// Simulated duration.
    pub duration: Seconds,
    /// When the attack first injected (`t_a`), if it did.
    pub attack_activated: Option<Seconds>,
    /// Time-to-hazard: first hazard − activation.
    pub tth: Option<Seconds>,
    /// When the driver noticed an anomaly/alert (`t_d`).
    pub driver_noticed: Option<Seconds>,
    /// When the driver took over (`t_ex`).
    pub driver_engaged: Option<Seconds>,
    /// CAN frames rewritten by the attack.
    pub frames_rewritten: u64,
    /// Frames blocked by Panda checks (when enabled).
    pub panda_blocked: u64,
    /// When the control-invariant detector alarmed (defenses enabled only).
    pub invariant_detected: Option<Seconds>,
    /// When the context-aware command monitor alarmed (defenses enabled
    /// only).
    pub monitor_detected: Option<Seconds>,
    /// Ticks the ADAS spent in any degraded (non-nominal) state.
    pub degraded_ticks: u64,
    /// Ticks the ADAS spent in the fail-safe state.
    pub failsafe_ticks: u64,
    /// When the ADAS first left the nominal state.
    pub first_degraded: Option<Seconds>,
    /// When the ADAS first entered the fail-safe state.
    pub first_failsafe: Option<Seconds>,
    /// Time from the scheduled end of the last fault to the return to
    /// nominal (None: never degraded, never recovered, or no schedule).
    pub recovery_latency: Option<Seconds>,
    /// Fault injections performed by the fault engine.
    pub faults_injected: u64,
    /// When the CAN IDS first alarmed (detectors attached only).
    pub ids_detected: Option<Seconds>,
    /// Readings withheld (or, under `Observe`, merely flagged) by the
    /// perception plausibility gates over the whole run.
    pub gate_rejections: u64,
}

impl SimResult {
    /// Whether any hazard occurred.
    pub fn hazardous(&self) -> bool {
        self.first_hazard.is_some()
    }

    /// Whether any ADAS alert was raised.
    pub fn alerted(&self) -> bool {
        self.alert_events > 0
    }

    /// The paper's "Hazards & no Alerts" criterion.
    pub fn hazard_without_alert(&self) -> bool {
        self.hazardous() && !self.alerted()
    }

    /// Whether a specific hazard kind occurred.
    pub fn has_hazard(&self, kind: HazardKind) -> bool {
        self.hazard_kinds.contains(&kind)
    }
}

/// A single assembled simulation.
pub struct Harness {
    config: HarnessConfig,
    bus: Bus,
    world: World,
    sensors: SensorSuite,
    adas: Adas,
    attacker: Option<AttackEngine>,
    driver: Driver,
    panda: PandaSafety,
    actuator_side: CommandEncoder,
    hazards: HazardDetector,
    invariant: Option<ControlInvariantDetector>,
    monitor: Option<ContextMonitor>,
    ids: Option<CanIds>,
    last_cmd: CarControl,
    alert_events: u64,
    ever_disengaged: bool,
    faults: Option<FaultEngine>,
    degraded_ticks: u64,
    failsafe_ticks: u64,
    first_degraded: Option<Tick>,
    first_failsafe: Option<Tick>,
    recovered_at: Option<Tick>,
    recorder: Option<TraceRecorder>,
    /// ADAS output buffers, handed to [`Adas::step_into`] and taken back
    /// every tick so the steady-state loop never touches the heap.
    adas_out: AdasOutput,
}

impl Harness {
    /// Wires up a run.
    pub fn new(config: HarnessConfig) -> Self {
        let bus = Bus::new();
        let world = World::new(config.scenario, config.seed);
        let sensors = SensorSuite::new(config.seed);
        // The attacker must subscribe before the ADAS so it sees the same
        // traffic from the start (subscription order does not matter for
        // delivery, only for realism of the deployment story).
        let attacker = config.attack.map(|mut a| {
            a.seed = a.seed.wrapping_add(config.seed);
            AttackEngine::new(&bus, a)
        });
        // With detectors attached the ADAS carries plausibility gates; the
        // gates only *withhold* readings under an acting policy, otherwise
        // they observe and count. With `Off` the construction is exactly
        // the undefended baseline, bit for bit.
        let adas = if config.defense.detectors_attached() {
            let gates = if config.defense.acts() {
                GateConfig::enforcing()
            } else {
                GateConfig::observing()
            };
            Adas::with_gates(&bus, config.scenario.cruise_speed, gates)
        } else {
            Adas::new(&bus, config.scenario.cruise_speed)
        };
        Self {
            bus,
            world,
            sensors,
            adas,
            attacker,
            driver: Driver::new(config.driver),
            panda: PandaSafety::new(config.panda_enabled),
            actuator_side: CommandEncoder::new(),
            hazards: HazardDetector::new(config.hazard_params),
            invariant: config
                .defense
                .detectors_attached()
                .then(ControlInvariantDetector::default),
            monitor: config
                .defense
                .detectors_attached()
                .then(ContextMonitor::default),
            ids: config
                .defense
                .detectors_attached()
                .then(|| CanIds::new(IdsConfig::default())),
            last_cmd: CarControl::default(),
            alert_events: 0,
            ever_disengaged: false,
            faults: (!config.faults.is_empty())
                .then(|| FaultEngine::new(config.seed, config.faults)),
            degraded_ticks: 0,
            failsafe_ticks: 0,
            first_degraded: None,
            first_failsafe: None,
            recovered_at: None,
            recorder: config.trace.enabled.then(|| TraceRecorder::new(config.trace)),
            adas_out: AdasOutput::default(),
            config,
        }
    }

    /// The world (ground truth), for inspection.
    pub fn world(&self) -> &World {
        &self.world
    }

    /// The message bus (e.g. to attach extra eavesdroppers).
    pub fn bus(&self) -> &Bus {
        &self.bus
    }

    /// The attack engine, if one is mounted.
    pub fn attacker(&self) -> Option<&AttackEngine> {
        self.attacker.as_ref()
    }

    /// Whether the run has completed its 5,000 ticks.
    pub fn finished(&self) -> bool {
        self.world.finished()
    }

    /// Advances one control cycle; returns the tick that was executed.
    pub fn step(&mut self) -> Tick {
        let tick = self.world.now();

        // A collision ends the run physically: the world is frozen and the
        // control stack no longer does anything meaningful, so only the
        // clock advances (keeping run durations comparable).
        if self.world.collision().is_some() {
            self.world.step(ActuatorCommand::default());
            self.capture_tick(tick, None, ActuatorCommand::default());
            return tick;
        }

        // 1. Sensors sample ground truth and publish. With a fault engine
        // attached the sample is mutated first (stuck-at, noise, latency)
        // and the IPC stage can drop or delay the per-stream publishes;
        // without one the path is untouched and bit-identical to before.
        let frame = match self.faults.as_mut() {
            Some(eng) => {
                let mut frame = self.sensors.sample(&self.world);
                let plan = eng.apply_sensors(tick, &mut frame);
                // Each publish carries the plan's *sample* stamp: a latency
                // or bus-delay replay arrives stamped with the tick it was
                // sampled at, so the ADAS staleness watchdog sees its true
                // age instead of a forged fresh timestamp.
                if let Some((stamp, gps)) = plan.gps {
                    self.bus.publish(stamp, Payload::GpsLocationExternal(gps));
                }
                if let Some((stamp, lane)) = plan.lane {
                    self.bus.publish(stamp, Payload::ModelV2(lane));
                }
                if let Some((stamp, radar)) = plan.radar {
                    self.bus.publish(stamp, Payload::RadarState(radar));
                }
                frame
            }
            None => self.sensors.publish(&self.bus, tick, &self.world),
        };

        // 2. The attacker eavesdrops and matches contexts.
        if let Some(att) = self.attacker.as_mut() {
            att.observe(tick);
        }

        // 3. The ADAS runs its control cycle and emits actuator frames. The
        // output buffers are owned by the harness and reused every tick.
        let mut out = std::mem::take(&mut self.adas_out);
        self.adas.step_into(tick, &mut out);
        self.alert_events += out.new_alerts.len() as u64;

        // 3b. Degradation bookkeeping for the resilience metrics.
        match out.degradation {
            DegradationState::Nominal => {
                if self.recovered_at.is_none() && self.first_degraded.is_some() {
                    let fault_over = self
                        .faults
                        .as_ref()
                        .and_then(FaultEngine::last_fault_end)
                        .is_some_and(|end| tick.index() >= end);
                    if fault_over {
                        self.recovered_at = Some(tick);
                    }
                }
            }
            DegradationState::FailSafe => {
                self.degraded_ticks += 1;
                self.failsafe_ticks += 1;
                if self.first_degraded.is_none() {
                    self.first_degraded = Some(tick);
                }
                if self.first_failsafe.is_none() {
                    self.first_failsafe = Some(tick);
                }
            }
            DegradationState::DegradedAlcOff | DegradationState::DegradedAccOff => {
                self.degraded_ticks += 1;
                if self.first_degraded.is_none() {
                    self.first_degraded = Some(tick);
                }
            }
        }

        // 4. Man-in-the-middle: the attack rewrites frames in flight.
        if let Some(att) = self.attacker.as_mut() {
            att.process_frames_in_place(tick, &mut out.frames);
        }

        // 4b. Fault injection at the CAN layer: bus-off, frame drops and
        // un-repaired bit flips (a flipped frame fails its checksum at the
        // actuator and is rejected there — unlike the attack engine, the
        // fault engine does not forge valid frames).
        if let Some(eng) = self.faults.as_mut() {
            eng.apply_can(tick, &mut out.frames);
        }

        // 4c. CAN IDS watches the frames as delivered — after the MITM and
        // any bus fault, before the receivers. Under an acting policy an
        // alarm forces the degradation ladder; the request lands at the top
        // of the *next* control cycle (one-tick actuation delay, like a
        // real supervisor task).
        let ids_verdict = match self.ids.as_mut() {
            Some(ids) => ids.observe(tick, &out.frames, out.engaged),
            None => IdsVerdict::Nominal,
        };
        match self.config.defense {
            DefensePolicy::Off | DefensePolicy::Observe => {}
            DefensePolicy::Degrade => {
                if ids_verdict == IdsVerdict::Alarm {
                    self.adas
                        .request_degradation(DegradationState::DegradedAccOff);
                }
            }
            DefensePolicy::FailSafe => {
                if ids_verdict == IdsVerdict::Alarm
                    || out.degradation != DegradationState::Nominal
                {
                    self.adas.request_degradation(DegradationState::FailSafe);
                }
            }
        }

        // 5. Firmware safety checks (disabled in the paper's setup).
        out.frames.retain(|f| self.panda.check(f).passed());

        // 6. Actuator-side decode; invalid/missing frames hold last values.
        let cmd = self
            .actuator_side
            .decode_actuators(&out.frames, self.last_cmd);
        self.last_cmd = cmd;

        // 6b. §V defenses observe the boundary: the invariant detector
        // compares the *issued* command with the measured response; the
        // context monitor judges the *executed* command in context.
        if let Some(inv) = self.invariant.as_mut() {
            inv.step(
                tick,
                out.control.accel,
                out.control.steer,
                frame.gps.speed,
                frame.lane.lateral_offset().raw(),
            );
        }
        if let Some(mon) = self.monitor.as_mut() {
            let half_width = self.world.ego().params().width / 2.0;
            let v = frame.gps.speed;
            let obs = ContextObservation {
                v_ego: v,
                hwt: frame.radar.lead.and_then(|l| {
                    (v.mps() > 0.5).then(|| l.d_rel / v)
                }),
                rs: frame.radar.lead.map(|l| v - l.v_lead),
                d_left: frame.lane.left_line - half_width,
                d_right: frame.lane.right_line - half_width,
            };
            mon.check(tick, &obs, cmd.accel, cmd.steer);
        }

        // 7. The driver watches the executed behaviour and any alert.
        let obs = Observation {
            speed: self.world.ego().speed(),
            v_cruise: self.config.scenario.cruise_speed,
            accel_cmd: cmd.accel,
            steer_cmd: cmd.steer,
            adas_alert: !out.new_alerts.is_empty(),
            lane_offset: self.world.ego().d(),
            lead_gap: {
                let gap = self.world.gap();
                (gap.raw() > 0.0 && gap < RADAR_RANGE).then_some(gap)
            },
        };
        let driver_cmd = self.driver.step(tick, &obs);

        let final_cmd = match driver_cmd {
            Some(d) => {
                if !self.ever_disengaged {
                    // Driver takes over: ADAS disengages, attack halts.
                    self.adas.disengage();
                    if let Some(att) = self.attacker.as_mut() {
                        att.halt(tick);
                    }
                    self.ever_disengaged = true;
                }
                ActuatorCommand {
                    accel: d.accel,
                    steer: d.steer,
                }
            }
            None => ActuatorCommand {
                accel: cmd.accel,
                steer: cmd.steer,
            },
        };

        // 8. Physics + hazard bookkeeping.
        self.world.step(final_cmd);
        self.hazards.step(&self.world);

        // 9. Flight recorder: snapshot the executed cycle (no-op when off).
        self.capture_tick(tick, Some(&out), final_cmd);

        // Hand the output buffers back for the next tick.
        self.adas_out = out;
        tick
    }

    /// Snapshots the tick that just executed into the recorder, if one is
    /// attached. `out` is `None` on post-collision frozen ticks.
    fn capture_tick(&mut self, tick: Tick, out: Option<&AdasOutput>, applied: ActuatorCommand) {
        let Some(rec) = self.recorder.as_mut() else {
            return;
        };
        let ego = self.world.ego();
        let lead = self.world.lead();
        let v = ego.speed().mps();
        let raw_gap = self.world.gap().raw();
        // Same visibility window the driver model uses: a lead beyond
        // [`RADAR_RANGE`] (or behind) is "no lead".
        let gap = if raw_gap > 0.0 && raw_gap < RADAR_RANGE.raw() {
            raw_gap
        } else {
            f64::NAN
        };
        let hwt = if v > 0.5 { gap / v } else { f64::NAN };
        rec.record(TickRecord {
            tick: tick.index(),
            ego_s: ego.s().raw(),
            ego_d: ego.d().raw(),
            ego_v: v,
            ego_a: ego.accel().raw(),
            ego_steer_deg: ego.steer().degrees(),
            lead_s: lead.s().raw(),
            lead_v: lead.speed().mps(),
            gap,
            hwt,
            engaged: out.is_some_and(|o| o.engaged),
            acc_desired: out.map_or(0.0, |o| o.acc.desired.raw()),
            acc_cmd: out.map_or(0.0, |o| o.acc.command.raw()),
            alc_desired_deg: out.map_or(0.0, |o| o.alc.desired.degrees()),
            alc_cmd_deg: out.map_or(0.0, |o| o.alc.command.degrees()),
            alc_saturated: out.is_some_and(|o| o.alc.saturated),
            cmd_accel: self.last_cmd.accel.raw(),
            cmd_steer_deg: self.last_cmd.steer.degrees(),
            applied_accel: applied.accel.raw(),
            applied_steer_deg: applied.steer.degrees(),
            bus_published: self.bus.published_by_topic(),
            attack_active: self.attacker.as_ref().is_some_and(AttackEngine::is_active),
            frames_rewritten: self
                .attacker
                .as_ref()
                .map_or(0, AttackEngine::frames_rewritten),
            panda_blocked: self.panda.blocked_count(),
            alert_events: self.alert_events,
            driver_phase: match self.driver.phase() {
                DriverPhase::Monitoring => DriverPhaseCode::Monitoring,
                DriverPhase::Reacting { .. } => DriverPhaseCode::Reacting,
                DriverPhase::Engaged { .. } => DriverPhaseCode::Engaged,
            },
            hazard_mask: self.hazards.mask(),
            h3_streak: self.hazards.h3_streak(),
            collided: self.world.collision().is_some(),
            fault_mask: self.faults.as_ref().map_or(0, FaultEngine::active_mask),
            faults_injected: self.faults.as_ref().map_or(0, FaultEngine::faults_injected),
            degradation: match self.adas.degradation() {
                DegradationState::Nominal => DegradationCode::Nominal,
                DegradationState::DegradedAlcOff => DegradationCode::AlcOff,
                DegradationState::DegradedAccOff => DegradationCode::AccOff,
                DegradationState::FailSafe => DegradationCode::FailSafe,
            },
            gate_rejections: self.adas.gate_rejections(),
            ids: match self.ids.as_ref().map_or(IdsVerdict::Nominal, CanIds::verdict) {
                IdsVerdict::Nominal => IdsCode::Nominal,
                IdsVerdict::Suspicious => IdsCode::Suspicious,
                IdsVerdict::Alarm => IdsCode::Alarm,
            },
        });
    }

    /// Runs to completion and returns the result.
    pub fn run(mut self) -> SimResult {
        while !self.finished() {
            self.step();
        }
        self.result_so_far()
    }

    /// Runs to completion and returns the result together with the flight
    /// recorder (None when tracing was disabled).
    pub fn run_traced(mut self) -> (SimResult, Option<TraceRecorder>) {
        while !self.finished() {
            self.step();
        }
        let result = self.result_so_far();
        (result, self.recorder)
    }

    /// The flight recorder, if tracing is enabled.
    pub fn recorder(&self) -> Option<&TraceRecorder> {
        self.recorder.as_ref()
    }

    /// Detaches the flight recorder, leaving the harness untraced.
    pub fn take_recorder(&mut self) -> Option<TraceRecorder> {
        self.recorder.take()
    }

    /// The newest `n` trace ticks as an aligned table, for diagnostics and
    /// assertion messages. Explains itself when tracing is off.
    pub fn trace_tail(&self, n: usize) -> String {
        match self.recorder.as_ref() {
            Some(rec) => rec.tail_table(n),
            None => "(trace recorder disabled; enable HarnessConfig.trace to capture ticks)"
                .to_string(),
        }
    }

    /// Snapshot of the result at the current point in the run.
    pub fn result_so_far(&self) -> SimResult {
        let first_hazard = self
            .hazards
            .first_any()
            .map(|(t, k)| (t.time(), k));
        let attack_activated = self
            .attacker
            .as_ref()
            .and_then(|a| a.timeline().activated_at());
        let tth = match (attack_activated, self.hazards.first_any()) {
            (Some(_), Some((h, _))) => self
                .attacker
                .as_ref()
                .and_then(|a| a.timeline().tth(h)),
            _ => None,
        };
        SimResult {
            seed: self.config.seed,
            first_hazard,
            hazard_kinds: self.hazards.kinds(),
            accident: self.hazards.accident().map(|(t, k)| (t.time(), k)),
            alert_events: self.alert_events,
            fcw_events: self.adas.fcw_events(),
            lane_invasions: self.world.lane_invasions(),
            duration: self.world.now().time(),
            attack_activated: attack_activated.map(Tick::time),
            tth,
            driver_noticed: self.driver.noticed_at().map(Tick::time),
            driver_engaged: self.driver.engaged_at().map(Tick::time),
            frames_rewritten: self
                .attacker
                .as_ref()
                .map_or(0, AttackEngine::frames_rewritten),
            panda_blocked: self.panda.blocked_count(),
            invariant_detected: self
                .invariant
                .as_ref()
                .and_then(|d| d.detected_at())
                .map(Tick::time),
            monitor_detected: self
                .monitor
                .as_ref()
                .and_then(|m| m.detected_at())
                .map(Tick::time),
            degraded_ticks: self.degraded_ticks,
            failsafe_ticks: self.failsafe_ticks,
            first_degraded: self.first_degraded.map(Tick::time),
            first_failsafe: self.first_failsafe.map(Tick::time),
            recovery_latency: self.recovered_at.and_then(|at| {
                self.faults
                    .as_ref()
                    .and_then(FaultEngine::last_fault_end)
                    .map(|end| Tick::new(at.index().saturating_sub(end)).time())
            }),
            faults_injected: self.faults.as_ref().map_or(0, FaultEngine::faults_injected),
            ids_detected: self
                .ids
                .as_ref()
                .and_then(CanIds::detected_at)
                .map(Tick::time),
            gate_rejections: self.adas.gate_rejections(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attack_core::{AttackType, StrategyKind, ValueMode};
    use driving_sim::ScenarioId;
    use units::Distance;

    fn scenario(id: ScenarioId, gap: f64) -> Scenario {
        Scenario::new(id, Distance::meters(gap))
    }

    #[test]
    fn attack_free_run_is_hazard_free() {
        let result = Harness::new(HarnessConfig::no_attack(scenario(ScenarioId::S1, 70.0), 3)).run();
        assert!(!result.hazardous(), "got {:?}", result.first_hazard);
        assert!(result.accident.is_none());
        assert_eq!(result.fcw_events, 0);
        assert!(result.driver_engaged.is_none(), "driver never takes over");
        assert_eq!(result.duration, units::SIM_DURATION);
    }

    #[test]
    fn context_aware_acceleration_attack_causes_forward_hazard() {
        let attack = AttackConfig {
            attack_type: AttackType::Acceleration,
            strategy: StrategyKind::ContextAware,
            value_mode: ValueMode::Strategic,
            ..AttackConfig::default()
        };
        let result =
            Harness::new(HarnessConfig::with_attack(scenario(ScenarioId::S1, 70.0), 5, attack))
                .run();
        assert!(result.attack_activated.is_some(), "context arises in S1");
        assert!(result.has_hazard(HazardKind::H1), "got {:?}", result.hazard_kinds);
        assert!(result.tth.is_some());
        assert!(result.frames_rewritten > 0);
    }

    #[test]
    fn strategic_attack_is_not_noticed_by_driver() {
        let attack = AttackConfig {
            attack_type: AttackType::Deceleration,
            strategy: StrategyKind::ContextAware,
            value_mode: ValueMode::Strategic,
            ..AttackConfig::default()
        };
        let result =
            Harness::new(HarnessConfig::with_attack(scenario(ScenarioId::S1, 70.0), 8, attack))
                .run();
        if result.attack_activated.is_some() {
            assert!(
                result.driver_engaged.is_none(),
                "strategic values stay inside the driver's thresholds"
            );
        }
    }

    #[test]
    fn fixed_deceleration_attack_is_noticed() {
        let attack = AttackConfig {
            attack_type: AttackType::Deceleration,
            strategy: StrategyKind::ContextAware,
            value_mode: ValueMode::Fixed,
            ..AttackConfig::default()
        };
        let result =
            Harness::new(HarnessConfig::with_attack(scenario(ScenarioId::S1, 70.0), 8, attack))
                .run();
        if let Some(t_a) = result.attack_activated {
            let noticed = result.driver_noticed.expect("-4 m/s^2 is an anomaly");
            assert!(noticed >= t_a);
            let engaged = result.driver_engaged.expect("engages 2.5 s later");
            assert!((engaged.secs() - noticed.secs() - 2.5).abs() < 0.02);
        }
    }

    #[test]
    fn steering_right_attack_reaches_the_guardrail() {
        let attack = AttackConfig {
            attack_type: AttackType::SteeringRight,
            strategy: StrategyKind::ContextAware,
            value_mode: ValueMode::Fixed,
            ..AttackConfig::default()
        };
        // Try a few seeds: the trigger needs the wander to reach the right
        // edge, which is the common case but not guaranteed per-run.
        let mut hazardous = 0;
        for seed in 0..5 {
            let result = Harness::new(HarnessConfig::with_attack(
                scenario(ScenarioId::S2, 100.0),
                seed,
                attack,
            ))
            .run();
            // A trigger late in the run may not have time to finish; count
            // the ones that do (the campaign-level rate is ~99%).
            if result.attack_activated.is_some() && result.hazardous() {
                assert!(result.has_hazard(HazardKind::H3), "{:?}", result.hazard_kinds);
                hazardous += 1;
            }
        }
        assert!(hazardous > 0, "right-edge attacks cause H3 in some of 5 runs");
    }

    #[test]
    fn panda_blocks_fixed_attack_values() {
        let attack = AttackConfig {
            attack_type: AttackType::Acceleration,
            strategy: StrategyKind::ContextAware,
            value_mode: ValueMode::Fixed,
            ..AttackConfig::default()
        };
        let mut cfg = HarnessConfig::with_attack(scenario(ScenarioId::S1, 70.0), 5, attack);
        cfg.panda_enabled = true;
        let result = Harness::new(cfg).run();
        if result.attack_activated.is_some() {
            assert!(result.panda_blocked > 0, "2.4 m/s^2 exceeds the firmware limit");
        }
    }

    #[test]
    fn same_seed_reproduces_identical_results() {
        let attack = AttackConfig {
            attack_type: AttackType::AccelerationSteering,
            strategy: StrategyKind::RandomSt,
            value_mode: ValueMode::Fixed,
            ..AttackConfig::default()
        };
        let cfg = HarnessConfig::with_attack(scenario(ScenarioId::S3, 50.0), 99, attack);
        let a = Harness::new(cfg).run();
        let b = Harness::new(cfg).run();
        assert_eq!(a, b);
    }
}
