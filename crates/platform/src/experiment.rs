//! The experiment campaigns of §IV: scenario × initial-gap × repetition
//! matrices for each attack type and strategy, run in parallel.

use attack_core::{AttackConfig, AttackType, StrategyKind, ValueMode};
use defense::DefensePolicy;
use driver_model::DriverConfig;
use driving_sim::Scenario;
use serde::{Deserialize, Serialize};

use crate::trace::{CampaignMetrics, TraceConfig, TraceRecorder};
use crate::{Harness, HarnessConfig, HazardParams, SimResult};

/// A full campaign: every attack type over the whole scenario matrix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// The scheduling strategy.
    pub strategy: StrategyKind,
    /// The value-corruption mode.
    pub value_mode: ValueMode,
    /// Repetitions per (scenario, gap) cell. The paper uses 20
    /// (→ 60 sims per attack type per scenario behaviour, 1,440 total).
    pub reps: u32,
    /// Extra parameter draws per repetition (the paper runs Random-ST+DUR
    /// ten times as often, 14,400 sims, "to maximize coverage").
    pub draws: u32,
    /// The simulated driver.
    pub driver: DriverConfig,
    /// Whether Panda firmware checks are enforced.
    pub panda_enabled: bool,
    /// Base seed; all run seeds derive deterministically from it.
    pub base_seed: u64,
}

impl CampaignConfig {
    /// The paper's configuration for a given strategy (Table III): strategic
    /// values for Context-Aware, fixed for the baselines; 10× draws for
    /// Random-ST+DUR.
    pub fn paper(strategy: StrategyKind) -> Self {
        Self {
            strategy,
            value_mode: AttackConfig::canonical_value_mode(strategy),
            reps: 20,
            draws: if strategy == StrategyKind::RandomStDur {
                10
            } else {
                1
            },
            driver: DriverConfig::alert(),
            panda_enabled: false,
            base_seed: 0x5AFE,
        }
    }

    /// A reduced-size variant for tests and smoke runs.
    pub fn smoke(strategy: StrategyKind, reps: u32) -> Self {
        Self {
            reps,
            draws: 1,
            ..Self::paper(strategy)
        }
    }
}

/// Deterministic seed mixing (splitmix64) so campaigns are reproducible and
/// paired campaigns (alert vs. inattentive driver) share world seeds.
/// Re-exported from the canonical [`units::mix`] implementation; the golden
/// constants in `tests/trace.rs` pin that the hoist preserved every bit.
pub use units::mix::mix_seed;

/// One unit of work in a campaign.
#[derive(Debug, Clone, Copy)]
pub struct RunSpec {
    /// The attack to run (None = attack-free baseline).
    pub attack: Option<AttackConfig>,
    /// Scenario.
    pub scenario: Scenario,
    /// World/sensor seed.
    pub seed: u64,
    /// Driver.
    pub driver: DriverConfig,
    /// Panda enforcement.
    pub panda_enabled: bool,
    /// Defense deployment for the run.
    pub defense: DefensePolicy,
}

impl RunSpec {
    /// The harness configuration of the run, with the given trace setting.
    pub fn harness_config(&self, trace: TraceConfig) -> HarnessConfig {
        HarnessConfig {
            scenario: self.scenario,
            seed: self.seed,
            attack: self.attack,
            driver: self.driver,
            panda_enabled: self.panda_enabled,
            defense: self.defense,
            hazard_params: HazardParams::default(),
            trace,
            faults: faultinj::FaultSchedule::empty(),
        }
    }

    /// Executes the run without tracing.
    pub fn run(&self) -> SimResult {
        Harness::new(self.harness_config(TraceConfig::disabled())).run()
    }

    /// Executes the run with a flight recorder attached.
    pub fn run_traced(&self, trace: TraceConfig) -> (SimResult, Option<TraceRecorder>) {
        Harness::new(self.harness_config(trace)).run_traced()
    }
}

/// Expands a campaign into its work list for one attack type.
pub fn plan_attack_campaign(cfg: &CampaignConfig, attack_type: AttackType) -> Vec<RunSpec> {
    let mut specs = Vec::new();
    for (si, scenario) in Scenario::matrix().into_iter().enumerate() {
        for rep in 0..cfg.reps {
            for draw in 0..cfg.draws {
                let seed = mix_seed(
                    cfg.base_seed,
                    &[si as u64, rep as u64, draw as u64, attack_type.index() as u64],
                );
                specs.push(RunSpec {
                    attack: Some(AttackConfig {
                        attack_type,
                        strategy: cfg.strategy,
                        value_mode: cfg.value_mode,
                        seed,
                        ..AttackConfig::default()
                    }),
                    scenario,
                    seed,
                    driver: cfg.driver,
                    panda_enabled: cfg.panda_enabled,
                    defense: DefensePolicy::Off,
                });
            }
        }
    }
    specs
}

/// Expands the attack-free baseline campaign (the paper's "No Attacks" row).
pub fn plan_no_attack_campaign(reps: u32, base_seed: u64, driver: DriverConfig) -> Vec<RunSpec> {
    let mut specs = Vec::new();
    for (si, scenario) in Scenario::matrix().into_iter().enumerate() {
        for rep in 0..reps {
            specs.push(RunSpec {
                attack: None,
                scenario,
                seed: mix_seed(base_seed, &[si as u64, rep as u64, 999]),
                driver,
                panda_enabled: false,
                defense: DefensePolicy::Off,
            });
        }
    }
    specs
}

/// Worker-pool configuration for the campaign runners.
///
/// # `REPRO_WORKERS`
///
/// With `workers: None`, the count resolves from the `REPRO_WORKERS`
/// environment variable. The accepted values, in the one place they are
/// defined:
///
/// * unset, empty, unparsable, or `0` — **auto**: every core
///   `std::thread::available_parallelism()` reports;
/// * `1` — serial on the calling thread (the reproducibility baseline);
/// * `k ≥ 2` — exactly `k` participants, the caller plus `k - 1` pool
///   workers.
///
/// The resolved count is always clamped to the job size, so small campaigns
/// never spawn idle workers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunnerConfig {
    /// Worker thread count. `None` resolves from the `REPRO_WORKERS`
    /// environment variable if set (and ≥ 1, `0` meaning auto), else all
    /// available cores.
    pub workers: Option<usize>,
}

impl RunnerConfig {
    /// A runner with an explicit worker count (`0` is clamped to `1`).
    pub fn with_workers(workers: usize) -> Self {
        Self {
            workers: Some(workers.max(1)),
        }
    }

    /// The worker count to use for a job of `n` items: the explicit setting,
    /// else `REPRO_WORKERS`, else every available core — never more than
    /// `n` and never less than one.
    pub fn worker_count(&self, n: usize) -> usize {
        let configured = self
            .workers
            .or_else(|| {
                std::env::var("REPRO_WORKERS")
                    .ok()
                    .and_then(|v| v.trim().parse::<usize>().ok())
                    .filter(|&w| w >= 1)
            })
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(4)
            });
        configured.max(1).min(n.max(1))
    }
}

/// The machine's core count as recorded in every `BENCH_*.json` header:
/// what `std::thread::available_parallelism()` reports, `1` if unknown.
/// Deliberately independent of the worker count actually used, so a
/// report stays byte-identical across the parallel-vs-single-worker
/// replay the benches assert.
pub fn detected_cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Fans a planned campaign's cells out over the persistent worker pool,
/// preserving plan order: element `i` of the result is `run(&specs[i])`.
///
/// This is the one fan-out every campaign shares — the attack campaigns
/// here, the fault matrix in [`crate::resilience`], and the policy ladder
/// in [`crate::defense_campaign`] all pass their own spec type and a
/// `.run()`-shaped closure. The spec vector is moved into an `Arc<[S]>` so
/// the job satisfies the pool's `'static` bound (workers are detached
/// persistent threads; see [`crate::pool`]) without cloning a single spec.
pub fn run_campaign_cells<S, T, F>(cfg: RunnerConfig, specs: Vec<S>, run: F) -> Vec<T>
where
    S: Send + Sync + 'static,
    T: Send + 'static,
    F: Fn(&S) -> T + Send + Sync + 'static,
{
    let n = specs.len();
    let specs: std::sync::Arc<[S]> = specs.into();
    crate::pool::run_indexed(cfg.worker_count(n), n, move |i| run(&specs[i]))
}

/// [`run_campaign_cells`] with an incremental, **index-ordered**
/// `on_cell_complete` hook: `observe(i, &result)` is called exactly once
/// per cell, in plan order, as soon as cell `i` *and every cell before it*
/// have finished.
///
/// This is what lets a checkpoint writer or an NDJSON result streamer ride
/// a campaign without buffering it whole: the hook fires while later cells
/// are still running, and because invocations are index-ordered they are
/// deterministic across worker counts — a completion-order hook would leak
/// scheduling into whatever consumes it (the R14 merge rule, applied to
/// callbacks).
///
/// Mechanics: results land in pre-sized per-cell slots; whichever worker
/// completes a cell then advances a shared frontier cursor, draining every
/// consecutive ready slot through `observe`. The hot path allocates
/// nothing — slots and cursor are allocated once up front, and a cell
/// behind the frontier costs one slot store plus one cursor check. The
/// hook runs on worker threads under the frontier lock (that is what
/// serializes it into index order), so it should be cheap or amortized —
/// an append to an open file, a buffered socket write.
pub fn run_campaign_cells_observed<S, T, F, C>(
    cfg: RunnerConfig,
    specs: Vec<S>,
    run: F,
    observe: C,
) -> Vec<T>
where
    S: Send + Sync + 'static,
    T: Send + 'static,
    F: Fn(&S) -> T + Send + Sync + 'static,
    C: FnMut(usize, &T) + Send + 'static,
{
    use std::sync::{Arc, Mutex, PoisonError};

    let n = specs.len();
    let specs: Arc<[S]> = specs.into();
    let slots: Arc<Vec<Mutex<Option<T>>>> = Arc::new((0..n).map(|_| Mutex::new(None)).collect());
    // Frontier cursor: (next index to observe, the hook). One lock for
    // both so the index order is a lock-order fact, not a protocol.
    let cursor: Arc<Mutex<(usize, C)>> = Arc::new(Mutex::new((0, observe)));
    let sink = Arc::clone(&slots);
    // Lock poisoning policy: the slot and cursor guards only wrap plain
    // stores and the user hook; a poisoned guard means a sibling hook or
    // `run` panicked, which the pool latches and re-raises at the submit
    // site — recovering the guard here keeps the structurally consistent
    // state usable for the cells that still finish.
    crate::pool::run_indexed(cfg.worker_count(n), n, move |i| {
        let value = run(&specs[i]);
        {
            // Narrow scope: the slot guard is released before the cursor
            // is taken, so the only cross-lock order is cursor → slot.
            let mut slot = sink[i].lock().unwrap_or_else(PoisonError::into_inner);
            *slot = Some(value);
        }
        // Advance the frontier over every consecutively ready slot. The
        // cursor guard is held while `observe` runs — that serialization
        // is the index-order guarantee.
        let mut cur = cursor.lock().unwrap_or_else(PoisonError::into_inner);
        while cur.0 < sink.len() {
            let at = cur.0;
            let slot = sink[at].lock().unwrap_or_else(PoisonError::into_inner);
            match slot.as_ref() {
                Some(value) => {
                    (cur.1)(at, value);
                    drop(slot);
                    cur.0 += 1;
                }
                None => break,
            }
        }
    });
    // Sole owner now: every worker finished and dropped its Arc clones.
    match Arc::try_unwrap(slots) {
        Ok(slots) => slots
            .into_iter()
            .filter_map(|slot| slot.into_inner().unwrap_or_else(PoisonError::into_inner))
            .collect(),
        Err(slots) => slots
            .iter()
            .filter_map(|slot| slot.lock().unwrap_or_else(PoisonError::into_inner).take())
            .collect(),
    }
}

/// [`run_campaign_cells`] with per-cell panic capture: a panicking cell
/// yields `Err(CellPanic)` in its slot instead of failing the whole
/// campaign. Thin campaign-shaped veneer over [`crate::pool::submit_catching`];
/// supervising services (campaignd) retry or quarantine individual cells
/// from this.
pub fn run_campaign_cells_catching<S, T, F>(
    cfg: RunnerConfig,
    specs: Vec<S>,
    run: F,
) -> Vec<Result<T, crate::pool::CellPanic>>
where
    S: Send + Sync + 'static,
    T: Send + 'static,
    F: Fn(&S) -> T + Send + Sync + 'static,
{
    let n = specs.len();
    let specs: std::sync::Arc<[S]> = specs.into();
    crate::pool::submit_catching(cfg.worker_count(n), n, move |i| run(&specs[i]))
}

/// Maps `f` over `0..n` in parallel, preserving order.
///
/// Unlike the campaign runners — which fan out over the persistent pool via
/// [`run_campaign_cells`] — this is a *scoped* map: `f` may borrow from the
/// calling stack frame, at the cost of spawning fresh threads per call. Use
/// it for one-shot generic maps (the lint crate's analysis fan-out); use
/// the pool for anything campaign-shaped. The worker count comes from
/// [`RunnerConfig::default`] (i.e. `REPRO_WORKERS` or all cores); use
/// [`run_parallel_map_with`] to pin it.
pub fn run_parallel_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_parallel_map_with(RunnerConfig::default(), n, f)
}

/// [`run_parallel_map`] with an explicit [`RunnerConfig`].
///
/// Each worker accumulates `(index, result)` pairs in a thread-local batch
/// that is merged once at join — no per-item `Mutex`, no per-item
/// allocation, and a single-worker job degenerates to a plain serial loop
/// on the calling thread.
pub fn run_parallel_map_with<T, F>(cfg: RunnerConfig, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let workers = cfg.worker_count(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }

    let next = std::sync::atomic::AtomicUsize::new(0);
    let batches: Vec<Vec<(usize, T)>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|_| {
                    let mut batch: Vec<(usize, T)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        batch.push((i, f(i)));
                    }
                    batch
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
    .expect("worker panicked");

    let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    for batch in batches {
        for (i, value) in batch {
            slots[i] = Some(value);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index was claimed by exactly one worker"))
        .collect()
}

/// Runs a work list on the persistent pool across all cores, preserving
/// order.
pub fn run_parallel(specs: &[RunSpec]) -> Vec<SimResult> {
    run_parallel_with(RunnerConfig::default(), specs)
}

/// [`run_parallel`] with an explicit [`RunnerConfig`].
pub fn run_parallel_with(cfg: RunnerConfig, specs: &[RunSpec]) -> Vec<SimResult> {
    run_campaign_cells(cfg, specs.to_vec(), RunSpec::run)
}

/// Runs a work list in parallel with a flight recorder on every run,
/// folding each run's metrics into one [`CampaignMetrics`] aggregate.
///
/// The per-run rings are dropped after aggregation (a campaign's worth of
/// full traces would be gigabytes); pass a small `trace.capacity` since only
/// the metrics survive.
pub fn run_parallel_traced(
    specs: &[RunSpec],
    trace: TraceConfig,
) -> (Vec<SimResult>, CampaignMetrics) {
    let runs = run_campaign_cells(RunnerConfig::default(), specs.to_vec(), move |s: &RunSpec| {
        s.run_traced(trace)
    });
    let mut campaign = CampaignMetrics::default();
    let mut results = Vec::with_capacity(runs.len());
    for (result, recorder) in runs {
        if let Some(rec) = recorder {
            campaign.absorb_run(rec.metrics(), &result);
        }
        results.push(result);
    }
    (results, campaign)
}

/// Runs one attack type across the campaign and returns the results.
pub fn run_attack_campaign(cfg: &CampaignConfig, attack_type: AttackType) -> Vec<SimResult> {
    run_parallel(&plan_attack_campaign(cfg, attack_type))
}

/// Runs all six attack types and returns the concatenated results
/// (the paper's 1,440-run — or 14,400-run — strategy campaigns).
pub fn run_full_campaign(cfg: &CampaignConfig) -> Vec<SimResult> {
    let specs: Vec<RunSpec> = AttackType::ALL
        .into_iter()
        .flat_map(|t| plan_attack_campaign(cfg, t))
        .collect();
    run_parallel(&specs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_campaign_sizes_match() {
        let cfg = CampaignConfig::paper(StrategyKind::ContextAware);
        // 12 scenario cells x 20 reps = 240 per attack type; 1,440 total.
        assert_eq!(plan_attack_campaign(&cfg, AttackType::Acceleration).len(), 240);
        let total: usize = AttackType::ALL
            .iter()
            .map(|&t| plan_attack_campaign(&cfg, t).len())
            .sum();
        assert_eq!(total, 1_440);
        // Random-ST+DUR runs 10x as many.
        let cfg = CampaignConfig::paper(StrategyKind::RandomStDur);
        let total: usize = AttackType::ALL
            .iter()
            .map(|&t| plan_attack_campaign(&cfg, t).len())
            .sum();
        assert_eq!(total, 14_400);
    }

    #[test]
    fn seeds_are_unique_within_a_campaign() {
        let cfg = CampaignConfig::paper(StrategyKind::ContextAware);
        let mut seeds: Vec<u64> = AttackType::ALL
            .iter()
            .flat_map(|&t| plan_attack_campaign(&cfg, t))
            .map(|s| s.seed)
            .collect();
        let n = seeds.len();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), n, "no seed collisions");
    }

    #[test]
    fn mix_seed_is_deterministic_and_sensitive() {
        assert_eq!(mix_seed(1, &[2, 3]), mix_seed(1, &[2, 3]));
        assert_ne!(mix_seed(1, &[2, 3]), mix_seed(1, &[3, 2]));
        assert_ne!(mix_seed(1, &[2, 3]), mix_seed(2, &[2, 3]));
    }

    #[test]
    fn parallel_matches_serial() {
        let cfg = CampaignConfig::smoke(StrategyKind::ContextAware, 1);
        let specs: Vec<RunSpec> = plan_attack_campaign(&cfg, AttackType::SteeringRight)
            .into_iter()
            .take(4)
            .collect();
        let parallel = run_parallel(&specs);
        let serial: Vec<SimResult> = specs.iter().map(RunSpec::run).collect();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn no_attack_plan_has_no_attacks() {
        let specs = plan_no_attack_campaign(2, 7, DriverConfig::alert());
        assert_eq!(specs.len(), 24);
        assert!(specs.iter().all(|s| s.attack.is_none()));
    }

    #[test]
    fn parallel_map_empty_job_returns_empty() {
        let out = run_parallel_map(0, |i| i);
        assert!(out.is_empty());
        let out = run_parallel_map_with(RunnerConfig::with_workers(8), 0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_map_with_fewer_items_than_workers() {
        let out = run_parallel_map_with(RunnerConfig::with_workers(16), 3, |i| i * 10);
        assert_eq!(out, vec![0, 10, 20]);
    }

    #[test]
    fn parallel_map_preserves_order_under_a_slow_first_item() {
        // Item 0 finishes last; its result must still come back first.
        let out = run_parallel_map_with(RunnerConfig::with_workers(4), 8, |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
            i as u64
        });
        assert_eq!(out, (0..8).collect::<Vec<u64>>());
    }

    #[test]
    fn single_worker_equals_serial() {
        let serial: Vec<usize> = (0..10).map(|i| i * i).collect();
        let one = run_parallel_map_with(RunnerConfig::with_workers(1), 10, |i| i * i);
        assert_eq!(one, serial);
        // An explicit 0 clamps to 1 rather than deadlocking.
        assert_eq!(RunnerConfig::with_workers(0).worker_count(10), 1);
    }

    #[test]
    fn worker_count_is_clamped_to_the_job() {
        let cfg = RunnerConfig::with_workers(64);
        assert_eq!(cfg.worker_count(3), 3);
        assert_eq!(cfg.worker_count(0), 1);
        assert_eq!(cfg.worker_count(1000), 64);
    }

    #[test]
    fn observed_runner_fires_hook_once_per_cell_in_index_order() {
        use std::sync::{Arc, Mutex};
        let seen: Arc<Mutex<Vec<(usize, u64)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        // Cell 0 finishes last under 4 workers; the hook must still see it
        // first, and every later cell exactly once, in order.
        let specs: Vec<u64> = (0..16).collect();
        let out = run_campaign_cells_observed(
            RunnerConfig::with_workers(4),
            specs,
            |&s| {
                if s == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(40));
                }
                s * 3
            },
            move |i, v| sink.lock().unwrap().push((i, *v)),
        );
        assert_eq!(out, (0..16).map(|i| i * 3).collect::<Vec<u64>>());
        let seen = seen.lock().unwrap();
        assert_eq!(*seen, (0..16).map(|i| (i as usize, i * 3)).collect::<Vec<_>>());
    }

    #[test]
    fn observed_runner_matches_plain_runner_and_handles_empty() {
        use std::sync::{Arc, Mutex};
        let cfg = CampaignConfig::smoke(StrategyKind::RandomSt, 1);
        let specs: Vec<RunSpec> = plan_attack_campaign(&cfg, AttackType::SteeringRight)
            .into_iter()
            .take(6)
            .collect();
        let plain = run_campaign_cells(RunnerConfig::with_workers(3), specs.clone(), RunSpec::run);
        let count = Arc::new(Mutex::new(0usize));
        let sink = Arc::clone(&count);
        let observed = run_campaign_cells_observed(
            RunnerConfig::with_workers(3),
            specs,
            RunSpec::run,
            move |_, _| *sink.lock().unwrap() += 1,
        );
        assert_eq!(observed, plain);
        assert_eq!(*count.lock().unwrap(), 6);

        let none: Vec<u32> = Vec::new();
        let out =
            run_campaign_cells_observed(RunnerConfig::default(), none, |&x| x, |_, _| panic!());
        assert!(out.is_empty());
    }

    #[test]
    fn catching_runner_isolates_the_one_bad_cell() {
        let specs: Vec<u32> = (0..8).collect();
        let out = run_campaign_cells_catching(RunnerConfig::with_workers(4), specs, |&s| {
            assert!(s != 5, "cell 5 is cursed");
            s + 100
        });
        assert_eq!(out.len(), 8);
        for (i, r) in out.iter().enumerate() {
            if i == 5 {
                let err = r.as_ref().unwrap_err();
                assert!(err.message.contains("cell 5 is cursed"), "{err}");
            } else {
                assert_eq!(*r.as_ref().unwrap(), i as u32 + 100);
            }
        }
    }
}
