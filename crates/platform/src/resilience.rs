//! Resilience campaigns: the robustness counterpart of the attack
//! experiments.
//!
//! Where [`experiment`](crate::experiment) asks *how strategically can the
//! system be attacked*, this module asks *how gracefully does it fail*: it
//! sweeps every [`FaultKind`] over the full S1–S4 scenario matrix at a small
//! intensity grid, runs the deterministic fault schedule through the
//! harness, and aggregates how the ADAS degradation ladder absorbed the
//! faults — hazard and accident rates, time spent degraded and in
//! fail-safe, spurious forward-collision warnings, and how quickly the
//! system recovers to nominal once the fault clears.
//!
//! Every run is seeded through [`mix_seed`], so a campaign is
//! bit-reproducible across runs and worker counts (asserted by the
//! `resilience` bench).

use defense::DefensePolicy;
use driving_sim::Scenario;
use faultinj::{FaultKind, FaultSchedule, FaultSpec, FaultTarget};
use serde::{Deserialize, Serialize};

use crate::experiment::{mix_seed, run_campaign_cells, RunnerConfig};
use crate::{Harness, HarnessConfig, SimResult};

/// Tick at which every campaign fault window opens (5 s into the run,
/// after cruise is established).
pub const FAULT_START: u64 = 500;
/// Length of every campaign fault window in ticks (20 s — long enough to
/// walk the whole degradation ladder and still leave room to recover).
pub const FAULT_DURATION: u64 = 2000;
/// Intensity grid swept per fault kind: a partial fault and a total one.
pub const INTENSITIES: [f64; 2] = [0.3, 1.0];

/// Configuration of a resilience campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResilienceConfig {
    /// Base seed mixed into every run's seed.
    pub base_seed: u64,
    /// Repetitions per (fault kind, intensity, scenario cell).
    pub reps: u32,
    /// Defense deployment for every run. Defaults to `Degrade`: the
    /// resilience question is how gracefully the *defended* system fails;
    /// use [`with_defense`](Self::with_defense) for the undefended baseline.
    pub defense: DefensePolicy,
}

impl ResilienceConfig {
    /// A campaign with the given base seed and repetition count, with the
    /// acting `Degrade` defense deployed.
    pub fn new(base_seed: u64, reps: u32) -> Self {
        Self {
            base_seed,
            reps,
            defense: DefensePolicy::Degrade,
        }
    }

    /// The same campaign under a different defense deployment.
    pub fn with_defense(self, defense: DefensePolicy) -> Self {
        Self { defense, ..self }
    }
}

/// One planned run of a resilience campaign.
#[derive(Debug, Clone, Copy)]
pub struct ResilienceSpec {
    /// The fault kind under test.
    pub kind: FaultKind,
    /// Fault intensity in `[0, 1]`.
    pub intensity: f64,
    /// The scenario cell.
    pub scenario: Scenario,
    /// Run seed (drives sensor noise and the fault engine's draws).
    pub seed: u64,
    /// Defense deployment for the run.
    pub defense: DefensePolicy,
}

impl ResilienceSpec {
    /// The harness configuration of the run: attack-free, with a single
    /// fault window targeting every stream the kind can reach.
    pub fn harness_config(&self) -> HarnessConfig {
        let spec = FaultSpec::window(self.kind, FaultTarget::All, FAULT_START, FAULT_DURATION)
            .with_intensity(self.intensity);
        HarnessConfig::no_attack(self.scenario, self.seed)
            .with_faults(FaultSchedule::single(spec))
            .with_defense(self.defense)
    }

    /// Executes the run.
    pub fn run(&self) -> SimResult {
        Harness::new(self.harness_config()).run()
    }
}

/// Expands a campaign into its work list, kind-major then intensity then
/// scenario then repetition — the fixed order the aggregator relies on.
pub fn plan_resilience_campaign(cfg: &ResilienceConfig) -> Vec<ResilienceSpec> {
    let mut specs = Vec::new();
    for kind in FaultKind::ALL {
        for (ii, &intensity) in INTENSITIES.iter().enumerate() {
            for (si, scenario) in Scenario::matrix().into_iter().enumerate() {
                for rep in 0..cfg.reps {
                    specs.push(ResilienceSpec {
                        kind,
                        intensity,
                        scenario,
                        seed: mix_seed(
                            cfg.base_seed,
                            &[kind.index() as u64, ii as u64, si as u64, rep as u64],
                        ),
                        defense: cfg.defense,
                    });
                }
            }
        }
    }
    specs
}

/// Aggregate outcome of one (fault kind, intensity) campaign cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResilienceCell {
    /// Fault-kind label ([`FaultKind::label`]).
    pub fault: String,
    /// Intensity of the cell.
    pub intensity: f64,
    /// Runs aggregated.
    pub runs: u64,
    /// Runs with at least one hazard.
    pub hazardous_runs: u64,
    /// Runs ending in an accident.
    pub accident_runs: u64,
    /// Runs that reached the fail-safe state.
    pub failsafe_runs: u64,
    /// Runs with at least one FCW event. No attack is mounted, so every
    /// FCW raised under fault injection is spurious.
    pub false_fcw_runs: u64,
    /// Runs that left the nominal state at least once.
    pub degraded_runs: u64,
    /// Mean seconds per run spent in any degraded state.
    pub mean_degraded_s: f64,
    /// Mean seconds per run spent in the fail-safe state.
    pub mean_failsafe_s: f64,
    /// Runs that returned to nominal after their fault window closed.
    pub recovered_runs: u64,
    /// Mean recovery latency over the recovered runs (s). `None` when no
    /// run recovered — previously this rendered as `0.000`, which read as
    /// "instant recovery" when the truth was "never recovered" (or "never
    /// degraded at all").
    pub mean_recovery_s: Option<f64>,
    /// Total fault injections across the cell.
    pub faults_injected: u64,
}

impl ResilienceCell {
    fn from_results(kind: FaultKind, intensity: f64, results: &[SimResult]) -> Self {
        let runs = results.len() as u64;
        let dt = units::DT.secs();
        let mean = |total: f64| if runs == 0 { 0.0 } else { total / runs as f64 };
        let recovery: Vec<f64> = results
            .iter()
            .filter_map(|r| r.recovery_latency.map(|t| t.secs()))
            .collect();
        Self {
            fault: kind.label().to_string(),
            intensity,
            runs,
            hazardous_runs: results.iter().filter(|r| r.hazardous()).count() as u64,
            accident_runs: results.iter().filter(|r| r.accident.is_some()).count() as u64,
            failsafe_runs: results.iter().filter(|r| r.failsafe_ticks > 0).count() as u64,
            false_fcw_runs: results.iter().filter(|r| r.fcw_events > 0).count() as u64,
            degraded_runs: results.iter().filter(|r| r.degraded_ticks > 0).count() as u64,
            mean_degraded_s: mean(results.iter().map(|r| r.degraded_ticks as f64 * dt).sum()),
            mean_failsafe_s: mean(results.iter().map(|r| r.failsafe_ticks as f64 * dt).sum()),
            recovered_runs: recovery.len() as u64,
            mean_recovery_s: (!recovery.is_empty())
                .then(|| recovery.iter().sum::<f64>() / recovery.len() as f64),
            faults_injected: results.iter().map(|r| r.faults_injected).sum(),
        }
    }

    fn to_json(&self) -> String {
        // A cell where nothing ever degraded has no recovery story at all:
        // the field is omitted. A cell that degraded but never recovered
        // reports `null` — a finding, not a zero.
        let recovery_field = if self.degraded_runs == 0 {
            String::new()
        } else {
            match self.mean_recovery_s {
                Some(s) => format!(" \"mean_recovery_s\": {s:.3},"),
                None => " \"mean_recovery_s\": null,".to_string(),
            }
        };
        format!(
            "{{\"fault\": \"{}\", \"intensity\": {:.2}, \"runs\": {}, \
\"hazardous_runs\": {}, \"accident_runs\": {}, \"failsafe_runs\": {}, \
\"false_fcw_runs\": {}, \"degraded_runs\": {}, \"mean_degraded_s\": {:.3}, \
\"mean_failsafe_s\": {:.3}, \"recovered_runs\": {},{} \"faults_injected\": {}}}",
            self.fault,
            self.intensity,
            self.runs,
            self.hazardous_runs,
            self.accident_runs,
            self.failsafe_runs,
            self.false_fcw_runs,
            self.degraded_runs,
            self.mean_degraded_s,
            self.mean_failsafe_s,
            self.recovered_runs,
            recovery_field,
            self.faults_injected,
        )
    }
}

/// A full campaign's aggregate: one [`ResilienceCell`] per
/// (fault kind, intensity), in sweep order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResilienceReport {
    /// Base seed of the campaign.
    pub base_seed: u64,
    /// Repetitions per cell the campaign was planned with.
    pub reps: u32,
    /// Defense deployment every run was executed under.
    pub defense: DefensePolicy,
    /// Total runs executed.
    pub total_runs: u64,
    /// Per-(fault, intensity) aggregates.
    pub cells: Vec<ResilienceCell>,
}

impl ResilienceReport {
    /// Renders the report as deterministic, fixed-precision JSON
    /// (hand-rolled; the vendored `serde` is an API stub).
    pub fn to_json(&self) -> String {
        let cells: Vec<String> = self
            .cells
            .iter()
            .map(|c| format!("    {}", c.to_json()))
            .collect();
        format!(
            "{{\n  \"bench\": \"resilience\",\n  \"base_seed\": {},\n  \
\"reps_per_cell\": {},\n  \"cores\": {},\n  \"defense_policy\": \"{}\",\n  \
\"fault_start_tick\": {},\n  \"fault_duration_ticks\": {},\n  \
\"total_runs\": {},\n  \"cells\": [\n{}\n  ]\n}}\n",
            self.base_seed,
            self.reps,
            crate::experiment::detected_cores(),
            self.defense.label(),
            FAULT_START,
            FAULT_DURATION,
            self.total_runs,
            cells.join(",\n"),
        )
    }
}

/// Aggregates an already-executed campaign into its report: `results[i]`
/// must be the outcome of `plan_resilience_campaign(cfg)[i]`.
///
/// This is the aggregation half of [`run_resilience_campaign_with`], split
/// out so external runners that execute cells through their own supervision
/// — campaignd retries panicked cells and splices checkpointed results back
/// in by index — still produce the canonical byte-identical report.
pub fn aggregate_resilience_results(
    cfg: &ResilienceConfig,
    results: &[SimResult],
) -> ResilienceReport {
    let per_cell = Scenario::matrix().len() * cfg.reps.max(1) as usize;
    let cells = results
        .chunks(per_cell)
        .enumerate()
        .map(|(ci, chunk)| {
            let kind = FaultKind::ALL[ci / INTENSITIES.len()];
            let intensity = INTENSITIES[ci % INTENSITIES.len()];
            ResilienceCell::from_results(kind, intensity, chunk)
        })
        .collect();
    ResilienceReport {
        base_seed: cfg.base_seed,
        reps: cfg.reps,
        defense: cfg.defense,
        total_runs: results.len() as u64,
        cells,
    }
}

/// Runs a resilience campaign with an explicit runner configuration.
pub fn run_resilience_campaign_with(
    runner: RunnerConfig,
    cfg: &ResilienceConfig,
) -> ResilienceReport {
    let specs = plan_resilience_campaign(cfg);
    let results = run_campaign_cells(runner, specs, ResilienceSpec::run);
    aggregate_resilience_results(cfg, &results)
}

/// Runs a resilience campaign with the default (all-cores) runner.
pub fn run_resilience_campaign(cfg: &ResilienceConfig) -> ResilienceReport {
    run_resilience_campaign_with(RunnerConfig::default(), cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_covers_the_full_sweep_deterministically() {
        let cfg = ResilienceConfig::new(7, 2);
        let a = plan_resilience_campaign(&cfg);
        let b = plan_resilience_campaign(&cfg);
        assert_eq!(
            a.len(),
            FaultKind::ALL.len() * INTENSITIES.len() * Scenario::matrix().len() * 2
        );
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.kind, y.kind);
        }
        // Seeds are unique across the plan.
        let mut seeds: Vec<u64> = a.iter().map(|s| s.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), a.len());
    }

    #[test]
    fn spec_config_schedules_one_fault_window() {
        let cfg = ResilienceConfig::new(1, 1);
        let spec = plan_resilience_campaign(&cfg)[0];
        let hc = spec.harness_config();
        assert!(!hc.faults.is_empty());
        assert_eq!(hc.faults.len(), 1);
        assert!(hc.attack.is_none(), "resilience runs are attack-free");
        let fault = *hc.faults.iter().next().unwrap();
        assert_eq!(fault.start, FAULT_START);
        assert!(fault.active_at(FAULT_START + FAULT_DURATION - 1));
        assert!(!fault.active_at(FAULT_START + FAULT_DURATION));
    }

    #[test]
    fn report_json_is_deterministic_in_shape() {
        let cell = ResilienceCell::from_results(FaultKind::SensorDropout, 1.0, &[]);
        let report = ResilienceReport {
            base_seed: 7,
            reps: 0,
            defense: DefensePolicy::Degrade,
            total_runs: 0,
            cells: vec![cell],
        };
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"resilience\""));
        assert!(json.contains("\"defense_policy\": \"degrade\""));
        assert!(json.contains("\"fault\": \"sensor_dropout\""));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn recovery_field_reflects_what_actually_happened() {
        // No run degraded: the cell has no recovery story, the field is
        // omitted entirely.
        let cell = ResilienceCell::from_results(FaultKind::SensorDropout, 0.3, &[]);
        assert_eq!(cell.degraded_runs, 0);
        assert_eq!(cell.mean_recovery_s, None);
        assert!(!cell.to_json().contains("mean_recovery_s"));

        // A run degraded but never recovered: `null`, not a fake 0.000.
        let cfg = crate::HarnessConfig::no_attack(Scenario::matrix()[0], 1);
        let mut result = crate::Harness::new(cfg).result_so_far();
        result.degraded_ticks = 40;
        result.recovery_latency = None;
        let cell = ResilienceCell::from_results(FaultKind::SensorDropout, 1.0, &[result.clone()]);
        assert_eq!(cell.degraded_runs, 1);
        assert_eq!(cell.mean_recovery_s, None);
        assert!(cell.to_json().contains("\"mean_recovery_s\": null"));

        // A recovered run reports the real mean.
        result.recovery_latency = Some(units::Seconds::new(1.5));
        let cell = ResilienceCell::from_results(FaultKind::SensorDropout, 1.0, &[result]);
        assert_eq!(cell.mean_recovery_s, Some(1.5));
        assert!(cell.to_json().contains("\"mean_recovery_s\": 1.500"));
    }
}
