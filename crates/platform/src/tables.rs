//! Text rendering of the paper's tables.

use crate::metrics::{PairedAggregate, StrategyAggregate};

/// Renders Table IV ("Attack strategy comparisons with an alert driver"):
/// one row per strategy.
pub fn render_table_iv(rows: &[StrategyAggregate]) -> String {
    let mut out = String::new();
    out.push_str(
        "TABLE IV: Attack strategy comparisons with an alert driver\n\
         | Attack Strategy | Sims | Alerts | Hazards | Accidents | Hazards&noAlerts | Inv./s | TTH (s)      | FCW |\n\
         |-----------------|------|--------|---------|-----------|------------------|--------|--------------|-----|\n",
    );
    for r in rows {
        out.push_str(&format!(
            "| {:<15} | {:>4} | {:>4} ({:>5.1}%) | {:>4} ({:>5.1}%) | {:>4} ({:>5.1}%) | {:>4} ({:>5.1}%) | {:>6.2} | {:>5.2}±{:<5.2} | {:>3} |\n",
            r.label,
            r.sims,
            r.alerted,
            r.pct(r.alerted),
            r.hazards,
            r.pct(r.hazards),
            r.accidents,
            r.pct(r.accidents),
            r.hazards_no_alert,
            r.pct(r.hazards_no_alert),
            r.invasions_per_sec,
            r.tth.mean,
            r.tth.std,
            r.fcw_events,
        ));
    }
    out
}

/// Renders one side of Table V ("Context-Aware attack with/without strategic
/// value corruption"): one row per attack type.
pub fn render_table_v(title: &str, rows: &[PairedAggregate]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "TABLE V ({title})\n\
         | Attack Type           | Alerts | Hazards | Accidents | TTH (s)      | Prevented Haz. | New Haz. | Prevented Acc. |\n\
         |-----------------------|--------|---------|-----------|--------------|----------------|----------|----------------|\n"
    ));
    for r in rows {
        out.push_str(&format!(
            "| {:<21} | {:>3} ({:>5.1}%) | {:>3} ({:>5.1}%) | {:>3} ({:>5.1}%) | {:>5.2}±{:<5.2} | {:>4} ({:>5.1}%) | {:>3} ({:>5.1}%) | {:>4} ({:>5.1}%) |\n",
            r.label,
            r.alerted,
            r.pct(r.alerted),
            r.hazards,
            r.pct(r.hazards),
            r.accidents,
            r.pct(r.accidents),
            r.tth.mean,
            r.tth.std,
            r.prevented_hazards,
            r.pct(r.prevented_hazards),
            r.new_hazards,
            r.pct(r.new_hazards),
            r.prevented_accidents,
            r.pct(r.prevented_accidents),
        ));
    }
    out
}

/// Sums a column across Table V rows into a "Total" row.
pub fn table_v_total(rows: &[PairedAggregate]) -> PairedAggregate {
    let mut total = PairedAggregate {
        label: "Total".to_owned(),
        sims: 0,
        alerted: 0,
        hazards: 0,
        accidents: 0,
        tth: crate::metrics::MeanStd::default(),
        hazards_no_driver: 0,
        accidents_no_driver: 0,
        prevented_hazards: 0,
        new_hazards: 0,
        prevented_accidents: 0,
    };
    let mut tth_weighted = 0.0;
    let mut tth_n = 0usize;
    for r in rows {
        total.sims += r.sims;
        total.alerted += r.alerted;
        total.hazards += r.hazards;
        total.accidents += r.accidents;
        total.hazards_no_driver += r.hazards_no_driver;
        total.accidents_no_driver += r.accidents_no_driver;
        total.prevented_hazards += r.prevented_hazards;
        total.new_hazards += r.new_hazards;
        total.prevented_accidents += r.prevented_accidents;
        tth_weighted += r.tth.mean * r.tth.n as f64;
        tth_n += r.tth.n;
    }
    if tth_n > 0 {
        total.tth.mean = tth_weighted / tth_n as f64;
        total.tth.n = tth_n;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MeanStd;

    fn agg(label: &str) -> StrategyAggregate {
        StrategyAggregate {
            label: label.to_owned(),
            sims: 1440,
            alerted: 4,
            hazards: 1201,
            accidents: 641,
            hazards_no_alert: 1197,
            invasions_per_sec: 0.66,
            tth: MeanStd {
                mean: 2.43,
                std: 1.29,
                n: 1201,
            },
            fcw_events: 0,
        }
    }

    #[test]
    fn table_iv_renders_percentages() {
        let text = render_table_iv(&[agg("Context-Aware")]);
        assert!(text.contains("Context-Aware"), "{text}");
        assert!(text.contains("83.4%"), "hazard percentage rendered: {text}");
        assert!(text.contains("2.43±1.29"), "{text}");
    }

    fn paired(label: &str, sims: usize) -> PairedAggregate {
        PairedAggregate {
            label: label.to_owned(),
            sims,
            alerted: 1,
            hazards: sims / 2,
            accidents: 2,
            tth: MeanStd {
                mean: 2.0,
                std: 0.5,
                n: sims / 2,
            },
            hazards_no_driver: sims,
            accidents_no_driver: 4,
            prevented_hazards: sims / 2,
            new_hazards: 3,
            prevented_accidents: 2,
        }
    }

    #[test]
    fn table_v_renders_and_totals() {
        let rows = vec![paired("Acceleration", 240), paired("Deceleration", 240)];
        let text = render_table_v("with strategic value corruption", &rows);
        assert!(text.contains("Acceleration"));
        assert!(text.contains("50.0%"));
        let total = table_v_total(&rows);
        assert_eq!(total.sims, 480);
        assert_eq!(total.hazards, 240);
        assert_eq!(total.prevented_hazards, 240);
        assert!((total.tth.mean - 2.0).abs() < 1e-12);
    }
}
