//! Lockstep batched simulation: N lanes stepped stage-major over
//! structure-of-arrays state.
//!
//! [`BatchHarness`] owns B scalar-equivalent lanes and steps them in
//! lockstep: every pipeline stage (sample → attacker → ADAS → actuation →
//! physics) runs as one tight loop across all lanes before the next stage
//! starts, so each stage's code and state columns stay hot instead of
//! being evicted once per simulated tick. Per-lane math is the scalar
//! component code, bit for bit — the scalar [`Harness`] is the oracle and
//! batched results must equal it exactly (`SimResult` for `SimResult`).
//!
//! # Lane lifecycle
//!
//! A lane that qualifies for the fused fast path (untraced, no fault
//! schedule, no detectors attached, Panda off) moves through three
//! regimes, each provably bit-equivalent to the scalar tick:
//!
//! - **Full**: the whole pipeline runs, fused — sensors feed the ADAS and
//!   the attacker directly (the harness publishes at most one message per
//!   stream per tick, so newest-wins draining and a direct feed are
//!   identical), and actuator frames are only materialized on ticks the
//!   attacker actively rewrites; other ticks advance the CAN rolling
//!   counters and quantize the command through the same DBC round trip
//!   the wire would apply.
//! - **Disengaged**: the driver has taken over (permanent — the driver
//!   model never hands back control), the attack is halted (latched off),
//!   and the disengaged ADAS emits a default command, no alerts and no
//!   frames, so sensing and control are dead computation; only the
//!   driver, physics and hazard bookkeeping still run.
//! - **Retired**: a collision froze the world; a scalar run spends its
//!   remaining ticks advancing only the clock, which the batch fast-
//!   forwards in one burst at the moment of collision.
//!
//! A lane that does not qualify wraps a scalar [`Harness`] stepped in
//! lockstep with the batch — still batched from the caller's point of
//! view, and trivially bit-exact.

use attack_core::{AttackEngine, Observations};
use driver_model::{Driver, Observation};
use driving_sim::batch::{SensorColumn, WorldColumn};
use driving_sim::{ActuatorCommand, RADAR_RANGE};
use msgbus::schema::{CarControl, CarState, GpsLocation, LaneModel, RadarState};
use msgbus::Bus;
use openadas::batch::AdasColumn;
use openadas::{AdasOutput, CommandEncoder, DegradationState, DirectCycle};
use units::{Tick, STEPS_PER_SIM};

use crate::trace::TraceRecorder;
use crate::{Harness, HarnessConfig, HazardDetector, SimResult};

/// Where a fast lane is in its life.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Regime {
    /// Pre-takeover, pre-collision: the whole pipeline runs.
    Full,
    /// The driver took over: sensing and control are dead computation.
    Disengaged,
    /// Collision: the world has been fast-forwarded to the end of the run.
    Retired,
}

/// Per-lane bookkeeping mirroring the scalar harness fields.
#[derive(Debug)]
struct FastLane {
    config: HarnessConfig,
    regime: Regime,
    last_cmd: CarControl,
    alert_events: u64,
    ever_disengaged: bool,
    degraded_ticks: u64,
    failsafe_ticks: u64,
    first_degraded: Option<Tick>,
    first_failsafe: Option<Tick>,
}

/// The fused lanes, stored as parallel lane-indexed columns.
#[derive(Debug, Default)]
struct FastBatch {
    meta: Vec<FastLane>,
    sensors: SensorColumn,
    worlds: WorldColumn,
    gps: Vec<GpsLocation>,
    lane_models: Vec<LaneModel>,
    radars: Vec<RadarState>,
    /// Previous tick's `carState` per lane — what the attacker's
    /// eavesdropper would have drained this tick (`None` before tick 1).
    cars: Vec<Option<CarState>>,
    adas: AdasColumn,
    attackers: Vec<Option<AttackEngine>>,
    drivers: Vec<Driver>,
    hazards: Vec<HazardDetector>,
    actuators: Vec<CommandEncoder>,
    outs: Vec<AdasOutput>,
    cycles: Vec<DirectCycle>,
    /// Stage masks and per-lane world commands, recomputed every tick.
    live: Vec<bool>,
    encode: Vec<bool>,
    step_world: Vec<bool>,
    cmds: Vec<ActuatorCommand>,
}

impl FastBatch {
    fn admit(&mut self, config: HarnessConfig) -> usize {
        let lane = self.meta.len();
        self.worlds.admit(config.scenario, config.seed);
        self.sensors.admit(config.seed);
        self.adas.admit(config.scenario.cruise_speed);
        // Same seed derivation as the scalar harness; the engine's
        // eavesdropper taps a private idle bus it will never drain.
        self.attackers.push(config.attack.map(|mut a| {
            a.seed = a.seed.wrapping_add(config.seed);
            AttackEngine::new(&Bus::new(), a)
        }));
        self.drivers.push(Driver::new(config.driver));
        self.hazards.push(HazardDetector::new(config.hazard_params));
        self.actuators.push(CommandEncoder::new());
        self.gps.push(GpsLocation::default());
        self.lane_models.push(LaneModel::default());
        self.radars.push(RadarState::default());
        self.cars.push(None);
        self.outs.push(AdasOutput::default());
        self.cycles.push(DirectCycle::default());
        self.live.push(false);
        self.encode.push(false);
        self.step_world.push(false);
        self.cmds.push(ActuatorCommand::default());
        self.meta.push(FastLane {
            config,
            regime: Regime::Full,
            last_cmd: CarControl::default(),
            alert_events: 0,
            ever_disengaged: false,
            degraded_ticks: 0,
            failsafe_ticks: 0,
            first_degraded: None,
            first_failsafe: None,
        });
        lane
    }

    /// Whether any lane still has work before the shared clock runs out.
    fn any_active(&self) -> bool {
        self.meta.iter().any(|m| m.regime != Regime::Retired)
    }

    /// One lockstep tick across all fast lanes.
    fn step(&mut self, tick: Tick) {
        for ((live, step), meta) in self.live.iter_mut().zip(&mut self.step_world).zip(&self.meta) {
            *live = meta.regime == Regime::Full;
            *step = meta.regime != Regime::Retired;
        }

        // Stage 1: sensors sample ground truth (full-regime lanes only; a
        // disengaged lane's samples feed a disengaged ADAS and a halted
        // attacker — dead computation, and the sensor RNG is never read
        // again, so skipping the draws is unobservable).
        self.sensors.sample_batch(
            &self.worlds,
            &self.live,
            &mut self.gps,
            &mut self.lane_models,
            &mut self.radars,
        );

        // Stage 2: the attacker eavesdrops and matches contexts. The
        // synthesized observations are exactly what its bus taps would
        // drain: this tick's sensor samples plus the previous tick's
        // `carState`.
        for i in 0..self.meta.len() {
            if !self.live[i] {
                continue;
            }
            self.encode[i] = match self.attackers[i].as_mut() {
                // A dormant engine can never inject again; skipping its
                // observe/decide cycle is unobservable.
                Some(att) if !att.dormant(tick) => {
                    let obs = Observations {
                        gps: Some(self.gps[i]),
                        lane: Some(self.lane_models[i]),
                        radar: Some(self.radars[i]),
                        car_state: self.cars[i],
                    };
                    att.observe_with(tick, &obs);
                    att.is_active()
                }
                _ => false,
            };
        }

        // Stage 3: the ADAS control cycle, bus-free. Frames are only
        // materialized on lanes whose attacker injects this tick.
        self.adas.step_batch(
            tick,
            &self.gps,
            &self.lane_models,
            &self.radars,
            &self.encode,
            &self.live,
            &mut self.outs,
            &mut self.cycles,
        );

        // Stage 4: bookkeeping, man-in-the-middle, actuation and the
        // driver — the control-flow-heavy per-lane tail of the tick.
        for i in 0..self.meta.len() {
            match self.meta[i].regime {
                Regime::Retired => {}
                Regime::Disengaged => self.step_disengaged_lane(i, tick),
                Regime::Full => self.step_full_lane(i, tick),
            }
        }

        // Stage 5: physics, then hazards over the stepped worlds.
        self.worlds.step_batch(&self.cmds, &self.step_world);
        for ((meta, world), hazard) in self
            .meta
            .iter_mut()
            .zip(self.worlds.as_slice())
            .zip(&mut self.hazards)
        {
            if meta.regime == Regime::Retired {
                continue;
            }
            hazard.step(world);
            if world.collision().is_some() {
                // A collision ends the run physically; the lane is
                // fast-forwarded through its remaining clock-only ticks
                // below.
                meta.regime = Regime::Retired;
            } else if meta.ever_disengaged {
                meta.regime = Regime::Disengaged;
            }
        }
        // Lanes retired *this* tick are exactly those whose `step_world`
        // mask (written at tick start, before any regime change) is still
        // set — no scratch list, so the steady-state tick stays
        // allocation-free (R13).
        for i in 0..self.meta.len() {
            if self.meta[i].regime == Regime::Retired && self.step_world[i] {
                self.worlds.run_out(i);
            }
        }
    }

    /// The post-ADAS tail of a full-pipeline tick for one lane — the same
    /// sequence as scalar [`Harness::step`] stages 3b–7.
    fn step_full_lane(&mut self, i: usize, tick: Tick) {
        let meta = &mut self.meta[i];
        let out = &mut self.outs[i];
        meta.alert_events += out.new_alerts.len() as u64;

        // Degradation bookkeeping. Without faults or detectors the ladder
        // never leaves Nominal, but the accounting is kept identical to
        // the scalar harness rather than assumed away.
        match out.degradation {
            DegradationState::Nominal => {}
            DegradationState::FailSafe => {
                meta.degraded_ticks += 1;
                meta.failsafe_ticks += 1;
                if meta.first_degraded.is_none() {
                    meta.first_degraded = Some(tick);
                }
                if meta.first_failsafe.is_none() {
                    meta.first_failsafe = Some(tick);
                }
            }
            DegradationState::DegradedAlcOff | DegradationState::DegradedAccOff => {
                meta.degraded_ticks += 1;
                if meta.first_degraded.is_none() {
                    meta.first_degraded = Some(tick);
                }
            }
        }

        // Man-in-the-middle and actuator-side decode. On injection ticks
        // the real frames were encoded and the attack rewrites them in
        // flight; otherwise the quantized command is exactly what the
        // decoder would have produced (`None` holds the last command, the
        // empty-batch behaviour).
        let cycle = &self.cycles[i];
        let cmd = if self.encode[i] {
            if let Some(att) = self.attackers[i].as_mut() {
                att.process_frames_in_place(tick, &mut out.frames);
            }
            self.actuators[i].decode_actuators(&out.frames, meta.last_cmd)
        } else {
            cycle.quantized.unwrap_or(meta.last_cmd)
        };
        meta.last_cmd = cmd;
        self.cars[i] = Some(cycle.car);

        // The driver watches the executed behaviour and any alert.
        let Some(world) = self.worlds.as_slice().get(i) else {
            return;
        };
        let obs = Observation {
            speed: world.ego().speed(),
            v_cruise: meta.config.scenario.cruise_speed,
            accel_cmd: cmd.accel,
            steer_cmd: cmd.steer,
            adas_alert: !out.new_alerts.is_empty(),
            lane_offset: world.ego().d(),
            lead_gap: {
                let gap = world.gap();
                (gap.raw() > 0.0 && gap < RADAR_RANGE).then_some(gap)
            },
        };
        let driver_cmd = self.drivers[i].step(tick, &obs);
        self.cmds[i] = match driver_cmd {
            Some(d) => {
                if !meta.ever_disengaged {
                    self.adas.disengage(i);
                    if let Some(att) = self.attackers[i].as_mut() {
                        att.halt(tick);
                    }
                    self.meta[i].ever_disengaged = true;
                }
                ActuatorCommand {
                    accel: d.accel,
                    steer: d.steer,
                }
            }
            None => ActuatorCommand {
                accel: cmd.accel,
                steer: cmd.steer,
            },
        };
    }

    /// A post-takeover tick: the held actuator command and the world's
    /// truth feed the engaged driver; everything upstream is skipped.
    fn step_disengaged_lane(&mut self, i: usize, tick: Tick) {
        let Some(world) = self.worlds.as_slice().get(i) else {
            return;
        };
        let cmd = self.meta[i].last_cmd;
        let obs = Observation {
            speed: world.ego().speed(),
            v_cruise: self.meta[i].config.scenario.cruise_speed,
            accel_cmd: cmd.accel,
            steer_cmd: cmd.steer,
            // The disengaged ADAS commands a clamped default: saturation
            // and FCW alerts cannot fire, and without faults the ladder
            // stays Nominal — no alert ticks.
            adas_alert: false,
            lane_offset: world.ego().d(),
            lead_gap: {
                let gap = world.gap();
                (gap.raw() > 0.0 && gap < RADAR_RANGE).then_some(gap)
            },
        };
        self.cmds[i] = match self.drivers[i].step(tick, &obs) {
            Some(d) => ActuatorCommand {
                accel: d.accel,
                steer: d.steer,
            },
            None => ActuatorCommand {
                accel: cmd.accel,
                steer: cmd.steer,
            },
        };
    }

    /// The finished lane's [`SimResult`], mirroring the scalar
    /// `Harness::result_so_far` field for field (fast lanes carry no
    /// fault engine, detectors or Panda, so those fields are their
    /// constructor values).
    fn result(&self, i: usize) -> Option<SimResult> {
        let meta = self.meta.get(i)?;
        let hazards = self.hazards.get(i)?;
        let world = self.worlds.as_slice().get(i)?;
        let driver = self.drivers.get(i)?;
        let attacker = self.attackers.get(i)?.as_ref();
        let adas = self.adas.get(i)?;
        let first_hazard = hazards.first_any().map(|(t, k)| (t.time(), k));
        let attack_activated = attacker.and_then(|a| a.timeline().activated_at());
        let tth = match (attack_activated, hazards.first_any()) {
            (Some(_), Some((h, _))) => attacker.and_then(|a| a.timeline().tth(h)),
            _ => None,
        };
        Some(SimResult {
            seed: meta.config.seed,
            first_hazard,
            hazard_kinds: hazards.kinds(),
            accident: hazards.accident().map(|(t, k)| (t.time(), k)),
            alert_events: meta.alert_events,
            fcw_events: adas.fcw_events(),
            lane_invasions: world.lane_invasions(),
            duration: world.now().time(),
            attack_activated: attack_activated.map(Tick::time),
            tth,
            driver_noticed: driver.noticed_at().map(Tick::time),
            driver_engaged: driver.engaged_at().map(Tick::time),
            frames_rewritten: attacker.map_or(0, AttackEngine::frames_rewritten),
            panda_blocked: 0,
            invariant_detected: None,
            monitor_detected: None,
            degraded_ticks: meta.degraded_ticks,
            failsafe_ticks: meta.failsafe_ticks,
            first_degraded: meta.first_degraded.map(Tick::time),
            first_failsafe: meta.first_failsafe.map(Tick::time),
            recovery_latency: None,
            faults_injected: 0,
            ids_detected: None,
            gate_rejections: adas.gate_rejections(),
        })
    }
}

/// Which kind of lane sits at one caller-visible index.
#[derive(Debug, Clone, Copy)]
enum LaneRef {
    Fast(usize),
    Exact(usize),
}

/// B scalar-equivalent simulation lanes stepped in lockstep.
///
/// Push each run's [`HarnessConfig`]; lanes that qualify take the fused
/// fast path, the rest wrap a scalar [`Harness`]. [`run`](Self::run)
/// returns one [`SimResult`] per lane in push order, bit-identical to
/// running each config through the scalar harness.
#[derive(Default)]
pub struct BatchHarness {
    fast: FastBatch,
    exact: Vec<Harness>,
    order: Vec<LaneRef>,
    ticks: u64,
}

impl BatchHarness {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether a config qualifies for the fused fast path. Traced runs,
    /// fault schedules, attached detectors and Panda checks take the
    /// scalar-wrapping lane instead.
    pub fn fast_eligible(config: &HarnessConfig) -> bool {
        !config.trace.enabled
            && config.faults.is_empty()
            && !config.defense.detectors_attached()
            && !config.panda_enabled
    }

    /// Adds one lane. (Named `admit`, not `push`: workspace convention
    /// reserves std container method names for std semantics so the
    /// lint's name-based call graph stays precise.)
    pub fn admit(&mut self, config: HarnessConfig) {
        if Self::fast_eligible(&config) {
            let i = self.fast.admit(config);
            self.order.push(LaneRef::Fast(i));
        } else {
            self.order.push(LaneRef::Exact(self.exact.len()));
            self.exact.push(Harness::new(config));
        }
    }

    /// Number of lanes.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the batch holds no lanes.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Lanes on the fused fast path.
    pub fn fast_lanes(&self) -> usize {
        self.fast.meta.len()
    }

    /// Lanes wrapping a scalar harness.
    pub fn exact_lanes(&self) -> usize {
        self.exact.len()
    }

    /// Whether every lane has completed its run.
    pub fn finished(&self) -> bool {
        (self.ticks >= STEPS_PER_SIM || !self.fast.any_active())
            && self.exact.iter().all(Harness::finished)
    }

    /// Advances every unfinished lane one lockstep tick.
    pub fn step(&mut self) {
        let tick = Tick::new(self.ticks);
        if self.ticks < STEPS_PER_SIM && self.fast.any_active() {
            self.fast.step(tick);
        }
        for h in &mut self.exact {
            if !h.finished() {
                h.step();
            }
        }
        self.ticks += 1;
    }

    /// Runs every lane to completion; results are in push order.
    pub fn run(mut self) -> Vec<SimResult> {
        while !self.finished() {
            self.step();
        }
        self.results()
    }

    /// Runs every lane to completion, handing back each lane's flight
    /// recorder too (always `None` on fast lanes — tracing routes a lane
    /// to the scalar path).
    pub fn run_traced(mut self) -> Vec<(SimResult, Option<TraceRecorder>)> {
        while !self.finished() {
            self.step();
        }
        let results = self.results();
        results
            .into_iter()
            .zip(self.order.iter())
            .map(|(r, lane)| match lane {
                LaneRef::Exact(j) => (r, self.exact.get_mut(*j).and_then(Harness::take_recorder)),
                LaneRef::Fast(_) => (r, None),
            })
            .collect()
    }

    /// The per-lane results in push order.
    fn results(&self) -> Vec<SimResult> {
        self.order
            .iter()
            .filter_map(|lane| match lane {
                LaneRef::Fast(i) => self.fast.result(*i),
                LaneRef::Exact(j) => self.exact.get(*j).map(Harness::result_so_far),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attack_core::{AttackConfig, AttackType, StrategyKind, ValueMode};
    use driving_sim::{Scenario, ScenarioId};
    use units::Distance;

    fn scenario(id: ScenarioId, gap: f64) -> Scenario {
        Scenario::new(id, Distance::meters(gap))
    }

    fn attack(attack_type: AttackType, strategy: StrategyKind, value_mode: ValueMode) -> AttackConfig {
        AttackConfig {
            attack_type,
            strategy,
            value_mode,
            ..AttackConfig::default()
        }
    }

    #[test]
    fn batched_matches_scalar_attack_free() {
        let mut batch = BatchHarness::new();
        let mut scalar = Vec::new();
        for (s, gap, seed) in [
            (ScenarioId::S1, 70.0, 3),
            (ScenarioId::S2, 100.0, 4),
            (ScenarioId::S4, 50.0, 5),
        ] {
            let cfg = HarnessConfig::no_attack(scenario(s, gap), seed);
            batch.admit(cfg);
            scalar.push(Harness::new(cfg).run());
        }
        assert_eq!(batch.fast_lanes(), 3);
        assert_eq!(batch.run(), scalar);
    }

    #[test]
    fn batched_matches_scalar_under_attack() {
        let mut batch = BatchHarness::new();
        let mut scalar = Vec::new();
        for (i, (t, v)) in [
            (AttackType::Acceleration, ValueMode::Strategic),
            (AttackType::Deceleration, ValueMode::Fixed),
            (AttackType::SteeringRight, ValueMode::Fixed),
            (AttackType::AccelerationSteering, ValueMode::Strategic),
        ]
        .into_iter()
        .enumerate()
        {
            let cfg = HarnessConfig::with_attack(
                scenario(ScenarioId::S1, 70.0),
                5 + i as u64,
                attack(t, StrategyKind::ContextAware, v),
            );
            batch.admit(cfg);
            scalar.push(Harness::new(cfg).run());
        }
        assert_eq!(batch.fast_lanes(), 4);
        let results = batch.run();
        assert_eq!(results, scalar);
        assert!(
            results.iter().any(|r| r.frames_rewritten > 0),
            "at least one lane saw live injection"
        );
    }

    #[test]
    fn ineligible_configs_take_the_exact_lane() {
        let mut batch = BatchHarness::new();
        let mut cfg = HarnessConfig::no_attack(scenario(ScenarioId::S1, 70.0), 9);
        cfg.panda_enabled = true;
        batch.admit(cfg);
        assert_eq!(batch.fast_lanes(), 0);
        assert_eq!(batch.exact_lanes(), 1);
        assert_eq!(batch.run(), vec![Harness::new(cfg).run()]);
    }

    #[test]
    fn mixed_batch_keeps_push_order() {
        let fast = HarnessConfig::no_attack(scenario(ScenarioId::S2, 100.0), 11);
        let mut exact = HarnessConfig::no_attack(scenario(ScenarioId::S1, 70.0), 12);
        exact.defense = crate::DefensePolicy::Observe;
        let mut batch = BatchHarness::new();
        batch.admit(fast);
        batch.admit(exact);
        batch.admit(fast);
        assert_eq!(batch.fast_lanes(), 2);
        assert_eq!(batch.exact_lanes(), 1);
        let expected = vec![
            Harness::new(fast).run(),
            Harness::new(exact).run(),
            Harness::new(fast).run(),
        ];
        assert_eq!(batch.run(), expected);
    }
}
