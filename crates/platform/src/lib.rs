//! The simulation platform of the paper's Fig. 5: OpenPilot-style ADAS +
//! CARLA-substitute simulator + driver reaction simulator + attack engine,
//! wired together in lock-step, plus the experiment campaigns that
//! regenerate every table and figure of the evaluation.
//!
//! * [`Harness`] — one simulation run (5,000 × 10 ms ticks).
//! * [`HazardDetector`] — the hazards H1–H3 and accidents A1/A3 of §III-A.
//! * [`SimResult`] / [`metrics`] — per-run outcomes and aggregation.
//! * [`experiment`] — the 1,440/14,400-run campaigns (Tables IV and V).
//! * [`tables`]/[`figures`] — formatting that matches the paper's rows.
//!
//! # Examples
//!
//! ```
//! use platform::{Harness, HarnessConfig};
//! use driving_sim::{Scenario, ScenarioId};
//! use units::Distance;
//!
//! // One attack-free run (shortened to 200 ticks for the doctest).
//! let scenario = Scenario::new(ScenarioId::S2, Distance::meters(70.0));
//! let mut harness = Harness::new(HarnessConfig::no_attack(scenario, 1));
//! for _ in 0..200 {
//!     harness.step();
//! }
//! assert!(harness.result_so_far().first_hazard.is_none());
//! ```

#![forbid(unsafe_code)]
#![deny(clippy::float_cmp)]

#![warn(missing_docs)]

pub mod batch;
pub mod defense_campaign;
pub mod experiment;
pub mod figures;
mod harness;
mod hazard;
pub mod metrics;
pub mod pool;
pub mod report;
pub mod resilience;
pub mod tables;
pub mod trace;

pub use batch::BatchHarness;
pub use defense::DefensePolicy;
pub use harness::{Harness, HarnessConfig, SimResult};
pub use hazard::{AccidentKind, HazardDetector, HazardKind, HazardParams};
pub use trace::{TraceConfig, TraceRecorder};

/// Asserts a condition, attaching the newest flight-recorder ticks of a
/// [`Harness`] to the panic message so a failing integration test shows
/// *what the simulation was doing* when the expectation broke.
///
/// ```should_panic
/// use driving_sim::{Scenario, ScenarioId};
/// use platform::{trace_assert, Harness, HarnessConfig, TraceConfig};
/// use units::Distance;
///
/// let scenario = Scenario::new(ScenarioId::S2, Distance::meters(70.0));
/// let cfg = HarnessConfig::no_attack(scenario, 1).traced(TraceConfig::enabled(64));
/// let mut harness = Harness::new(cfg);
/// harness.step();
/// trace_assert!(harness, false, "always fails, printing the trace tail");
/// ```
#[macro_export]
macro_rules! trace_assert {
    ($harness:expr, $cond:expr $(,)?) => {
        $crate::trace_assert!($harness, $cond, "assertion failed: {}", stringify!($cond))
    };
    ($harness:expr, $cond:expr, $($arg:tt)+) => {
        if !$cond {
            panic!(
                "{}\nlast trace ticks:\n{}",
                format!($($arg)+),
                $harness.trace_tail(12)
            );
        }
    };
}
