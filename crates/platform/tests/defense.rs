//! Defense integration tests: the corruption blind-spot acceptance
//! criteria, end to end through the harness.
//!
//! * False-positive budget: the strongest policy on clean runs is
//!   *invisible* — no alarms, no gate rejections, and bit-identical
//!   results to the undefended baseline across the whole S1–S4 matrix.
//! * Stale-replay regression: a total sensor-latency fault can no longer
//!   masquerade as fresh data; the staleness watchdog degrades.
//! * Stuck-at regression: frozen GPS/radar readings are caught by the
//!   plausibility gates and walk the degradation ladder before any hazard.
//! * Bus-off: the CAN IDS alarms within a quarter second of onset and an
//!   acting policy turns the alarm into a degradation the driver sees.

use defense::DefensePolicy;
use driving_sim::Scenario;
use faultinj::{FaultKind, FaultSchedule, FaultSpec, FaultTarget};
use platform::{Harness, HarnessConfig};
use units::DT;

const FAULT_START: u64 = 500;
const FAULT_DURATION: u64 = 2000;

fn window(kind: FaultKind, target: FaultTarget) -> FaultSpec {
    FaultSpec::window(kind, target, FAULT_START, FAULT_DURATION)
}

/// The false-positive budget of the whole defense stack is zero: on clean
/// runs the strongest acting policy must not alarm, must not withhold a
/// single reading, must not degrade — and therefore must produce exactly
/// the run the undefended ADAS produces.
#[test]
fn clean_matrix_under_failsafe_policy_is_bit_identical_to_undefended() {
    for (si, scenario) in Scenario::matrix().into_iter().enumerate() {
        let seed = 60 + si as u64;
        let off = Harness::new(HarnessConfig::no_attack(scenario, seed)).run();
        let defended = Harness::new(
            HarnessConfig::no_attack(scenario, seed).with_defense(DefensePolicy::FailSafe),
        )
        .run();

        assert_eq!(defended.ids_detected, None, "cell {si}: IDS false alarm");
        assert_eq!(
            defended.gate_rejections, 0,
            "cell {si}: plausibility gates rejected clean readings"
        );
        assert_eq!(
            defended.degraded_ticks, 0,
            "cell {si}: spurious degradation on a clean run"
        );
        assert_eq!(defended.fcw_events, 0, "cell {si}: spurious FCW");
        assert_eq!(
            defended.invariant_detected, None,
            "cell {si}: invariant false alarm"
        );
        assert_eq!(
            defended.monitor_detected, None,
            "cell {si}: monitor false alarm"
        );
        assert_eq!(
            off, defended,
            "cell {si}: an acting defense that never fires must be invisible"
        );
    }
}

/// Regression for the stale-replay watchdog bug: a total sensor-latency
/// fault used to republish old readings with fresh timestamps, so the
/// staleness watchdog saw a live stream and stayed nominal. Replayed
/// samples now carry their original sample tick, so a 10-tick replay is
/// visibly stale (> 5-tick watchdog bound) and the ladder degrades.
#[test]
fn total_sensor_latency_is_stale_and_degrades() {
    let scenario = Scenario::matrix()[0];
    let cfg = HarnessConfig::no_attack(scenario, 17)
        .with_faults(FaultSchedule::single(window(
            FaultKind::SensorLatency,
            FaultTarget::All,
        )))
        .with_defense(DefensePolicy::Degrade);
    let result = Harness::new(cfg).run();

    let first = result
        .first_degraded
        .expect("a 10-tick replay of every stream must trip the staleness watchdog");
    let onset = FAULT_START as f64 * DT.secs();
    assert!(
        first.secs() >= onset && first.secs() <= onset + 1.0,
        "degradation at {:.2}s should follow fault onset at {onset:.2}s closely",
        first.secs()
    );
    assert!(result.degraded_ticks > 0);
    assert!(
        result.accident.is_none(),
        "degrading on stale data must keep the run accident-free, got {:?}",
        result.accident
    );
    assert!(
        result.recovery_latency.is_some(),
        "the ladder recovers once fresh samples resume"
    );
}

/// Regression for the stuck-at blind spot: frozen GPS and radar streams
/// keep publishing fresh-looking (but identical) readings. The staleness
/// watchdog alone cannot see this; the plausibility gates' stuck detector
/// must, and an acting policy walks the ladder before any hazard develops.
#[test]
fn stuck_gps_and_radar_degrade_before_any_hazard() {
    let scenario = Scenario::matrix()[0]; // S1, closest gap
    let mut faults = FaultSchedule::empty();
    faults.add(window(FaultKind::SensorStuckAt, FaultTarget::Gps).with_intensity(0.3));
    faults.add(window(FaultKind::SensorStuckAt, FaultTarget::Radar).with_intensity(0.3));

    // Undefended: the frozen streams look alive and nothing degrades —
    // this is exactly the blind spot.
    let blind = Harness::new(HarnessConfig::no_attack(scenario, 23).with_faults(faults)).run();
    assert_eq!(
        blind.degraded_ticks, 0,
        "undefended stuck-at is invisible to the staleness watchdog"
    );

    // Defended: the stuck detector fires and the ladder reacts.
    let defended = Harness::new(
        HarnessConfig::no_attack(scenario, 23)
            .with_faults(faults)
            .with_defense(DefensePolicy::Degrade),
    )
    .run();
    assert!(defended.gate_rejections > 0, "gates must reject the frozen readings");
    let first = defended
        .first_degraded
        .expect("stuck streams must degrade under an acting policy");
    let onset = FAULT_START as f64 * DT.secs();
    assert!(
        first.secs() >= onset && first.secs() <= onset + 2.0,
        "degradation at {:.2}s should follow stuck onset at {onset:.2}s",
        first.secs()
    );
    if let Some((hazard, kind)) = defended.first_hazard {
        assert!(
            first < hazard,
            "ladder must move at {:.2}s before the first hazard {kind:?} at {:.2}s",
            first.secs(),
            hazard.secs()
        );
    }
    assert!(defended.accident.is_none(), "got {:?}", defended.accident);
}

/// A bus-off window silences every actuator frame. The CAN IDS alarms
/// within a quarter second of the miss-streak threshold, and an acting
/// policy converts the alarm into a forced degradation whose alert the
/// driver reacts to.
#[test]
fn bus_off_raises_ids_alarm_and_forces_degradation() {
    let scenario = Scenario::matrix()[0];
    let cfg = HarnessConfig::no_attack(scenario, 29)
        .with_faults(FaultSchedule::single(window(
            FaultKind::CanBusOff,
            FaultTarget::All,
        )))
        .with_defense(DefensePolicy::Degrade);
    let result = Harness::new(cfg).run();

    let detected = result
        .ids_detected
        .expect("total actuator-frame loss must raise an IDS alarm");
    let onset = FAULT_START as f64 * DT.secs();
    assert!(
        detected.secs() >= onset && detected.secs() <= onset + 0.5,
        "IDS alarm at {:.2}s should land within 0.5s of bus-off onset at {onset:.2}s",
        detected.secs()
    );
    assert!(
        result.degraded_ticks > 0,
        "the Degrade policy must act on the alarm"
    );
    let degraded = result.first_degraded.expect("forced rung");
    assert!(
        degraded >= detected,
        "degradation follows detection: {:.2}s vs {:.2}s",
        degraded.secs(),
        detected.secs()
    );
    assert!(result.alert_events > 0, "the forced rung raises an alert edge");
    assert!(
        result.driver_noticed.is_some(),
        "the alert is the driver's cue that the bus is dead"
    );
    assert!(result.accident.is_none(), "got {:?}", result.accident);
}
