//! Resilience integration tests: the graceful-degradation acceptance
//! criteria of the fault-injection work, end to end through the harness.
//!
//! * Total radar loss drives the ADAS into fail-safe with **zero
//!   collisions** across the whole S1–S4 scenario matrix.
//! * A seeded fault run is bit-reproducible.
//! * A harness with a fault engine attached but no active window is
//!   bit-identical to one with no engine at all.
//! * Recovery latency after a bounded fault window matches the hysteresis
//!   window of the degradation monitor.

use driving_sim::Scenario;
use faultinj::{FaultKind, FaultSchedule, FaultSpec, FaultTarget};
use openadas::{FAILSAFE_AFTER, RECOVERY_TICKS};
use platform::trace::{diff, DegradationCode, TraceEventKind};
use platform::{Harness, HarnessConfig, TraceConfig};
use units::DT;

fn radar_loss(start: u64, duration: u64) -> FaultSchedule {
    FaultSchedule::single(FaultSpec::window(
        FaultKind::SensorDropout,
        FaultTarget::Radar,
        start,
        duration,
    ))
}

/// The headline safety criterion: under total radar loss the ADAS walks the
/// degradation ladder into a controlled fail-safe stop and no run in the
/// S1–S4 matrix ends in a collision.
#[test]
fn total_radar_loss_fails_safe_without_collisions_across_the_matrix() {
    const START: u64 = 200;
    for (si, scenario) in Scenario::matrix().into_iter().enumerate() {
        let cfg = HarnessConfig::no_attack(scenario, 40 + si as u64)
            .with_faults(radar_loss(START, 10_000));
        let result = Harness::new(cfg).run();
        assert!(
            result.failsafe_ticks > 0,
            "cell {si}: persistent radar loss must reach fail-safe"
        );
        let entered = result.first_failsafe.expect("fail-safe entry time");
        let bound = (START + u64::from(FAILSAFE_AFTER) + 10) as f64 * DT.secs();
        assert!(
            entered.secs() <= bound,
            "cell {si}: fail-safe at {:.2}s exceeds the {bound:.2}s bound",
            entered.secs()
        );
        assert!(
            result.accident.is_none(),
            "cell {si}: fail-safe stop must not collide, got {:?}",
            result.accident
        );
        assert_eq!(
            result.fcw_events, 0,
            "cell {si}: the fail-safe brake stays under the FCW threshold"
        );
        assert!(result.alert_events > 0, "cell {si}: degradation alerts fire");
    }
}

/// Seeded fault campaigns are part of the reproducibility contract: the
/// same config twice gives bit-identical results and traces.
#[test]
fn faulted_run_is_bit_reproducible() {
    let mut schedule = FaultSchedule::empty();
    schedule.add(
        FaultSpec::window(FaultKind::SensorNoiseBurst, FaultTarget::All, 300, 800)
            .with_intensity(0.7),
    );
    schedule.add(FaultSpec::window(FaultKind::CanBitFlip, FaultTarget::All, 900, 600)
        .with_intensity(0.4));
    let cfg = HarnessConfig::no_attack(Scenario::matrix()[2], 11)
        .with_faults(schedule)
        .traced(TraceConfig::enabled(256));
    let (ra, ta) = Harness::new(cfg).run_traced();
    let (rb, tb) = Harness::new(cfg).run_traced();
    assert_eq!(ra, rb, "results must be bit-identical");
    assert!(ra.faults_injected > 0, "the schedule actually injected");
    let d = diff(
        ta.as_ref().expect("traced").ring().iter(),
        tb.as_ref().expect("traced").ring().iter(),
    );
    assert!(d.identical(), "traces must be bit-identical: {d}");
}

/// An attached-but-idle fault engine must be invisible: a schedule whose
/// window never opens gives the same run, bit for bit, as no schedule.
#[test]
fn idle_fault_engine_is_bit_identical_to_none() {
    let scenario = Scenario::matrix()[5];
    let plain = HarnessConfig::no_attack(scenario, 21).traced(TraceConfig::enabled(256));
    // Window opens long after the 5,000-tick run ends.
    let idle = plain.with_faults(radar_loss(100_000, 50));
    let (rp, tp) = Harness::new(plain).run_traced();
    let (ri, ti) = Harness::new(idle).run_traced();
    assert_eq!(rp.first_hazard, ri.first_hazard);
    assert_eq!(rp.alert_events, ri.alert_events);
    assert_eq!(ri.faults_injected, 0);
    assert_eq!(ri.degraded_ticks, 0);
    let d = diff(
        tp.as_ref().expect("traced").ring().iter(),
        ti.as_ref().expect("traced").ring().iter(),
    );
    assert!(d.identical(), "idle engine perturbed the run: {d}");
}

/// After a bounded radar outage the ADAS recovers to nominal in one full
/// hysteresis window, and the result records the latency.
#[test]
fn bounded_outage_recovers_with_hysteresis_latency() {
    let scenario = Scenario::matrix()[0];
    let cfg = HarnessConfig::no_attack(scenario, 33).with_faults(radar_loss(500, 1000));
    let result = Harness::new(cfg).run();
    assert!(result.failsafe_ticks > 0, "outage long enough for fail-safe");
    let latency = result
        .recovery_latency
        .expect("the ladder recovers after the window closes")
        .secs();
    let expected = f64::from(RECOVERY_TICKS) * DT.secs();
    assert!(
        (latency - expected).abs() < 0.2,
        "recovery latency {latency:.2}s should be about the {expected:.2}s hysteresis window"
    );
}

/// The flight recorder explains a resilience run: fault-mask and
/// degradation columns are populated and ladder transitions become events.
#[test]
fn trace_records_fault_mask_and_degradation_transitions() {
    let scenario = Scenario::matrix()[0];
    let cfg = HarnessConfig::no_attack(scenario, 12)
        .with_faults(radar_loss(100, 600))
        .traced(TraceConfig::full_run());
    let (result, rec) = Harness::new(cfg).run_traced();
    let rec = rec.expect("traced");
    let in_window = rec
        .ring()
        .iter()
        .find(|r| r.tick == 300)
        .expect("full-run ring holds tick 300");
    assert_eq!(
        in_window.fault_mask,
        1u16 << FaultKind::SensorDropout.index(),
        "active dropout appears in the fault mask"
    );
    assert!(in_window.faults_injected > 0);
    assert_ne!(in_window.degradation, DegradationCode::Nominal);
    let ladder: Vec<DegradationCode> = rec
        .events()
        .iter()
        .filter_map(|e| match e.kind {
            TraceEventKind::DegradationChanged(code) => Some(code),
            _ => None,
        })
        .collect();
    assert!(
        ladder.contains(&DegradationCode::FailSafe),
        "ladder transitions are events: {ladder:?}"
    );
    assert_eq!(
        rec.metrics().degraded_ticks,
        result.degraded_ticks,
        "recorder and harness agree on time degraded"
    );
}
