//! Differential property tests: the scalar [`Harness`] is the bit-exactness
//! oracle for [`BatchHarness`] lanes.
//!
//! Two proptest blocks pin the two lane kinds separately, so coverage of
//! both does not depend on what the RNG happens to draw:
//!
//! * **Fast** — attack-free or attacked, untraced, fault-free, no
//!   detectors: the fused SoA path. The batch must route every such lane
//!   fast and produce the scalar's [`SimResult`] bit for bit.
//! * **Exact** — traced runs, fault schedules, attached detectors, Panda
//!   checks: the scalar-wrapping path. Results *and* the full per-tick
//!   trace columns (CSV) must match the standalone scalar run.
//!
//! Each case also shuffles several lanes into one batch, so lane-index
//! bookkeeping (push order vs. internal fast/exact split) is exercised,
//! not just single-lane round trips.

use attack_core::{AttackConfig, AttackType, StrategyKind, ValueMode};
use driver_model::DriverConfig;
use driving_sim::Scenario;
use faultinj::{FaultKind, FaultSchedule, FaultSpec, FaultTarget};
use platform::trace::to_csv;
use platform::{
    BatchHarness, DefensePolicy, Harness, HarnessConfig, HazardParams, TraceConfig,
};
use proptest::prelude::*;

fn base_config(scenario_i: usize, seed: u64, driver_alert: bool) -> HarnessConfig {
    HarnessConfig {
        scenario: Scenario::matrix()[scenario_i % Scenario::matrix().len()],
        seed,
        attack: None,
        driver: if driver_alert {
            DriverConfig::alert()
        } else {
            DriverConfig::inattentive()
        },
        panda_enabled: false,
        defense: DefensePolicy::Off,
        hazard_params: HazardParams::default(),
        trace: TraceConfig::disabled(),
        faults: FaultSchedule::empty(),
    }
}

fn attack(type_i: usize, strat_i: usize, strategic: bool, seed: u64) -> AttackConfig {
    AttackConfig {
        attack_type: AttackType::ALL[type_i % AttackType::ALL.len()],
        strategy: StrategyKind::ALL[strat_i % StrategyKind::ALL.len()],
        value_mode: if strategic {
            ValueMode::Strategic
        } else {
            ValueMode::Fixed
        },
        seed,
        ..AttackConfig::default()
    }
}

fn fault_schedule(kind_i: usize, intensity: f64, start: u64, duration: u64) -> FaultSchedule {
    let spec = FaultSpec::window(
        FaultKind::ALL[kind_i % FaultKind::ALL.len()],
        FaultTarget::All,
        start,
        duration,
    )
    .with_intensity(intensity);
    FaultSchedule::single(spec)
}

/// Runs every config through the scalar oracle and one shared batch,
/// asserting bit-identical results and (where traced) trace columns.
fn assert_batch_matches_scalar(configs: Vec<HarnessConfig>) {
    let mut batch = BatchHarness::new();
    for cfg in &configs {
        batch.admit(*cfg);
    }
    let batched = batch.run_traced();
    assert_eq!(batched.len(), configs.len());
    for (cfg, (result, recorder)) in configs.into_iter().zip(batched) {
        let (oracle, oracle_rec) = Harness::new(cfg).run_traced();
        assert_eq!(result, oracle, "SimResult must match the scalar oracle");
        match (recorder, oracle_rec) {
            (None, None) => {}
            (Some(b), Some(o)) => {
                assert_eq!(
                    to_csv(b.ring().iter()),
                    to_csv(o.ring().iter()),
                    "trace columns must match the scalar oracle"
                );
            }
            _ => panic!("recorder presence diverged from the oracle"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Fast-path lanes: untraced, fault-free, undetected — attacked or
    /// clean — must route onto the fused SoA path and still reproduce the
    /// scalar oracle bit for bit.
    #[test]
    fn fast_lanes_match_the_scalar_oracle(
        scenario_i in 0..12usize,
        seed in any::<u64>(),
        driver_alert in any::<bool>(),
        atk in proptest::option::of((0..6usize, 0..4usize, any::<bool>(), any::<u64>())),
        scenario_j in 0..12usize,
        seed_b in any::<u64>(),
    ) {
        let mut a = base_config(scenario_i, seed, driver_alert);
        a.attack = atk.map(|(t, s, v, sd)| attack(t, s, v, sd));
        // A second clean lane in the same batch: lockstep stepping of one
        // lane must never bleed into another.
        let b = base_config(scenario_j, seed_b, !driver_alert);

        let mut probe = BatchHarness::new();
        probe.admit(a);
        probe.admit(b);
        prop_assert_eq!(probe.fast_lanes(), 2, "both lanes must take the fast path");

        assert_batch_matches_scalar(vec![a, b]);
    }

    /// Exact-path lanes: tracing, fault windows and attached detectors
    /// must wrap the scalar harness — results and per-tick trace columns
    /// identical to a standalone scalar run, even mixed into one batch
    /// with a fast lane.
    #[test]
    fn exact_lanes_match_the_scalar_oracle_with_traces(
        scenario_i in 0..12usize,
        seed in any::<u64>(),
        atk in proptest::option::of((0..6usize, 0..4usize, any::<bool>(), any::<u64>())),
        kind_i in 0..9usize,
        intensity in 0.05..1.0f64,
        start in 100..1000u64,
        duration in 100..2000u64,
        traced in any::<bool>(),
        observed in any::<bool>(),
    ) {
        let mut exact = base_config(scenario_i, seed, true);
        exact.attack = atk.map(|(t, s, v, sd)| attack(t, s, v, sd));
        exact.faults = fault_schedule(kind_i, intensity, start, duration);
        if traced {
            exact.trace = TraceConfig::enabled(256);
        }
        if observed {
            exact.defense = DefensePolicy::Observe;
        }
        // A fast lane sharing the batch: the fast/exact split must keep
        // push order intact.
        let fast = base_config(scenario_i + 1, seed ^ 0x9E37_79B9, true);

        let mut probe = BatchHarness::new();
        probe.admit(exact);
        probe.admit(fast);
        prop_assert_eq!(probe.exact_lanes(), 1, "faulted lane must take the exact path");
        prop_assert_eq!(probe.fast_lanes(), 1);

        assert_batch_matches_scalar(vec![exact, fast]);
    }
}
