//! Proves the ISSUE 3 acceptance criterion mechanically: after warm-up,
//! `Harness::step` performs **zero heap allocations** on a steady-state
//! (no-trace, no-collision) tick.
//!
//! A counting `#[global_allocator]` wraps the system allocator; counting is
//! armed only around the measured window so test-harness bookkeeping and
//! warm-up growth (msgbus ring, encoder counter map, reused frame/alert
//! buffers reaching their high-water capacity) are excluded — exactly the
//! once-per-run costs the hot-path overhaul amortizes away.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use driving_sim::{Scenario, ScenarioId};
use faultinj::{FaultKind, FaultSchedule, FaultSpec, FaultTarget};
use platform::{Harness, HarnessConfig};
use units::Distance;

struct CountingAllocator;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static REALLOCS: AtomicU64 = AtomicU64::new(0);

// An integration test is a separate crate, so the workspace lib crates'
// `#![forbid(unsafe_code)]` does not apply; the unsafety is confined to
// delegating to the system allocator.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            REALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Single test so the global counters see exactly one measured window per
/// harness (plain and fault-injected, armed back to back).
#[test]
fn steady_state_tick_does_not_touch_the_heap() {
    let scenario = Scenario::new(ScenarioId::S1, Distance::meters(70.0));
    let cfg = HarnessConfig::no_attack(scenario, 3);
    let mut harness = Harness::new(cfg);

    // A second harness with the fault engine active through the whole
    // measured window: degradation escalation (and its alerts) happens
    // during warm-up, so the window exercises the faulted sensor path,
    // the CAN fault pass and the fail-safe control branch at steady state.
    let faulted_cfg = HarnessConfig::no_attack(scenario, 3).with_faults(FaultSchedule::single(
        FaultSpec::window(FaultKind::SensorDropout, FaultTarget::All, 50, 20_000),
    ));
    let mut faulted = Harness::new(faulted_cfg);

    // Warm-up: let every reused buffer reach its high-water mark (the
    // encoder's counter map fills on the first engaged tick; the msgbus
    // ring and the drain scratch buffers stabilize within a few ticks).
    for _ in 0..500 {
        harness.step();
        faulted.step();
    }

    ARMED.store(true, Ordering::SeqCst);
    for _ in 0..1_000 {
        harness.step();
        faulted.step();
    }
    ARMED.store(false, Ordering::SeqCst);

    let allocs = ALLOCS.load(Ordering::SeqCst);
    let reallocs = REALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        (allocs, reallocs),
        (0, 0),
        "steady-state Harness::step must not allocate, with or without \
         fault injection ({allocs} allocs, {reallocs} reallocs over 1000 ticks)"
    );
}
