//! CAN intrusion detection: timing, counter-continuity and checksum-history
//! checks over the actuator message stream.
//!
//! The IDS watches the three actuator messages the ADAS emits every control
//! cycle (`STEERING_CONTROL`, `GAS_COMMAND`, `BRAKE_COMMAND`) at the point
//! where the bus delivers them — after any man-in-the-middle or bus fault,
//! before the receivers. It is the *fault*-facing detector of the defense
//! stack: the paper's attacker repairs checksums and rolling counters after
//! rewriting a frame (§III-C), so those checks are blind to the MITM by
//! design — the control-invariant and context monitors cover that threat.
//! What the repair discipline cannot hide is a *broken bus*: dropped or
//! duplicated frames break the per-cycle timing and counter continuity, and
//! random corruption breaks the checksum, because a fault engine (unlike
//! the attacker) does not patch up after itself.
//!
//! Each check feeds a leaky per-category score (+1 per offending tick, −1
//! per clean tick) so a single glitch never alarms but a persistent fault
//! does, within tens of milliseconds.

use canbus::checksum::verify_honda_checksum;
use canbus::{CanFrame, BRAKE_COMMAND_ID, GAS_COMMAND_ID, STEERING_CONTROL_ID};
use serde::{Deserialize, Serialize};
use units::{limits, Tick};

/// How the harness acts on what the defense stack reports.
///
/// Deliberately *exhaustive* (adas-lint R8): every consumer must name every
/// policy — a new policy silently lumped into a `_ =>` arm would change
/// what "defended" means without anyone noticing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum DefensePolicy {
    /// No detectors run at all (the paper's baseline ADAS).
    #[default]
    Off,
    /// Detectors run and their verdicts are recorded, but nothing acts on
    /// them — the record-only mode previous experiments called
    /// `defenses_enabled`.
    Observe,
    /// Plausibility gates withhold implausible readings and a CAN-IDS alarm
    /// forces the degradation ladder to `DegradedAccOff` (gentle brake).
    Degrade,
    /// Like `Degrade`, but any acting detector forces a full
    /// `FailSafe` controlled stop.
    FailSafe,
}

impl DefensePolicy {
    /// Snake-case name used in reports and `BENCH_defense.json`.
    pub fn label(self) -> &'static str {
        match self {
            DefensePolicy::Off => "off",
            DefensePolicy::Observe => "observe",
            DefensePolicy::Degrade => "degrade",
            DefensePolicy::FailSafe => "fail_safe",
        }
    }

    /// Whether any detector state is created at all.
    pub fn detectors_attached(self) -> bool {
        match self {
            DefensePolicy::Off => false,
            DefensePolicy::Observe | DefensePolicy::Degrade | DefensePolicy::FailSafe => true,
        }
    }

    /// Whether detectors act on the vehicle (vs. record-only).
    pub fn acts(self) -> bool {
        match self {
            DefensePolicy::Off | DefensePolicy::Observe => false,
            DefensePolicy::Degrade | DefensePolicy::FailSafe => true,
        }
    }
}

/// What the IDS currently believes about the bus.
///
/// Deliberately *exhaustive* (adas-lint R8): a consumer that lumps `Alarm`
/// into a wildcard arm is ignoring the one verdict that must trigger
/// mitigation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum IdsVerdict {
    /// Every watched message is arriving on schedule with valid integrity
    /// fields.
    #[default]
    Nominal,
    /// At least one check has a non-zero score but no threshold is crossed.
    Suspicious,
    /// A score crossed its threshold: the bus is faulted.
    Alarm,
}

impl IdsVerdict {
    /// Snake-case name used in traces and reports.
    pub fn label(self) -> &'static str {
        match self {
            IdsVerdict::Nominal => "nominal",
            IdsVerdict::Suspicious => "suspicious",
            IdsVerdict::Alarm => "alarm",
        }
    }
}

/// IDS tuning. The thresholds trade detection latency against tolerance of
/// isolated glitches; at the defaults a total bus loss alarms in ~0.2 s and
/// persistent corruption in ~40 ms, while any isolated single-frame event
/// decays away without alarming.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IdsConfig {
    /// Consecutive missing cycles of a watched message before each further
    /// cycle counts as a timing event (absorbs scheduling jitter).
    pub miss_after: u32,
    /// Leaky-score threshold for timing events (missing/duplicated frames).
    pub timing_threshold: u32,
    /// Leaky-score threshold for rolling-counter discontinuities.
    pub counter_threshold: u32,
    /// Leaky-score threshold for checksum failures.
    pub checksum_threshold: u32,
}

impl Default for IdsConfig {
    fn default() -> Self {
        Self {
            miss_after: limits::IDS_MISS_AFTER,
            timing_threshold: limits::IDS_TIMING_THRESHOLD,
            counter_threshold: limits::IDS_COUNTER_THRESHOLD,
            checksum_threshold: limits::IDS_CHECKSUM_THRESHOLD,
        }
    }
}

/// Per-message-ID bookkeeping.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
struct IdState {
    /// Consecutive cycles with no frame for this id.
    miss_streak: u32,
    /// Rolling counter of the last integrity-valid frame.
    last_counter: Option<u8>,
}

/// The three actuator messages every engaged control cycle must carry.
const WATCHED: [u16; 3] = [STEERING_CONTROL_ID, GAS_COMMAND_ID, BRAKE_COMMAND_ID];

/// The CAN intrusion detector.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CanIds {
    config: IdsConfig,
    ids: [IdState; WATCHED.len()],
    timing_score: u32,
    counter_score: u32,
    checksum_score: u32,
    detected_at: Option<Tick>,
    /// Events observed over the whole run, per category
    /// `(timing, counter, checksum)` — for reports.
    events: (u64, u64, u64),
}

impl CanIds {
    /// Creates an IDS.
    pub fn new(config: IdsConfig) -> Self {
        Self {
            config,
            ..Self::default()
        }
    }

    /// First tick the IDS alarmed, if any.
    pub fn detected_at(&self) -> Option<Tick> {
        self.detected_at
    }

    /// Total events observed per category `(timing, counter, checksum)`.
    pub fn event_counts(&self) -> (u64, u64, u64) {
        self.events
    }

    /// The verdict the current scores imply.
    pub fn verdict(&self) -> IdsVerdict {
        if self.timing_score >= self.config.timing_threshold
            || self.counter_score >= self.config.counter_threshold
            || self.checksum_score >= self.config.checksum_threshold
        {
            IdsVerdict::Alarm
        } else if self.timing_score > 0 || self.counter_score > 0 || self.checksum_score > 0 {
            IdsVerdict::Suspicious
        } else {
            IdsVerdict::Nominal
        }
    }

    /// Feeds one control cycle's worth of delivered actuator frames.
    ///
    /// `engaged` is whether the ADAS commanded the actuators this cycle: a
    /// disengaged ADAS legitimately sends nothing, so the timing expectation
    /// is suspended (and per-id state reset) rather than treated as a bus
    /// fault. Scores still decay while disengaged, so a verdict never
    /// latches past its evidence.
    pub fn observe(&mut self, tick: Tick, frames: &[CanFrame], engaged: bool) -> IdsVerdict {
        let mut timing_event = false;
        let mut counter_event = false;
        let mut checksum_event = false;

        if engaged {
            for (slot, &id) in WATCHED.iter().enumerate() {
                let state = &mut self.ids[slot];
                let count = frames.iter().filter(|f| f.id() == id).count();
                if count == 0 {
                    state.miss_streak = state.miss_streak.saturating_add(1);
                    if state.miss_streak >= self.config.miss_after {
                        timing_event = true;
                    }
                    continue;
                }
                state.miss_streak = 0;
                if count > 1 {
                    // A duplicated command frame within one cycle: replay or
                    // injection at the bus level.
                    timing_event = true;
                }
                for frame in frames.iter().filter(|f| f.id() == id) {
                    if !verify_honda_checksum(frame.id(), frame.data()) {
                        // Integrity fields are unreliable: flag, and skip the
                        // counter check for this frame.
                        checksum_event = true;
                        continue;
                    }
                    let counter = frame
                        .data()
                        .last()
                        .map_or(0, |last| (last >> 4) & 0x3);
                    if let Some(prev) = state.last_counter {
                        if counter != (prev + 1) & 0x3 {
                            counter_event = true;
                        }
                    }
                    state.last_counter = Some(counter);
                }
            }
        } else {
            // Disengaged: silence is legitimate, and the counter sequence
            // restarts when frames resume.
            self.ids = [IdState::default(); WATCHED.len()];
        }

        self.timing_score = leak(self.timing_score, timing_event);
        self.counter_score = leak(self.counter_score, counter_event);
        self.checksum_score = leak(self.checksum_score, checksum_event);
        self.events.0 += u64::from(timing_event);
        self.events.1 += u64::from(counter_event);
        self.events.2 += u64::from(checksum_event);

        let verdict = self.verdict();
        if verdict == IdsVerdict::Alarm && self.detected_at.is_none() {
            self.detected_at = Some(tick);
        }
        verdict
    }
}

/// Leaky integrator: +1 on an offending tick, −1 on a clean one.
fn leak(score: u32, event: bool) -> u32 {
    if event {
        score.saturating_add(1)
    } else {
        score.saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canbus::checksum::apply_honda_checksum;

    /// Builds the three actuator frames for one cycle with valid checksums
    /// and the given rolling counter value.
    fn cycle_frames(counter: u8) -> Vec<CanFrame> {
        WATCHED
            .iter()
            .map(|&id| {
                let mut data = [0x12, 0x34, 0x01, 0x00, 0x00, (counter & 0x3) << 4];
                apply_honda_checksum(id, &mut data);
                CanFrame::new(id, &data).unwrap()
            })
            .collect()
    }

    #[test]
    fn healthy_bus_stays_nominal() {
        let mut ids = CanIds::default();
        for t in 0..1000u64 {
            let v = ids.observe(Tick::new(t), &cycle_frames((t % 4) as u8), true);
            assert_eq!(v, IdsVerdict::Nominal, "tick {t}");
        }
        assert_eq!(ids.detected_at(), None);
        assert_eq!(ids.event_counts(), (0, 0, 0));
    }

    #[test]
    fn disengaged_silence_is_not_a_fault() {
        let mut ids = CanIds::default();
        for t in 0..100u64 {
            ids.observe(Tick::new(t), &cycle_frames((t % 4) as u8), true);
        }
        // Driver takes over: no frames for a long stretch.
        for t in 100..1000u64 {
            let v = ids.observe(Tick::new(t), &[], false);
            assert_eq!(v, IdsVerdict::Nominal, "tick {t}");
        }
        // The ADAS resumes mid-sequence: the counter expectation was reset,
        // so resumption is clean.
        for t in 1000..1100u64 {
            let v = ids.observe(Tick::new(t), &cycle_frames((t % 4) as u8), true);
            assert_eq!(v, IdsVerdict::Nominal, "tick {t}");
        }
    }

    #[test]
    fn total_frame_loss_alarms_within_a_quarter_second() {
        let mut ids = CanIds::default();
        for t in 0..50u64 {
            ids.observe(Tick::new(t), &cycle_frames((t % 4) as u8), true);
        }
        let mut alarmed_at = None;
        for t in 50..200u64 {
            if ids.observe(Tick::new(t), &[], true) == IdsVerdict::Alarm {
                alarmed_at = Some(t);
                break;
            }
        }
        let cfg = IdsConfig::default();
        // The streak reaches miss_after on the 10th silent tick (events
        // start there), and the score reaches the threshold 9 ticks later.
        let expected = 50 + u64::from(cfg.miss_after - 1) + u64::from(cfg.timing_threshold - 1);
        assert_eq!(alarmed_at, Some(expected), "miss grace + score ramp");
        assert_eq!(ids.detected_at(), Some(Tick::new(expected)));
    }

    #[test]
    fn persistent_checksum_corruption_alarms_fast() {
        let mut ids = CanIds::default();
        for t in 0..50u64 {
            ids.observe(Tick::new(t), &cycle_frames((t % 4) as u8), true);
        }
        let mut alarmed_at = None;
        for t in 50..100u64 {
            let mut frames = cycle_frames((t % 4) as u8);
            for f in &mut frames {
                f.data_mut()[1] ^= 0x08; // single bit, checksum not repaired
            }
            if ids.observe(Tick::new(t), &frames, true) == IdsVerdict::Alarm {
                alarmed_at = Some(t);
                break;
            }
        }
        let expected = 50 + u64::from(IdsConfig::default().checksum_threshold) - 1;
        assert_eq!(alarmed_at, Some(expected));
    }

    #[test]
    fn counter_discontinuity_from_sustained_drops_alarms() {
        let mut ids = CanIds::default();
        let mut counter = 0u8;
        for t in 0..50u64 {
            ids.observe(Tick::new(t), &cycle_frames(counter), true);
            counter = (counter + 1) & 0x3;
        }
        // A lossy bus delivers frames every cycle but the transmitter's
        // counter has advanced twice in between (one transmission was
        // lost): the timing check never fires, the counter check does.
        let mut alarmed = false;
        for t in 50..200u64 {
            counter = (counter + 2) & 0x3; // one transmission lost en route
            let frames = cycle_frames(counter);
            if ids.observe(Tick::new(t), &frames, true) == IdsVerdict::Alarm {
                alarmed = true;
                break;
            }
        }
        assert!(alarmed, "sustained counter skips must alarm");
    }

    #[test]
    fn duplicated_frames_are_a_timing_event() {
        let mut ids = CanIds::default();
        for t in 0..50u64 {
            ids.observe(Tick::new(t), &cycle_frames((t % 4) as u8), true);
        }
        let mut alarmed = false;
        for t in 50..200u64 {
            let mut frames = cycle_frames((t % 4) as u8);
            frames.extend(cycle_frames((t % 4) as u8)); // every frame twice
            if ids.observe(Tick::new(t), &frames, true) == IdsVerdict::Alarm {
                alarmed = true;
                break;
            }
        }
        assert!(alarmed, "persistent duplication must alarm");
    }

    #[test]
    fn isolated_glitch_decays_without_alarm() {
        let mut ids = CanIds::default();
        for t in 0..50u64 {
            ids.observe(Tick::new(t), &cycle_frames((t % 4) as u8), true);
        }
        // One corrupted cycle.
        let mut frames = cycle_frames(2);
        frames[0].data_mut()[0] ^= 0x01;
        let v = ids.observe(Tick::new(50), &frames, true);
        assert_eq!(v, IdsVerdict::Suspicious, "flagged but below threshold");
        // Healthy traffic resumes; the score leaks away.
        let mut back_to_nominal = false;
        for t in 51..60u64 {
            if ids.observe(Tick::new(t), &cycle_frames((t % 4) as u8), true) == IdsVerdict::Nominal
            {
                back_to_nominal = true;
                break;
            }
        }
        assert!(back_to_nominal);
        assert_eq!(ids.detected_at(), None);
    }

    #[test]
    fn verdict_decays_after_the_fault_window() {
        let mut ids = CanIds::default();
        for t in 0..20u64 {
            ids.observe(Tick::new(t), &[], true); // bus dead from the start
        }
        assert_eq!(ids.verdict(), IdsVerdict::Alarm);
        // Bus restored: the alarm decays, the first-detection latch stays.
        for t in 20..60u64 {
            ids.observe(Tick::new(t), &cycle_frames((t % 4) as u8), true);
        }
        assert_eq!(ids.verdict(), IdsVerdict::Nominal);
        assert!(ids.detected_at().is_some());
    }

    #[test]
    fn policy_labels_and_modes() {
        assert_eq!(DefensePolicy::Off.label(), "off");
        assert_eq!(DefensePolicy::FailSafe.label(), "fail_safe");
        assert!(!DefensePolicy::Off.detectors_attached());
        assert!(DefensePolicy::Observe.detectors_attached());
        assert!(!DefensePolicy::Observe.acts());
        assert!(DefensePolicy::Degrade.acts());
        assert!(DefensePolicy::FailSafe.acts());
        assert_eq!(IdsVerdict::Alarm.label(), "alarm");
    }
}
