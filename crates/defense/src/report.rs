//! Detection outcome bookkeeping.

use serde::{Deserialize, Serialize};
use units::{Seconds, Tick};

/// The outcome of running a defense against one attacked run, relating the
/// detection instant to the attack timeline (Fig. 2): a useful detection
/// lands after activation (`t_a`) and *before* the hazard (`t_h`), with
/// enough lead time for mitigation.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DetectionReport {
    /// When the attack activated.
    pub attack_at: Option<Tick>,
    /// When the defense alarmed.
    pub detected_at: Option<Tick>,
    /// When the hazard occurred.
    pub hazard_at: Option<Tick>,
}

impl DetectionReport {
    /// Detection latency relative to attack activation.
    pub fn latency(&self) -> Option<Seconds> {
        match (self.attack_at, self.detected_at) {
            (Some(a), Some(d)) if d >= a => Some(d.since(a)),
            _ => None,
        }
    }

    /// Time between detection and the hazard — the budget left for
    /// mitigation (positive = detected in time).
    pub fn lead_time(&self) -> Option<Seconds> {
        match (self.detected_at, self.hazard_at) {
            (Some(d), Some(h)) if h >= d => Some(h.since(d)),
            _ => None,
        }
    }

    /// Whether the defense alarmed before the hazard (or the hazard never
    /// happened at all) for an activated attack.
    pub fn detected_in_time(&self) -> bool {
        match (self.detected_at, self.hazard_at) {
            (Some(d), Some(h)) => d < h,
            (Some(_), None) => true,
            _ => false,
        }
    }

    /// A false positive: an alarm with no attack ever activating.
    pub fn false_positive(&self) -> bool {
        self.detected_at.is_some() && self.attack_at.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timings() {
        let r = DetectionReport {
            attack_at: Some(Tick::new(1000)),
            detected_at: Some(Tick::new(1080)),
            hazard_at: Some(Tick::new(1300)),
        };
        assert_eq!(r.latency(), Some(Seconds::new(0.8)));
        assert_eq!(r.lead_time(), Some(Seconds::new(2.2)));
        assert!(r.detected_in_time());
        assert!(!r.false_positive());
    }

    #[test]
    fn late_detection() {
        let r = DetectionReport {
            attack_at: Some(Tick::new(1000)),
            detected_at: Some(Tick::new(1400)),
            hazard_at: Some(Tick::new(1300)),
        };
        assert!(!r.detected_in_time());
        assert_eq!(r.lead_time(), None);
    }

    #[test]
    fn false_positive_is_flagged() {
        let r = DetectionReport {
            attack_at: None,
            detected_at: Some(Tick::new(10)),
            hazard_at: None,
        };
        assert!(r.false_positive());
        assert_eq!(r.latency(), None);
    }

    #[test]
    fn no_detection() {
        let r = DetectionReport {
            attack_at: Some(Tick::new(10)),
            detected_at: None,
            hazard_at: Some(Tick::new(200)),
        };
        assert!(!r.detected_in_time());
        assert!(!r.false_positive());
    }
}
