//! Context-aware command monitoring — the defensive mirror of the attack's
//! Table I, in the spirit of the paper's reference [31] (Zhou et al.,
//! DSN'21): a monitor at the actuation boundary that flags control actions
//! which are unsafe *in the current driving context*, whoever issued them.

use serde::{Deserialize, Serialize};
use units::{Accel, Angle, Distance, Seconds, Speed, Tick};

/// The context variables the monitor evaluates commands against (the same
/// quantities the attacker infers — defence and attack read one table).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ContextObservation {
    /// Ego speed.
    pub v_ego: Speed,
    /// Headway time to the lead, if one is tracked.
    pub hwt: Option<Seconds>,
    /// Relative speed (ego − lead), if a lead is tracked.
    pub rs: Option<Speed>,
    /// Distance from the car's left side to the left lane line.
    pub d_left: Distance,
    /// Distance from the car's right side to the right lane line.
    pub d_right: Distance,
}

/// Verdict for one cycle's command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MonitorVerdict {
    /// Command is consistent with the context.
    Safe,
    /// Command matches an unsafe (context, action) pair this cycle.
    Suspicious,
    /// Suspicious sustained past the confirmation window: alarm.
    Alarm,
}

/// Monitor tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonitorConfig {
    /// Headway threshold below which acceleration is unsafe.
    pub t_safe: Seconds,
    /// Acceleration considered an "accelerate" action.
    pub accel_on: Accel,
    /// Deceleration considered a "brake hard" action.
    pub brake_on: Accel,
    /// Speed below which hard braking is no longer suspicious.
    pub beta: Speed,
    /// Edge distance below which steering further outward is unsafe.
    pub edge: Distance,
    /// Steering magnitude considered an outward "steer" action.
    pub steer_on: Angle,
    /// Consecutive suspicious cycles before the alarm latches.
    pub confirm: Seconds,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        Self {
            t_safe: Seconds::new(2.0),
            accel_on: Accel::from_mps2(0.8),
            brake_on: Accel::from_mps2(-2.0),
            beta: Speed::from_mph(25.0),
            edge: Distance::meters(0.25),
            steer_on: Angle::from_degrees(0.12),
            confirm: Seconds::new(0.4),
        }
    }
}

/// The monitor: stateless per-cycle rule evaluation plus a confirmation
/// window so transient controller behaviour never alarms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContextMonitor {
    config: MonitorConfig,
    streak: u32,
    detected_at: Option<Tick>,
}

impl Default for ContextMonitor {
    fn default() -> Self {
        Self::new(MonitorConfig::default())
    }
}

impl ContextMonitor {
    /// Creates a monitor.
    pub fn new(config: MonitorConfig) -> Self {
        Self {
            config,
            streak: 0,
            detected_at: None,
        }
    }

    /// First alarm tick, if any.
    pub fn detected_at(&self) -> Option<Tick> {
        self.detected_at
    }

    /// Whether a single cycle's command is unsafe in context (rule match,
    /// before confirmation).
    pub fn unsafe_in_context(&self, obs: &ContextObservation, accel: Accel, steer: Angle) -> bool {
        let c = &self.config;
        // Rule 1 mirror: accelerating while close and closing.
        let r1 = matches!((obs.hwt, obs.rs), (Some(hwt), Some(rs))
            if hwt <= c.t_safe && rs > Speed::ZERO && accel > c.accel_on);
        // Rule 2 mirror: braking hard at speed with nothing ahead.
        let clear = match (obs.hwt, obs.rs) {
            (Some(hwt), _) => hwt > c.t_safe * 1.4,
            (None, _) => true,
        };
        let r2 = clear && obs.v_ego > c.beta && accel < c.brake_on;
        // Rules 3/4 mirror: steering outward while already at that edge.
        let r3 = obs.d_left <= c.edge && steer > c.steer_on && obs.v_ego > c.beta;
        let r4 = obs.d_right <= c.edge && steer < -c.steer_on && obs.v_ego > c.beta;
        r1 || r2 || r3 || r4
    }

    /// Feeds one cycle's *executed* command (decoded at the actuator side,
    /// i.e. after any man-in-the-middle).
    pub fn check(
        &mut self,
        tick: Tick,
        obs: &ContextObservation,
        accel: Accel,
        steer: Angle,
    ) -> MonitorVerdict {
        if self.unsafe_in_context(obs, accel, steer) {
            self.streak += 1;
            let needed = (self.config.confirm.secs() / units::DT.secs()).round() as u32;
            if self.streak >= needed {
                if self.detected_at.is_none() {
                    self.detected_at = Some(tick);
                }
                MonitorVerdict::Alarm
            } else {
                MonitorVerdict::Suspicious
            }
        } else {
            self.streak = 0;
            MonitorVerdict::Safe
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(hwt: Option<f64>, rs: f64, d_left: f64, d_right: f64) -> ContextObservation {
        ContextObservation {
            v_ego: Speed::from_mph(60.0),
            hwt: hwt.map(Seconds::new),
            rs: hwt.map(|_| Speed::from_mps(rs)),
            d_left: Distance::meters(d_left),
            d_right: Distance::meters(d_right),
        }
    }

    #[test]
    fn accelerating_at_a_close_lead_is_unsafe() {
        let m = ContextMonitor::default();
        assert!(m.unsafe_in_context(
            &obs(Some(1.5), 5.0, 1.0, 1.0),
            Accel::from_mps2(2.0),
            Angle::ZERO
        ));
        // Same command with plenty of headway: fine.
        assert!(!m.unsafe_in_context(
            &obs(Some(4.0), 5.0, 1.0, 1.0),
            Accel::from_mps2(2.0),
            Angle::ZERO
        ));
    }

    #[test]
    fn hard_braking_on_a_clear_road_is_unsafe() {
        let m = ContextMonitor::default();
        assert!(m.unsafe_in_context(&obs(None, 0.0, 1.0, 1.0), Accel::from_mps2(-3.5), Angle::ZERO));
        // Hard braking toward a close lead is what brakes are for.
        assert!(!m.unsafe_in_context(
            &obs(Some(1.2), 8.0, 1.0, 1.0),
            Accel::from_mps2(-3.5),
            Angle::ZERO
        ));
    }

    #[test]
    fn steering_over_the_edge_is_unsafe() {
        let m = ContextMonitor::default();
        assert!(m.unsafe_in_context(
            &obs(None, 0.0, 1.0, 0.1),
            Accel::ZERO,
            Angle::from_degrees(-0.25)
        ));
        // Steering *away* from the edge is the correct reaction.
        assert!(!m.unsafe_in_context(
            &obs(None, 0.0, 1.0, 0.1),
            Accel::ZERO,
            Angle::from_degrees(0.25)
        ));
    }

    #[test]
    fn alarm_needs_confirmation() {
        let mut m = ContextMonitor::default();
        let o = obs(Some(1.5), 5.0, 1.0, 1.0);
        let a = Accel::from_mps2(2.0);
        for i in 0..39 {
            assert_ne!(m.check(Tick::new(i), &o, a, Angle::ZERO), MonitorVerdict::Alarm);
        }
        assert_eq!(m.check(Tick::new(39), &o, a, Angle::ZERO), MonitorVerdict::Alarm);
        assert_eq!(m.detected_at(), Some(Tick::new(39)));
    }

    #[test]
    fn transients_reset_the_streak() {
        let mut m = ContextMonitor::default();
        let bad = obs(Some(1.5), 5.0, 1.0, 1.0);
        let good = obs(Some(4.0), 5.0, 1.0, 1.0);
        let a = Accel::from_mps2(2.0);
        for i in 0..30 {
            m.check(Tick::new(i), &bad, a, Angle::ZERO);
        }
        m.check(Tick::new(30), &good, a, Angle::ZERO);
        for i in 31..60 {
            assert_ne!(m.check(Tick::new(i), &bad, a, Angle::ZERO), MonitorVerdict::Alarm);
        }
        assert_eq!(m.detected_at(), None);
    }
}
