//! Defenses against strategic actuator-command attacks — the directions the
//! paper's threats-to-validity section (§V) points to:
//!
//! * [`ControlInvariantDetector`] — control-invariant checking in the style
//!   of Choi et al. (CCS'18): predict the vehicle's response from the
//!   *commands the ADAS issued* and raise an alarm when the measured
//!   response deviates persistently (CUSUM). A man-in-the-middle that
//!   replaces commands after the controller necessarily breaks this
//!   invariant, no matter how well its values respect the safety envelopes.
//! * [`ContextMonitor`] — context-aware command monitoring in the style of
//!   the paper's own reference [31]: the *defensive mirror* of the attack's
//!   Table I. It watches the executed actuator commands and flags any that
//!   are unsafe in the current driving context — precisely the
//!   (context, action) pairs the attack must use to cause hazards.
//! * [`CanIds`] — CAN intrusion detection over the delivered actuator
//!   frames: per-message timing, rolling-counter continuity and checksum
//!   history. The paper's attacker repairs counters and checksums after
//!   rewriting a frame, so this detector targets what that discipline
//!   cannot hide — a bus that drops, duplicates or corrupts frames (the
//!   fault-injection campaigns), complementing the two attack-facing
//!   detectors above.
//!
//! All defenses sit at the last computational stage, after the attack's
//! injection point, which is where the paper concludes robust checks
//! belong. How their verdicts act on the vehicle is the harness's
//! [`DefensePolicy`].
//!
//! # Examples
//!
//! ```
//! use defense::{ContextMonitor, MonitorVerdict};
//! use units::{Accel, Angle, Distance, Seconds, Speed, Tick};
//!
//! let mut monitor = ContextMonitor::default();
//! let obs = defense::ContextObservation {
//!     v_ego: Speed::from_mph(60.0),
//!     hwt: Some(Seconds::new(1.8)),
//!     rs: Some(Speed::from_mph(10.0)),
//!     d_left: Distance::meters(1.0),
//!     d_right: Distance::meters(0.9),
//! };
//! // Accelerating while closing inside the safe headway: unsafe-in-context.
//! let verdict = monitor.check(
//!     Tick::ZERO,
//!     &obs,
//!     Accel::from_mps2(2.0),
//!     Angle::ZERO,
//! );
//! assert_eq!(verdict, MonitorVerdict::Suspicious);
//! ```

#![forbid(unsafe_code)]
#![deny(clippy::float_cmp)]

#![warn(missing_docs)]

mod ids;
mod invariant;
mod monitor;
mod report;

pub use ids::{CanIds, DefensePolicy, IdsConfig, IdsVerdict};
pub use invariant::{ControlInvariantDetector, InvariantConfig};
pub use monitor::{ContextMonitor, ContextObservation, MonitorConfig, MonitorVerdict};
pub use report::DetectionReport;
