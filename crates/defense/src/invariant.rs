//! Control-invariant detection (Choi et al., CCS'18 style).
//!
//! The invariant: the vehicle's measured response must track the response a
//! vehicle model predicts from the commands the *controller issued*. A
//! man-in-the-middle that replaces the actuator commands after the
//! controller breaks the invariant by construction — the car does what the
//! attacker said, not what the ADAS said — regardless of whether the
//! injected values look individually plausible.
//!
//! Residuals are accumulated with a CUSUM statistic so brief sensor noise
//! never alarms but a persistent deviation does.

use serde::{Deserialize, Serialize};
use units::{Accel, Angle, Seconds, Speed, Tick, DT};

/// Detector tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InvariantConfig {
    /// First-order lag of the modelled longitudinal actuator.
    pub accel_tau: Seconds,
    /// Time constant of the low-pass that turns noisy speed samples into a
    /// measured-acceleration estimate.
    pub meas_tau: Seconds,
    /// Acceleration mismatch absorbed without accumulating (m/s²): covers
    /// modelling error plus filtered sensor noise.
    pub long_slack: f64,
    /// CUSUM alarm threshold for the longitudinal statistic (m/s-equivalent:
    /// mismatch × time in excess of the slack).
    pub long_threshold: f64,
    /// Lateral-rate residual deadband (m/s): normal wander lives below it.
    pub lat_deadband: f64,
    /// Lateral drift allowance per second above the deadband.
    pub lat_slack: f64,
    /// CUSUM alarm threshold for the lateral statistic.
    pub lat_threshold: f64,
}

impl Default for InvariantConfig {
    fn default() -> Self {
        Self {
            accel_tau: Seconds::new(0.25),
            meas_tau: Seconds::new(0.8),
            long_slack: 0.6,
            long_threshold: 0.35,
            lat_deadband: 0.8,
            lat_slack: 0.2,
            lat_threshold: 0.6,
        }
    }
}

/// The detector. Feed it, per control cycle, the command the ADAS issued
/// (from `carControl`) and the measurements (speed from GPS, lateral offset
/// from the lane model); it predicts the response and integrates residuals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControlInvariantDetector {
    config: InvariantConfig,
    /// Modelled realised acceleration (first-order lag of the command).
    a_model: f64,
    /// The model passed through the same low-pass as the measurement, so
    /// both sides lag identically and transients cancel.
    a_model_lp: f64,
    /// Low-passed measured acceleration.
    a_meas: f64,
    /// Previous speed sample.
    prev_speed: Option<f64>,
    /// Previous lateral offset, for the measured lateral rate.
    prev_offset: Option<f64>,
    /// Modelled lateral rate response to the commanded steering.
    lat_model: f64,
    cusum_long: f64,
    cusum_lat: f64,
    detected_at: Option<Tick>,
}

impl Default for ControlInvariantDetector {
    fn default() -> Self {
        Self::new(InvariantConfig::default())
    }
}

impl ControlInvariantDetector {
    /// Creates a detector.
    pub fn new(config: InvariantConfig) -> Self {
        Self {
            config,
            a_model: 0.0,
            a_model_lp: 0.0,
            a_meas: 0.0,
            prev_speed: None,
            prev_offset: None,
            lat_model: 0.0,
            cusum_long: 0.0,
            cusum_lat: 0.0,
            detected_at: None,
        }
    }

    /// First tick at which either invariant alarmed, if any.
    pub fn detected_at(&self) -> Option<Tick> {
        self.detected_at
    }

    /// Current CUSUM statistics `(longitudinal, lateral)` for inspection.
    pub fn statistics(&self) -> (f64, f64) {
        (self.cusum_long, self.cusum_lat)
    }

    /// Feeds one cycle. `commanded_*` are what the ADAS issued;
    /// `measured_speed` and `measured_offset` are the sensor readings.
    /// Returns `true` on the cycle the detector first alarms.
    pub fn step(
        &mut self,
        tick: Tick,
        commanded_accel: Accel,
        commanded_steer: Angle,
        measured_speed: Speed,
        measured_offset: f64,
    ) -> bool {
        let dt = DT.secs();

        // --- Longitudinal invariant: measured accel follows the command. ---
        let alpha = dt / (self.config.accel_tau.secs() + dt);
        self.a_model += (commanded_accel.mps2() - self.a_model) * alpha;
        let v_meas = measured_speed.mps();
        let raw_a = match self.prev_speed {
            Some(prev) => (v_meas - prev) / dt,
            None => self.a_model,
        };
        self.prev_speed = Some(v_meas);
        let beta = dt / (self.config.meas_tau.secs() + dt);
        self.a_meas += (raw_a - self.a_meas) * beta;
        // A standing car cannot decelerate: at standstill a braking command
        // legitimately produces zero response.
        let model_effective = if v_meas < 0.3 {
            self.a_model.max(0.0)
        } else {
            self.a_model
        };
        self.a_model_lp += (model_effective - self.a_model_lp) * beta;
        let residual_long = (self.a_meas - self.a_model_lp).abs();
        self.cusum_long =
            (self.cusum_long + (residual_long - self.config.long_slack) * dt).max(0.0);

        // --- Lateral invariant: lateral rate follows the commanded steer. --
        // Model: commanded steer (wheel degrees) maps to an expected lateral
        // rate trend; large opposing motion is the signature of a steering
        // override. A first-order blend keeps it causal and cheap.
        let steer_gain = 2.0; // (m/s of lateral rate) per rad of wheel angle at speed
        let expected_rate = steer_gain * commanded_steer.radians() * v_meas / 26.8;
        self.lat_model += (expected_rate - self.lat_model) * (dt / 0.5);
        let measured_rate = match self.prev_offset {
            Some(prev) => (measured_offset - prev) / dt,
            None => 0.0,
        };
        self.prev_offset = Some(measured_offset);
        let residual_lat = (measured_rate - self.lat_model).abs();
        self.cusum_lat = (self.cusum_lat
            + ((residual_lat - self.config.lat_deadband).max(0.0) - self.config.lat_slack) * dt)
            .max(0.0);

        let alarm = self.cusum_long > self.config.long_threshold
            || self.cusum_lat > self.config.lat_threshold;
        if alarm && self.detected_at.is_none() {
            self.detected_at = Some(tick);
        }
        alarm && self.detected_at == Some(tick)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Simulates `steps` cycles where the executed accel equals `executed`
    /// while the detector is told the command was `commanded`.
    fn drive(
        det: &mut ControlInvariantDetector,
        commanded: f64,
        executed: f64,
        v0: f64,
        steps: u64,
    ) -> f64 {
        let mut v = v0;
        let mut a = 0.0;
        for i in 0..steps {
            let dt = DT.secs();
            a += (executed - a) * (dt / (0.25 + dt));
            v = (v + a * dt).max(0.0);
            det.step(
                Tick::new(i),
                Accel::from_mps2(commanded),
                Angle::ZERO,
                Speed::from_mps(v),
                0.0,
            );
        }
        v
    }

    #[test]
    fn faithful_execution_never_alarms() {
        let mut det = ControlInvariantDetector::default();
        drive(&mut det, 1.5, 1.5, 20.0, 2_000);
        assert_eq!(det.detected_at(), None);
        let mut det = ControlInvariantDetector::default();
        drive(&mut det, -3.0, -3.0, 25.0, 2_000);
        assert_eq!(det.detected_at(), None);
    }

    #[test]
    fn command_override_is_detected_quickly() {
        let mut det = ControlInvariantDetector::default();
        // ADAS commanded mild braking; the attacker executed +2.4.
        drive(&mut det, -0.5, 2.4, 20.0, 300);
        let t = det.detected_at().expect("override detected");
        assert!(
            t.time().secs() < 1.5,
            "detected in {:.2}s, well inside the driver's 2.5 s",
            t.time().secs()
        );
    }

    #[test]
    fn small_mismatch_within_noise_is_tolerated() {
        let mut det = ControlInvariantDetector::default();
        // 0.3 m/s^2 modelling error: below the slack.
        drive(&mut det, 1.0, 1.3, 20.0, 3_000);
        assert_eq!(det.detected_at(), None);
    }

    #[test]
    fn lateral_override_is_detected() {
        let mut det = ControlInvariantDetector::default();
        // ADAS commands centre-keeping (~0 steer) but the car slides out at
        // 1.8 m/s (a hard steering override at speed).
        let mut offset = 0.0;
        for i in 0..400 {
            offset += 1.8 * DT.secs();
            det.step(
                Tick::new(i),
                Accel::ZERO,
                Angle::from_degrees(0.05),
                Speed::from_mps(26.8),
                offset,
            );
        }
        let t = det.detected_at().expect("lateral override detected");
        assert!(t.time().secs() < 2.0, "got {:.2}s", t.time().secs());
    }

    #[test]
    fn normal_wander_does_not_alarm_laterally() {
        let mut det = ControlInvariantDetector::default();
        // Sinusoidal wander ±0.4 m at 0.1 Hz with matching mild steering.
        for i in 0..5_000u64 {
            let t = i as f64 * DT.secs();
            let offset = 0.4 * (0.63 * t).sin();
            let steer = Angle::from_radians(0.004 * (0.63 * t).cos());
            det.step(
                Tick::new(i),
                Accel::ZERO,
                steer,
                Speed::from_mps(22.0),
                offset,
            );
        }
        assert_eq!(det.detected_at(), None);
    }
}
