//! Property-based tests for the defense components.

use defense::{ContextMonitor, ContextObservation, ControlInvariantDetector, MonitorVerdict};
use proptest::prelude::*;
use units::{Accel, Angle, Distance, Seconds, Speed, Tick, DT};

proptest! {
    /// The invariant detector never alarms when the executed command equals
    /// the issued command, whatever the command profile.
    #[test]
    fn faithful_profiles_never_alarm(
        cmds in proptest::collection::vec(-3.5..2.0f64, 100..800),
        v0 in 5.0..35.0f64,
    ) {
        let mut det = ControlInvariantDetector::default();
        let (mut v, mut a) = (v0, 0.0);
        for (i, cmd) in cmds.iter().enumerate() {
            let dt = DT.secs();
            a += (cmd - a) * (dt / (0.25 + dt));
            v = (v + a * dt).max(0.0);
            det.step(
                Tick::new(i as u64),
                Accel::from_mps2(*cmd),
                Angle::ZERO,
                Speed::from_mps(v),
                0.0,
            );
        }
        prop_assert_eq!(det.detected_at(), None);
    }

    /// A sustained large override is always detected, for any override
    /// magnitude ≥ 2.5 m/s² of mismatch.
    #[test]
    fn large_overrides_are_always_detected(
        commanded in -1.0..1.0f64,
        mismatch in 2.5..5.0f64,
        sign in any::<bool>(),
    ) {
        let executed = commanded + if sign { mismatch } else { -mismatch };
        let mut det = ControlInvariantDetector::default();
        let (mut v, mut a) = (20.0, 0.0);
        for i in 0..400u64 {
            let dt = DT.secs();
            a += (executed - a) * (dt / (0.25 + dt));
            v = (v + a * dt).clamp(0.5, 60.0); // keep moving so braking stays observable
            det.step(
                Tick::new(i),
                Accel::from_mps2(commanded),
                Angle::ZERO,
                Speed::from_mps(v),
                0.0,
            );
        }
        prop_assert!(det.detected_at().is_some());
        prop_assert!(det.detected_at().unwrap().time() < Seconds::new(2.5),
            "faster than the human driver");
    }

    /// The monitor's verdict is Safe whenever the context has generous
    /// margins, whatever the (bounded) command.
    #[test]
    fn benign_context_is_always_safe(
        accel in -2.0..0.8f64,
        steer in -0.12..0.12f64,
        hwt in 3.0..10.0f64,
    ) {
        let mut m = ContextMonitor::default();
        let obs = ContextObservation {
            v_ego: Speed::from_mph(60.0),
            hwt: Some(Seconds::new(hwt)),
            rs: Some(Speed::from_mps(1.0)),
            d_left: Distance::meters(0.9),
            d_right: Distance::meters(0.9),
        };
        for i in 0..200u64 {
            let v = m.check(
                Tick::new(i),
                &obs,
                Accel::from_mps2(accel),
                Angle::from_degrees(steer),
            );
            prop_assert_eq!(v, MonitorVerdict::Safe);
        }
        prop_assert_eq!(m.detected_at(), None);
    }
}
