//! Property-based tests: codec round-trips and checksum-forgery invariants.

use canbus::checksum::{apply_honda_checksum, verify_honda_checksum};
use canbus::{decode, decode_unchecked, rewrite_signal, CanError, Encoder, VirtualCarDbc};
use proptest::prelude::*;

proptest! {
    /// Any in-range steering command survives encode -> decode within one LSB.
    #[test]
    fn steering_angle_round_trips(angle in -300.0..300.0f64) {
        let dbc = VirtualCarDbc::new();
        let spec = dbc.steering_control();
        let mut enc = Encoder::new();
        let frame = enc.encode(spec, &[("STEER_ANGLE_CMD", angle)]).unwrap();
        let decoded = decode(spec, &frame).unwrap()["STEER_ANGLE_CMD"];
        prop_assert!((decoded - angle).abs() <= 0.005, "{decoded} vs {angle}");
    }

    /// Every frame the encoder produces carries a valid checksum.
    #[test]
    fn encoder_output_always_verifies(accel in -10.0..10.0f64, n in 1usize..20) {
        let dbc = VirtualCarDbc::new();
        let mut enc = Encoder::new();
        for _ in 0..n {
            let frame = enc.encode(dbc.gas_command(), &[("ACCEL_CMD", accel)]).unwrap();
            prop_assert!(verify_honda_checksum(frame.id(), frame.data()));
        }
    }

    /// Rewriting a signal preserves every other signal and keeps the frame
    /// verifiable — the core man-in-the-middle invariant.
    #[test]
    fn rewrite_is_surgical(original in -3.0..3.0f64, attack in -3.0..3.0f64) {
        let dbc = VirtualCarDbc::new();
        let spec = dbc.brake_command();
        let mut enc = Encoder::new();
        let frame = enc
            .encode(spec, &[("BRAKE_CMD", original), ("BRAKE_REQ", 1.0)])
            .unwrap();
        let attacked = rewrite_signal(spec, &frame, "BRAKE_CMD", attack).unwrap();
        let map = decode(spec, &attacked).unwrap();
        prop_assert!((map["BRAKE_CMD"] - attack).abs() <= 0.001);
        prop_assert_eq!(map["BRAKE_REQ"], 1.0);
        prop_assert_eq!(map["COUNTER"], decode(spec, &frame).unwrap()["COUNTER"]);
    }

    /// A single flipped payload bit is always caught by the checksum unless
    /// the attacker recomputes it.
    #[test]
    fn bit_flips_are_detected(bit in 0usize..40, angle in -1.0..1.0f64) {
        let dbc = VirtualCarDbc::new();
        let spec = dbc.steering_control();
        let mut enc = Encoder::new();
        let mut frame = enc.encode(spec, &[("STEER_ANGLE_CMD", angle)]).unwrap();
        frame.data_mut()[bit / 8] ^= 1 << (bit % 8);
        // Flipping a checksum-nibble bit also invalidates the frame, so every
        // flipped bit position must be rejected.
        let rejected = matches!(decode(spec, &frame), Err(CanError::ChecksumMismatch { .. }));
        prop_assert!(rejected);
        // Recomputing the checksum "repairs" the tampered frame.
        let mut data = [0u8; 8];
        data[..frame.data().len()].copy_from_slice(frame.data());
        apply_honda_checksum(spec.id, &mut data[..spec.dlc as usize]);
        let repaired = canbus::CanFrame::new(spec.id, &data[..spec.dlc as usize]).unwrap();
        prop_assert!(decode(spec, &repaired).is_ok());
    }

    /// decode_unchecked never fails on arbitrary payload bytes.
    #[test]
    fn unchecked_decode_is_total(data in proptest::collection::vec(any::<u8>(), 6)) {
        let dbc = VirtualCarDbc::new();
        let frame = canbus::CanFrame::new(0xE4, &data).unwrap();
        let map = decode_unchecked(dbc.steering_control(), &frame);
        prop_assert!(map.contains_key("STEER_ANGLE_CMD"));
        for v in map.values() {
            prop_assert!(v.is_finite());
        }
    }
}
