//! Honda-style frame integrity: 4-bit nibble checksum and 2-bit rolling
//! counter.
//!
//! The checksum is the one the attack must forge: after corrupting a signal
//! the attacker "updates the checksum ... so the integrity of the corrupted
//! CAN message is maintained" (paper §III-C). The algorithm mirrors
//! opendbc's `honda_checksum`: sum every nibble of the extended address and
//! of the payload (excluding the checksum nibble itself), then take
//! `(8 - sum) & 0xF`.

/// Computes the Honda nibble checksum for a frame.
///
/// `data` is the full payload; the checksum is assumed to live in the low
/// nibble of the last byte, which is excluded from the sum.
///
/// # Examples
///
/// ```
/// let data = [0x12, 0x34, 0x00, 0x00, 0x00, 0x60];
/// let cs = canbus::checksum::honda_checksum(0xE4, &data);
/// assert!(cs <= 0xF);
/// ```
pub fn honda_checksum(id: u16, data: &[u8]) -> u8 {
    let mut sum: u32 = 0;
    // Address nibbles.
    let mut addr = id as u32;
    while addr > 0 {
        sum += addr & 0xF;
        addr >>= 4;
    }
    // Data nibbles, excluding the checksum nibble (low nibble of last byte).
    for (i, b) in data.iter().enumerate() {
        sum += (*b as u32) >> 4;
        if i != data.len() - 1 {
            sum += (*b as u32) & 0xF;
        }
    }
    ((8u32.wrapping_sub(sum)) & 0xF) as u8
}

/// Verifies the checksum carried in the low nibble of the last byte.
pub fn verify_honda_checksum(id: u16, data: &[u8]) -> bool {
    match data.last() {
        Some(last) => (last & 0xF) == honda_checksum(id, data),
        None => false,
    }
}

/// Applies the checksum in place (low nibble of the last byte).
pub fn apply_honda_checksum(id: u16, data: &mut [u8]) {
    let cs = honda_checksum(id, data);
    if let Some(last) = data.last_mut() {
        *last = (*last & 0xF0) | cs;
    }
}

/// A 2-bit rolling counter, incremented per transmission of a message.
/// Receivers use it to detect dropped or replayed frames.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RollingCounter(u8);

impl RollingCounter {
    /// Creates a counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the current value and advances to the next (mod 4).
    pub fn next_value(&mut self) -> u8 {
        let v = self.0;
        self.0 = (self.0 + 1) & 0x3;
        v
    }

    /// Peeks at the value that the next call to [`Self::next_value`] returns.
    pub fn peek(&self) -> u8 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_is_a_nibble() {
        for id in [0x0, 0xE4, 0x1FA, 0x7FF] {
            for fill in [0x00u8, 0x5A, 0xFF] {
                let data = [fill; 8];
                assert!(honda_checksum(id, &data) <= 0xF);
            }
        }
    }

    #[test]
    fn apply_then_verify() {
        let mut data = [0x12, 0x34, 0x00, 0x00, 0x00, 0x00];
        apply_honda_checksum(0xE4, &mut data);
        assert!(verify_honda_checksum(0xE4, &data));
    }

    #[test]
    fn corruption_without_fixup_fails_verification() {
        let mut data = [0x12, 0x34, 0x00, 0x00, 0x00, 0x00];
        apply_honda_checksum(0xE4, &mut data);
        data[1] = 0x35; // naive attacker flips a signal bit
        assert!(
            !verify_honda_checksum(0xE4, &data),
            "receiver must reject a frame whose checksum was not recomputed"
        );
        // The paper's attacker recomputes it, and verification passes again.
        apply_honda_checksum(0xE4, &mut data);
        assert!(verify_honda_checksum(0xE4, &data));
    }

    #[test]
    fn checksum_depends_on_address() {
        let data = [0x12, 0x34, 0x00, 0x00, 0x00, 0x00];
        assert_ne!(honda_checksum(0xE4, &data), honda_checksum(0xE5, &data));
    }

    #[test]
    fn empty_payload_never_verifies() {
        assert!(!verify_honda_checksum(0xE4, &[]));
        let mut empty: [u8; 0] = [];
        apply_honda_checksum(0xE4, &mut empty); // must not panic
    }

    #[test]
    fn rolling_counter_wraps_mod_4() {
        let mut c = RollingCounter::new();
        let seq: Vec<u8> = (0..6).map(|_| c.next_value()).collect();
        assert_eq!(seq, vec![0, 1, 2, 3, 0, 1]);
        assert_eq!(c.peek(), 2);
    }
}
