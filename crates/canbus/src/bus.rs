//! The virtual CAN bus: a per-tick frame queue with a man-in-the-middle
//! interceptor hook and an optional traffic capture.

use bytes::{BufMut, Bytes, BytesMut};
use units::Tick;

use crate::CanFrame;

/// A man-in-the-middle transform applied to every frame in transmission
/// order. This is the paper's injection point: malware sitting between the
/// ADAS process and the actuator interface (e.g. on the OBD-II path after the
/// safety firmware) that can observe and rewrite frames.
pub trait Interceptor: Send {
    /// Observes a frame in flight and returns the frame to deliver instead.
    /// Return the input unchanged to stay passive.
    fn intercept(&mut self, tick: Tick, frame: CanFrame) -> CanFrame;
}

impl<F> Interceptor for F
where
    F: FnMut(Tick, CanFrame) -> CanFrame + Send,
{
    fn intercept(&mut self, tick: Tick, frame: CanFrame) -> CanFrame {
        self(tick, frame)
    }
}

/// Aggregate bus statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BusStats {
    /// Frames submitted by senders.
    pub sent: u64,
    /// Frames whose bits were changed by an interceptor.
    pub tampered: u64,
}

/// A single-segment CAN bus.
///
/// Frames sent within one tick are delivered in arbitration order (lower id
/// first, FIFO among equal ids) when [`CanBus::deliver`] is called.
///
/// # Examples
///
/// ```
/// use canbus::{CanBus, CanFrame};
/// use units::Tick;
///
/// let mut bus = CanBus::new();
/// bus.send(Tick::ZERO, CanFrame::new(0x200, &[0x01])?);
/// bus.send(Tick::ZERO, CanFrame::new(0xE4, &[0x02])?);
/// let delivered = bus.deliver(Tick::ZERO);
/// // Steering (0xE4) wins arbitration over gas (0x200).
/// assert_eq!(delivered[0].id(), 0xE4);
/// # Ok::<(), canbus::CanError>(())
/// ```
#[derive(Default)]
pub struct CanBus {
    pending: Vec<CanFrame>,
    interceptors: Vec<Box<dyn Interceptor>>,
    capture: Option<Capture>,
    stats: BusStats,
}

impl std::fmt::Debug for CanBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CanBus")
            .field("pending", &self.pending.len())
            .field("interceptors", &self.interceptors.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl CanBus {
    /// Creates an empty bus with no interceptors.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a man-in-the-middle interceptor. Interceptors run in
    /// installation order on every subsequent frame.
    pub fn install_interceptor(&mut self, interceptor: Box<dyn Interceptor>) {
        self.interceptors.push(interceptor);
    }

    /// Starts capturing delivered traffic (candump-style).
    pub fn enable_capture(&mut self) {
        if self.capture.is_none() {
            self.capture = Some(Capture::new());
        }
    }

    /// Stops capturing and returns the capture, if one was running.
    pub fn take_capture(&mut self) -> Option<Capture> {
        self.capture.take()
    }

    /// Submits a frame for transmission at the given tick. Interceptors run
    /// immediately, in order.
    pub fn send(&mut self, tick: Tick, frame: CanFrame) {
        self.stats.sent += 1;
        let mut current = frame;
        for mitm in &mut self.interceptors {
            let out = mitm.intercept(tick, current);
            if out != current {
                self.stats.tampered += 1;
            }
            current = out;
        }
        self.pending.push(current);
    }

    /// Delivers all pending frames in arbitration order (lowest id first,
    /// stable among equal ids) and clears the queue.
    pub fn deliver(&mut self, tick: Tick) -> Vec<CanFrame> {
        self.pending.sort_by_key(CanFrame::id);
        let frames = std::mem::take(&mut self.pending);
        if let Some(capture) = self.capture.as_mut() {
            for f in &frames {
                capture.record(tick, f);
            }
        }
        frames
    }

    /// Aggregate statistics since construction.
    pub fn stats(&self) -> BusStats {
        self.stats
    }
}

/// A compact binary capture of bus traffic, one record per delivered frame:
/// `tick (u64) | id (u16) | dlc (u8) | data (dlc bytes)`.
///
/// This is the raw material for the attacker's offline reverse-engineering
/// step: decoding it against candidate DBCs recovers message ids and value
/// ranges.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Capture {
    buf: BytesMut,
    frames: usize,
}

impl Capture {
    /// Creates an empty capture.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one frame observation.
    pub fn record(&mut self, tick: Tick, frame: &CanFrame) {
        self.buf.put_u64(tick.index());
        self.buf.put_u16(frame.id());
        self.buf.put_u8(frame.dlc());
        self.buf.put_slice(frame.data());
        self.frames += 1;
    }

    /// Number of captured frames.
    pub fn len(&self) -> usize {
        self.frames
    }

    /// Whether the capture is empty.
    pub fn is_empty(&self) -> bool {
        self.frames == 0
    }

    /// Freezes the capture into an immutable byte buffer.
    pub fn into_bytes(self) -> Bytes {
        self.buf.freeze()
    }

    /// Parses a frozen capture back into `(tick, frame)` records. Truncated
    /// or malformed records terminate the parse rather than panicking.
    pub fn parse(bytes: &Bytes) -> Vec<(Tick, CanFrame)> {
        let mut out = Vec::new();
        let mut i = 0usize;
        while let Some(tick_bytes) = bytes
            .get(i..i + 8)
            .and_then(|s| <[u8; 8]>::try_from(s).ok())
        {
            let Some(id_bytes) = bytes
                .get(i + 8..i + 10)
                .and_then(|s| <[u8; 2]>::try_from(s).ok())
            else {
                break;
            };
            let Some(&dlc_byte) = bytes.get(i + 10) else {
                break;
            };
            let tick = u64::from_be_bytes(tick_bytes);
            let id = u16::from_be_bytes(id_bytes);
            let dlc = dlc_byte as usize;
            i += 11;
            let Some(payload) = bytes.get(i..i + dlc) else {
                break;
            };
            if let Ok(frame) = CanFrame::new(id, payload) {
                out.push((Tick::new(tick), frame));
            }
            i += dlc;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(id: u16, byte: u8) -> CanFrame {
        CanFrame::new(id, &[byte, 0, 0, 0, 0, 0]).unwrap()
    }

    #[test]
    fn arbitration_orders_by_id() {
        let mut bus = CanBus::new();
        bus.send(Tick::ZERO, frame(0x200, 1));
        bus.send(Tick::ZERO, frame(0xE4, 2));
        bus.send(Tick::ZERO, frame(0x1FA, 3));
        let ids: Vec<u16> = bus.deliver(Tick::ZERO).iter().map(CanFrame::id).collect();
        assert_eq!(ids, vec![0xE4, 0x1FA, 0x200]);
    }

    #[test]
    fn equal_ids_stay_fifo() {
        let mut bus = CanBus::new();
        bus.send(Tick::ZERO, frame(0xE4, 1));
        bus.send(Tick::ZERO, frame(0xE4, 2));
        let frames = bus.deliver(Tick::ZERO);
        assert_eq!(frames[0].data()[0], 1);
        assert_eq!(frames[1].data()[0], 2);
    }

    #[test]
    fn deliver_clears_queue() {
        let mut bus = CanBus::new();
        bus.send(Tick::ZERO, frame(0xE4, 1));
        assert_eq!(bus.deliver(Tick::ZERO).len(), 1);
        assert!(bus.deliver(Tick::ZERO).is_empty());
    }

    #[test]
    fn interceptor_rewrites_frames_and_counts_tampering() {
        let mut bus = CanBus::new();
        bus.install_interceptor(Box::new(|_tick: Tick, mut f: CanFrame| {
            if f.id() == 0xE4 {
                f.data_mut()[0] = 0xFF;
            }
            f
        }));
        bus.send(Tick::ZERO, frame(0xE4, 1));
        bus.send(Tick::ZERO, frame(0x200, 1));
        let frames = bus.deliver(Tick::ZERO);
        assert_eq!(frames[0].data()[0], 0xFF, "targeted frame rewritten");
        assert_eq!(frames[1].data()[0], 1, "other traffic untouched");
        assert_eq!(bus.stats(), BusStats { sent: 2, tampered: 1 });
    }

    #[test]
    fn interceptors_chain_in_install_order() {
        let mut bus = CanBus::new();
        bus.install_interceptor(Box::new(|_t: Tick, mut f: CanFrame| {
            f.data_mut()[0] += 1;
            f
        }));
        bus.install_interceptor(Box::new(|_t: Tick, mut f: CanFrame| {
            f.data_mut()[0] *= 2;
            f
        }));
        bus.send(Tick::ZERO, frame(0x10, 3));
        assert_eq!(bus.deliver(Tick::ZERO)[0].data()[0], 8, "(3+1)*2");
    }

    #[test]
    fn capture_round_trips() {
        let mut bus = CanBus::new();
        bus.enable_capture();
        bus.send(Tick::new(5), frame(0xE4, 0xAB));
        bus.send(Tick::new(5), frame(0x1D0, 0xCD));
        bus.deliver(Tick::new(5));
        let capture = bus.take_capture().unwrap();
        assert_eq!(capture.len(), 2);
        let bytes = capture.into_bytes();
        let records = Capture::parse(&bytes);
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].0, Tick::new(5));
        assert_eq!(records[0].1.id(), 0xE4);
        assert_eq!(records[0].1.data()[0], 0xAB);
    }

    #[test]
    fn parse_tolerates_truncation() {
        let mut c = Capture::new();
        c.record(Tick::ZERO, &frame(0xE4, 1));
        let bytes = c.into_bytes();
        let truncated = bytes.slice(..bytes.len() - 3);
        assert!(Capture::parse(&truncated).is_empty());
    }
}
