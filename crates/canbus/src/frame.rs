//! Raw CAN frames.

use std::fmt;

use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// A classic CAN 2.0A data frame: 11-bit identifier, up to 8 data bytes.
///
/// Lower identifiers win bus arbitration, so safety-critical commands (like
/// steering, `0xE4`) use low ids.
///
/// # Examples
///
/// ```
/// use canbus::CanFrame;
///
/// let frame = CanFrame::new(0xE4, &[0x12, 0x34, 0x00, 0x00, 0x00, 0x6A])?;
/// assert_eq!(frame.id(), 0xE4);
/// assert_eq!(frame.dlc(), 6);
/// assert_eq!(frame.data()[1], 0x34);
/// # Ok::<(), canbus::CanError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CanFrame {
    id: u16,
    dlc: u8,
    data: [u8; 8],
}

impl CanFrame {
    /// Maximum 11-bit identifier.
    pub const MAX_ID: u16 = 0x7FF;

    /// Creates a frame from an identifier and payload.
    ///
    /// # Errors
    ///
    /// Returns [`CanError::InvalidId`] if `id` exceeds 11 bits and
    /// [`CanError::InvalidDlc`] if the payload is longer than 8 bytes.
    pub fn new(id: u16, data: &[u8]) -> Result<Self, crate::CanError> {
        if id > Self::MAX_ID {
            return Err(crate::CanError::InvalidId { id: id as u32 });
        }
        if data.len() > 8 {
            return Err(crate::CanError::InvalidDlc { dlc: data.len() });
        }
        let mut buf = [0u8; 8];
        for (dst, src) in buf.iter_mut().zip(data) {
            *dst = *src;
        }
        Ok(Self {
            id,
            dlc: data.len() as u8,
            data: buf,
        })
    }

    /// The frame identifier.
    #[inline]
    pub const fn id(&self) -> u16 {
        self.id
    }

    /// The data length code (payload length in bytes).
    #[inline]
    pub const fn dlc(&self) -> u8 {
        self.dlc
    }

    /// The payload bytes (exactly `dlc` of them).
    #[inline]
    pub fn data(&self) -> &[u8] {
        self.data.get(..self.dlc as usize).unwrap_or(&[])
    }

    /// Mutable access to the payload bytes.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [u8] {
        self.data.get_mut(..self.dlc as usize).unwrap_or(&mut [])
    }

    /// The payload as a cheap, shareable byte buffer.
    pub fn to_bytes(&self) -> Bytes {
        Bytes::copy_from_slice(self.data())
    }

    /// The payload interpreted as a 64-bit big-endian word, unused trailing
    /// bytes zero-padded. This is the bit pool DBC signals are carved from.
    pub fn as_u64(&self) -> u64 {
        let mut word = 0u64;
        for (i, b) in self.data.iter().enumerate() {
            word |= (*b as u64) << (56 - 8 * i);
        }
        word
    }

    /// Replaces the payload with the given 64-bit big-endian word (keeping
    /// the current `dlc`).
    pub fn set_u64(&mut self, word: u64) {
        let dlc = self.dlc as usize;
        for (i, b) in self.data.iter_mut().enumerate() {
            *b = if i < dlc {
                ((word >> (56 - 8 * i)) & 0xFF) as u8
            } else {
                0
            };
        }
    }
}

impl fmt::Display for CanFrame {
    /// candump-style rendering: `0E4#123400006A`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:03X}#", self.id)?;
        for b in self.data() {
            write!(f, "{b:02X}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_id_and_dlc() {
        assert!(CanFrame::new(0x7FF, &[]).is_ok());
        assert!(matches!(
            CanFrame::new(0x800, &[]),
            Err(crate::CanError::InvalidId { id: 0x800 })
        ));
        assert!(matches!(
            CanFrame::new(0x10, &[0; 9]),
            Err(crate::CanError::InvalidDlc { dlc: 9 })
        ));
    }

    #[test]
    fn data_respects_dlc() {
        let f = CanFrame::new(0x1, &[1, 2, 3]).unwrap();
        assert_eq!(f.data(), &[1, 2, 3]);
        assert_eq!(f.dlc(), 3);
        assert_eq!(f.to_bytes().as_ref(), &[1, 2, 3]);
    }

    #[test]
    fn u64_round_trip() {
        let mut f = CanFrame::new(0xE4, &[0; 6]).unwrap();
        // Set a pattern, read it back.
        f.set_u64(0x1234_5600_0000_0000);
        assert_eq!(f.data(), &[0x12, 0x34, 0x56, 0, 0, 0]);
        assert_eq!(f.as_u64(), 0x1234_5600_0000_0000);
    }

    #[test]
    fn set_u64_zeroes_beyond_dlc() {
        let mut f = CanFrame::new(0xE4, &[0; 4]).unwrap();
        f.set_u64(u64::MAX);
        assert_eq!(f.data(), &[0xFF; 4]);
        assert_eq!(f.as_u64() & 0xFFFF_FFFF, 0, "tail bytes stay zero");
    }

    #[test]
    fn candump_display() {
        let f = CanFrame::new(0xE4, &[0x12, 0x34, 0x00, 0x00, 0x00, 0x6A]).unwrap();
        assert_eq!(format!("{f}"), "0E4#12340000006A");
    }
}
