//! A virtual Controller Area Network with DBC-style signal codecs.
//!
//! OpenPilot controls the car by writing actuator commands onto the CAN bus
//! (steering torque on message `0xE4` for Hondas, gas/brake on companion
//! messages), encoded per the open-source
//! [opendbc](https://github.com/commaai/opendbc) database and protected by a
//! nibble-sum checksum and a 2-bit rolling counter. The paper's attack
//! corrupts exactly these frames: it decodes the target signal, overwrites it
//! with a strategic value, *recomputes the checksum* so the frame still
//! verifies, and forwards it (§III-C, Fig. 4).
//!
//! This crate provides every piece of that path:
//!
//! * [`CanFrame`] — a raw frame (11-bit id + up to 8 data bytes),
//! * [`Signal`]/[`MessageSpec`] — DBC-style signal layout with scaling,
//! * [`checksum`] — the Honda-style nibble checksum and rolling counter,
//! * [`VirtualCarDbc`] — the message database of the simulated vehicle,
//! * [`Encoder`]/[`decode`] — codecs that maintain counters and verify
//!   checksums (receivers drop frames that fail verification),
//! * [`CanBus`] — a frame queue with a man-in-the-middle [`Interceptor`]
//!   hook (the attack's injection point) and a [`Capture`] log.
//!
//! # Examples
//!
//! ```
//! use canbus::{VirtualCarDbc, Encoder, decode};
//!
//! let dbc = VirtualCarDbc::new();
//! let steer = dbc.steering_control();
//! let mut enc = Encoder::new();
//!
//! // Encode a 0.25 degree steering command...
//! let frame = enc.encode(steer, &[("STEER_ANGLE_CMD", 0.25), ("STEER_REQ", 1.0)])?;
//! assert_eq!(frame.id(), 0xE4);
//!
//! // ...and decode it back, verifying the checksum.
//! let signals = decode(steer, &frame)?;
//! assert!((signals["STEER_ANGLE_CMD"] - 0.25).abs() < 1e-9);
//! # Ok::<(), canbus::CanError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(clippy::float_cmp)]

#![warn(missing_docs)]

mod bus;
pub mod checksum;
mod codec;
mod dbc;
mod error;
mod frame;
mod signal;

pub use bus::{BusStats, CanBus, Capture, Interceptor};
pub use codec::{decode, decode_signal, decode_unchecked, rewrite_signal, Encoder};
pub use dbc::{
    VirtualCarDbc, BRAKE_COMMAND_ID, GAS_COMMAND_ID, STEERING_CONTROL_ID, STEER_STATUS_ID,
    WHEEL_SPEEDS_ID,
};
pub use error::CanError;
pub use frame::CanFrame;
pub use signal::{ByteOrder, MessageSpec, Signal};
