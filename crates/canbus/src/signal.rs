//! DBC-style signal layout: where a signal lives inside a frame and how its
//! raw bits map to a physical value (`physical = raw * factor + offset`).

use serde::{Deserialize, Serialize};

use crate::CanError;

/// Bit ordering of a multi-byte signal, matching DBC conventions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ByteOrder {
    /// Intel / little-endian: `start_bit` is the signal's LSB; bits fill
    /// toward higher frame-bit positions.
    LittleEndian,
    /// Motorola / big-endian: `start_bit` is the signal's MSB in DBC "inverted
    /// sawtooth" numbering; bits fill toward lower in-byte positions, wrapping
    /// to the MSB of the next byte. Honda messages (like steering `0xE4`) use
    /// this order.
    BigEndian,
}

/// One signal within a CAN message.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Signal {
    /// Signal name, unique within its message.
    pub name: &'static str,
    /// Start bit in DBC numbering (see [`ByteOrder`]).
    pub start_bit: u16,
    /// Width in bits (1..=64).
    pub length: u8,
    /// Scale factor applied to the raw integer.
    pub factor: f64,
    /// Offset added after scaling.
    pub offset: f64,
    /// Whether the raw value is two's-complement signed.
    pub signed: bool,
    /// Bit ordering.
    pub order: ByteOrder,
}

impl Signal {
    /// Creates an unsigned little-endian signal with unit scaling.
    pub const fn plain(name: &'static str, start_bit: u16, length: u8) -> Self {
        Self {
            name,
            start_bit,
            length,
            factor: 1.0,
            offset: 0.0,
            signed: false,
            order: ByteOrder::LittleEndian,
        }
    }

    /// Maximum raw value representable by this signal.
    fn raw_max(&self) -> i64 {
        if self.signed {
            (1i64 << (self.length - 1)) - 1
        } else if self.length >= 63 {
            i64::MAX
        } else {
            (1i64 << self.length) - 1
        }
    }

    /// Minimum raw value representable by this signal.
    fn raw_min(&self) -> i64 {
        if self.signed {
            -(1i64 << (self.length - 1))
        } else {
            0
        }
    }

    /// Converts a physical value to the raw integer stored in the frame.
    ///
    /// # Errors
    ///
    /// Returns [`CanError::ValueOutOfRange`] if the scaled value does not fit
    /// in the signal's bit width.
    // adas-lint: allow(R1, reason = "DBC physical values are unit-erased by definition; units attach at the schema layer")
    pub fn phys_to_raw(&self, value: f64) -> Result<u64, CanError> {
        let raw = ((value - self.offset) / self.factor).round();
        if !raw.is_finite() || raw < self.raw_min() as f64 || raw > self.raw_max() as f64 {
            return Err(CanError::ValueOutOfRange {
                signal: self.name,
                value,
            });
        }
        let raw = raw as i64;
        let mask = if self.length == 64 {
            u64::MAX
        } else {
            (1u64 << self.length) - 1
        };
        Ok((raw as u64) & mask)
    }

    /// Converts a raw integer back to its physical value.
    // adas-lint: allow(R1, reason = "DBC physical values are unit-erased by definition; units attach at the schema layer")
    pub fn raw_to_phys(&self, raw: u64) -> f64 {
        let value = if self.signed && self.length < 64 {
            let sign_bit = 1u64 << (self.length - 1);
            if raw & sign_bit != 0 {
                (raw as i64) - (1i64 << self.length)
            } else {
                raw as i64
            }
        } else {
            raw as i64
        };
        value as f64 * self.factor + self.offset
    }

    /// Writes the raw value into the frame payload.
    pub fn insert_raw(&self, data: &mut [u8; 8], raw: u64) {
        match self.order {
            ByteOrder::LittleEndian => {
                for k in 0..self.length as u16 {
                    let bit = (raw >> k) & 1;
                    let pos = self.start_bit + k;
                    set_bit_le(data, pos, bit == 1);
                }
            }
            ByteOrder::BigEndian => {
                let mut pos = self.start_bit;
                for k in (0..self.length as u16).rev() {
                    let bit = (raw >> k) & 1;
                    set_bit_le(data, pos, bit == 1);
                    pos = next_be(pos);
                }
            }
        }
    }

    /// Reads the raw value out of the frame payload.
    pub fn extract_raw(&self, data: &[u8; 8]) -> u64 {
        let mut raw = 0u64;
        match self.order {
            ByteOrder::LittleEndian => {
                for k in (0..self.length as u16).rev() {
                    let pos = self.start_bit + k;
                    raw = (raw << 1) | get_bit_le(data, pos) as u64;
                }
            }
            ByteOrder::BigEndian => {
                let mut pos = self.start_bit;
                for _ in 0..self.length {
                    raw = (raw << 1) | get_bit_le(data, pos) as u64;
                    pos = next_be(pos);
                }
            }
        }
        raw
    }
}

/// Frame-bit addressing shared by both orders: bit `pos` lives in byte
/// `pos / 8` at in-byte position `pos % 8` (LSB = 0).
fn set_bit_le(data: &mut [u8; 8], pos: u16, value: bool) {
    let bit = pos % 8;
    if let Some(byte) = data.get_mut((pos / 8) as usize) {
        if value {
            *byte |= 1 << bit;
        } else {
            *byte &= !(1 << bit);
        }
    }
}

fn get_bit_le(data: &[u8; 8], pos: u16) -> u8 {
    let bit = pos % 8;
    data.get((pos / 8) as usize).map_or(0, |byte| (byte >> bit) & 1)
}

/// Advances a Motorola bit cursor: down within a byte, then to the MSB of the
/// following byte.
fn next_be(pos: u16) -> u16 {
    if pos.is_multiple_of(8) {
        pos + 15
    } else {
        pos - 1
    }
}

/// A complete CAN message definition (DBC `BO_` entry).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MessageSpec {
    /// Frame identifier.
    pub id: u16,
    /// Message name.
    pub name: &'static str,
    /// Payload length in bytes.
    pub dlc: u8,
    /// The signals carried by the message.
    pub signals: Vec<Signal>,
    /// Name of the 4-bit Honda-style checksum signal, if protected.
    pub checksum_signal: Option<&'static str>,
    /// Name of the 2-bit rolling-counter signal, if present.
    pub counter_signal: Option<&'static str>,
}

impl MessageSpec {
    /// Looks up a signal by name.
    pub fn signal(&self, name: &str) -> Option<&Signal> {
        self.signals.iter().find(|s| s.name == name)
    }

    /// Looks up a signal by name, as a typed error on failure.
    ///
    /// # Errors
    ///
    /// Returns [`CanError::UnknownSignal`] if no signal has that name.
    pub fn require_signal(&self, name: &'static str) -> Result<&Signal, CanError> {
        self.signal(name)
            .ok_or(CanError::UnknownSignal { name })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn le_signal(start: u16, len: u8, signed: bool) -> Signal {
        Signal {
            name: "S",
            start_bit: start,
            length: len,
            factor: 1.0,
            offset: 0.0,
            signed,
            order: ByteOrder::LittleEndian,
        }
    }

    #[test]
    fn little_endian_round_trip() {
        let s = le_signal(4, 12, false);
        let mut data = [0u8; 8];
        s.insert_raw(&mut data, 0xABC);
        assert_eq!(s.extract_raw(&data), 0xABC);
        // Bits land where expected: 0xABC << 4 over bytes 0..2.
        assert_eq!(data[0], 0xC0);
        assert_eq!(data[1], 0xAB);
    }

    #[test]
    fn big_endian_round_trip() {
        let s = Signal {
            order: ByteOrder::BigEndian,
            start_bit: 7, // MSB of byte 0
            length: 16,
            ..le_signal(0, 16, false)
        };
        let mut data = [0u8; 8];
        s.insert_raw(&mut data, 0x1234);
        assert_eq!(data[0], 0x12);
        assert_eq!(data[1], 0x34);
        assert_eq!(s.extract_raw(&data), 0x1234);
    }

    #[test]
    fn big_endian_unaligned() {
        // 10-bit signal starting mid-byte, like real Honda layouts.
        let s = Signal {
            order: ByteOrder::BigEndian,
            start_bit: 5,
            length: 10,
            ..le_signal(0, 10, false)
        };
        let mut data = [0u8; 8];
        s.insert_raw(&mut data, 0x3FF);
        assert_eq!(s.extract_raw(&data), 0x3FF);
        // Exactly 10 bits set in the frame.
        let ones: u32 = data.iter().map(|b| b.count_ones()).sum();
        assert_eq!(ones, 10);
    }

    #[test]
    fn signed_values_round_trip() {
        let s = Signal {
            signed: true,
            factor: 0.01,
            ..le_signal(0, 16, true)
        };
        for phys in [-163.84 + 0.01, -1.0, -0.25, 0.0, 0.25, 163.83] {
            let raw = s.phys_to_raw(phys).unwrap();
            assert!(
                (s.raw_to_phys(raw) - phys).abs() < 0.005,
                "{phys} round-trips"
            );
        }
    }

    #[test]
    fn out_of_range_is_rejected() {
        let s = le_signal(0, 8, false);
        assert!(s.phys_to_raw(255.0).is_ok());
        assert!(matches!(
            s.phys_to_raw(256.0),
            Err(CanError::ValueOutOfRange { .. })
        ));
        assert!(matches!(
            s.phys_to_raw(-1.0),
            Err(CanError::ValueOutOfRange { .. })
        ));
    }

    #[test]
    fn signed_range_limits() {
        let s = le_signal(0, 8, true);
        assert!(s.phys_to_raw(127.0).is_ok());
        assert!(s.phys_to_raw(-128.0).is_ok());
        assert!(s.phys_to_raw(128.0).is_err());
        assert!(s.phys_to_raw(-129.0).is_err());
    }

    #[test]
    fn insert_clears_previous_bits() {
        let s = le_signal(0, 8, false);
        let mut data = [0u8; 8];
        s.insert_raw(&mut data, 0xFF);
        s.insert_raw(&mut data, 0x00);
        assert_eq!(s.extract_raw(&data), 0);
    }

    #[test]
    fn overlapping_signals_do_not_clobber() {
        let a = le_signal(0, 4, false);
        let b = Signal {
            name: "B",
            ..le_signal(4, 4, false)
        };
        let mut data = [0u8; 8];
        a.insert_raw(&mut data, 0x5);
        b.insert_raw(&mut data, 0xA);
        assert_eq!(a.extract_raw(&data), 0x5);
        assert_eq!(b.extract_raw(&data), 0xA);
    }

    #[test]
    fn message_spec_lookup() {
        let spec = MessageSpec {
            id: 0xE4,
            name: "TEST",
            dlc: 8,
            signals: vec![le_signal(0, 8, false)],
            checksum_signal: None,
            counter_signal: None,
        };
        assert!(spec.signal("S").is_some());
        assert!(spec.signal("T").is_none());
        assert!(matches!(
            spec.require_signal("T"),
            Err(CanError::UnknownSignal { .. })
        ));
    }
}
