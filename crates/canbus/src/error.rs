//! Error type for CAN operations.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing, encoding or decoding CAN frames.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CanError {
    /// The identifier does not fit in 11 bits.
    InvalidId {
        /// The offending identifier.
        id: u32,
    },
    /// The payload length exceeds 8 bytes.
    InvalidDlc {
        /// The offending length.
        dlc: usize,
    },
    /// A signal name was not found in the message spec.
    UnknownSignal {
        /// The requested signal name.
        name: &'static str,
    },
    /// The frame id does not match the message spec used to decode it.
    IdMismatch {
        /// Id the spec expects.
        expected: u16,
        /// Id the frame carries.
        actual: u16,
    },
    /// Checksum verification failed; a real ECU drops such frames.
    ChecksumMismatch {
        /// Checksum carried by the frame.
        found: u8,
        /// Checksum recomputed from the frame contents.
        computed: u8,
    },
    /// A physical value does not fit in its signal's raw range.
    ValueOutOfRange {
        /// The signal being encoded.
        signal: &'static str,
        /// The physical value requested.
        value: f64,
    },
}

impl fmt::Display for CanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CanError::InvalidId { id } => write!(f, "identifier {id:#x} exceeds 11 bits"),
            CanError::InvalidDlc { dlc } => write!(f, "payload of {dlc} bytes exceeds 8"),
            CanError::UnknownSignal { name } => write!(f, "unknown signal `{name}`"),
            CanError::IdMismatch { expected, actual } => {
                write!(f, "frame id {actual:#x} does not match spec id {expected:#x}")
            }
            CanError::ChecksumMismatch { found, computed } => {
                write!(f, "checksum {found:#x} does not match computed {computed:#x}")
            }
            CanError::ValueOutOfRange { signal, value } => {
                write!(f, "value {value} out of range for signal `{signal}`")
            }
        }
    }
}

impl Error for CanError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = CanError::ChecksumMismatch {
            found: 0xA,
            computed: 0x3,
        };
        let msg = format!("{e}");
        assert!(msg.contains("0xa") && msg.contains("0x3"));
        assert!(msg.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn error_trait_object_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CanError>();
    }
}
