//! The message database (DBC) of the simulated vehicle.
//!
//! Layouts follow the Honda family that OpenPilot's opendbc describes and the
//! paper attacks: big-endian signals, a 2-bit rolling counter in bits 5–4 of
//! the last byte and the 4-bit nibble checksum in bits 3–0.

use crate::{ByteOrder, MessageSpec, Signal};

/// Identifier of the steering command message (`0xE4`, as in the paper's
/// Fig. 4).
pub const STEERING_CONTROL_ID: u16 = 0xE4;
/// Identifier of the gas (acceleration) command message.
pub const GAS_COMMAND_ID: u16 = 0x200;
/// Identifier of the brake command message.
pub const BRAKE_COMMAND_ID: u16 = 0x1FA;
/// Identifier of the wheel-speed feedback message.
pub const WHEEL_SPEEDS_ID: u16 = 0x1D0;
/// Identifier of the steering-angle feedback message.
pub const STEER_STATUS_ID: u16 = 0x18F;

fn be(name: &'static str, start_bit: u16, length: u8, factor: f64, signed: bool) -> Signal {
    Signal {
        name,
        start_bit,
        length,
        factor,
        offset: 0.0,
        signed,
        order: ByteOrder::BigEndian,
    }
}

/// Counter/checksum pair at the tail of a message of the given dlc.
fn tail(dlc: u8) -> (Signal, Signal) {
    let last_byte_msb = (dlc as u16 - 1) * 8;
    (
        be("COUNTER", last_byte_msb + 5, 2, 1.0, false),
        be("CHECKSUM", last_byte_msb + 3, 4, 1.0, false),
    )
}

fn command_message(
    id: u16,
    name: &'static str,
    value_signal: &'static str,
    factor: f64,
    req_signal: &'static str,
) -> MessageSpec {
    let dlc = 6;
    let (counter, checksum) = tail(dlc);
    MessageSpec {
        id,
        name,
        dlc,
        signals: vec![
            be(value_signal, 7, 16, factor, true),
            be(req_signal, 23, 1, 1.0, false),
            counter,
            checksum,
        ],
        checksum_signal: Some("CHECKSUM"),
        counter_signal: Some("COUNTER"),
    }
}

/// The full message database of the virtual car.
///
/// Each well-known message is a named field rather than a slot in a looked-up
/// table, so the accessors below are infallible by construction — no
/// `expect("always present")` on the safety path.
#[derive(Debug, Clone, PartialEq)]
pub struct VirtualCarDbc {
    steering_control: MessageSpec,
    gas_command: MessageSpec,
    brake_command: MessageSpec,
    wheel_speeds: MessageSpec,
    steer_status: MessageSpec,
}

impl Default for VirtualCarDbc {
    fn default() -> Self {
        Self::new()
    }
}

impl VirtualCarDbc {
    /// Builds the database.
    pub fn new() -> Self {
        let (ws_counter, ws_checksum) = tail(8);
        Self {
            // Actuator commands (ADAS -> car), the attack's targets.
            steering_control: command_message(
                STEERING_CONTROL_ID,
                "STEERING_CONTROL",
                "STEER_ANGLE_CMD",
                0.01, // degrees per bit
                "STEER_REQ",
            ),
            gas_command: command_message(
                GAS_COMMAND_ID,
                "GAS_COMMAND",
                "ACCEL_CMD",
                0.001, // m/s^2 per bit
                "GAS_REQ",
            ),
            brake_command: command_message(
                BRAKE_COMMAND_ID,
                "BRAKE_COMMAND",
                "BRAKE_CMD",
                0.001, // m/s^2 per bit (negative = decelerate)
                "BRAKE_REQ",
            ),
            // Feedback (car -> ADAS).
            wheel_speeds: MessageSpec {
                id: WHEEL_SPEEDS_ID,
                name: "WHEEL_SPEEDS",
                dlc: 8,
                signals: vec![
                    be("WHEEL_SPEED_FL", 7, 16, 0.01, false),
                    be("WHEEL_SPEED_FR", 23, 16, 0.01, false),
                    ws_counter,
                    ws_checksum,
                ],
                checksum_signal: Some("CHECKSUM"),
                counter_signal: Some("COUNTER"),
            },
            steer_status: MessageSpec {
                id: STEER_STATUS_ID,
                name: "STEER_STATUS",
                dlc: 6,
                signals: {
                    let (c, k) = tail(6);
                    vec![be("STEER_ANGLE", 7, 16, 0.01, true), c, k]
                },
                checksum_signal: Some("CHECKSUM"),
                counter_signal: Some("COUNTER"),
            },
        }
    }

    /// All message specs, in id-independent declaration order.
    pub fn messages(&self) -> [&MessageSpec; 5] {
        [
            &self.steering_control,
            &self.gas_command,
            &self.brake_command,
            &self.wheel_speeds,
            &self.steer_status,
        ]
    }

    /// Looks up a message by frame identifier.
    pub fn by_id(&self, id: u16) -> Option<&MessageSpec> {
        self.messages().into_iter().find(|m| m.id == id)
    }

    /// Looks up a message by name.
    pub fn by_name(&self, name: &str) -> Option<&MessageSpec> {
        self.messages().into_iter().find(|m| m.name == name)
    }

    /// The steering command message (`0xE4`).
    pub fn steering_control(&self) -> &MessageSpec {
        &self.steering_control
    }

    /// The gas command message.
    pub fn gas_command(&self) -> &MessageSpec {
        &self.gas_command
    }

    /// The brake command message.
    pub fn brake_command(&self) -> &MessageSpec {
        &self.brake_command
    }

    /// The wheel-speed feedback message.
    pub fn wheel_speeds(&self) -> &MessageSpec {
        &self.wheel_speeds
    }

    /// The steering-angle feedback message.
    pub fn steer_status(&self) -> &MessageSpec {
        &self.steer_status
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique() {
        let dbc = VirtualCarDbc::new();
        let ids: Vec<u16> = dbc.messages().iter().map(|m| m.id).collect();
        for (i, a) in ids.iter().enumerate() {
            for b in &ids[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn steering_message_matches_paper() {
        let dbc = VirtualCarDbc::new();
        let steer = dbc.steering_control();
        assert_eq!(steer.id, 0xE4, "paper Fig. 4 uses 0xE4 for steering");
        assert!(steer.signal("STEER_ANGLE_CMD").is_some());
        assert_eq!(steer.checksum_signal, Some("CHECKSUM"));
    }

    #[test]
    fn checksum_signal_occupies_low_nibble_of_last_byte() {
        // The Honda checksum algorithm assumes this placement; verify it for
        // every protected message.
        let dbc = VirtualCarDbc::new();
        for m in dbc.messages() {
            if let Some(name) = m.checksum_signal {
                let s = m.signal(name).expect("checksum signal exists");
                assert_eq!(s.length, 4, "{}: checksum is a nibble", m.name);
                assert_eq!(
                    s.start_bit,
                    (m.dlc as u16 - 1) * 8 + 3,
                    "{}: checksum MSB at bit 3 of last byte",
                    m.name
                );
            }
        }
    }

    #[test]
    fn lookup_by_id_and_name_agree() {
        let dbc = VirtualCarDbc::new();
        for m in dbc.messages() {
            assert_eq!(dbc.by_id(m.id), Some(m));
            assert_eq!(dbc.by_name(m.name), Some(m));
        }
        assert!(dbc.by_id(0x123).is_none());
        assert!(dbc.by_name("NOPE").is_none());
    }

    #[test]
    fn command_messages_have_counters() {
        let dbc = VirtualCarDbc::new();
        for accessor in [
            VirtualCarDbc::steering_control,
            VirtualCarDbc::gas_command,
            VirtualCarDbc::brake_command,
        ] {
            let m = accessor(&dbc);
            assert_eq!(m.counter_signal, Some("COUNTER"), "{}", m.name);
        }
    }
}
