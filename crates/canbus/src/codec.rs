//! Frame encoding and decoding against [`MessageSpec`]s.

use std::collections::BTreeMap;

use crate::checksum::{apply_honda_checksum, verify_honda_checksum, RollingCounter};
use crate::{CanError, CanFrame, MessageSpec};

/// Encodes frames, maintaining one rolling counter per message id, the way a
/// transmitting ECU does.
///
/// # Examples
///
/// ```
/// use canbus::{Encoder, VirtualCarDbc, decode};
///
/// let dbc = VirtualCarDbc::new();
/// let mut enc = Encoder::new();
/// let f0 = enc.encode(dbc.gas_command(), &[("ACCEL_CMD", 1.5)])?;
/// let f1 = enc.encode(dbc.gas_command(), &[("ACCEL_CMD", 1.5)])?;
/// // Identical payloads still differ: the rolling counter advanced.
/// assert_ne!(f0, f1);
/// assert!((decode(dbc.gas_command(), &f1)?["ACCEL_CMD"] - 1.5).abs() < 1e-9);
/// # Ok::<(), canbus::CanError>(())
/// ```
#[derive(Debug, Default)]
pub struct Encoder {
    // An ECU transmits a handful of message ids, so a linear scan beats a
    // hash map on the 100 Hz control path.
    counters: Vec<(u16, RollingCounter)>,
}

impl Encoder {
    /// Creates an encoder with all counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Draws the next rolling-counter value of one message id, creating the
    /// counter at zero on first use.
    fn next_counter(&mut self, id: u16) -> u8 {
        if let Some(entry) = self.counters.iter_mut().find(|(i, _)| *i == id) {
            return entry.1.next_value();
        }
        // adas-lint: allow(R13, reason = "per-message-id counter table fills once on first encode of each id; steady-state encode is lookup-only — witnessed by the counting-allocator gate in platform/tests/alloc.rs")
        self.counters.push((id, RollingCounter::default()));
        match self.counters.last_mut() {
            Some(entry) => entry.1.next_value(),
            None => 0, // unreachable: an element was just pushed
        }
    }

    /// Consumes one rolling-counter draw for `spec`, exactly as
    /// [`encode`](Self::encode) does after validating a cycle's values; a
    /// no-op for messages without a counter signal. For callers that have
    /// pre-validated their signals and want counter parity with a real
    /// encode without paying for name lookups.
    pub fn advance_counter(&mut self, spec: &MessageSpec) {
        if spec.counter_signal.is_some() {
            self.next_counter(spec.id);
        }
    }

    /// Encodes the given `(signal, physical value)` pairs into a frame,
    /// filling in the rolling counter and checksum automatically.
    ///
    /// # Errors
    ///
    /// Returns [`CanError::UnknownSignal`] for names not in the spec and
    /// [`CanError::ValueOutOfRange`] for values that do not fit.
    // adas-lint: allow(R1, reason = "DBC physical values are unit-erased by definition; units attach at the schema layer")
    pub fn encode(
        &mut self,
        spec: &MessageSpec,
        values: &[(&'static str, f64)],
    ) -> Result<CanFrame, CanError> {
        let mut data = [0u8; 8];
        for (name, value) in values {
            let signal = spec.require_signal(name)?;
            let raw = signal.phys_to_raw(*value)?;
            signal.insert_raw(&mut data, raw);
        }
        if let Some(counter_name) = spec.counter_signal {
            let signal = spec.require_signal(counter_name)?;
            let value = self.next_counter(spec.id);
            signal.insert_raw(&mut data, value as u64);
        }
        if spec.checksum_signal.is_some() {
            apply_honda_checksum(spec.id, payload_mut(&mut data, spec.dlc));
        }
        CanFrame::new(spec.id, payload(&data, spec.dlc))
    }

    /// Runs one frame's encode→decode round trip without materializing the
    /// frame: validates and quantizes every `(signal, value)` pair in
    /// [`encode`](Self::encode) order, consumes the same rolling-counter
    /// draw, and returns the physical value a receiving ECU would decode
    /// for `values[0]` (the command signal).
    ///
    /// This keeps the encoder's counter state bit-identical to a real
    /// `encode` call, so a hot path may freely alternate between the two
    /// per message without the transmit counters drifting.
    ///
    /// # Errors
    ///
    /// Exactly [`encode`](Self::encode)'s errors, raised at the same point
    /// in the sequence: [`CanError::UnknownSignal`] for names not in the
    /// spec and [`CanError::ValueOutOfRange`] for values that do not fit
    /// (the counter is then left unconsumed, as `encode` leaves it).
    // adas-lint: allow(R1, reason = "DBC physical values are unit-erased by definition; units attach at the schema layer")
    pub fn quantize(
        &mut self,
        spec: &MessageSpec,
        values: &[(&'static str, f64)],
    ) -> Result<f64, CanError> {
        let mut first = 0.0;
        for (i, (name, value)) in values.iter().enumerate() {
            let signal = spec.require_signal(name)?;
            let raw = signal.phys_to_raw(*value)?;
            if i == 0 {
                first = signal.raw_to_phys(raw);
            }
        }
        if let Some(counter_name) = spec.counter_signal {
            spec.require_signal(counter_name)?;
            self.next_counter(spec.id);
        }
        Ok(first)
    }
}

/// The live payload region of a scratch buffer, clamped to the 8-byte CAN
/// maximum so a malformed spec cannot cause an out-of-bounds slice.
fn payload(data: &[u8; 8], dlc: u8) -> &[u8] {
    data.get(..(dlc as usize).min(8)).unwrap_or(&[])
}

/// Mutable variant of [`payload`].
fn payload_mut(data: &mut [u8; 8], dlc: u8) -> &mut [u8] {
    data.get_mut(..(dlc as usize).min(8)).unwrap_or(&mut [])
}

fn frame_data(frame: &CanFrame) -> [u8; 8] {
    let mut data = [0u8; 8];
    for (dst, src) in data.iter_mut().zip(frame.data()) {
        *dst = *src;
    }
    data
}

/// Decodes all signals of a frame, verifying its checksum first.
///
/// This is what a receiving ECU does; frames that fail verification are
/// dropped on a real bus, which is why the paper's attacker must recompute
/// the checksum after corrupting a signal.
///
/// # Errors
///
/// Returns [`CanError::IdMismatch`] if the frame id differs from the spec and
/// [`CanError::ChecksumMismatch`] if verification fails.
// adas-lint: allow(R1, reason = "DBC physical values are unit-erased by definition; units attach at the schema layer")
pub fn decode(
    spec: &MessageSpec,
    frame: &CanFrame,
) -> Result<BTreeMap<&'static str, f64>, CanError> {
    if frame.id() != spec.id {
        return Err(CanError::IdMismatch {
            expected: spec.id,
            actual: frame.id(),
        });
    }
    if spec.checksum_signal.is_some() && !verify_honda_checksum(spec.id, frame.data()) {
        let found = frame.data().last().map_or(0, |b| b & 0xF);
        let computed = crate::checksum::honda_checksum(spec.id, frame.data());
        return Err(CanError::ChecksumMismatch { found, computed });
    }
    Ok(decode_unchecked(spec, frame))
}

/// Decodes all signals without verifying the checksum. Useful for an
/// eavesdropper who only reads, or for diagnosing corrupted traffic.
// adas-lint: allow(R1, reason = "DBC physical values are unit-erased by definition; units attach at the schema layer")
pub fn decode_unchecked(spec: &MessageSpec, frame: &CanFrame) -> BTreeMap<&'static str, f64> {
    let data = frame_data(frame);
    spec.signals
        .iter()
        .map(|s| (s.name, s.raw_to_phys(s.extract_raw(&data))))
        .collect()
}

/// Decodes one named signal of a frame, verifying its checksum first.
///
/// Allocation-free alternative to [`decode`] for receivers that want a
/// single signal on a hot path (the actuator-side decoder runs this every
/// 10 ms control cycle).
///
/// # Errors
///
/// Returns [`CanError::IdMismatch`], [`CanError::ChecksumMismatch`] or
/// [`CanError::UnknownSignal`] under the corresponding conditions.
// adas-lint: allow(R1, reason = "DBC physical values are unit-erased by definition; units attach at the schema layer")
pub fn decode_signal(spec: &MessageSpec, frame: &CanFrame, name: &'static str) -> Result<f64, CanError> {
    if frame.id() != spec.id {
        return Err(CanError::IdMismatch {
            expected: spec.id,
            actual: frame.id(),
        });
    }
    if spec.checksum_signal.is_some() && !verify_honda_checksum(spec.id, frame.data()) {
        let found = frame.data().last().map_or(0, |b| b & 0xF);
        let computed = crate::checksum::honda_checksum(spec.id, frame.data());
        return Err(CanError::ChecksumMismatch { found, computed });
    }
    let signal = spec.require_signal(name)?;
    let data = frame_data(frame);
    Ok(signal.raw_to_phys(signal.extract_raw(&data)))
}

/// Rewrites one signal of an existing frame in place, preserving every other
/// bit (including the rolling counter) and recomputing the checksum — the
/// man-in-the-middle operation of the paper's Fig. 4.
///
/// # Errors
///
/// Returns [`CanError::IdMismatch`], [`CanError::UnknownSignal`] or
/// [`CanError::ValueOutOfRange`] under the corresponding conditions.
// adas-lint: allow(R1, reason = "DBC physical values are unit-erased by definition; units attach at the schema layer")
pub fn rewrite_signal(
    spec: &MessageSpec,
    frame: &CanFrame,
    name: &'static str,
    value: f64,
) -> Result<CanFrame, CanError> {
    if frame.id() != spec.id {
        return Err(CanError::IdMismatch {
            expected: spec.id,
            actual: frame.id(),
        });
    }
    let signal = spec.require_signal(name)?;
    let raw = signal.phys_to_raw(value)?;
    let mut data = frame_data(frame);
    signal.insert_raw(&mut data, raw);
    if spec.checksum_signal.is_some() {
        apply_honda_checksum(spec.id, payload_mut(&mut data, spec.dlc));
    }
    CanFrame::new(spec.id, payload(&data, spec.dlc))
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exactly-representable values
mod tests {
    use super::*;
    use crate::VirtualCarDbc;

    #[test]
    fn encode_decode_round_trip() {
        let dbc = VirtualCarDbc::new();
        let mut enc = Encoder::new();
        let frame = enc
            .encode(
                dbc.steering_control(),
                &[("STEER_ANGLE_CMD", -0.25), ("STEER_REQ", 1.0)],
            )
            .unwrap();
        let map = decode(dbc.steering_control(), &frame).unwrap();
        assert!((map["STEER_ANGLE_CMD"] + 0.25).abs() < 1e-9);
        assert_eq!(map["STEER_REQ"], 1.0);
    }

    #[test]
    fn counter_advances_per_message_id() {
        let dbc = VirtualCarDbc::new();
        let mut enc = Encoder::new();
        let f0 = enc.encode(dbc.gas_command(), &[("ACCEL_CMD", 0.0)]).unwrap();
        let f1 = enc.encode(dbc.gas_command(), &[("ACCEL_CMD", 0.0)]).unwrap();
        let c0 = decode(dbc.gas_command(), &f0).unwrap()["COUNTER"];
        let c1 = decode(dbc.gas_command(), &f1).unwrap()["COUNTER"];
        assert_eq!(c0, 0.0);
        assert_eq!(c1, 1.0);
        // A different message has its own counter.
        let b = enc.encode(dbc.brake_command(), &[("BRAKE_CMD", 0.0)]).unwrap();
        assert_eq!(decode(dbc.brake_command(), &b).unwrap()["COUNTER"], 0.0);
    }

    #[test]
    fn decode_rejects_wrong_id() {
        let dbc = VirtualCarDbc::new();
        let mut enc = Encoder::new();
        let frame = enc.encode(dbc.gas_command(), &[("ACCEL_CMD", 0.0)]).unwrap();
        assert!(matches!(
            decode(dbc.steering_control(), &frame),
            Err(CanError::IdMismatch { .. })
        ));
    }

    #[test]
    fn decode_rejects_bit_flips() {
        let dbc = VirtualCarDbc::new();
        let mut enc = Encoder::new();
        let mut frame = enc
            .encode(dbc.steering_control(), &[("STEER_ANGLE_CMD", 0.1)])
            .unwrap();
        frame.data_mut()[0] ^= 0x01;
        assert!(matches!(
            decode(dbc.steering_control(), &frame),
            Err(CanError::ChecksumMismatch { .. })
        ));
        // The eavesdropper's unchecked decode still works.
        let _ = decode_unchecked(dbc.steering_control(), &frame);
    }

    #[test]
    fn rewrite_preserves_other_signals_and_fixes_checksum() {
        let dbc = VirtualCarDbc::new();
        let spec = dbc.steering_control();
        let mut enc = Encoder::new();
        // Advance the counter a bit first.
        enc.encode(spec, &[("STEER_ANGLE_CMD", 0.0)]).unwrap();
        let original = enc
            .encode(spec, &[("STEER_ANGLE_CMD", 0.05), ("STEER_REQ", 1.0)])
            .unwrap();

        let attacked = rewrite_signal(spec, &original, "STEER_ANGLE_CMD", 0.5).unwrap();
        let map = decode(spec, &attacked).expect("checksum must verify after rewrite");
        assert!((map["STEER_ANGLE_CMD"] - 0.5).abs() < 1e-9);
        assert_eq!(map["STEER_REQ"], 1.0, "untouched signal preserved");
        assert_eq!(
            map["COUNTER"],
            decode(spec, &original).unwrap()["COUNTER"],
            "rolling counter preserved so the receiver sees no gap"
        );
    }

    #[test]
    fn rewrite_rejects_out_of_range_value() {
        let dbc = VirtualCarDbc::new();
        let spec = dbc.steering_control();
        let mut enc = Encoder::new();
        let frame = enc.encode(spec, &[("STEER_ANGLE_CMD", 0.0)]).unwrap();
        // 16-bit signed at 0.01 deg/bit tops out at 327.67 deg.
        assert!(matches!(
            rewrite_signal(spec, &frame, "STEER_ANGLE_CMD", 400.0),
            Err(CanError::ValueOutOfRange { .. })
        ));
    }

    #[test]
    fn quantize_matches_encode_decode_round_trip() {
        let dbc = VirtualCarDbc::new();
        let mut enc = Encoder::new();
        let mut quant = Encoder::new();
        for i in 0..40 {
            let v = -3.0 + 0.173 * i as f64;
            let frame = enc
                .encode(dbc.gas_command(), &[("ACCEL_CMD", v), ("GAS_REQ", 1.0)])
                .unwrap();
            let decoded = decode_signal(dbc.gas_command(), &frame, "ACCEL_CMD").unwrap();
            let quantized = quant
                .quantize(dbc.gas_command(), &[("ACCEL_CMD", v), ("GAS_REQ", 1.0)])
                .unwrap();
            assert_eq!(decoded, quantized, "round trip of {v}");
        }
        // Counter state stayed in lockstep: the next real frames agree.
        let a = enc.encode(dbc.gas_command(), &[("ACCEL_CMD", 0.5)]).unwrap();
        let b = quant.encode(dbc.gas_command(), &[("ACCEL_CMD", 0.5)]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn quantize_error_leaves_counter_unconsumed_like_encode() {
        let dbc = VirtualCarDbc::new();
        let spec = dbc.steering_control();
        let mut enc = Encoder::new();
        let mut quant = Encoder::new();
        // 400 deg overflows the 16-bit signal; both reject before the
        // counter draw.
        assert!(enc.encode(spec, &[("STEER_ANGLE_CMD", 400.0)]).is_err());
        assert!(quant.quantize(spec, &[("STEER_ANGLE_CMD", 400.0)]).is_err());
        let a = enc.encode(spec, &[("STEER_ANGLE_CMD", 0.1)]).unwrap();
        let b = quant.encode(spec, &[("STEER_ANGLE_CMD", 0.1)]).unwrap();
        assert_eq!(a, b, "counters agree after a rejected command");
    }

    #[test]
    fn unknown_signal_errors() {
        let dbc = VirtualCarDbc::new();
        let mut enc = Encoder::new();
        assert!(matches!(
            enc.encode(dbc.gas_command(), &[("NOPE", 1.0)]),
            Err(CanError::UnknownSignal { .. })
        ));
    }
}
