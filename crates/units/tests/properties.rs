//! Property-based tests for the quantity newtypes.

use proptest::prelude::*;
use units::{Accel, Angle, Distance, Seconds, Speed, Tick};

fn finite() -> impl Strategy<Value = f64> {
    -1e6..1e6f64
}

proptest! {
    #[test]
    fn speed_mph_round_trip(v in finite()) {
        let s = Speed::from_mph(v);
        prop_assert!((s.mph() - v).abs() < 1e-6 * v.abs().max(1.0));
    }

    #[test]
    fn angle_degree_round_trip(d in finite()) {
        let a = Angle::from_degrees(d);
        prop_assert!((a.degrees() - d).abs() < 1e-9 * d.abs().max(1.0));
    }

    #[test]
    fn addition_commutes(a in finite(), b in finite()) {
        let x = Distance::meters(a);
        let y = Distance::meters(b);
        prop_assert_eq!(x + y, y + x);
    }

    #[test]
    fn clamp_is_within_bounds(v in finite(), lo in -10.0..0.0f64, hi in 0.0..10.0f64) {
        let c = Accel::from_mps2(v).clamp(Accel::from_mps2(lo), Accel::from_mps2(hi));
        prop_assert!(c.mps2() >= lo && c.mps2() <= hi);
    }

    #[test]
    fn kinematics_dimensional_consistency(v in 0.1..100.0f64, t in 0.001..10.0f64) {
        let speed = Speed::from_mps(v);
        let dt = Seconds::new(t);
        let d = speed * dt;
        // d / v recovers t.
        let t2 = d / speed;
        prop_assert!((t2.secs() - t).abs() < 1e-9);
    }

    #[test]
    fn tick_time_monotone(a in 0u64..100_000, b in 0u64..100_000) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(Tick::new(lo).time() <= Tick::new(hi).time());
        prop_assert_eq!(Tick::new(hi).since(Tick::new(lo)).secs(),
                        (hi - lo) as f64 * 0.01);
    }

    #[test]
    fn negation_is_involutive(v in finite()) {
        let a = Angle::from_radians(v);
        prop_assert_eq!(-(-a), a);
        let s = Speed::from_mps(v);
        prop_assert_eq!(-(-s), s);
    }
}
