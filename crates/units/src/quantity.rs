//! Scalar physical quantities: time, distance, speed, acceleration.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Conversion factor: one mile per hour expressed in metres per second.
const MPS_PER_MPH: f64 = 0.44704;

macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Returns the raw value in the canonical unit.
            #[inline]
            pub const fn raw(self) -> f64 {
                self.0
            }

            /// Returns the absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns the larger of `self` and `other`.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the smaller of `self` and `other`.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Clamps `self` into `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi` or either bound is NaN.
            #[inline]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// Returns `true` if the underlying value is finite.
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Returns the sign of the quantity (`-1.0`, `0.0` or `1.0`).
            #[inline]
            pub fn signum(self) -> f64 {
                // adas-lint: allow(R4, reason = "exact-zero check is the documented contract of signum")
                if self.0 == 0.0 { 0.0 } else { self.0.signum() }
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:.3} {}", self.0, $unit)
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }
    };
}

quantity!(
    /// A duration or point in simulated time, in seconds.
    Seconds,
    "s"
);

quantity!(
    /// A longitudinal or lateral distance, in metres.
    Distance,
    "m"
);

quantity!(
    /// A speed, canonically in metres per second.
    Speed,
    "m/s"
);

quantity!(
    /// An acceleration, in metres per second squared. Negative values brake.
    Accel,
    "m/s^2"
);

impl Seconds {
    /// Creates a duration from seconds.
    #[inline]
    pub const fn new(secs: f64) -> Self {
        Self(secs)
    }

    /// The duration in seconds.
    #[inline]
    pub const fn secs(self) -> f64 {
        self.0
    }
}

impl Distance {
    /// Creates a distance from metres.
    #[inline]
    pub const fn meters(m: f64) -> Self {
        Self(m)
    }
}

impl Speed {
    /// Creates a speed from metres per second.
    #[inline]
    pub const fn from_mps(mps: f64) -> Self {
        Self(mps)
    }

    /// Creates a speed from miles per hour (the unit the paper's scenarios
    /// and thresholds use).
    #[inline]
    pub fn from_mph(mph: f64) -> Self {
        Self(mph * MPS_PER_MPH)
    }

    /// The speed in metres per second.
    #[inline]
    pub const fn mps(self) -> f64 {
        self.0
    }

    /// The speed in miles per hour.
    #[inline]
    pub fn mph(self) -> f64 {
        self.0 / MPS_PER_MPH
    }
}

impl Accel {
    /// Creates an acceleration from metres per second squared.
    #[inline]
    pub const fn from_mps2(a: f64) -> Self {
        Self(a)
    }

    /// The acceleration in metres per second squared.
    #[inline]
    pub const fn mps2(self) -> f64 {
        self.0
    }
}

// Dimensional arithmetic that shows up throughout the control code.

impl Mul<Seconds> for Speed {
    type Output = Distance;
    /// `v * t = d` — distance travelled at constant speed.
    #[inline]
    fn mul(self, rhs: Seconds) -> Distance {
        Distance::meters(self.0 * rhs.0)
    }
}

impl Mul<Seconds> for Accel {
    type Output = Speed;
    /// `a * t = Δv` — speed change under constant acceleration.
    #[inline]
    fn mul(self, rhs: Seconds) -> Speed {
        Speed::from_mps(self.0 * rhs.0)
    }
}

impl Div<Speed> for Distance {
    type Output = Seconds;
    /// `d / v = t` — e.g. headway time = relative distance / current speed.
    #[inline]
    fn div(self, rhs: Speed) -> Seconds {
        Seconds::new(self.0 / rhs.0)
    }
}

impl Div<Seconds> for Speed {
    type Output = Accel;
    /// `Δv / t = a`.
    #[inline]
    fn div(self, rhs: Seconds) -> Accel {
        Accel::from_mps2(self.0 / rhs.0)
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exactly-representable values
mod tests {
    use super::*;

    #[test]
    fn mph_round_trips() {
        let v = Speed::from_mph(60.0);
        assert!((v.mph() - 60.0).abs() < 1e-12);
        assert!((v.mps() - 26.8224).abs() < 1e-4);
    }

    #[test]
    fn headway_time_is_distance_over_speed() {
        let gap = Distance::meters(53.6448);
        let v = Speed::from_mph(60.0);
        let hwt = gap / v;
        assert!((hwt.secs() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn accel_integrates_to_speed() {
        let a = Accel::from_mps2(2.0);
        let dv = a * Seconds::new(0.01);
        assert!((dv.mps() - 0.02).abs() < 1e-12);
    }

    #[test]
    fn clamp_and_ordering() {
        let a = Accel::from_mps2(3.0);
        let clamped = a.clamp(Accel::from_mps2(-3.5), Accel::from_mps2(2.0));
        assert_eq!(clamped, Accel::from_mps2(2.0));
        assert!(Accel::from_mps2(-4.0) < Accel::from_mps2(-3.5));
    }

    #[test]
    fn arithmetic_identities() {
        let d = Distance::meters(10.0);
        assert_eq!(d + Distance::ZERO, d);
        assert_eq!(d - d, Distance::ZERO);
        assert_eq!(-d, Distance::meters(-10.0));
        assert_eq!(d * 2.0, Distance::meters(20.0));
        assert_eq!(d / 2.0, Distance::meters(5.0));
        assert_eq!(d / Distance::meters(5.0), 2.0);
    }

    #[test]
    fn signum_covers_zero() {
        assert_eq!(Distance::ZERO.signum(), 0.0);
        assert_eq!(Distance::meters(-2.0).signum(), -1.0);
        assert_eq!(Distance::meters(2.0).signum(), 1.0);
    }

    #[test]
    fn sum_of_quantities() {
        let total: Seconds = (1..=4).map(|i| Seconds::new(i as f64)).sum();
        assert_eq!(total, Seconds::new(10.0));
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(format!("{}", Speed::from_mps(1.0)), "1.000 m/s");
        assert_eq!(format!("{}", Accel::from_mps2(-3.5)), "-3.500 m/s^2");
    }
}
