//! SplitMix64 mixing — the one implementation of the finalizer that every
//! crate's deterministic seeding and fingerprinting derives from.
//!
//! Three copies of this function used to live in `platform::experiment`
//! (campaign seed derivation), `openadas::plausibility` (stuck-stream
//! fingerprints) and `faultinj` (per-fault random streams). They were
//! bit-identical by convention only; hoisting them here makes the
//! convention structural, and gives adas-lint R10 one source of truth when
//! cross-checking seed-mixing constants.

/// The SplitMix64 finalizer: adds the 64-bit golden-ratio increment and
/// applies the xor-multiply avalanche. Bijective, so distinct inputs never
/// collide; the avalanche makes output bits independent of input structure.
pub const fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic seed mixing: folds each part into the state with one
/// SplitMix64 step. Campaigns use this so run seeds are reproducible and
/// paired campaigns (e.g. alert vs. inattentive driver) share world seeds.
pub fn mix_seed(base: u64, parts: &[u64]) -> u64 {
    let mut x = base;
    for &p in parts {
        x = splitmix64(x.wrapping_add(p));
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_reference_vector() {
        // First output of the SplitMix64 stream from seed 0, as published
        // in the reference implementation (Steele et al.).
        assert_eq!(splitmix64(0), 0xe220_a839_7b1d_cdaf);
    }

    #[test]
    fn mix_seed_is_order_and_base_sensitive() {
        assert_eq!(mix_seed(1, &[2, 3]), mix_seed(1, &[2, 3]));
        assert_ne!(mix_seed(1, &[2, 3]), mix_seed(1, &[3, 2]));
        assert_ne!(mix_seed(1, &[2, 3]), mix_seed(2, &[2, 3]));
    }

    #[test]
    fn mix_seed_matches_unrolled_finalizer() {
        // One part: mix_seed(base, &[p]) must equal splitmix64(base + p) —
        // the algebraic identity the hoist from platform relied on.
        assert_eq!(mix_seed(7, &[11]), splitmix64(7u64.wrapping_add(11)));
    }
}
