//! Physical-quantity newtypes and the simulation clock shared by every crate
//! in the ADAS attack reproduction workspace.
//!
//! The paper (Zhou et al., DSN 2022) mixes imperial and metric units freely:
//! cruise speeds are given in mph, accelerations in m/s², steering limits in
//! degrees, and the simulation advances in 10 ms control cycles. Mixing those
//! up silently is exactly the kind of bug that would invalidate a
//! reproduction, so each quantity gets its own newtype with explicit
//! conversions ([`Speed::from_mph`], [`Angle::from_degrees`], …).
//!
//! # Examples
//!
//! ```
//! use units::{Speed, Angle, DT};
//!
//! let cruise = Speed::from_mph(60.0);
//! assert!((cruise.mps() - 26.8224).abs() < 1e-4);
//!
//! let steer = Angle::from_degrees(0.5);
//! assert!((steer.radians() - 0.00872665).abs() < 1e-6);
//!
//! // One control cycle is 10 ms.
//! assert_eq!(DT.secs(), 0.01);
//! ```

#![forbid(unsafe_code)]
#![deny(clippy::float_cmp)]

#![warn(missing_docs)]

mod angle;
mod clock;
pub mod limits;
pub mod mix;
mod quantity;

pub use angle::Angle;
pub use clock::{SimClock, Tick, DT, SIM_DURATION, STEPS_PER_SIM};
pub use mix::{mix_seed, splitmix64};
pub use quantity::{Accel, Distance, Seconds, Speed};
