//! Canonical numeric safety limits — the single source of truth for every
//! envelope, gate threshold and escalation constant in the workspace.
//!
//! The paper's safety argument is numeric: a strategic attack succeeds
//! exactly when a corrupted value slips past a bound the stack assumed but
//! never proved. Before this module existed, those bounds lived as literals
//! scattered across `openadas/safety.rs`, `openadas/plausibility.rs`,
//! `openadas/degradation.rs`, `defense/ids.rs` and `core/corruption.rs`,
//! free to drift independently. Now each constant is declared once, here,
//! and adas-lint's semantic layer (R9–R11) cross-checks them statically:
//!
//! * **R9** proves every actuator-bound value passes a clamp whose literal
//!   bounds sit inside the [`PHYS_ACCEL_MAX_MPS2`]-family physical limits.
//! * **R10** cross-checks thresholds against controller dynamics (e.g. the
//!   plausibility gates' [`GATE_MAX_SPEED_JUMP_MPS`] must exceed the max
//!   per-tick speed change the envelope itself allows, else the gate
//!   rejects legitimate data).
//! * **R11** flags clamps these constants make dead or inverted.
//!
//! All values are plain numerics (unit suffix in the name) so the linter's
//! constant evaluator can read them as literals; the newtype wrappers are
//! applied at the use site.

/// Hard physical plant limit: max forward acceleration (m/s²) the virtual
/// car's powertrain can produce. Any software envelope must sit inside it.
pub const PHYS_ACCEL_MAX_MPS2: f64 = 5.0;

/// Hard physical plant limit: max braking deceleration (m/s², negative) —
/// roughly 1 g, the tyre friction ceiling.
pub const PHYS_BRAKE_MIN_MPS2: f64 = -9.8;

/// Hard physical plant limit: max steering-angle command magnitude
/// (degrees) the EPS rack accepts at speed.
pub const PHYS_STEER_MAX_DEG: f64 = 5.0;

/// One control cycle in seconds. Must equal [`DT`](crate::DT)`.secs()`
/// (asserted by a unit test); duplicated as a plain literal so the linter
/// can fold `limit × TICK_SECONDS` products when cross-checking per-tick
/// thresholds.
pub const TICK_SECONDS: f64 = 0.01;

/// ADAS software envelope (Table III footnote 1): max acceleration command
/// (m/s²).
pub const SW_ACCEL_MAX_MPS2: f64 = 2.4;

/// ADAS software envelope: max braking command (m/s², negative).
pub const SW_BRAKE_MIN_MPS2: f64 = -4.0;

/// ADAS software envelope: max steering-angle command magnitude (degrees).
pub const SW_STEER_MAX_DEG: f64 = 0.5;

/// ADAS software envelope: overspeed tolerance as a factor of the cruise
/// set-point.
pub const SW_OVERSPEED_FACTOR: f64 = 1.15;

/// Strict (firmware/Panda-shaped) envelope (Table III footnote 2): max
/// acceleration command (m/s²).
pub const STRICT_ACCEL_MAX_MPS2: f64 = 2.0;

/// Strict envelope: max braking command (m/s², negative).
pub const STRICT_BRAKE_MIN_MPS2: f64 = -3.5;

/// Strict envelope: max steering-angle command magnitude (degrees).
pub const STRICT_STEER_MAX_DEG: f64 = 0.25;

/// Strict envelope: overspeed ceiling factor (the paper's Eq. 1).
pub const STRICT_OVERSPEED_FACTOR: f64 = 1.1;

/// Graceful-degradation ladder: gentle controlled-stop deceleration (m/s²)
/// commanded in `DegradedAccOff`.
pub const GENTLE_BRAKE_MPS2: f64 = -1.0;

/// Graceful-degradation ladder: fail-safe controlled-stop deceleration
/// (m/s²). Stronger than [`GENTLE_BRAKE_MPS2`], still well inside
/// [`SW_BRAKE_MIN_MPS2`] so the stop itself never violates the envelope.
pub const FAILSAFE_BRAKE_MPS2: f64 = -2.5;

/// Ticks of continuous stream trouble before the ladder leaves `Nominal`.
pub const DEGRADE_AFTER_TICKS: u32 = 25;

/// Ticks of continuous stream trouble before the ladder enters `FailSafe`.
pub const FAILSAFE_AFTER_TICKS: u32 = 150;

/// Ticks of clean data required before the ladder steps back down
/// (hysteresis).
pub const RECOVERY_TICKS: u32 = 100;

/// Max age, in ticks, of a sensor payload's sample timestamp before the
/// stream counts as stale even though the message arrived this tick.
pub const STALE_AFTER_TICKS: u64 = 5;

/// Plausibility gates: normalized-innovation threshold in sigmas.
pub const GATE_INNOVATION_SIGMA: f64 = 6.0;

/// Plausibility gates: max ego-speed change per tick (m/s) between
/// accepted readings. Must exceed the largest per-tick speed change the
/// envelope allows the controller to command
/// (`SW_ACCEL_MAX_MPS2 × TICK_SECONDS` — checked by adas-lint R10).
pub const GATE_MAX_SPEED_JUMP_MPS: f64 = 1.0;

/// Plausibility gates: max lead-distance change per tick (m).
pub const GATE_MAX_DIST_JUMP_M: f64 = 4.0;

/// Plausibility gates: max lead-speed change per tick (m/s).
pub const GATE_MAX_LEAD_SPEED_JUMP_MPS: f64 = 3.0;

/// Plausibility gates: max lane-offset change per tick (m), reduced modulo
/// the lane width.
pub const GATE_MAX_OFFSET_JUMP_M: f64 = 0.5;

/// Plausibility gates: bit-identical consecutive readings before a stream
/// is stuck.
pub const GATE_STUCK_AFTER: u32 = 5;

/// Plausibility gates: self-consistent ticks before a bound-violating
/// stream re-anchors. Must stay below [`DEGRADE_AFTER_TICKS`] so a
/// legitimate discontinuity is re-acquired before the ladder escalates
/// (checked by adas-lint R10).
pub const GATE_REACQUIRE_AFTER: u32 = 15;

/// Plausibility gates: ego-speed reading (m/s) below which the stuck
/// detector disarms.
pub const GATE_MIN_MOVING_SPEED_MPS: f64 = 0.5;

/// Plausibility gates: cap, in ticks, on the rejected-stream jump
/// allowance growth.
pub const GATE_ELAPSED_CAP: u32 = 10;

/// CAN IDS: consecutive missing cycles before timing events accrue.
pub const IDS_MISS_AFTER: u32 = 10;

/// CAN IDS: leaky-score threshold for timing events.
pub const IDS_TIMING_THRESHOLD: u32 = 10;

/// CAN IDS: leaky-score threshold for rolling-counter discontinuities.
pub const IDS_COUNTER_THRESHOLD: u32 = 5;

/// CAN IDS: leaky-score threshold for checksum failures.
pub const IDS_CHECKSUM_THRESHOLD: u32 = 4;

#[cfg(test)]
// Asserting on constants is the point here: these tests are the runtime
// witnesses of the cross-constant orderings that adas-lint R10 proves
// statically, and they must fail loudly if someone retunes a limit.
#[allow(clippy::assertions_on_constants)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::float_cmp)] // literal-vs-literal identity checks
    fn tick_seconds_matches_clock() {
        assert_eq!(TICK_SECONDS, crate::DT.secs());
    }

    #[test]
    fn envelopes_nest() {
        // strict ⊆ software ⊆ physical — the same ordering R10 proves
        // statically; this test is the runtime witness.
        assert!(STRICT_ACCEL_MAX_MPS2 <= SW_ACCEL_MAX_MPS2);
        assert!(SW_ACCEL_MAX_MPS2 <= PHYS_ACCEL_MAX_MPS2);
        assert!(STRICT_BRAKE_MIN_MPS2 >= SW_BRAKE_MIN_MPS2);
        assert!(SW_BRAKE_MIN_MPS2 >= PHYS_BRAKE_MIN_MPS2);
        assert!(STRICT_STEER_MAX_DEG <= SW_STEER_MAX_DEG);
        assert!(SW_STEER_MAX_DEG <= PHYS_STEER_MAX_DEG);
        assert!(STRICT_OVERSPEED_FACTOR <= SW_OVERSPEED_FACTOR);
    }

    #[test]
    fn gate_outruns_controller() {
        // The gate's per-tick speed allowance must exceed what the envelope
        // lets the controller command in one tick, else legitimate control
        // authority gets rejected as implausible.
        assert!(GATE_MAX_SPEED_JUMP_MPS > SW_ACCEL_MAX_MPS2 * TICK_SECONDS);
        assert!(GATE_MAX_SPEED_JUMP_MPS > -SW_BRAKE_MIN_MPS2 * TICK_SECONDS);
    }

    #[test]
    fn escalation_ordering() {
        assert!(GATE_REACQUIRE_AFTER < DEGRADE_AFTER_TICKS);
        assert!((STALE_AFTER_TICKS as u32) < DEGRADE_AFTER_TICKS);
        assert!(DEGRADE_AFTER_TICKS < FAILSAFE_AFTER_TICKS);
        assert!(IDS_MISS_AFTER + IDS_TIMING_THRESHOLD < DEGRADE_AFTER_TICKS);
    }

    #[test]
    fn controlled_stops_inside_envelope() {
        assert!(GENTLE_BRAKE_MPS2 < 0.0 && GENTLE_BRAKE_MPS2 >= SW_BRAKE_MIN_MPS2);
        assert!(FAILSAFE_BRAKE_MPS2 < 0.0 && FAILSAFE_BRAKE_MPS2 >= SW_BRAKE_MIN_MPS2);
        assert!(FAILSAFE_BRAKE_MPS2 < GENTLE_BRAKE_MPS2);
    }
}
