//! Plane angles, used for steering commands and vehicle heading.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A plane angle, stored canonically in radians.
///
/// The paper quotes steering limits in degrees (e.g. `limit_steer = 0.5°`),
/// while the bicycle model wants radians; [`Angle::from_degrees`] and
/// [`Angle::degrees`] make the conversion explicit.
///
/// # Examples
///
/// ```
/// use units::Angle;
///
/// let limit = Angle::from_degrees(0.5);
/// assert!((limit.radians() - 0.00872665).abs() < 1e-6);
/// assert!((limit.degrees() - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Angle(f64);

impl Angle {
    /// The zero angle.
    pub const ZERO: Self = Self(0.0);

    /// Creates an angle from radians.
    #[inline]
    pub const fn from_radians(rad: f64) -> Self {
        Self(rad)
    }

    /// Creates an angle from degrees.
    #[inline]
    pub fn from_degrees(deg: f64) -> Self {
        Self(deg.to_radians())
    }

    /// The angle in radians.
    #[inline]
    pub const fn radians(self) -> f64 {
        self.0
    }

    /// The angle in degrees.
    #[inline]
    pub fn degrees(self) -> f64 {
        self.0.to_degrees()
    }

    /// Absolute value.
    #[inline]
    pub fn abs(self) -> Self {
        Self(self.0.abs())
    }

    /// Clamps into `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is NaN.
    #[inline]
    pub fn clamp(self, lo: Self, hi: Self) -> Self {
        Self(self.0.clamp(lo.0, hi.0))
    }

    /// Tangent of the angle (used by the bicycle model's curvature term).
    #[inline]
    pub fn tan(self) -> f64 {
        self.0.tan()
    }

    /// Sine of the angle.
    #[inline]
    pub fn sin(self) -> f64 {
        self.0.sin()
    }

    /// Cosine of the angle.
    #[inline]
    pub fn cos(self) -> f64 {
        self.0.cos()
    }

    /// Returns the sign of the angle (`-1.0`, `0.0` or `1.0`).
    #[inline]
    pub fn signum(self) -> f64 {
        // adas-lint: allow(R4, reason = "exact-zero check is the documented contract of signum")
        if self.0 == 0.0 { 0.0 } else { self.0.signum() }
    }

    /// Returns `true` if the value is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// Returns the larger of two angles.
    #[inline]
    pub fn max(self, other: Self) -> Self {
        Self(self.0.max(other.0))
    }

    /// Returns the smaller of two angles.
    #[inline]
    pub fn min(self, other: Self) -> Self {
        Self(self.0.min(other.0))
    }
}

impl fmt::Display for Angle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} deg", self.degrees())
    }
}

impl Add for Angle {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl Sub for Angle {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self(self.0 - rhs.0)
    }
}

impl AddAssign for Angle {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl SubAssign for Angle {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.0 -= rhs.0;
    }
}

impl Neg for Angle {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self(-self.0)
    }
}

impl Mul<f64> for Angle {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        Self(self.0 * rhs)
    }
}

impl Div<f64> for Angle {
    type Output = Self;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        Self(self.0 / rhs)
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exactly-representable values
mod tests {
    use super::*;

    #[test]
    fn degree_radian_round_trip() {
        let a = Angle::from_degrees(0.25);
        assert!((a.degrees() - 0.25).abs() < 1e-12);
        let b = Angle::from_radians(std::f64::consts::PI);
        assert!((b.degrees() - 180.0).abs() < 1e-9);
    }

    #[test]
    fn trig_matches_std() {
        let a = Angle::from_degrees(30.0);
        assert!((a.sin() - 0.5).abs() < 1e-12);
        assert!((a.tan() - (std::f64::consts::PI / 6.0).tan()).abs() < 1e-12);
    }

    #[test]
    fn clamp_respects_steering_limits() {
        let cmd = Angle::from_degrees(1.2);
        let lim = Angle::from_degrees(0.5);
        assert_eq!(cmd.clamp(-lim, lim), lim);
        assert_eq!((-cmd).clamp(-lim, lim), -lim);
    }

    #[test]
    fn arithmetic() {
        let a = Angle::from_degrees(1.0);
        let b = Angle::from_degrees(2.0);
        assert!(((a + b).degrees() - 3.0).abs() < 1e-12);
        assert!(((b - a).degrees() - 1.0).abs() < 1e-12);
        assert!(((a * 2.0).degrees() - 2.0).abs() < 1e-12);
        assert!(((b / 2.0).degrees() - 1.0).abs() < 1e-12);
        assert_eq!((-a).signum(), -1.0);
        assert_eq!(Angle::ZERO.signum(), 0.0);
    }

    #[test]
    fn display_in_degrees() {
        assert_eq!(format!("{}", Angle::from_degrees(0.5)), "0.5000 deg");
    }
}
