//! The discrete simulation clock.
//!
//! The paper runs OpenPilot+CARLA in lockstep: "A single simulation of
//! OpenPilot contains 5000 time-steps, each step lasts about 10 ms, which in
//! total equals 50 seconds" (§IV). Every component in this workspace advances
//! on the same [`Tick`].

use std::fmt;
use std::ops::{Add, Sub};

use serde::{Deserialize, Serialize};

use crate::Seconds;

/// Length of one control cycle: 10 ms.
pub const DT: Seconds = Seconds::new(0.01);

/// Number of control cycles in one simulation run.
pub const STEPS_PER_SIM: u64 = 5_000;

/// Total simulated duration of one run: 50 s.
pub const SIM_DURATION: Seconds = Seconds::new(50.0);

/// A discrete simulation step index.
///
/// # Examples
///
/// ```
/// use units::{Tick, DT};
///
/// let t = Tick::new(250);
/// assert_eq!(t.time().secs(), 2.5);
/// assert_eq!(Tick::from_time(units::Seconds::new(2.5)), t);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Tick(u64);

impl Tick {
    /// The first tick of a simulation.
    pub const ZERO: Self = Self(0);

    /// Creates a tick from a raw step index.
    #[inline]
    pub const fn new(step: u64) -> Self {
        Self(step)
    }

    /// The raw step index.
    #[inline]
    pub const fn index(self) -> u64 {
        self.0
    }

    /// The simulated wall-clock time of this tick.
    #[inline]
    pub fn time(self) -> Seconds {
        Seconds::new(self.0 as f64 * DT.secs())
    }

    /// The tick closest to (not after) the given simulated time.
    #[inline]
    pub fn from_time(t: Seconds) -> Self {
        Self((t.secs() / DT.secs()).round().max(0.0) as u64)
    }

    /// The next tick.
    #[inline]
    pub fn next(self) -> Self {
        Self(self.0 + 1)
    }

    /// Elapsed time since `earlier`. Saturates to zero if `earlier` is later.
    #[inline]
    pub fn since(self, earlier: Tick) -> Seconds {
        Seconds::new(self.0.saturating_sub(earlier.0) as f64 * DT.secs())
    }
}

impl fmt::Display for Tick {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tick {} (t={:.2}s)", self.0, self.time().secs())
    }
}

impl Add<u64> for Tick {
    type Output = Self;
    #[inline]
    fn add(self, rhs: u64) -> Self {
        Self(self.0 + rhs)
    }
}

impl Sub for Tick {
    type Output = u64;
    #[inline]
    fn sub(self, rhs: Self) -> u64 {
        self.0.saturating_sub(rhs.0)
    }
}

/// A stepping clock that owns the current [`Tick`] of a simulation run.
///
/// # Examples
///
/// ```
/// use units::SimClock;
///
/// let mut clock = SimClock::new();
/// assert_eq!(clock.now().index(), 0);
/// clock.step();
/// assert_eq!(clock.now().index(), 1);
/// assert!(!clock.finished());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimClock {
    now: Tick,
}

impl SimClock {
    /// Creates a clock at tick zero.
    #[inline]
    pub fn new() -> Self {
        Self::default()
    }

    /// The current tick.
    #[inline]
    pub fn now(&self) -> Tick {
        self.now
    }

    /// Advances the clock by one control cycle and returns the new tick.
    #[inline]
    pub fn step(&mut self) -> Tick {
        self.now = self.now.next();
        self.now
    }

    /// Whether the standard 5,000-step run has completed.
    #[inline]
    pub fn finished(&self) -> bool {
        self.now.index() >= STEPS_PER_SIM
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_time_round_trip() {
        for step in [0u64, 1, 250, 4999, 5000] {
            let t = Tick::new(step);
            assert_eq!(Tick::from_time(t.time()), t);
        }
    }

    #[test]
    fn sim_duration_consistent() {
        assert!((Tick::new(STEPS_PER_SIM).time().secs() - SIM_DURATION.secs()).abs() < 1e-9);
    }

    #[test]
    fn since_saturates() {
        let a = Tick::new(100);
        let b = Tick::new(350);
        assert!((b.since(a).secs() - 2.5).abs() < 1e-12);
        assert_eq!(a.since(b), Seconds::new(0.0));
    }

    #[test]
    fn clock_runs_to_completion() {
        let mut clock = SimClock::new();
        let mut steps = 0;
        while !clock.finished() {
            clock.step();
            steps += 1;
        }
        assert_eq!(steps, STEPS_PER_SIM);
        assert_eq!(clock.now().time(), SIM_DURATION);
    }

    #[test]
    fn tick_arithmetic() {
        let t = Tick::new(10);
        assert_eq!(t + 5, Tick::new(15));
        assert_eq!(Tick::new(15) - t, 5);
        assert_eq!(t - Tick::new(15), 0, "subtraction saturates");
        assert_eq!(t.next(), Tick::new(11));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Tick::new(250)), "tick 250 (t=2.50s)");
    }
}
