//! Property-based tests on the ADAS controllers' envelopes and stability.

use msgbus::schema::CarState;
use openadas::{AccController, AlcController, Kalman1D, LaneEstimate, LeadEstimate, SafetyLimits};
use proptest::prelude::*;
use units::{Accel, Distance, Speed};

proptest! {
    /// The ACC command never leaves the strict envelope for any state.
    #[test]
    fn acc_respects_the_envelope(
        v in 0.0..45.0f64,
        cruise in 5.0..40.0f64,
        lead in proptest::option::of((1.0..200.0f64, 0.0..40.0f64)),
    ) {
        let acc = AccController::new();
        let car = CarState {
            v_ego: Speed::from_mps(v),
            v_cruise: Speed::from_mps(cruise),
            cruise_enabled: true,
            ..CarState::default()
        };
        let lead_est = lead.map(|(d, vl)| LeadEstimate {
            d_rel: Distance::meters(d),
            v_lead: Speed::from_mps(vl),
            a_lead: Accel::ZERO,
        });
        let out = acc.control(&car, lead_est.as_ref());
        prop_assert!(out.command.mps2() <= 2.0 + 1e-12);
        prop_assert!(out.command.mps2() >= -3.5 - 1e-12);
        prop_assert!(out.command.mps2().is_finite());
        // The raw demand is finite too (used by FCW-style checks).
        prop_assert!(out.desired.mps2().is_finite());
    }

    /// The ALC command is always inside the software clamp and finite.
    #[test]
    fn alc_respects_the_clamp(
        offset in -8.0..8.0f64,
        rate in -5.0..5.0f64,
        curvature in -0.01..0.01f64,
    ) {
        let alc = AlcController::new();
        let lane = LaneEstimate {
            offset: Distance::meters(offset),
            offset_rate: Speed::from_mps(rate),
            curvature,
            left_line: Distance::meters(1.85 - offset),
            right_line: Distance::meters(1.85 + offset),
            confidence: 1.0,
        };
        let out = alc.control(&lane);
        prop_assert!(out.command.degrees().abs() <= 0.5 + 1e-12);
        prop_assert!(out.command.degrees().is_finite());
        // Saturation flag is consistent with the desire exceeding the limit.
        prop_assert_eq!(out.saturated, out.desired.abs() > alc.saturation_limit);
    }

    /// ACC steers toward its fixed point: from any speed below cruise with a
    /// clear road, iterating controller+integrator converges near cruise.
    #[test]
    fn acc_converges_to_cruise(v0 in 1.0..35.0f64, cruise in 10.0..35.0f64) {
        let acc = AccController::new();
        let mut v = v0;
        for _ in 0..20_000 {
            let car = CarState {
                v_ego: Speed::from_mps(v),
                v_cruise: Speed::from_mps(cruise),
                cruise_enabled: true,
                ..CarState::default()
            };
            let a = acc.control(&car, None).command.mps2();
            v = (v + a * 0.01).max(0.0);
        }
        prop_assert!((v - cruise).abs() < 0.3, "v={v} cruise={cruise}");
    }

    /// Kalman filter estimates stay bounded by the measurement range.
    #[test]
    fn kalman_stays_in_measurement_hull(
        x0 in -50.0..50.0f64,
        zs in proptest::collection::vec(-30.0..30.0f64, 1..300),
    ) {
        let mut kf = Kalman1D::new(x0, 1.0, 0.01, 0.1);
        for z in &zs {
            kf.predict(0.0);
            kf.update(*z);
        }
        let lo = zs.iter().cloned().fold(f64::INFINITY, f64::min).min(x0);
        let hi = zs.iter().cloned().fold(f64::NEG_INFINITY, f64::max).max(x0);
        prop_assert!(kf.estimate() >= lo - 1e-9 && kf.estimate() <= hi + 1e-9);
        prop_assert!(kf.variance() > 0.0);
    }

    /// Both safety envelopes clamp into themselves (idempotent) and strict
    /// is a subset of software.
    #[test]
    fn envelope_clamps_are_idempotent(a in -20.0..20.0f64) {
        for limits in [SafetyLimits::software(), SafetyLimits::strict()] {
            let once = limits.clamp_accel(Accel::from_mps2(a));
            let twice = limits.clamp_accel(once);
            prop_assert_eq!(once, twice);
            prop_assert!(limits.accel_ok(once));
        }
        let strict = SafetyLimits::strict().clamp_accel(Accel::from_mps2(a));
        prop_assert!(SafetyLimits::software().accel_ok(strict), "strict ⊆ software");
    }
}
