//! Property-style tests on the degradation watchdog/state machine.
//!
//! Two safety properties the resilience story rests on:
//!
//! 1. **Bounded time to FailSafe**: from *any* prior fault pattern, once an
//!    input stream is persistently lost the monitor reaches
//!    [`DegradationState::FailSafe`] within a bounded number of ticks — no
//!    pattern of flapping history can postpone the controlled stop.
//! 2. **Full-hysteresis recovery**: leaving a degraded state takes the
//!    complete [`RECOVERY_TICKS`] window of all-healthy input, and the
//!    ladder never flaps — once degraded, the only transition a recovery
//!    phase may produce is a single step to Nominal.

use openadas::{
    DegradationMonitor, DegradationState, DEGRADE_AFTER, FAILSAFE_AFTER, RECOVERY_TICKS,
};
use proptest::prelude::*;

/// One tick's worth of stream health: (gps, camera, radar).
fn tick_pattern() -> impl Strategy<Value = (bool, bool, bool)> {
    (any::<bool>(), any::<bool>(), any::<bool>())
}

proptest! {
    /// (a) Persistent loss of any stream subset (at least one stream down)
    /// reaches FailSafe within FAILSAFE_AFTER ticks of the loss becoming
    /// persistent, regardless of the fault pattern that came before.
    #[test]
    fn persistent_loss_reaches_failsafe_within_bound(
        history in proptest::collection::vec(tick_pattern(), 0..400),
        // Non-empty subset of streams to lose, as a 3-bit mask.
        loss_mask in 1u8..8,
    ) {
        let (lose_gps, lose_cam, lose_radar) =
            (loss_mask & 1 != 0, loss_mask & 2 != 0, loss_mask & 4 != 0);
        let mut m = DegradationMonitor::new();
        for (g, c, r) in history {
            m.step(g, c, r);
        }
        let mut reached_at = None;
        for t in 0..FAILSAFE_AFTER {
            m.step(!lose_gps, !lose_cam, !lose_radar);
            if m.state() == DegradationState::FailSafe {
                reached_at = Some(t);
                break;
            }
        }
        prop_assert!(
            reached_at.is_some(),
            "FailSafe not reached within {FAILSAFE_AFTER} ticks of persistent loss"
        );
        // And FailSafe is absorbing while the loss persists.
        for _ in 0..100 {
            m.step(!lose_gps, !lose_cam, !lose_radar);
            prop_assert_eq!(m.state(), DegradationState::FailSafe);
        }
    }

    /// (b) From any degraded state, recovery needs the full hysteresis
    /// window: the state must hold for RECOVERY_TICKS - 1 healthy ticks,
    /// flip to Nominal exactly once, and a single unhealthy tick anywhere
    /// in the window must reset the clock.
    #[test]
    fn recovery_requires_full_window_and_never_flaps(
        history in proptest::collection::vec(tick_pattern(), 1..400),
        spoiler in proptest::option::of(0u32..RECOVERY_TICKS),
    ) {
        let mut m = DegradationMonitor::new();
        for (g, c, r) in history {
            m.step(g, c, r);
        }
        // Make sure we actually start degraded (force a radar outage if the
        // generated history happened to leave the monitor nominal).
        if m.state() == DegradationState::Nominal {
            for _ in 0..DEGRADE_AFTER {
                m.step(true, true, false);
            }
        }
        // One unhealthy tick zeroes the healthy streak, so the windows
        // measured below start from a known clock (the random history may
        // have ended mid-streak). A single silent radar tick cannot change
        // the state on its own.
        m.step(true, true, false);
        let degraded = m.state();
        prop_assert_ne!(degraded, DegradationState::Nominal);

        // Phase 1: if a spoiler tick interrupts the healthy streak, the
        // full window must not complete a recovery.
        if let Some(at) = spoiler {
            for t in 0..RECOVERY_TICKS {
                let healthy = t != at;
                m.step(healthy, healthy, healthy);
                prop_assert_eq!(
                    m.state(), degraded,
                    "interrupted streak must not recover (tick {})", t
                );
            }
            // Re-zero the streak left over from the interrupted window.
            m.step(true, true, false);
        }

        // Phase 2: a clean, full window recovers exactly at its last tick,
        // with no intermediate transitions of any kind.
        for t in 0..(RECOVERY_TICKS - 1) {
            m.step(true, true, true);
            prop_assert_eq!(m.state(), degraded, "still degraded at healthy tick {}", t);
        }
        m.step(true, true, true);
        prop_assert_eq!(m.state(), DegradationState::Nominal, "recovered on the final tick");
    }

    /// Escalation is monotone within any single outage: while faults
    /// persist, the rank never decreases tick over tick.
    #[test]
    fn rank_is_monotone_while_unhealthy(
        pattern in proptest::collection::vec(tick_pattern(), 1..600),
    ) {
        let mut m = DegradationMonitor::new();
        let mut prev_rank = m.state().rank();
        let mut healthy_streak = 0u32;
        for (g, c, r) in pattern {
            m.step(g, c, r);
            healthy_streak = if g && c && r { healthy_streak + 1 } else { 0 };
            let rank = m.state().rank();
            if healthy_streak < RECOVERY_TICKS {
                prop_assert!(
                    rank >= prev_rank,
                    "rank dropped {} -> {} without a full recovery window",
                    prev_rank, rank
                );
            }
            prev_rank = rank;
        }
    }
}
