//! Graceful degradation: staleness watchdogs and the fail-safe ladder.
//!
//! Every tick the ADAS notes which sensor streams delivered a message. A
//! stream that stays silent trips a per-stream watchdog, and the
//! [`DegradationMonitor`] walks a one-way ladder —
//! Nominal → Degraded (ALC off / ACC off) → FailSafe controlled stop —
//! escalating immediately but recovering only after a full hysteresis
//! window of healthy input, so a flapping sensor cannot flap the ADAS.
//!
//! The ladder is *fail-closed*: losing the radar or GPS disables
//! longitudinal control into a gentle brake (better to slow behind a lead
//! we can no longer see than to accelerate at it — the lead tracker's
//! 0.3 s coast window is longer than [`DEGRADE_AFTER`], so braking starts
//! while the last confirmed track is still held); losing the camera
//! disables lane-keeping as the lane confidence decays; losing a stream
//! persistently, or both perception streams at once, commands a firm
//! controlled stop that still passes the Panda safety filter.

use msgbus::schema::AlertKind;
use serde::{Deserialize, Serialize};
use units::{limits, Accel};

/// Consecutive silent ticks (0.25 s) before a stream is declared stale and
/// the ADAS degrades. Deliberately shorter than the lead tracker's
/// `MAX_DROPOUT` coast window (0.3 s) so degradation braking begins while
/// the coasted lead estimate is still valid.
pub const DEGRADE_AFTER: u32 = limits::DEGRADE_AFTER_TICKS;

/// Consecutive silent ticks (1.5 s) of any single stream before the ADAS
/// gives up on it returning and commands a fail-safe stop.
pub const FAILSAFE_AFTER: u32 = limits::FAILSAFE_AFTER_TICKS;

/// Consecutive all-streams-healthy ticks (1 s) required to leave any
/// degraded state. Recovery is only ever to [`DegradationState::Nominal`]
/// and only after this full window — the no-flapping hysteresis.
pub const RECOVERY_TICKS: u32 = limits::RECOVERY_TICKS;

/// Longitudinal command while ACC is off (m/s²): a gentle brake, far above
/// the FCW trigger threshold, that sheds speed while the driver is alerted.
pub const GENTLE_BRAKE: Accel = Accel::from_mps2(limits::GENTLE_BRAKE_MPS2);

/// Longitudinal command during a fail-safe stop (m/s²): a firm controlled
/// stop that stays inside the Panda safety envelope (hard-brake limit
/// −3.5 m/s²) and below the FCW threshold.
pub const FAILSAFE_BRAKE: Accel = Accel::from_mps2(limits::FAILSAFE_BRAKE_MPS2);

/// Where the ADAS sits on the degradation ladder.
///
/// Deliberately *exhaustive* (adas-lint R8): every consumer must name every
/// rung — a new degradation mode silently lumped into a `_ =>` arm is a
/// safety bug, not a convenience.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum DegradationState {
    /// All sensor streams healthy; full ACC + ALC authority.
    #[default]
    Nominal,
    /// Camera stale: lane-keeping is off (confidence decays to zero);
    /// ACC continues on radar + GPS.
    DegradedAlcOff,
    /// Radar or GPS stale: adaptive cruise is off and the ADAS commands
    /// [`GENTLE_BRAKE`]; lane-keeping continues on the camera.
    DegradedAccOff,
    /// Persistent input loss: controlled stop at [`FAILSAFE_BRAKE`] until
    /// the driver takes over or every stream recovers for the full
    /// hysteresis window.
    FailSafe,
}

impl DegradationState {
    /// Severity rank, 0 (nominal) to 3 (fail-safe). The monitor only moves
    /// up in rank instantly; moving down requires full recovery.
    pub fn rank(self) -> u8 {
        match self {
            DegradationState::Nominal => 0,
            DegradationState::DegradedAlcOff => 1,
            DegradationState::DegradedAccOff => 2,
            DegradationState::FailSafe => 3,
        }
    }

    /// Snake-case name used in traces and `BENCH_resilience.json`.
    pub fn label(self) -> &'static str {
        match self {
            DegradationState::Nominal => "nominal",
            DegradationState::DegradedAlcOff => "degraded_alc_off",
            DegradationState::DegradedAccOff => "degraded_acc_off",
            DegradationState::FailSafe => "fail_safe",
        }
    }
}

/// Per-stream staleness watchdogs plus the ladder state machine.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegradationMonitor {
    state: DegradationState,
    gps_stale: u32,
    cam_stale: u32,
    radar_stale: u32,
    fresh_streak: u32,
}

impl DegradationMonitor {
    /// A monitor starting in [`DegradationState::Nominal`].
    pub fn new() -> Self {
        Self::default()
    }

    /// The current ladder state.
    pub fn state(&self) -> DegradationState {
        self.state
    }

    /// Advances the watchdogs one tick with this tick's per-stream message
    /// arrival flags. Returns the alert to raise when the state *escalates*
    /// (edge-triggered); recovery is silent.
    pub fn step(&mut self, gps_fresh: bool, cam_fresh: bool, radar_fresh: bool) -> Option<AlertKind> {
        bump(&mut self.gps_stale, gps_fresh);
        bump(&mut self.cam_stale, cam_fresh);
        bump(&mut self.radar_stale, radar_fresh);
        if gps_fresh && cam_fresh && radar_fresh {
            self.fresh_streak = self.fresh_streak.saturating_add(1);
        } else {
            self.fresh_streak = 0;
        }

        let target = self.target();
        if target.rank() > self.state.rank() {
            // Escalate instantly — staleness is evidence, freshness is hope.
            self.state = target;
            return Some(match self.state {
                DegradationState::FailSafe => AlertKind::FailSafeStop,
                DegradationState::DegradedAlcOff | DegradationState::DegradedAccOff => {
                    AlertKind::AdasDegraded
                }
                // Unreachable: rank() > means the target is above Nominal.
                DegradationState::Nominal => AlertKind::AdasDegraded,
            });
        }
        if self.state != DegradationState::Nominal
            && target == DegradationState::Nominal
            && self.fresh_streak >= RECOVERY_TICKS
        {
            // Recovery is all-or-nothing: no partial de-escalation, so a
            // half-healed sensor set cannot ping-pong between rungs.
            self.state = DegradationState::Nominal;
        }
        None
    }

    /// Forces the ladder up to `target` (e.g. on a CAN-IDS alarm under an
    /// acting defense policy). Escalate-only and
    /// edge-triggered like [`Self::step`]: a target at or below the current
    /// rung is a no-op, and the alert is returned exactly once per
    /// escalation. Recovery still goes through the normal hysteresis path —
    /// a forced rung is held by the caller re-forcing it while the evidence
    /// persists, not by the monitor latching it.
    pub fn force(&mut self, target: DegradationState) -> Option<AlertKind> {
        if target.rank() <= self.state.rank() {
            return None;
        }
        self.state = target;
        // Restart the hysteresis clock: without this, a force landing while
        // every stream is healthy (a CAN-side alarm — the sensors are fine,
        // the bus is not) would recover on the very next step() because the
        // fresh streak is already saturated, and the caller re-forcing each
        // alarm tick would flap the rung and spam the alert edge.
        self.fresh_streak = 0;
        Some(match self.state {
            DegradationState::FailSafe => AlertKind::FailSafeStop,
            DegradationState::DegradedAlcOff | DegradationState::DegradedAccOff => {
                AlertKind::AdasDegraded
            }
            // Unreachable: rank() > means the target is above Nominal.
            DegradationState::Nominal => AlertKind::AdasDegraded,
        })
    }

    /// The rung the current watchdog counters call for, ignoring hysteresis.
    fn target(&self) -> DegradationState {
        let gps = self.gps_stale >= DEGRADE_AFTER;
        let cam = self.cam_stale >= DEGRADE_AFTER;
        let radar = self.radar_stale >= DEGRADE_AFTER;
        let persistent = self.gps_stale >= FAILSAFE_AFTER
            || self.cam_stale >= FAILSAFE_AFTER
            || self.radar_stale >= FAILSAFE_AFTER;
        if persistent || (cam && (radar || gps)) {
            DegradationState::FailSafe
        } else if radar || gps {
            DegradationState::DegradedAccOff
        } else if cam {
            DegradationState::DegradedAlcOff
        } else {
            DegradationState::Nominal
        }
    }
}

/// Resets the counter on a fresh message, saturating-increments otherwise.
fn bump(counter: &mut u32, fresh: bool) {
    *counter = if fresh { 0 } else { counter.saturating_add(1) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_stays_nominal_on_healthy_input() {
        let mut m = DegradationMonitor::new();
        for _ in 0..1000 {
            assert_eq!(m.step(true, true, true), None);
            assert_eq!(m.state(), DegradationState::Nominal);
        }
    }

    #[test]
    fn radar_loss_degrades_acc_then_fails_safe() {
        let mut m = DegradationMonitor::new();
        let mut alerts = Vec::new();
        for t in 0..(FAILSAFE_AFTER + 10) {
            if let Some(a) = m.step(true, true, false) {
                alerts.push((t, a));
            }
        }
        assert_eq!(
            alerts,
            vec![
                (DEGRADE_AFTER - 1, AlertKind::AdasDegraded),
                (FAILSAFE_AFTER - 1, AlertKind::FailSafeStop),
            ],
            "edge-triggered alerts at each escalation"
        );
        assert_eq!(m.state(), DegradationState::FailSafe);
    }

    #[test]
    fn camera_loss_only_disables_alc() {
        let mut m = DegradationMonitor::new();
        for _ in 0..DEGRADE_AFTER {
            m.step(true, false, true);
        }
        assert_eq!(m.state(), DegradationState::DegradedAlcOff);
    }

    #[test]
    fn both_perception_streams_lost_is_failsafe_fast() {
        let mut m = DegradationMonitor::new();
        for _ in 0..DEGRADE_AFTER {
            m.step(true, false, false);
        }
        assert_eq!(m.state(), DegradationState::FailSafe, "camera+radar loss");
    }

    #[test]
    fn acc_off_outranks_alc_off() {
        let mut m = DegradationMonitor::new();
        for _ in 0..DEGRADE_AFTER {
            m.step(true, true, false);
        }
        assert_eq!(m.state(), DegradationState::DegradedAccOff);
        // Camera dropping too now escalates to FailSafe (both perception
        // streams stale), not sideways.
        for _ in 0..DEGRADE_AFTER {
            m.step(true, false, false);
        }
        assert_eq!(m.state(), DegradationState::FailSafe);
    }

    #[test]
    fn recovery_requires_full_hysteresis_window() {
        let mut m = DegradationMonitor::new();
        for _ in 0..(DEGRADE_AFTER + 5) {
            m.step(true, true, false);
        }
        assert_eq!(m.state(), DegradationState::DegradedAccOff);
        // One tick short of the window: still degraded.
        for _ in 0..(RECOVERY_TICKS - 1) {
            m.step(true, true, true);
        }
        assert_eq!(m.state(), DegradationState::DegradedAccOff);
        // The final tick completes recovery, silently.
        assert_eq!(m.step(true, true, true), None);
        assert_eq!(m.state(), DegradationState::Nominal);
    }

    #[test]
    fn flapping_sensor_cannot_flap_the_state() {
        let mut m = DegradationMonitor::new();
        for _ in 0..(DEGRADE_AFTER + 5) {
            m.step(true, true, false);
        }
        let mut transitions = 0;
        let mut prev = m.state();
        // Radar alternating healthy/silent every 50 ticks: the fresh streak
        // never reaches RECOVERY_TICKS, so the state must hold.
        for t in 0..2000 {
            m.step(true, true, (t / 50) % 2 == 0);
            if m.state() != prev {
                transitions += 1;
                prev = m.state();
            }
        }
        assert_eq!(transitions, 0, "hysteresis swallows the flapping");
        assert_eq!(m.state(), DegradationState::DegradedAccOff);
    }

    #[test]
    fn force_is_escalate_only_and_edge_triggered() {
        let mut m = DegradationMonitor::new();
        assert_eq!(
            m.force(DegradationState::DegradedAccOff),
            Some(AlertKind::AdasDegraded)
        );
        assert_eq!(m.state(), DegradationState::DegradedAccOff);
        // Re-forcing the same rung is silent; forcing below is a no-op.
        assert_eq!(m.force(DegradationState::DegradedAccOff), None);
        assert_eq!(m.force(DegradationState::DegradedAlcOff), None);
        assert_eq!(m.state(), DegradationState::DegradedAccOff);
        assert_eq!(m.force(DegradationState::FailSafe), Some(AlertKind::FailSafeStop));
        assert_eq!(m.state(), DegradationState::FailSafe);
    }

    #[test]
    fn forced_rung_recovers_through_normal_hysteresis() {
        let mut m = DegradationMonitor::new();
        m.force(DegradationState::FailSafe);
        // Healthy streams and no re-forcing: the full hysteresis window
        // later, the ladder is back to nominal.
        for _ in 0..RECOVERY_TICKS {
            m.step(true, true, true);
        }
        assert_eq!(m.state(), DegradationState::Nominal);
    }

    #[test]
    fn failsafe_recovers_only_via_nominal() {
        let mut m = DegradationMonitor::new();
        for _ in 0..(FAILSAFE_AFTER + 1) {
            m.step(true, true, false);
        }
        assert_eq!(m.state(), DegradationState::FailSafe);
        for _ in 0..RECOVERY_TICKS {
            m.step(true, true, true);
        }
        assert_eq!(m.state(), DegradationState::Nominal, "no intermediate rungs");
    }
}
