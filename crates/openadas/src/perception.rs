//! Lane perception post-processing.
//!
//! The raw `modelV2` lane-line estimates are noisy; the lateral planner wants
//! a smooth lateral offset, its derivative, and a curvature estimate. This is
//! the (drastically simplified) counterpart of OpenPilot's lateral MPC input
//! stage.

use msgbus::schema::LaneModel;
use serde::{Deserialize, Serialize};
use units::{Distance, Speed, DT};

/// Smoothed lane state consumed by the lateral controller.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LaneEstimate {
    /// Smoothed lateral offset from the lane centre (positive left).
    pub offset: Distance,
    /// Rate of change of the offset.
    pub offset_rate: Speed,
    /// Smoothed road curvature (1/m, positive left).
    pub curvature: f64,
    /// Smoothed distance from the ego centreline to the left lane line.
    pub left_line: Distance,
    /// Smoothed distance from the ego centreline to the right lane line.
    pub right_line: Distance,
    /// Confidence in the estimate, in `[0, 1]`: 1.0 while `modelV2`
    /// samples keep arriving, decaying toward 0 during a camera outage
    /// (see [`LaneProcessor::coast`]). The lateral controller scales its
    /// steering authority by this factor, so a stale lane model fades out
    /// instead of steering on ghosts. `Default` is 0.0: a never-updated
    /// estimate carries no authority.
    pub confidence: f64,
}

/// Low-pass filter over the `modelV2` stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LaneProcessor {
    est: LaneEstimate,
    initialized: bool,
    /// Smoothing factor per 10 ms sample for positions.
    alpha: f64,
    /// Slower smoothing for curvature.
    alpha_curv: f64,
}

impl Default for LaneProcessor {
    fn default() -> Self {
        Self::new()
    }
}

impl LaneProcessor {
    /// Creates a processor with OpenPilot-like smoothing (≈ 0.1 s position
    /// time-constant, ≈ 0.5 s curvature time-constant).
    pub fn new() -> Self {
        Self {
            est: LaneEstimate::default(),
            initialized: false,
            alpha: DT.secs() / 0.1,
            alpha_curv: DT.secs() / 0.5,
        }
    }

    /// Current smoothed estimate.
    pub fn estimate(&self) -> LaneEstimate {
        self.est
    }

    /// Feeds one `modelV2` sample; returns the updated estimate.
    pub fn update(&mut self, model: &LaneModel) -> LaneEstimate {
        let raw_offset = model.lateral_offset();
        if !self.initialized {
            self.est = LaneEstimate {
                offset: raw_offset,
                offset_rate: Speed::ZERO,
                curvature: model.curvature,
                left_line: model.left_line,
                right_line: model.right_line,
                confidence: 1.0,
            };
            self.initialized = true;
            return self.est;
        }
        let prev_offset = self.est.offset;
        let blend = |old: f64, new: f64, a: f64| old + a * (new - old);
        let offset = Distance::meters(blend(prev_offset.raw(), raw_offset.raw(), self.alpha));
        // Derivative of the *smoothed* offset, itself lightly filtered.
        let raw_rate = (offset - prev_offset) / DT.secs();
        let rate = Speed::from_mps(blend(
            self.est.offset_rate.mps(),
            raw_rate.raw() / 1.0,
            0.2,
        ));
        self.est = LaneEstimate {
            offset,
            offset_rate: rate,
            curvature: blend(self.est.curvature, model.curvature, self.alpha_curv),
            left_line: Distance::meters(blend(
                self.est.left_line.raw(),
                model.left_line.raw(),
                self.alpha,
            )),
            right_line: Distance::meters(blend(
                self.est.right_line.raw(),
                model.right_line.raw(),
                self.alpha,
            )),
            confidence: 1.0,
        };
        self.est
    }

    /// Advances the estimate one tick with *no* `modelV2` sample (camera
    /// outage). The geometry holds at its last value while the confidence
    /// decays toward zero with a [`CONFIDENCE_DECAY_TC`] time-constant —
    /// lane-keeping authority fades smoothly instead of snapping off or
    /// steering on stale lines.
    pub fn coast(&mut self) {
        self.est.confidence = (self.est.confidence - DT.secs() / CONFIDENCE_DECAY_TC).max(0.0);
    }
}

/// Seconds for lane confidence to decay from 1.0 to 0.0 during a camera
/// outage (linear ramp): half a second of blind lane-keeping on coasted
/// geometry, matching the camera staleness watchdog's escalation window.
pub const CONFIDENCE_DECAY_TC: f64 = 0.5;

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exactly-representable values
mod tests {
    use super::*;

    fn model(offset: f64, curvature: f64) -> LaneModel {
        let half = 3.7 / 2.0;
        LaneModel {
            left_line: Distance::meters(half - offset),
            right_line: Distance::meters(half + offset),
            lane_width: Distance::meters(3.7),
            curvature,
        }
    }

    #[test]
    fn first_sample_initializes_exactly() {
        let mut p = LaneProcessor::new();
        let est = p.update(&model(-0.3, 0.00125));
        assert!((est.offset.raw() + 0.3).abs() < 1e-9);
        assert_eq!(est.curvature, 0.00125);
        assert_eq!(est.offset_rate, Speed::ZERO);
    }

    #[test]
    fn converges_to_steady_input() {
        let mut p = LaneProcessor::new();
        for _ in 0..200 {
            p.update(&model(0.5, 0.002));
        }
        let est = p.estimate();
        assert!((est.offset.raw() - 0.5).abs() < 1e-3);
        assert!((est.curvature - 0.002).abs() < 1e-4);
        assert!(est.offset_rate.mps().abs() < 1e-3);
    }

    #[test]
    fn rate_reflects_moving_offset() {
        let mut p = LaneProcessor::new();
        // Offset ramping left at 0.5 m/s.
        let mut offset = 0.0;
        for _ in 0..300 {
            offset += 0.5 * DT.secs();
            p.update(&model(offset, 0.0));
        }
        let est = p.estimate();
        assert!(
            (est.offset_rate.mps() - 0.5).abs() < 0.05,
            "rate {} should approach 0.5 m/s",
            est.offset_rate
        );
    }

    #[test]
    fn smoothing_rejects_single_sample_glitch() {
        let mut p = LaneProcessor::new();
        for _ in 0..100 {
            p.update(&model(0.0, 0.0));
        }
        // One wild sample (e.g. perception glitch of 2 m).
        p.update(&model(2.0, 0.0));
        let est = p.estimate();
        assert!(
            est.offset.raw() < 0.25,
            "single glitch moves the estimate only slightly, got {}",
            est.offset
        );
    }

    #[test]
    fn confidence_decays_on_coast_and_recovers_on_update() {
        let mut p = LaneProcessor::new();
        assert_eq!(p.estimate().confidence, 0.0, "no authority before data");
        p.update(&model(0.0, 0.0));
        assert_eq!(p.estimate().confidence, 1.0);
        // Half the decay window: about half the confidence is left, and the
        // geometry holds.
        for _ in 0..25 {
            p.coast();
        }
        let est = p.estimate();
        assert!((est.confidence - 0.5).abs() < 0.05, "got {}", est.confidence);
        assert_eq!(est.offset.raw(), 0.0);
        // Past the window: pinned at zero, never negative.
        for _ in 0..100 {
            p.coast();
        }
        assert_eq!(p.estimate().confidence, 0.0);
        // One fresh sample restores full authority.
        p.update(&model(0.0, 0.0));
        assert_eq!(p.estimate().confidence, 1.0);
    }
}
