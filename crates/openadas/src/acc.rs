//! Adaptive Cruise Control: the longitudinal planner/controller.

use msgbus::schema::CarState;
use serde::{Deserialize, Serialize};
use units::{Accel, Distance, Seconds, Speed};

use crate::radar::LeadEstimate;
use crate::SafetyLimits;

/// Longitudinal control output, before and after the safety clamp.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccOutput {
    /// The raw desired acceleration (used for FCW-style checks).
    pub desired: Accel,
    /// The clamped command sent toward the actuators.
    pub command: Accel,
}

/// A constant-time-headway ACC.
///
/// Gains follow the usual CTH form `a = k_gap (gap − gap*) + k_rel (v_lead −
/// v_ego)` with `gap* = d_min + T v_ego`; the cruise branch is a simple
/// proportional speed controller. The gentle gains intentionally allow a
/// small speed overshoot when catching up to a slower lead — the transient
/// window (`RS ≤ 0` while `HWT` is still large) that the paper's rule 2
/// exploits to trigger Deceleration attacks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccController {
    /// Desired time headway.
    pub time_headway: Seconds,
    /// Standstill gap.
    pub min_gap: Distance,
    /// Gain on the gap error.
    pub k_gap: f64,
    /// Gain on the relative speed.
    pub k_rel: f64,
    /// Gain on the cruise speed error.
    pub k_cruise: f64,
    limits: SafetyLimits,
}

impl Default for AccController {
    fn default() -> Self {
        Self {
            time_headway: Seconds::new(2.2),
            min_gap: Distance::meters(4.0),
            k_gap: 0.08,
            k_rel: 0.65,
            k_cruise: 0.4,
            limits: SafetyLimits::strict(),
        }
    }
}

impl AccController {
    /// Creates the default controller (OpenPilot-like gains, strict output
    /// envelope).
    pub fn new() -> Self {
        Self::default()
    }

    /// The desired following gap at a given ego speed.
    pub fn desired_gap(&self, v_ego: Speed) -> Distance {
        self.min_gap + v_ego * self.time_headway
    }

    /// Computes the longitudinal command for this cycle.
    pub fn control(&self, car: &CarState, lead: Option<&LeadEstimate>) -> AccOutput {
        let v = car.v_ego;
        // Cruise branch: proportional to the set-speed error, comfort-limited.
        let cruise_err = car.v_cruise.mps() - v.mps();
        let a_cruise = (self.k_cruise * cruise_err).clamp(-1.5, 2.0);

        let desired = match lead {
            Some(l) => {
                let gap_err = l.d_rel.raw() - self.desired_gap(v).raw();
                let closing = v.mps() - l.v_lead.mps();
                let a_follow = if gap_err > 0.0 {
                    // Far regime: brake only as hard as physics requires to
                    // match the lead's speed at the desired gap
                    // (`a = −Δv² / 2 Δd`); below a comfort threshold, ignore
                    // the lead entirely. This late, demand-shaped braking is
                    // also what lets the ego briefly undershoot the lead's
                    // speed as it settles — the `RS ≤ 0` window rule 2 of the
                    // context table waits for.
                    let a_req = if closing > 0.0 {
                        -closing * closing / (2.0 * gap_err)
                    } else {
                        f64::INFINITY
                    };
                    if a_req < -0.5 {
                        a_req
                    } else {
                        a_cruise
                    }
                } else {
                    // Near regime: linear regulation around the desired gap.
                    self.k_gap * gap_err - self.k_rel * closing + 0.5 * l.a_lead.mps2()
                };
                a_cruise.min(a_follow)
            }
            None => a_cruise,
        };
        let desired = Accel::from_mps2(desired);
        AccOutput {
            desired,
            command: self.limits.clamp_accel(desired),
        }
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exactly-representable values
mod tests {
    use super::*;
    use units::Angle;

    fn car(v_mph: f64, cruise_mph: f64) -> CarState {
        CarState {
            v_ego: Speed::from_mph(v_mph),
            a_ego: Accel::ZERO,
            steering_angle: Angle::ZERO,
            v_cruise: Speed::from_mph(cruise_mph),
            cruise_enabled: true,
        }
    }

    fn lead(d: f64, v_mph: f64) -> LeadEstimate {
        LeadEstimate {
            d_rel: Distance::meters(d),
            v_lead: Speed::from_mph(v_mph),
            a_lead: Accel::ZERO,
        }
    }

    #[test]
    fn cruises_toward_set_speed() {
        let acc = AccController::new();
        let out = acc.control(&car(50.0, 60.0), None);
        assert!(out.command.mps2() > 0.5, "accelerates when under set-speed");
        let out = acc.control(&car(65.0, 60.0), None);
        assert!(out.command.mps2() < -0.5, "brakes when over set-speed");
    }

    #[test]
    fn holds_set_speed_at_steady_state() {
        let acc = AccController::new();
        let out = acc.control(&car(60.0, 60.0), None);
        assert!(out.command.mps2().abs() < 0.05);
    }

    #[test]
    fn brakes_for_close_slow_lead() {
        let acc = AccController::new();
        // 60 mph, lead at 30 m doing 35 mph: well inside the desired gap.
        let out = acc.control(&car(60.0, 60.0), Some(&lead(30.0, 35.0)));
        assert!(out.command.mps2() < -2.0, "firm braking, got {}", out.command);
        assert!(out.command.mps2() >= -3.5, "inside the envelope");
    }

    #[test]
    fn desired_can_exceed_command_when_demand_is_extreme() {
        let acc = AccController::new();
        // Emergency-grade situation: 10 m gap at 25 mph closing speed.
        let out = acc.control(&car(60.0, 60.0), Some(&lead(10.0, 35.0)));
        assert!(out.desired < out.command, "raw demand below the clamp");
        assert_eq!(out.command.mps2(), -3.5);
    }

    #[test]
    fn far_lead_does_not_override_cruise() {
        let acc = AccController::new();
        let out = acc.control(&car(55.0, 60.0), Some(&lead(140.0, 50.0)));
        assert!(out.command.mps2() > 0.0, "keeps accelerating toward cruise");
    }

    #[test]
    fn follows_lead_near_desired_gap() {
        let acc = AccController::new();
        // At the desired gap with matched speeds the command is ~zero.
        let v = Speed::from_mph(35.0);
        let gap = acc.desired_gap(v);
        let out = acc.control(&car(35.0, 60.0), Some(&lead(gap.raw(), 35.0)));
        assert!(out.command.mps2().abs() < 0.1);
    }

    #[test]
    fn command_always_within_strict_envelope() {
        let acc = AccController::new();
        for v in [0.0, 20.0, 40.0, 60.0, 80.0] {
            for l in [
                None,
                Some(lead(5.0, 0.0)),
                Some(lead(50.0, 35.0)),
                Some(lead(120.0, 70.0)),
            ] {
                let out = acc.control(&car(v, 60.0), l.as_ref());
                assert!(out.command.mps2() <= 2.0);
                assert!(out.command.mps2() >= -3.5);
            }
        }
    }
}
