//! The assembled ADAS: one object consuming sensor messages and producing
//! actuator CAN frames each 10 ms control cycle.

use canbus::CanFrame;
use msgbus::schema::{AlertKind, CarControl, CarState, ControlsState, GpsLocation, LaneModel, RadarState};
use msgbus::{Bus, Envelope, Payload, Subscriber, Topic};
use units::{Accel, Speed, Tick};

use crate::acc::AccOutput;
use crate::alc::AlcOutput;
use crate::degradation::{FAILSAFE_BRAKE, GENTLE_BRAKE};
use crate::plausibility::STALE_AFTER_TICKS;
use crate::safety;
use crate::{
    AccController, AlcController, AlertManager, CarStateEstimator, CommandEncoder,
    DegradationMonitor, DegradationState, GateConfig, LaneProcessor, LeadTracker,
    PerceptionGates,
};

/// Everything the ADAS produced in one control cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct AdasOutput {
    /// The high-level command (also published as `carControl`).
    pub control: CarControl,
    /// The actuator CAN frames (empty when disengaged).
    pub frames: Vec<CanFrame>,
    /// Alerts newly raised this cycle.
    pub new_alerts: Vec<AlertKind>,
    /// Whether the ADAS is engaged.
    pub engaged: bool,
    /// Longitudinal controller internals (desired vs. commanded).
    pub acc: AccOutput,
    /// Lateral controller internals (desired vs. commanded, saturation).
    pub alc: AlcOutput,
    /// Where the ADAS sits on the degradation ladder this cycle.
    pub degradation: DegradationState,
}

impl Default for AdasOutput {
    fn default() -> Self {
        Self {
            control: CarControl::default(),
            // adas-lint: allow(R13, reason = "capacity-0 placeholder — Vec::new never touches the heap; live outputs recycle their buffers through step_into")
            frames: Vec::new(),
            // adas-lint: allow(R13, reason = "capacity-0 placeholder — Vec::new never touches the heap; live outputs recycle their buffers through step_into")
            new_alerts: Vec::new(),
            engaged: false,
            acc: AccOutput {
                desired: Accel::ZERO,
                command: Accel::ZERO,
            },
            alc: AlcOutput {
                desired: units::Angle::ZERO,
                command: units::Angle::ZERO,
                saturated: false,
            },
            degradation: DegradationState::Nominal,
        }
    }
}

/// The OpenPilot-style ADAS process.
///
/// Subscribes to the sensor topics on construction, consumes the latest
/// sample of each per [`Adas::step`], and publishes `carState`, `carControl`
/// and `controlsState` back onto the bus — the exact surface the paper's
/// attacker eavesdrops on.
#[derive(Debug)]
pub struct Adas {
    bus: Bus,
    gps_sub: Subscriber,
    model_sub: Subscriber,
    radar_sub: Subscriber,
    state: CarStateEstimator,
    lanes: LaneProcessor,
    leads: LeadTracker,
    acc: AccController,
    alc: AlcController,
    alerts: AlertManager,
    degradation: DegradationMonitor,
    encoder: CommandEncoder,
    last_control: CarControl,
    /// Plausibility gates vetting each reading before fusion; `None` for
    /// the legacy watchdog-only configuration.
    gates: Option<PerceptionGates>,
    /// A rung an external detector asked to force before the next cycle.
    pending_force: Option<DegradationState>,
    /// Drain scratch, reused every cycle so steady-state ticks stay
    /// allocation-free.
    scratch: Vec<Envelope>,
}

impl Adas {
    /// Creates an ADAS engaged at the given cruise set-speed, subscribed to
    /// the sensor topics of `bus`.
    pub fn new(bus: &Bus, v_cruise: Speed) -> Self {
        Self {
            bus: bus.clone(),
            gps_sub: bus.subscribe(&[Topic::GpsLocationExternal]),
            model_sub: bus.subscribe(&[Topic::ModelV2]),
            radar_sub: bus.subscribe(&[Topic::RadarState]),
            state: CarStateEstimator::new(v_cruise),
            lanes: LaneProcessor::new(),
            leads: LeadTracker::new(),
            acc: AccController::new(),
            alc: AlcController::new(),
            alerts: AlertManager::new(),
            degradation: DegradationMonitor::new(),
            encoder: CommandEncoder::new(),
            last_control: CarControl::default(),
            gates: None,
            pending_force: None,
            scratch: Vec::new(),
        }
    }

    /// Like [`Adas::new`], but with plausibility gates vetting every sensor
    /// reading before the estimators fuse it (the `Observe`/`Degrade`/
    /// `FailSafe` defense policies).
    pub fn with_gates(bus: &Bus, v_cruise: Speed, cfg: GateConfig) -> Self {
        let mut adas = Self::new(bus, v_cruise);
        adas.gates = Some(PerceptionGates::new(cfg));
        adas
    }

    /// Asks the degradation ladder to escalate to at least `target` at the
    /// start of the next cycle (e.g. on a CAN-IDS alarm). Escalate-only and
    /// edge-triggered; the caller re-requests each tick while the evidence
    /// persists, and recovery runs through the normal hysteresis.
    pub fn request_degradation(&mut self, target: DegradationState) {
        self.pending_force = Some(match self.pending_force.take() {
            Some(prev) if prev.rank() >= target.rank() => prev,
            _ => target,
        });
    }

    /// Total sensor readings the plausibility gates flagged implausible
    /// (counted in observe mode too; 0 without gates).
    pub fn gate_rejections(&self) -> u64 {
        self.gates.as_ref().map_or(0, PerceptionGates::rejections)
    }

    /// Whether the ADAS is engaged.
    pub fn engaged(&self) -> bool {
        self.state.engaged()
    }

    /// Disengages lateral and longitudinal control (driver override). The
    /// ADAS keeps publishing state but stops commanding the actuators.
    pub fn disengage(&mut self) {
        self.state.disengage();
    }

    /// Total alert events raised so far.
    pub fn alert_events(&self) -> u64 {
        self.alerts.total_events()
    }

    /// Total FCW events raised so far (expected to remain zero, Observation 2).
    pub fn fcw_events(&self) -> u64 {
        self.alerts.fcw_events()
    }

    /// Where the ADAS currently sits on the degradation ladder.
    pub fn degradation(&self) -> DegradationState {
        self.degradation.state()
    }

    /// Runs one control cycle: drains sensor messages, updates estimators,
    /// computes ACC + ALC, raises alerts, publishes state and returns the
    /// actuator frames.
    pub fn step(&mut self, tick: Tick) -> AdasOutput {
        let mut out = AdasOutput::default();
        self.step_into(tick, &mut out);
        out
    }

    /// Allocation-free variant of [`step`](Self::step): overwrites `out`,
    /// reusing its `frames` and `new_alerts` buffers. A caller that hands the
    /// same [`AdasOutput`] back every cycle pays for the buffers once and
    /// then runs the whole control loop without touching the heap.
    pub fn step_into(&mut self, tick: Tick, out: &mut AdasOutput) {
        // Latest-sample-wins, like a real 100 Hz control loop. Each stream
        // also feeds its staleness watchdog: a tick with no message at all
        // is a module-level outage, distinct from a message reporting "no
        // detection". A message whose *sample timestamp* lags the current
        // tick by more than STALE_AFTER_TICKS is replayed history — it still
        // updates the estimators (it is the freshest content available) but
        // does not count as fresh, so the watchdog sees through a latency
        // fault republishing old readings. With gates attached, a reading
        // must also pass its plausibility checks to count.
        let mut gps_fresh = false;
        self.gps_sub.drain_into(&mut self.scratch);
        for env in &self.scratch {
            if let Payload::GpsLocationExternal(gps) = env.payload() {
                let admitted = match self.gates.as_mut() {
                    Some(g) => g.admit_gps(tick, gps, &self.state),
                    None => true,
                };
                if admitted {
                    self.state.update(gps, self.last_control.steer);
                    gps_fresh = tick - env.tick() <= STALE_AFTER_TICKS;
                }
            }
        }
        let mut cam_fresh = false;
        let mut cam_updated = false;
        self.model_sub.drain_into(&mut self.scratch);
        for env in &self.scratch {
            if let Payload::ModelV2(model) = env.payload() {
                let admitted = match self.gates.as_mut() {
                    Some(g) => g.admit_lane(tick, model),
                    None => true,
                };
                if admitted {
                    self.lanes.update(model);
                    cam_updated = true;
                    cam_fresh = tick - env.tick() <= STALE_AFTER_TICKS;
                }
            }
        }
        let mut radar_fresh = false;
        let mut radar_updated = false;
        self.radar_sub.drain_into(&mut self.scratch);
        for env in &self.scratch {
            if let Payload::RadarState(radar) = env.payload() {
                let admitted = match self.gates.as_mut() {
                    Some(g) => g.admit_radar(tick, radar, &self.leads),
                    None => true,
                };
                if admitted {
                    self.leads.update(radar);
                    radar_updated = true;
                    radar_fresh = tick - env.tick() <= STALE_AFTER_TICKS;
                }
            }
        }

        // Coast the estimators through the outage: lane confidence decays,
        // the lead track holds-then-invalidates instead of freezing stale.
        // A gate-rejected reading coasts like silence; a stale-but-admitted
        // reading already updated the estimator and must not double-advance.
        if !cam_updated {
            self.lanes.coast();
        }
        if !radar_updated {
            self.leads.coast();
        }
        self.finish_cycle(tick, gps_fresh, cam_fresh, radar_fresh, Emit::Bus, out);
    }

    /// Bus-free control cycle for batched lanes: the caller hands this
    /// tick's sensor samples directly (the harness publishes exactly one
    /// message per stream per tick, so latest-sample-wins draining and a
    /// direct feed see identical readings, all fresh) and the cycle skips
    /// the pub/sub hop entirely. With `encode_frames` the actuator frames
    /// are produced as usual (a man-in-the-middle wants real bytes);
    /// without it the encoder's rolling counters still advance and the
    /// returned [`DirectCycle::quantized`] carries the command the actuator
    /// side would have decoded.
    ///
    /// Plausibility gates are bypassed — batched lanes only take this path
    /// when no detectors are attached; a defended run steps the scalar way.
    pub fn step_direct(
        &mut self,
        tick: Tick,
        gps: &GpsLocation,
        lane: &LaneModel,
        radar: &RadarState,
        encode_frames: bool,
        out: &mut AdasOutput,
    ) -> DirectCycle {
        self.state.update(gps, self.last_control.steer);
        self.lanes.update(lane);
        self.leads.update(radar);
        self.finish_cycle(
            tick,
            true,
            true,
            true,
            Emit::Direct {
                encode: encode_frames,
            },
            out,
        )
    }

    /// Everything downstream of sensor ingestion — the control cycle shared
    /// by [`step_into`](Self::step_into) and [`step_direct`](Self::step_direct),
    /// so the two entry points cannot drift apart.
    fn finish_cycle(
        &mut self,
        tick: Tick,
        gps_fresh: bool,
        cam_fresh: bool,
        radar_fresh: bool,
        emit: Emit,
        out: &mut AdasOutput,
    ) -> DirectCycle {
        // An externally requested rung (CAN IDS alarm under an acting
        // policy) lands before the watchdogs step, so this cycle's control
        // authority already reflects it.
        let forced_alert = self
            .pending_force
            .take()
            .and_then(|target| self.degradation.force(target));
        let degradation_alert = self.degradation.step(gps_fresh, cam_fresh, radar_fresh);
        let degradation = self.degradation.state();

        let car = self.state.state();
        let lead = self.leads.lead();
        let engaged = self.state.engaged();

        let acc_out = self.acc.control(&car, lead.as_ref());
        let lane_est = self.lanes.estimate();
        let alc_out = self.alc.control(&lane_est);

        let control = if engaged {
            // Fail-closed authority: ACC output is replaced by a fixed
            // brake on the degraded rungs, and steering authority scales
            // with lane confidence (exactly 1.0 while the camera is
            // healthy, so nominal runs are bit-identical).
            let accel = match degradation {
                DegradationState::Nominal | DegradationState::DegradedAlcOff => acc_out.command,
                DegradationState::DegradedAccOff => GENTLE_BRAKE,
                DegradationState::FailSafe => FAILSAFE_BRAKE,
            };
            CarControl {
                accel,
                steer: alc_out.command * lane_est.confidence,
            }
        } else {
            CarControl::default()
        };
        // Terminal envelope: every path into the encoder passes this clamp
        // (the invariant adas-lint R9 proves). No-op on the nominal path —
        // ACC and ALC outputs are already clamped tighter upstream.
        let control = safety::envelope_clamp(control);
        self.last_control = control;

        let brake = control.accel.min(Accel::ZERO);
        self.alerts
            .step_into(engaged && alc_out.saturated, brake, &mut out.new_alerts);
        if let Some(kind) = forced_alert {
            // adas-lint: allow(R13, reason = "append into the caller's cleared, capacity-retaining output buffer (≤1 per cycle) — amortized after the first cycles")
            out.new_alerts.push(kind);
        }
        if let Some(kind) = degradation_alert {
            // adas-lint: allow(R13, reason = "append into the caller's cleared, capacity-retaining output buffer (≤1 per cycle) — amortized after the first cycles")
            out.new_alerts.push(kind);
        }

        let mut quantized = None;
        match emit {
            Emit::Bus => {
                // Publish the internal state the attacker can observe.
                // Cloning an empty alert list is allocation-free, and alert
                // ticks are rare.
                self.bus.publish(tick, Payload::CarState(car));
                self.bus.publish(tick, Payload::CarControl(control));
                self.bus.publish(
                    tick,
                    Payload::ControlsState(ControlsState {
                        engaged,
                        alerts: out.new_alerts.clone(),
                    }),
                );
                // Fail safe: if a command somehow escapes its clamp, send no
                // frames at all (actuators hold/coast) rather than panicking
                // mid-drive.
                if !engaged || self.encoder.encode_into(&control, &mut out.frames).is_err() {
                    out.frames.clear();
                }
            }
            Emit::Direct { encode: true } => {
                if !engaged || self.encoder.encode_into(&control, &mut out.frames).is_err() {
                    out.frames.clear();
                }
            }
            Emit::Direct { encode: false } => {
                // No one on this lane inspects the wire this cycle: skip the
                // frame bytes but keep counter parity and quantization, so
                // the actuator sees bit-identical commands either way. An
                // encode-path error maps to `None` — hold the last command,
                // exactly what an empty frame batch decodes to.
                out.frames.clear();
                if engaged {
                    quantized = self.encoder.quantize_cycle(&control).ok();
                }
            }
        }

        out.control = control;
        out.engaged = engaged;
        out.acc = acc_out;
        out.alc = alc_out;
        out.degradation = degradation;
        DirectCycle { car, quantized }
    }
}

/// Where one control cycle's outputs go: onto the bus and the wire (the
/// scalar harness), or straight back to the caller (a batched lane).
enum Emit {
    /// Publish `carState`/`carControl`/`controlsState` and encode frames.
    Bus,
    /// Skip the bus; encode frames only when someone will inspect them.
    Direct {
        /// Whether to materialize actuator frames this cycle.
        encode: bool,
    },
}

/// What a bus-free control cycle produced beyond the [`AdasOutput`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DirectCycle {
    /// The `carState` the cycle would have published (the attacker's tap).
    pub car: CarState,
    /// The command the actuator side would decode this cycle when frames
    /// were skipped (`None`: hold the last command — disengaged, a real
    /// frame batch was encoded instead, or the encode path errored).
    pub quantized: Option<CarControl>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use msgbus::schema::{GpsLocation, LaneModel, LeadTrack, RadarState};
    use units::{Angle, Distance};

    fn publish_sensors(bus: &Bus, tick: Tick, v: f64, offset: f64, lead: Option<(f64, f64)>) {
        bus.publish(
            tick,
            Payload::GpsLocationExternal(GpsLocation {
                speed: Speed::from_mps(v),
                bearing: Angle::ZERO,
            }),
        );
        let half = 1.85;
        bus.publish(
            tick,
            Payload::ModelV2(LaneModel {
                left_line: Distance::meters(half - offset),
                right_line: Distance::meters(half + offset),
                lane_width: Distance::meters(3.7),
                curvature: 1.0 / 800.0,
            }),
        );
        bus.publish(
            tick,
            Payload::RadarState(RadarState {
                lead: lead.map(|(d, vl)| LeadTrack {
                    d_rel: Distance::meters(d),
                    v_lead: Speed::from_mps(vl),
                    a_lead: Accel::ZERO,
                }),
            }),
        );
    }

    #[test]
    fn cruise_without_lead_accelerates_to_set_speed() {
        let bus = Bus::new();
        let mut adas = Adas::new(&bus, Speed::from_mph(60.0));
        let mut out = None;
        for i in 0..50 {
            publish_sensors(&bus, Tick::new(i), 20.0, 0.0, None);
            out = Some(adas.step(Tick::new(i)));
        }
        let out = out.unwrap();
        assert!(out.engaged);
        assert!(out.control.accel.mps2() > 1.0, "well below set speed");
        assert_eq!(out.frames.len(), 3);
    }

    #[test]
    fn brakes_for_slow_lead() {
        let bus = Bus::new();
        let mut adas = Adas::new(&bus, Speed::from_mph(60.0));
        for i in 0..50 {
            publish_sensors(&bus, Tick::new(i), 26.8, 0.0, Some((25.0, 15.6)));
            adas.step(Tick::new(i));
        }
        publish_sensors(&bus, Tick::new(50), 26.8, 0.0, Some((25.0, 15.6)));
        let out = adas.step(Tick::new(50));
        assert!(out.control.accel.mps2() < -1.0, "got {}", out.control.accel);
    }

    #[test]
    fn steers_back_toward_centre() {
        let bus = Bus::new();
        let mut adas = Adas::new(&bus, Speed::from_mph(60.0));
        for i in 0..100 {
            publish_sensors(&bus, Tick::new(i), 26.8, -0.5, None);
            adas.step(Tick::new(i));
        }
        publish_sensors(&bus, Tick::new(100), 26.8, -0.5, None);
        let out = adas.step(Tick::new(100));
        // Right of centre on a left curve: definitely steering left.
        assert!(out.control.steer.degrees() > 0.2, "got {}", out.control.steer);
    }

    #[test]
    fn disengage_stops_frames_but_not_state() {
        let bus = Bus::new();
        let mut state_sub = bus.subscribe(&[Topic::CarState]);
        let mut adas = Adas::new(&bus, Speed::from_mph(60.0));
        publish_sensors(&bus, Tick::ZERO, 26.8, 0.0, None);
        adas.disengage();
        let out = adas.step(Tick::ZERO);
        assert!(!out.engaged);
        assert!(out.frames.is_empty());
        assert_eq!(out.control, CarControl::default());
        assert_eq!(state_sub.drain().len(), 1, "state still published");
    }

    #[test]
    fn publishes_control_topics_every_cycle() {
        let bus = Bus::new();
        let mut sub = bus.subscribe(&[Topic::CarControl, Topic::ControlsState]);
        let mut adas = Adas::new(&bus, Speed::from_mph(60.0));
        publish_sensors(&bus, Tick::ZERO, 26.8, 0.0, None);
        adas.step(Tick::ZERO);
        assert_eq!(sub.drain().len(), 2);
    }

    #[test]
    fn sustained_offset_saturates_and_alerts() {
        let bus = Bus::new();
        let mut adas = Adas::new(&bus, Speed::from_mph(60.0));
        let mut alerted = false;
        for i in 0..500 {
            // A 6 m offset (two lanes out) demands far more steering than
            // the limit, sustained well past the alert debounce.
            publish_sensors(&bus, Tick::new(i), 26.8, 6.0, None);
            let out = adas.step(Tick::new(i));
            if out.new_alerts.contains(&AlertKind::SteerSaturated) {
                alerted = true;
            }
        }
        assert!(alerted, "steerSaturated raised for a large sustained offset");
        assert_eq!(adas.fcw_events(), 0);
    }
}
