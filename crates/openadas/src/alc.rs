//! Automated Lane Centering: the lateral controller.

use serde::{Deserialize, Serialize};
use units::{Angle, Distance};

use crate::perception::LaneEstimate;
use crate::SafetyLimits;

/// Lateral control output, before and after the safety clamp.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AlcOutput {
    /// The raw desired road-wheel angle (drives the steer-saturated alert).
    pub desired: Angle,
    /// The clamped command sent toward the actuators.
    pub command: Angle,
    /// Whether the desired angle exceeded the saturation limit this cycle.
    pub saturated: bool,
}

/// A feed-forward + PD lane-centering controller.
///
/// Feed-forward holds the road curvature (`δ_ff = atan(L κ)`); the PD terms
/// pull the car back to the lane centre. Gains are deliberately soft — like
/// the system the paper measured, the controller does "not keep the Ego
/// vehicle in the center of the lane at all times" (Observation 1): sensor
/// drift walks the car around the lane and occasionally onto a lane line.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AlcController {
    /// Wheelbase used for the curvature feed-forward.
    pub wheelbase: Distance,
    /// Steering-column ratio: the controller computes a road-wheel angle
    /// and commands `ratio ×` that at the steering wheel.
    pub steering_ratio: f64,
    /// Proportional gain: radians of road-wheel angle per metre of offset.
    pub k_p: f64,
    /// Derivative gain: radians per (m/s) of lateral rate.
    pub k_d: f64,
    /// Lateral set-point relative to the lane centre. OpenPilot-class lane
    /// centering is known to hug the outside of a curve slightly; on the
    /// paper's left curve that is the right-hand side — the bias behind the
    /// ego being "initialized to a lane closer to the right guardrail".
    pub offset_setpoint: Distance,
    /// Saturation threshold on the *desired* angle; exceeding it sustained
    /// raises the `steerSaturated` alert.
    pub saturation_limit: Angle,
    limits: SafetyLimits,
}

impl Default for AlcController {
    fn default() -> Self {
        Self {
            wheelbase: Distance::meters(2.7),
            steering_ratio: 2.0,
            k_p: 0.0020,
            k_d: 0.0040,
            offset_setpoint: Distance::meters(-0.2),
            saturation_limit: Angle::from_degrees(1.25),
            limits: SafetyLimits::software(),
        }
    }
}

impl AlcController {
    /// Creates the default controller.
    pub fn new() -> Self {
        Self::default()
    }

    /// Computes the steering command for this cycle.
    ///
    /// The proportional term is piecewise: soft inside the normal wander
    /// band (±0.6 m of the set-point), three times stiffer beyond it. The
    /// soft inner band reproduces the paper's imperfect lane-centering; the
    /// stiff outer band is the "1-second delay before the vehicle
    /// significantly deviates from its original path" guarantee — the
    /// controller genuinely fights a real departure.
    pub fn control(&self, lane: &LaneEstimate) -> AlcOutput {
        let ff = (self.wheelbase.raw() * lane.curvature).atan();
        let err = lane.offset.raw() - self.offset_setpoint.raw();
        let band = 0.6;
        let shaped_err = if err.abs() <= band {
            err
        } else {
            err.signum() * (band + 3.0 * (err.abs() - band))
        };
        let correction = -self.k_p * shaped_err - self.k_d * lane.offset_rate.mps();
        let desired = Angle::from_radians(self.steering_ratio * (ff + correction));
        let saturated = desired.abs() > self.saturation_limit;
        AlcOutput {
            desired,
            command: self.limits.clamp_steer(desired),
            saturated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use units::Speed;

    fn lane(offset: f64, rate: f64, curvature: f64) -> LaneEstimate {
        LaneEstimate {
            offset: Distance::meters(offset),
            offset_rate: Speed::from_mps(rate),
            curvature,
            left_line: Distance::meters(1.85 - offset),
            right_line: Distance::meters(1.85 + offset),
            confidence: 1.0,
        }
    }

    #[test]
    fn feed_forward_matches_curvature() {
        let alc = AlcController::new();
        // Sitting exactly on the set-point of the paper's R = 800 m left
        // curve: the command is the pure curvature feed-forward.
        let out = alc.control(&lane(alc.offset_setpoint.raw(), 0.0, 1.0 / 2500.0));
        let expected = (alc.steering_ratio * (2.7f64 / 2500.0).atan()).to_degrees();
        assert!((out.command.degrees() - expected).abs() < 1e-9);
        assert!(!out.saturated);
    }

    #[test]
    fn corrects_toward_centre() {
        let alc = AlcController::new();
        // Car left of centre: steer right (negative).
        let out = alc.control(&lane(0.5, 0.0, 0.0));
        assert!(out.command.radians() < 0.0);
        // Car right of centre: steer left.
        let out = alc.control(&lane(-0.5, 0.0, 0.0));
        assert!(out.command.radians() > 0.0);
    }

    #[test]
    fn derivative_damps_motion() {
        let alc = AlcController::new();
        // Centred but moving left fast: pre-emptively steer right.
        let out = alc.control(&lane(0.0, 1.0, 0.0));
        assert!(out.command.radians() < 0.0);
    }

    #[test]
    fn saturation_flag_and_clamp() {
        let alc = AlcController::new();
        // A 3 m offset demands far more than 0.5 degrees.
        let out = alc.control(&lane(-3.0, -1.0, 0.0));
        assert!(out.saturated);
        assert_eq!(out.command, Angle::from_degrees(0.5), "clamped at limit");
        assert!(out.desired > out.command);
    }

    #[test]
    fn normal_lane_keeping_never_saturates() {
        let alc = AlcController::new();
        // Typical operating range on the paper's curve: |offset| < 1 m.
        for offset10 in -10..=10 {
            let offset = offset10 as f64 / 10.0;
            let out = alc.control(&lane(offset, 0.0, 1.0 / 800.0));
            assert!(
                !out.saturated,
                "offset {offset} m must not saturate (desired {})",
                out.desired
            );
        }
    }
}
