//! The ADAS output safety envelope.
//!
//! Two nested envelopes exist in the paper (Table III):
//!
//! * the **software limits** OpenPilot's control code enforces on its own
//!   outputs — `accel ≤ 2.4 m/s²`, `brake ≥ −4.0 m/s²`, `|steer| ≤ 0.5°`.
//!   The *fixed* attack values sit exactly at these limits, so they pass the
//!   software checks;
//! * the **strict limits** used by the Panda firmware checks, the driver's
//!   anomaly perception, and the strategic value corruption —
//!   `accel ≤ 2.0 m/s²`, `brake ≥ −3.5 m/s²`, `|steer| ≤ 0.25°`, plus
//!   `speed ≤ 1.1 × v_cruise`.

use msgbus::schema::CarControl;
use serde::{Deserialize, Serialize};
use units::{limits, Accel, Angle, Speed};

/// A set of actuator-output limits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SafetyLimits {
    /// Maximum commanded acceleration.
    pub accel_max: Accel,
    /// Strongest commanded deceleration (negative).
    pub brake_min: Accel,
    /// Maximum commanded road-wheel steering magnitude.
    pub steer_max: Angle,
    /// Speed ceiling as a multiple of the cruise set-speed.
    pub overspeed_factor: f64,
}

impl SafetyLimits {
    /// OpenPilot's software output limits (Table III footnote 1), sourced
    /// from the canonical [`units::limits`] module.
    pub fn software() -> Self {
        Self {
            accel_max: Accel::from_mps2(limits::SW_ACCEL_MAX_MPS2),
            brake_min: Accel::from_mps2(limits::SW_BRAKE_MIN_MPS2),
            steer_max: Angle::from_degrees(limits::SW_STEER_MAX_DEG),
            overspeed_factor: limits::SW_OVERSPEED_FACTOR,
        }
    }

    /// The strict envelope: Panda-style firmware checks, the driver's
    /// anomaly thresholds, and the strategic corruption limits (Table III
    /// footnote 2 and Eq. 1).
    pub fn strict() -> Self {
        Self {
            accel_max: Accel::from_mps2(limits::STRICT_ACCEL_MAX_MPS2),
            brake_min: Accel::from_mps2(limits::STRICT_BRAKE_MIN_MPS2),
            steer_max: Angle::from_degrees(limits::STRICT_STEER_MAX_DEG),
            overspeed_factor: limits::STRICT_OVERSPEED_FACTOR,
        }
    }

    /// Clamps a longitudinal command into the envelope.
    pub fn clamp_accel(&self, a: Accel) -> Accel {
        a.clamp(self.brake_min, self.accel_max)
    }

    /// Clamps a steering command into the envelope.
    pub fn clamp_steer(&self, s: Angle) -> Angle {
        s.clamp(-self.steer_max, self.steer_max)
    }

    /// Whether a longitudinal command is *within* the envelope (boundary
    /// values pass — the reason fixed attack values evade the software
    /// checks).
    pub fn accel_ok(&self, a: Accel) -> bool {
        a <= self.accel_max && a >= self.brake_min
    }

    /// Whether a steering command is within the envelope.
    pub fn steer_ok(&self, s: Angle) -> bool {
        s.abs() <= self.steer_max
    }

    /// Whether a speed is within the overspeed ceiling for a given cruise
    /// set-speed.
    pub fn speed_ok(&self, v: Speed, v_cruise: Speed) -> bool {
        v.mps() <= v_cruise.mps() * self.overspeed_factor
    }
}

/// The final output envelope: clamps an assembled control command into the
/// software limits immediately before it reaches the CAN encoder.
///
/// This is the stage adas-lint R9 anchors its proof on — the bounds are
/// spelled as literals from the canonical [`units::limits`] module so the
/// abstract interpreter can verify that everything flowing into
/// `CommandEncoder::encode_into` lies inside the physical plant limits. On
/// the nominal path the clamp is a no-op (the ACC command is already
/// strict-clamped and the ALC command software-clamped), but it converts
/// "every upstream stage behaved" from an assumption into a local
/// invariant.
pub fn envelope_clamp(control: CarControl) -> CarControl {
    CarControl {
        accel: control.accel.clamp(
            Accel::from_mps2(limits::SW_BRAKE_MIN_MPS2),
            Accel::from_mps2(limits::SW_ACCEL_MAX_MPS2),
        ),
        steer: control.steer.clamp(
            Angle::from_degrees(-limits::SW_STEER_MAX_DEG),
            Angle::from_degrees(limits::SW_STEER_MAX_DEG),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_is_tighter_than_software() {
        let sw = SafetyLimits::software();
        let st = SafetyLimits::strict();
        assert!(st.accel_max < sw.accel_max);
        assert!(st.brake_min > sw.brake_min);
        assert!(st.steer_max < sw.steer_max);
    }

    #[test]
    fn fixed_attack_values_pass_software_but_fail_strict() {
        // Table III: fixed = (2.4, -4.0, 0.5 deg); strategic = (2.0, -3.5, 0.25 deg).
        let sw = SafetyLimits::software();
        let st = SafetyLimits::strict();
        assert!(sw.accel_ok(Accel::from_mps2(2.4)));
        assert!(sw.accel_ok(Accel::from_mps2(-4.0)));
        assert!(sw.steer_ok(Angle::from_degrees(0.5)));
        assert!(!st.accel_ok(Accel::from_mps2(2.4)));
        assert!(!st.accel_ok(Accel::from_mps2(-4.0)));
        assert!(!st.steer_ok(Angle::from_degrees(0.5)));
    }

    #[test]
    fn strategic_values_pass_both() {
        for limits in [SafetyLimits::software(), SafetyLimits::strict()] {
            assert!(limits.accel_ok(Accel::from_mps2(2.0)));
            assert!(limits.accel_ok(Accel::from_mps2(-3.5)));
            assert!(limits.steer_ok(Angle::from_degrees(0.25)));
            assert!(limits.steer_ok(Angle::from_degrees(-0.25)));
        }
    }

    #[test]
    fn clamping() {
        let st = SafetyLimits::strict();
        assert_eq!(st.clamp_accel(Accel::from_mps2(5.0)), Accel::from_mps2(2.0));
        assert_eq!(st.clamp_accel(Accel::from_mps2(-9.0)), Accel::from_mps2(-3.5));
        assert_eq!(
            st.clamp_steer(Angle::from_degrees(1.0)),
            Angle::from_degrees(0.25)
        );
    }

    #[test]
    fn overspeed_check() {
        let st = SafetyLimits::strict();
        let cruise = Speed::from_mph(60.0);
        assert!(st.speed_ok(Speed::from_mph(65.9), cruise));
        assert!(!st.speed_ok(Speed::from_mph(66.1), cruise));
    }
}
