//! Lead-vehicle tracking from `radarState` samples.

use msgbus::schema::{LeadTrack, RadarState};
use serde::{Deserialize, Serialize};
use units::{Accel, Distance, Speed};

use crate::Kalman1D;

/// A smoothed lead estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeadEstimate {
    /// Smoothed gap to the lead.
    pub d_rel: Distance,
    /// Smoothed lead speed.
    pub v_lead: Speed,
    /// Lead acceleration as reported by the radar pipeline.
    pub a_lead: Accel,
}

/// Tracks the primary lead with a pair of scalar Kalman filters, coasting
/// through short dropouts the way OpenPilot's radard does.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LeadTracker {
    dist: Option<Kalman1D>,
    speed: Option<Kalman1D>,
    a_lead: Accel,
    /// Consecutive samples without a detection.
    dropout: u32,
    /// Detections needed before the track is published.
    confirm: u32,
}

/// Samples the track survives without a detection before being dropped
/// (0.3 s at 100 Hz).
const MAX_DROPOUT: u32 = 30;
/// Detections needed to confirm a new track.
const CONFIRM_SAMPLES: u32 = 5;

impl Default for LeadTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl LeadTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self {
            dist: None,
            speed: None,
            a_lead: Accel::ZERO,
            dropout: 0,
            confirm: 0,
        }
    }

    /// The confirmed lead estimate, if any.
    pub fn lead(&self) -> Option<LeadEstimate> {
        if self.confirm < CONFIRM_SAMPLES {
            return None;
        }
        match (&self.dist, &self.speed) {
            (Some(d), Some(v)) => Some(LeadEstimate {
                d_rel: Distance::meters(d.estimate()),
                v_lead: Speed::from_mps(v.estimate()),
                a_lead: self.a_lead,
            }),
            _ => None,
        }
    }

    /// Normalized innovations `(distance, speed)` a detection would have
    /// against the current track filters, or `None` when there is no track
    /// to compare against (the gate then falls back to its jump limits).
    // adas-lint: allow(R1, reason = "normalized innovations are dimensionless (residual over its own sigma)")
    pub fn innovations(&self, lead: &LeadTrack) -> Option<(f64, f64)> {
        match (&self.dist, &self.speed) {
            (Some(d), Some(v)) => Some((
                d.normalized_innovation(lead.d_rel.raw()),
                v.normalized_innovation(lead.v_lead.mps()),
            )),
            _ => None,
        }
    }

    /// Feeds one radar sample.
    pub fn update(&mut self, radar: &RadarState) -> Option<LeadEstimate> {
        match radar.lead {
            Some(LeadTrack { d_rel, v_lead, a_lead }) => {
                self.dropout = 0;
                self.confirm = (self.confirm + 1).min(CONFIRM_SAMPLES);
                self.a_lead = a_lead;
                match (&mut self.dist, &mut self.speed) {
                    (Some(d), Some(v)) => {
                        // Gap closes at (v_lead - v_ego); we fold that into the
                        // measurement update rather than tracking ego speed here.
                        d.predict(0.0);
                        d.update(d_rel.raw());
                        v.predict(0.0);
                        v.update(v_lead.mps());
                    }
                    _ => {
                        self.dist = Some(Kalman1D::new(d_rel.raw(), 1.0, 0.05, 0.25));
                        self.speed = Some(Kalman1D::new(v_lead.mps(), 1.0, 0.05, 0.15));
                    }
                }
            }
            None => {
                self.dropout += 1;
                if self.dropout > MAX_DROPOUT {
                    self.dist = None;
                    self.speed = None;
                    self.confirm = 0;
                }
            }
        }
        self.lead()
    }

    /// Advances the track one tick with *no* radar message at all — the
    /// radar module went silent, as opposed to a received `radarState`
    /// carrying no detection (that is [`Self::update`] with `lead: None`).
    ///
    /// The filters coast: the state holds while the variance inflates, so a
    /// reading after a short outage is fused with an honestly low
    /// confidence. After the same [`MAX_DROPOUT`] window as a detection
    /// loss, the track is invalidated — coast-then-invalidate, never
    /// coast-forever.
    pub fn coast(&mut self) {
        if let Some(d) = self.dist.as_mut() {
            d.predict(0.0);
        }
        if let Some(v) = self.speed.as_mut() {
            v.predict(0.0);
        }
        self.dropout = self.dropout.saturating_add(1);
        if self.dropout > MAX_DROPOUT {
            self.dist = None;
            self.speed = None;
            self.confirm = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(d: f64, v: f64) -> RadarState {
        RadarState {
            lead: Some(LeadTrack {
                d_rel: Distance::meters(d),
                v_lead: Speed::from_mps(v),
                a_lead: Accel::ZERO,
            }),
        }
    }

    #[test]
    fn track_requires_confirmation() {
        let mut t = LeadTracker::new();
        for i in 0..4 {
            assert!(t.update(&sample(50.0, 15.0)).is_none(), "sample {i}");
        }
        assert!(t.update(&sample(50.0, 15.0)).is_some(), "confirmed on 5th");
    }

    #[test]
    fn estimates_converge_to_truth() {
        let mut t = LeadTracker::new();
        for _ in 0..100 {
            t.update(&sample(42.0, 18.0));
        }
        let lead = t.lead().unwrap();
        assert!((lead.d_rel.raw() - 42.0).abs() < 0.2);
        assert!((lead.v_lead.mps() - 18.0).abs() < 0.2);
    }

    #[test]
    fn coasts_through_short_dropout() {
        let mut t = LeadTracker::new();
        for _ in 0..20 {
            t.update(&sample(42.0, 18.0));
        }
        for _ in 0..10 {
            assert!(t.update(&RadarState { lead: None }).is_some());
        }
    }

    #[test]
    fn long_dropout_drops_track() {
        let mut t = LeadTracker::new();
        for _ in 0..20 {
            t.update(&sample(42.0, 18.0));
        }
        for _ in 0..(MAX_DROPOUT + 1) {
            t.update(&RadarState { lead: None });
        }
        assert!(t.lead().is_none());
        // And re-acquiring requires fresh confirmation.
        for i in 0..4 {
            assert!(t.update(&sample(30.0, 10.0)).is_none(), "sample {i}");
        }
        assert!(t.update(&sample(30.0, 10.0)).is_some());
    }

    #[test]
    fn coast_holds_then_invalidates() {
        let mut t = LeadTracker::new();
        for _ in 0..20 {
            t.update(&sample(42.0, 18.0));
        }
        let before = t.lead().unwrap();
        // Short silence: the estimate coasts, essentially unchanged.
        for _ in 0..MAX_DROPOUT {
            t.coast();
        }
        let coasted = t.lead().expect("track survives the coast window");
        assert!((coasted.d_rel.raw() - before.d_rel.raw()).abs() < 1e-9);
        // One tick past the window: fail closed, no stale lead.
        t.coast();
        assert!(t.lead().is_none());
    }

    #[test]
    fn coast_inflates_variance_for_reacquisition() {
        let mut t = LeadTracker::new();
        for _ in 0..100 {
            t.update(&sample(42.0, 18.0));
        }
        for _ in 0..10 {
            t.coast();
        }
        // The post-outage measurement is trusted more than the coasted
        // prior: the estimate jumps most of the way to the new reading.
        let est = t.update(&sample(45.0, 18.0)).unwrap();
        assert!(est.d_rel.raw() > 43.5, "fresh reading dominates: {}", est.d_rel.raw());
    }
}
