//! A scalar Kalman filter.
//!
//! Used twice in this reproduction, mirroring the paper: the ADAS smooths its
//! speed estimate with it, and the attack engine uses the same filter (Eq. 3)
//! to predict the ego speed one step ahead when choosing strategic values.

use serde::{Deserialize, Serialize};

/// A one-dimensional Kalman filter over a random-walk-with-drift state.
///
/// # Examples
///
/// ```
/// use openadas::Kalman1D;
///
/// let mut kf = Kalman1D::new(26.8, 1.0, 0.01, 0.05);
/// // Predict constant speed, then fuse a noisy measurement.
/// kf.predict(0.0);
/// kf.update(26.9);
/// assert!((kf.estimate() - 26.85).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Kalman1D {
    x: f64,
    p: f64,
    q: f64,
    r: f64,
    last_gain: f64,
}

impl Kalman1D {
    /// Creates a filter with initial state `x0`, initial variance `p0`,
    /// process noise `q` and measurement noise `r` (both variances).
    ///
    /// # Panics
    ///
    /// Panics if `q`, `r` or `p0` are not positive.
    // adas-lint: allow(R1, reason = "filter is quantity-generic: it smooths speeds for the ADAS and predictions for the attack engine; x0 is in the caller's unit, p0/q/r are variances (dimensionless here)")
    pub fn new(x0: f64, p0: f64, q: f64, r: f64) -> Self {
        assert!(p0 > 0.0 && q > 0.0 && r > 0.0, "variances must be positive");
        Self {
            x: x0,
            p: p0,
            q,
            r,
            last_gain: 0.0,
        }
    }

    /// Current state estimate.
    // adas-lint: allow(R1, reason = "estimate is in whatever unit the caller filters; wrapping it would pin the filter to one quantity")
    pub fn estimate(&self) -> f64 {
        self.x
    }

    /// Current estimate variance.
    // adas-lint: allow(R1, reason = "variance of the filtered quantity; squared-unit newtypes do not exist in units::")
    pub fn variance(&self) -> f64 {
        self.p
    }

    /// The Kalman gain used by the most recent [`Self::update`] — the
    /// `K_t` of the paper's Eq. 3.
    // adas-lint: allow(R1, reason = "Kalman gain K_t is a dimensionless blend factor in [0, 1]")
    pub fn last_gain(&self) -> f64 {
        self.last_gain
    }

    /// Time-update: shifts the state by a known control increment `du`
    /// (e.g. `accel * dt`) and inflates the variance.
    // adas-lint: allow(R1, reason = "control increment in the caller's unit (e.g. accel*dt as m/s); the filter stays quantity-generic")
    pub fn predict(&mut self, du: f64) {
        self.x += du;
        self.p += self.q;
    }

    /// Measurement-update: fuses measurement `z`, returning the new
    /// estimate. Implements `x <- x + K (z - x)`.
    // adas-lint: allow(R1, reason = "measurement and estimate are in the caller's unit; the filter stays quantity-generic")
    pub fn update(&mut self, z: f64) -> f64 {
        let k = self.p / (self.p + self.r);
        self.last_gain = k;
        self.x += k * (z - self.x);
        self.p *= 1.0 - k;
        self.x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_to_constant_signal() {
        let mut kf = Kalman1D::new(0.0, 10.0, 1e-4, 0.25);
        for _ in 0..200 {
            kf.predict(0.0);
            kf.update(5.0);
        }
        assert!((kf.estimate() - 5.0).abs() < 0.01);
        assert!(kf.variance() < 0.05);
    }

    #[test]
    fn tracks_a_ramp_with_known_control() {
        let mut kf = Kalman1D::new(0.0, 1.0, 1e-3, 0.1);
        let mut truth = 0.0;
        for _ in 0..500 {
            truth += 0.02; // 2 m/s^2 * 10 ms
            kf.predict(0.02);
            kf.update(truth + 0.01); // small bias in measurement
        }
        assert!((kf.estimate() - truth).abs() < 0.05);
    }

    #[test]
    fn gain_shrinks_as_confidence_grows() {
        let mut kf = Kalman1D::new(0.0, 10.0, 1e-6, 1.0);
        kf.predict(0.0);
        kf.update(1.0);
        let early_gain = kf.last_gain();
        for _ in 0..100 {
            kf.predict(0.0);
            kf.update(1.0);
        }
        assert!(kf.last_gain() < early_gain);
        assert!(kf.last_gain() > 0.0);
    }

    #[test]
    fn noisy_measurements_are_smoothed() {
        // Deterministic "noise": alternate +-0.5 around 10.
        let mut kf = Kalman1D::new(10.0, 0.5, 1e-4, 0.5);
        let mut worst: f64 = 0.0;
        for i in 0..400 {
            kf.predict(0.0);
            let z = 10.0 + if i % 2 == 0 { 0.5 } else { -0.5 };
            kf.update(z);
            if i > 50 {
                worst = worst.max((kf.estimate() - 10.0).abs());
            }
        }
        assert!(worst < 0.1, "filter output varies far less than input");
    }

    #[test]
    #[should_panic(expected = "variances must be positive")]
    fn rejects_non_positive_variance() {
        let _ = Kalman1D::new(0.0, 0.0, 0.01, 0.1);
    }
}
