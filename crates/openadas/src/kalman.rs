//! A scalar Kalman filter.
//!
//! Used twice in this reproduction, mirroring the paper: the ADAS smooths its
//! speed estimate with it, and the attack engine uses the same filter (Eq. 3)
//! to predict the ego speed one step ahead when choosing strategic values.

use serde::{Deserialize, Serialize};

/// A one-dimensional Kalman filter over a random-walk-with-drift state.
///
/// # Examples
///
/// ```
/// use openadas::Kalman1D;
///
/// let mut kf = Kalman1D::new(26.8, 1.0, 0.01, 0.05);
/// // Predict constant speed, then fuse a noisy measurement.
/// kf.predict(0.0);
/// kf.update(26.9);
/// assert!((kf.estimate() - 26.85).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Kalman1D {
    x: f64,
    p: f64,
    q: f64,
    r: f64,
    last_gain: f64,
}

/// Covariance floor: repeated measurement updates shrink `p`
/// geometrically and would eventually underflow to a denormal (or zero,
/// making the filter deaf to all future measurements). Far below any
/// operating variance, so the clamp is a no-op in normal service.
const P_MIN: f64 = 1e-9;

/// Covariance ceiling: unbounded prediction-only operation (e.g. a radar
/// that never returns) grows `p` without limit, and a later measurement
/// would be fused with a gain of exactly 1.0 computed from a near-overflow
/// ratio. Far above any operating variance.
const P_MAX: f64 = 1e9;

impl Kalman1D {
    /// Creates a filter with initial state `x0`, initial variance `p0`,
    /// process noise `q` and measurement noise `r` (both variances).
    ///
    /// # Panics
    ///
    /// Panics if `q`, `r` or `p0` are not positive.
    // adas-lint: allow(R1, reason = "filter is quantity-generic: it smooths speeds for the ADAS and predictions for the attack engine; x0 is in the caller's unit, p0/q/r are variances (dimensionless here)")
    pub fn new(x0: f64, p0: f64, q: f64, r: f64) -> Self {
        assert!(p0 > 0.0 && q > 0.0 && r > 0.0, "variances must be positive");
        Self {
            x: x0,
            p: p0,
            q,
            r,
            last_gain: 0.0,
        }
    }

    /// Current state estimate.
    // adas-lint: allow(R1, reason = "estimate is in whatever unit the caller filters; wrapping it would pin the filter to one quantity")
    pub fn estimate(&self) -> f64 {
        self.x
    }

    /// Current estimate variance.
    // adas-lint: allow(R1, reason = "variance of the filtered quantity; squared-unit newtypes do not exist in units::")
    pub fn variance(&self) -> f64 {
        self.p
    }

    /// The Kalman gain used by the most recent [`Self::update`] — the
    /// `K_t` of the paper's Eq. 3.
    // adas-lint: allow(R1, reason = "Kalman gain K_t is a dimensionless blend factor in [0, 1]")
    pub fn last_gain(&self) -> f64 {
        self.last_gain
    }

    /// Time-update: shifts the state by a known control increment `du`
    /// (e.g. `accel * dt`) and inflates the variance.
    ///
    /// A non-finite `du` is ignored (the variance still inflates): a
    /// corrupted control input must not poison the state estimate.
    // adas-lint: allow(R1, reason = "control increment in the caller's unit (e.g. accel*dt as m/s); the filter stays quantity-generic")
    pub fn predict(&mut self, du: f64) {
        if du.is_finite() {
            self.x += du;
        }
        self.p = (self.p + self.q).clamp(P_MIN, P_MAX);
    }

    /// Normalized innovation of a candidate measurement `z`: the absolute
    /// residual `|z - x|` in units of the innovation standard deviation
    /// `sqrt(p + r)`. A chi-square-style plausibility gate compares this
    /// against a sigma threshold *before* fusing the measurement — the
    /// filter itself is left untouched.
    ///
    /// A non-finite `z` reports an infinite innovation (maximally
    /// implausible), mirroring [`Self::update`]'s outright rejection.
    // adas-lint: allow(R1, reason = "normalized innovation is dimensionless: a residual divided by its own standard deviation")
    pub fn normalized_innovation(&self, z: f64) -> f64 {
        if !z.is_finite() {
            return f64::INFINITY;
        }
        (z - self.x).abs() / (self.p + self.r).sqrt().max(1e-12)
    }

    /// Measurement-update: fuses measurement `z`, returning the new
    /// estimate. Implements `x <- x + K (z - x)`.
    ///
    /// A non-finite `z` is rejected outright — state, variance and gain are
    /// left untouched, as if no measurement had arrived.
    // adas-lint: allow(R1, reason = "measurement and estimate are in the caller's unit; the filter stays quantity-generic")
    pub fn update(&mut self, z: f64) -> f64 {
        if !z.is_finite() {
            return self.x;
        }
        let k = self.p / (self.p + self.r);
        self.last_gain = k;
        self.x += k * (z - self.x);
        self.p = (self.p * (1.0 - k)).clamp(P_MIN, P_MAX);
        self.x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_to_constant_signal() {
        let mut kf = Kalman1D::new(0.0, 10.0, 1e-4, 0.25);
        for _ in 0..200 {
            kf.predict(0.0);
            kf.update(5.0);
        }
        assert!((kf.estimate() - 5.0).abs() < 0.01);
        assert!(kf.variance() < 0.05);
    }

    #[test]
    fn tracks_a_ramp_with_known_control() {
        let mut kf = Kalman1D::new(0.0, 1.0, 1e-3, 0.1);
        let mut truth = 0.0;
        for _ in 0..500 {
            truth += 0.02; // 2 m/s^2 * 10 ms
            kf.predict(0.02);
            kf.update(truth + 0.01); // small bias in measurement
        }
        assert!((kf.estimate() - truth).abs() < 0.05);
    }

    #[test]
    fn gain_shrinks_as_confidence_grows() {
        let mut kf = Kalman1D::new(0.0, 10.0, 1e-6, 1.0);
        kf.predict(0.0);
        kf.update(1.0);
        let early_gain = kf.last_gain();
        for _ in 0..100 {
            kf.predict(0.0);
            kf.update(1.0);
        }
        assert!(kf.last_gain() < early_gain);
        assert!(kf.last_gain() > 0.0);
    }

    #[test]
    fn noisy_measurements_are_smoothed() {
        // Deterministic "noise": alternate +-0.5 around 10.
        let mut kf = Kalman1D::new(10.0, 0.5, 1e-4, 0.5);
        let mut worst: f64 = 0.0;
        for i in 0..400 {
            kf.predict(0.0);
            let z = 10.0 + if i % 2 == 0 { 0.5 } else { -0.5 };
            kf.update(z);
            if i > 50 {
                worst = worst.max((kf.estimate() - 10.0).abs());
            }
        }
        assert!(worst < 0.1, "filter output varies far less than input");
    }

    #[test]
    fn normalized_innovation_scales_with_residual_and_rejects_non_finite() {
        let kf = Kalman1D::new(10.0, 0.5, 0.01, 0.5);
        // sqrt(p + r) = 1.0, so the normalized innovation equals the residual.
        assert!((kf.normalized_innovation(10.0) - 0.0).abs() < 1e-12);
        assert!((kf.normalized_innovation(13.0) - 3.0).abs() < 1e-12);
        assert!((kf.normalized_innovation(7.0) - 3.0).abs() < 1e-12);
        assert!(kf.normalized_innovation(f64::NAN).is_infinite());
        assert!(kf.normalized_innovation(f64::INFINITY).is_infinite());
    }

    #[test]
    #[should_panic(expected = "variances must be positive")]
    fn rejects_non_positive_variance() {
        let _ = Kalman1D::new(0.0, 0.0, 0.01, 0.1);
    }

    #[test]
    fn covariance_never_collapses_under_relentless_updates() {
        // Updates without interleaved predicts shrink p geometrically;
        // without the floor it underflows to a denormal and the gain pins
        // to ~0 forever. Regression test for the radar-loss audit.
        let mut kf = Kalman1D::new(10.0, 1.0, 1e-4, 0.25);
        for _ in 0..1_000_000 {
            kf.update(10.0);
        }
        assert!(kf.variance().is_finite());
        assert!(kf.variance() >= P_MIN);
        // The filter must still respond to a fresh measurement.
        kf.predict(0.0);
        kf.update(12.0);
        assert!(kf.last_gain() > 0.0);
    }

    #[test]
    fn covariance_never_diverges_under_relentless_predicts() {
        // Prediction-only operation (radar silent for the whole run and
        // beyond) inflates p linearly; the ceiling keeps it finite and the
        // next real measurement numerically sane.
        let mut kf = Kalman1D::new(10.0, 1.0, 1e6, 0.25);
        for _ in 0..1_000_000 {
            kf.predict(0.0);
        }
        assert!(kf.variance().is_finite());
        assert!(kf.variance() <= P_MAX);
        let est = kf.update(11.0);
        assert!(est.is_finite());
        assert!((est - 11.0).abs() < 1e-6, "stale prior yields gain ~1");
    }

    #[test]
    fn non_finite_measurement_is_rejected() {
        let mut kf = Kalman1D::new(5.0, 1.0, 0.01, 0.1);
        kf.predict(0.0);
        let snapshot =
            |kf: &Kalman1D| (kf.estimate().to_bits(), kf.variance().to_bits(), kf.last_gain().to_bits());
        let before = snapshot(&kf);
        assert!((kf.update(f64::NAN) - 5.0).abs() < 1e-12);
        assert!((kf.update(f64::INFINITY) - 5.0).abs() < 1e-12);
        assert!((kf.update(f64::NEG_INFINITY) - 5.0).abs() < 1e-12);
        assert_eq!(before, snapshot(&kf), "rejected measurements leave no trace");
    }

    #[test]
    fn non_finite_control_is_ignored() {
        let mut kf = Kalman1D::new(5.0, 1.0, 0.01, 0.1);
        kf.predict(f64::NAN);
        assert!((kf.estimate() - 5.0).abs() < 1e-12);
        assert!(kf.variance().is_finite(), "variance still inflates, finitely");
        kf.predict(f64::INFINITY);
        assert!(kf.estimate().is_finite());
    }
}
