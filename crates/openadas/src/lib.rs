//! An OpenPilot-style Advanced Driver Assistance System.
//!
//! Implements the functional specification the paper attacks (§II-A):
//! Automated Lane Centering (ALC) and Adaptive Cruise Control (ACC) built
//! from Cereal-style sensor messages, with the ISO-22179-inspired safety
//! principles OpenPilot documents:
//!
//! * longitudinal commands clamped to `[-3.5, +2.0] m/s²` (software limits
//!   `[-4.0, +2.4]`, see [`SafetyLimits`]),
//! * steering limited so the car cannot deviate from its path faster than a
//!   driver can react,
//! * a *steer saturated* alert when the lateral controller wants more
//!   steering than the limit allows,
//! * a Forward Collision Warning tied to the brake output exceeding the
//!   safety threshold — which, as the paper observes, never fires during the
//!   attacks because the corrupted brake command is kept inside the envelope,
//! * a Panda-style CAN safety model ([`PandaSafety`]) that can gate outgoing
//!   actuator frames.
//!
//! The top-level [`Adas`] consumes one [`SensorFrame`]-shaped set of
//! messages per 10 ms tick and emits a [`msgbus::schema::CarControl`] plus
//! the corresponding CAN frames.

#![forbid(unsafe_code)]
#![deny(clippy::float_cmp)]

#![warn(missing_docs)]

mod acc;
mod adas;
pub mod batch;
mod aeb;
mod alc;
mod alerts;
mod controls;
mod degradation;
mod kalman;
mod panda;
mod perception;
mod plausibility;
mod radar;
mod safety;
mod state;

pub use acc::{AccController, AccOutput};
pub use aeb::{Aeb, AebConfig, AebState};
pub use adas::{Adas, AdasOutput, DirectCycle};
pub use alc::{AlcController, AlcOutput};
pub use alerts::AlertManager;
pub use controls::CommandEncoder;
pub use degradation::{
    DegradationMonitor, DegradationState, DEGRADE_AFTER, FAILSAFE_AFTER, FAILSAFE_BRAKE,
    GENTLE_BRAKE, RECOVERY_TICKS,
};
pub use kalman::Kalman1D;
pub use panda::{PandaSafety, PandaVerdict};
pub use perception::{LaneEstimate, LaneProcessor};
pub use plausibility::{GateConfig, PerceptionGates, STALE_AFTER_TICKS};
pub use radar::{LeadEstimate, LeadTracker};
pub use safety::SafetyLimits;
pub use state::CarStateEstimator;
