//! A structure-of-arrays column of ADAS instances for lockstep batching.
//!
//! Each lane is a full scalar [`Adas`] stepped through its bus-free
//! [`Adas::step_direct`] entry point, so the control math per lane is the
//! scalar code path, bit for bit. Batching is in the iteration order: one
//! tight loop runs the whole control stage across every lane before the
//! caller moves to the next stage, keeping the controller code and its
//! state columns hot.

use msgbus::schema::{GpsLocation, LaneModel, RadarState};
use msgbus::Bus;
use units::{Speed, Tick};

use crate::{Adas, AdasOutput, DirectCycle};

/// A column of per-lane ADAS instances with batched stepping.
#[derive(Debug, Default)]
pub struct AdasColumn {
    lanes: Vec<Adas>,
}

impl AdasColumn {
    /// An empty column.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a lane engaged at the given cruise set-speed. The lane gets
    /// a private idle bus — nothing publishes on it and the direct cycle
    /// never drains it, so it costs nothing per tick.
    pub fn admit(&mut self, v_cruise: Speed) {
        self.lanes.push(Adas::new(&Bus::new(), v_cruise));
    }

    /// Number of lanes.
    pub fn len(&self) -> usize {
        self.lanes.len()
    }

    /// Whether the column holds no lanes.
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }

    /// One lane, for per-lane queries (FCW totals, gate rejections).
    pub fn get(&self, lane: usize) -> Option<&Adas> {
        self.lanes.get(lane)
    }

    /// Disengages one lane (its driver took over).
    pub fn disengage(&mut self, lane: usize) {
        if let Some(adas) = self.lanes.get_mut(lane) {
            adas.disengage();
        }
    }

    /// Runs the control stage across every live lane: each consumes its
    /// sensor columns through [`Adas::step_direct`], writing its outputs
    /// and [`DirectCycle`] back into the lane-indexed columns. Lanes with
    /// `encode` set materialize real actuator frames (their traffic is
    /// inspected in flight); the rest advance their rolling counters and
    /// report the quantized command instead.
    #[allow(clippy::too_many_arguments)] // lane-indexed SoA columns, one per stream
    pub fn step_batch(
        &mut self,
        tick: Tick,
        gps: &[GpsLocation],
        lanes: &[LaneModel],
        radars: &[RadarState],
        encode: &[bool],
        live: &[bool],
        outs: &mut [AdasOutput],
        cycles: &mut [DirectCycle],
    ) {
        let it = self
            .lanes
            .iter_mut()
            .zip(gps)
            .zip(lanes)
            .zip(radars)
            .zip(encode)
            .zip(live)
            .zip(outs)
            .zip(cycles);
        for (((((((adas, gps), lane), radar), encode), live), out), cycle) in it {
            if *live {
                *cycle = adas.step_direct(tick, gps, lane, radar, *encode, out);
            }
        }
    }
}
