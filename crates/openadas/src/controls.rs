//! Translation between high-level commands and CAN actuator frames.
//!
//! This is the last computational stage before the physical bus — the stage
//! the paper argues should host robust safety checks, because everything
//! upstream can be bypassed by corrupting the frames here.

use canbus::{decode_signal, CanError, CanFrame, Encoder, Signal, VirtualCarDbc};
use msgbus::schema::CarControl;
use units::{Accel, Angle};

/// Pre-resolved copies of the three command-value signals, so the 100 Hz
/// quantize shortcut pays no per-tick name lookups. Only built when every
/// signal resolves and the constant `*_REQ` companions are in range, which
/// makes the fast path's skipped validations infallible by construction.
#[derive(Debug, Clone, Copy)]
struct CycleSignals {
    steer: Signal,
    gas: Signal,
    brake: Signal,
}

impl CycleSignals {
    fn resolve(dbc: &VirtualCarDbc) -> Option<Self> {
        let req_ok = |sig: Option<&Signal>| sig.is_some_and(|s| s.phys_to_raw(1.0).is_ok());
        if !req_ok(dbc.steering_control().signal("STEER_REQ"))
            || !req_ok(dbc.gas_command().signal("GAS_REQ"))
            || !req_ok(dbc.brake_command().signal("BRAKE_REQ"))
        {
            return None;
        }
        Some(Self {
            steer: *dbc.steering_control().signal("STEER_ANGLE_CMD")?,
            gas: *dbc.gas_command().signal("ACCEL_CMD")?,
            brake: *dbc.brake_command().signal("BRAKE_CMD")?,
        })
    }
}

/// Encodes [`CarControl`] commands into gas/brake/steering CAN frames and
/// decodes them back on the actuator side.
#[derive(Debug)]
pub struct CommandEncoder {
    dbc: VirtualCarDbc,
    encoder: Encoder,
    cycle_signals: Option<CycleSignals>,
}

impl Default for CommandEncoder {
    fn default() -> Self {
        Self::new()
    }
}

impl CommandEncoder {
    /// Creates an encoder over the virtual car's DBC.
    pub fn new() -> Self {
        let dbc = VirtualCarDbc::new();
        let cycle_signals = CycleSignals::resolve(&dbc);
        Self {
            dbc,
            encoder: Encoder::new(),
            cycle_signals,
        }
    }

    /// The message database in use.
    pub fn dbc(&self) -> &VirtualCarDbc {
        &self.dbc
    }

    /// Encodes one control cycle's command into its three actuator frames:
    /// steering (`0xE4`), gas and brake.
    ///
    /// # Errors
    ///
    /// Returns [`CanError::ValueOutOfRange`] if a command exceeds its
    /// signal's representable range (clamp upstream).
    pub fn encode(&mut self, control: &CarControl) -> Result<Vec<CanFrame>, CanError> {
        // adas-lint: allow(R13, reason = "allocating convenience wrapper — steady-state callers hold a 3-slot buffer and use encode_into")
        let mut frames = Vec::with_capacity(3);
        self.encode_into(control, &mut frames)?;
        Ok(frames)
    }

    /// Allocation-free variant of [`encode`](Self::encode): clears `frames`
    /// and appends the three actuator frames, reusing the buffer's capacity.
    ///
    /// # Errors
    ///
    /// Returns [`CanError::ValueOutOfRange`] if a command exceeds its
    /// signal's representable range (clamp upstream). On error `frames` may
    /// hold a partial batch; callers should treat it as garbage.
    pub fn encode_into(
        &mut self,
        control: &CarControl,
        frames: &mut Vec<CanFrame>,
    ) -> Result<(), CanError> {
        frames.clear();
        let gas = control.accel.max(Accel::ZERO);
        let brake = control.accel.min(Accel::ZERO);
        // adas-lint: allow(R13, reason = "append into the caller's cleared buffer, which retains its 3-frame capacity across ticks — amortized after the first cycle")
        frames.push(self.encoder.encode(
            self.dbc.steering_control(),
            &[
                ("STEER_ANGLE_CMD", control.steer.degrees()),
                ("STEER_REQ", 1.0),
            ],
        )?);
        // adas-lint: allow(R13, reason = "append into the caller's cleared buffer, which retains its 3-frame capacity across ticks — amortized after the first cycle")
        frames.push(self.encoder.encode(
            self.dbc.gas_command(),
            &[("ACCEL_CMD", gas.mps2()), ("GAS_REQ", 1.0)],
        )?);
        // adas-lint: allow(R13, reason = "append into the caller's cleared buffer, which retains its 3-frame capacity across ticks — amortized after the first cycle")
        frames.push(self.encoder.encode(
            self.dbc.brake_command(),
            &[("BRAKE_CMD", brake.mps2()), ("BRAKE_REQ", 1.0)],
        )?);
        Ok(())
    }

    /// Runs one control cycle's encode→decode round trip without touching
    /// the wire: quantizes the command through the same per-signal DBC
    /// scaling [`encode_into`](Self::encode_into) would apply and consumes
    /// the same three rolling-counter draws, returning the [`CarControl`]
    /// the actuator side would decode from an unmolested frame batch.
    ///
    /// The counter parity means a hot path may freely alternate between
    /// real frames (ticks something inspects the bus) and this shortcut
    /// (ticks nothing does) per cycle without the transmit counters
    /// drifting from a frame-for-frame run.
    ///
    /// # Errors
    ///
    /// Exactly [`encode_into`](Self::encode_into)'s errors at the same
    /// point in the sequence; on error the caller should hold its last
    /// command, which is what the actuator side does when a cycle's frames
    /// never arrive.
    pub fn quantize_cycle(&mut self, control: &CarControl) -> Result<CarControl, CanError> {
        let Some(sig) = self.cycle_signals else {
            return self.quantize_cycle_by_name(control);
        };
        // Same value order and error points as `encode_into`: a message's
        // out-of-range command aborts before that message's counter draw,
        // after the preceding messages consumed theirs. The `*_REQ`
        // companions were validated at construction and cannot fail.
        let steer_raw = sig.steer.phys_to_raw(control.steer.degrees())?;
        self.encoder.advance_counter(self.dbc.steering_control());
        let gas_raw = sig.gas.phys_to_raw(control.accel.max(Accel::ZERO).mps2())?;
        self.encoder.advance_counter(self.dbc.gas_command());
        let brake_raw = sig.brake.phys_to_raw(control.accel.min(Accel::ZERO).mps2())?;
        self.encoder.advance_counter(self.dbc.brake_command());
        Ok(CarControl {
            accel: Accel::from_mps2(sig.gas.raw_to_phys(gas_raw) + sig.brake.raw_to_phys(brake_raw)),
            steer: Angle::from_degrees(sig.steer.raw_to_phys(steer_raw)),
        })
    }

    /// Name-lookup fallback of [`quantize_cycle`](Self::quantize_cycle),
    /// taken only if the DBC did not resolve at construction.
    fn quantize_cycle_by_name(&mut self, control: &CarControl) -> Result<CarControl, CanError> {
        let gas = control.accel.max(Accel::ZERO);
        let brake = control.accel.min(Accel::ZERO);
        let steer = self.encoder.quantize(
            self.dbc.steering_control(),
            &[
                ("STEER_ANGLE_CMD", control.steer.degrees()),
                ("STEER_REQ", 1.0),
            ],
        )?;
        let gas = self.encoder.quantize(
            self.dbc.gas_command(),
            &[("ACCEL_CMD", gas.mps2()), ("GAS_REQ", 1.0)],
        )?;
        let brake = self.encoder.quantize(
            self.dbc.brake_command(),
            &[("BRAKE_CMD", brake.mps2()), ("BRAKE_REQ", 1.0)],
        )?;
        Ok(CarControl {
            accel: Accel::from_mps2(gas + brake),
            steer: Angle::from_degrees(steer),
        })
    }

    /// Actuator-side decoding: folds a batch of delivered frames back into a
    /// [`CarControl`], verifying checksums. Frames that fail verification are
    /// dropped exactly as a real ECU drops them; fields without a valid frame
    /// fall back to `base` (actuators hold their last valid command).
    pub fn decode_actuators(&self, frames: &[CanFrame], base: CarControl) -> CarControl {
        let mut out = base;
        let mut gas = None;
        let mut brake = None;
        for frame in frames {
            if frame.id() == self.dbc.steering_control().id {
                if let Ok(deg) = decode_signal(self.dbc.steering_control(), frame, "STEER_ANGLE_CMD")
                {
                    out.steer = Angle::from_degrees(deg);
                }
            } else if frame.id() == self.dbc.gas_command().id {
                if let Ok(v) = decode_signal(self.dbc.gas_command(), frame, "ACCEL_CMD") {
                    gas = Some(v);
                }
            } else if frame.id() == self.dbc.brake_command().id {
                if let Ok(v) = decode_signal(self.dbc.brake_command(), frame, "BRAKE_CMD") {
                    brake = Some(v);
                }
            }
        }
        if gas.is_some() || brake.is_some() {
            out.accel = Accel::from_mps2(gas.unwrap_or(0.0) + brake.unwrap_or(0.0));
        }
        out
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exactly-representable values
mod tests {
    use super::*;
    use canbus::decode;

    fn control(accel: f64, steer_deg: f64) -> CarControl {
        CarControl {
            accel: Accel::from_mps2(accel),
            steer: Angle::from_degrees(steer_deg),
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut enc = CommandEncoder::new();
        let frames = enc.encode(&control(1.5, -0.2)).unwrap();
        assert_eq!(frames.len(), 3);
        let decoded = enc.decode_actuators(&frames, CarControl::default());
        assert!((decoded.accel.mps2() - 1.5).abs() < 0.002);
        assert!((decoded.steer.degrees() + 0.2).abs() < 0.01);
    }

    #[test]
    fn braking_goes_on_the_brake_message() {
        let mut enc = CommandEncoder::new();
        let frames = enc.encode(&control(-3.0, 0.0)).unwrap();
        let brake_frame = frames
            .iter()
            .find(|f| f.id() == enc.dbc().brake_command().id)
            .unwrap();
        let map = decode(enc.dbc().brake_command(), brake_frame).unwrap();
        assert!((map["BRAKE_CMD"] + 3.0).abs() < 0.002);
        let gas_frame = frames
            .iter()
            .find(|f| f.id() == enc.dbc().gas_command().id)
            .unwrap();
        assert_eq!(decode(enc.dbc().gas_command(), gas_frame).unwrap()["ACCEL_CMD"], 0.0);
    }

    #[test]
    fn corrupted_frame_is_dropped_and_base_held() {
        let mut enc = CommandEncoder::new();
        let mut frames = enc.encode(&control(2.0, 0.3)).unwrap();
        // Corrupt the steering frame without fixing the checksum.
        frames[0].data_mut()[0] ^= 0xFF;
        let base = control(0.5, 0.1);
        let decoded = enc.decode_actuators(&frames, base);
        assert!((decoded.steer.degrees() - 0.1).abs() < 1e-9, "held last valid steer");
        assert!((decoded.accel.mps2() - 2.0).abs() < 0.002, "gas still applied");
    }

    #[test]
    fn quantize_cycle_matches_wire_round_trip() {
        let mut wire = CommandEncoder::new();
        let mut short = CommandEncoder::new();
        for i in 0..50 {
            let c = control(-4.0 + 0.173 * i as f64, -2.0 + 0.083 * i as f64);
            let frames = wire.encode(&c).unwrap();
            let decoded = wire.decode_actuators(&frames, CarControl::default());
            let quantized = short.quantize_cycle(&c).unwrap();
            assert_eq!(decoded, quantized, "cycle {i}");
        }
        // Counters stayed in lockstep across 50 shortcut cycles.
        let c = control(1.0, 0.1);
        assert_eq!(wire.encode(&c).unwrap(), short.encode(&c).unwrap());
    }

    #[test]
    fn empty_batch_returns_base() {
        let enc = CommandEncoder::new();
        let base = control(-1.0, 0.05);
        assert_eq!(enc.decode_actuators(&[], base), base);
    }
}
