//! Translation between high-level commands and CAN actuator frames.
//!
//! This is the last computational stage before the physical bus — the stage
//! the paper argues should host robust safety checks, because everything
//! upstream can be bypassed by corrupting the frames here.

use canbus::{decode_signal, CanError, CanFrame, Encoder, VirtualCarDbc};
use msgbus::schema::CarControl;
use units::{Accel, Angle};

/// Encodes [`CarControl`] commands into gas/brake/steering CAN frames and
/// decodes them back on the actuator side.
#[derive(Debug)]
pub struct CommandEncoder {
    dbc: VirtualCarDbc,
    encoder: Encoder,
}

impl Default for CommandEncoder {
    fn default() -> Self {
        Self::new()
    }
}

impl CommandEncoder {
    /// Creates an encoder over the virtual car's DBC.
    pub fn new() -> Self {
        Self {
            dbc: VirtualCarDbc::new(),
            encoder: Encoder::new(),
        }
    }

    /// The message database in use.
    pub fn dbc(&self) -> &VirtualCarDbc {
        &self.dbc
    }

    /// Encodes one control cycle's command into its three actuator frames:
    /// steering (`0xE4`), gas and brake.
    ///
    /// # Errors
    ///
    /// Returns [`CanError::ValueOutOfRange`] if a command exceeds its
    /// signal's representable range (clamp upstream).
    pub fn encode(&mut self, control: &CarControl) -> Result<Vec<CanFrame>, CanError> {
        let mut frames = Vec::with_capacity(3);
        self.encode_into(control, &mut frames)?;
        Ok(frames)
    }

    /// Allocation-free variant of [`encode`](Self::encode): clears `frames`
    /// and appends the three actuator frames, reusing the buffer's capacity.
    ///
    /// # Errors
    ///
    /// Returns [`CanError::ValueOutOfRange`] if a command exceeds its
    /// signal's representable range (clamp upstream). On error `frames` may
    /// hold a partial batch; callers should treat it as garbage.
    pub fn encode_into(
        &mut self,
        control: &CarControl,
        frames: &mut Vec<CanFrame>,
    ) -> Result<(), CanError> {
        frames.clear();
        let gas = control.accel.max(Accel::ZERO);
        let brake = control.accel.min(Accel::ZERO);
        frames.push(self.encoder.encode(
            self.dbc.steering_control(),
            &[
                ("STEER_ANGLE_CMD", control.steer.degrees()),
                ("STEER_REQ", 1.0),
            ],
        )?);
        frames.push(self.encoder.encode(
            self.dbc.gas_command(),
            &[("ACCEL_CMD", gas.mps2()), ("GAS_REQ", 1.0)],
        )?);
        frames.push(self.encoder.encode(
            self.dbc.brake_command(),
            &[("BRAKE_CMD", brake.mps2()), ("BRAKE_REQ", 1.0)],
        )?);
        Ok(())
    }

    /// Actuator-side decoding: folds a batch of delivered frames back into a
    /// [`CarControl`], verifying checksums. Frames that fail verification are
    /// dropped exactly as a real ECU drops them; fields without a valid frame
    /// fall back to `base` (actuators hold their last valid command).
    pub fn decode_actuators(&self, frames: &[CanFrame], base: CarControl) -> CarControl {
        let mut out = base;
        let mut gas = None;
        let mut brake = None;
        for frame in frames {
            if frame.id() == self.dbc.steering_control().id {
                if let Ok(deg) = decode_signal(self.dbc.steering_control(), frame, "STEER_ANGLE_CMD")
                {
                    out.steer = Angle::from_degrees(deg);
                }
            } else if frame.id() == self.dbc.gas_command().id {
                if let Ok(v) = decode_signal(self.dbc.gas_command(), frame, "ACCEL_CMD") {
                    gas = Some(v);
                }
            } else if frame.id() == self.dbc.brake_command().id {
                if let Ok(v) = decode_signal(self.dbc.brake_command(), frame, "BRAKE_CMD") {
                    brake = Some(v);
                }
            }
        }
        if gas.is_some() || brake.is_some() {
            out.accel = Accel::from_mps2(gas.unwrap_or(0.0) + brake.unwrap_or(0.0));
        }
        out
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exactly-representable values
mod tests {
    use super::*;
    use canbus::decode;

    fn control(accel: f64, steer_deg: f64) -> CarControl {
        CarControl {
            accel: Accel::from_mps2(accel),
            steer: Angle::from_degrees(steer_deg),
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut enc = CommandEncoder::new();
        let frames = enc.encode(&control(1.5, -0.2)).unwrap();
        assert_eq!(frames.len(), 3);
        let decoded = enc.decode_actuators(&frames, CarControl::default());
        assert!((decoded.accel.mps2() - 1.5).abs() < 0.002);
        assert!((decoded.steer.degrees() + 0.2).abs() < 0.01);
    }

    #[test]
    fn braking_goes_on_the_brake_message() {
        let mut enc = CommandEncoder::new();
        let frames = enc.encode(&control(-3.0, 0.0)).unwrap();
        let brake_frame = frames
            .iter()
            .find(|f| f.id() == enc.dbc().brake_command().id)
            .unwrap();
        let map = decode(enc.dbc().brake_command(), brake_frame).unwrap();
        assert!((map["BRAKE_CMD"] + 3.0).abs() < 0.002);
        let gas_frame = frames
            .iter()
            .find(|f| f.id() == enc.dbc().gas_command().id)
            .unwrap();
        assert_eq!(decode(enc.dbc().gas_command(), gas_frame).unwrap()["ACCEL_CMD"], 0.0);
    }

    #[test]
    fn corrupted_frame_is_dropped_and_base_held() {
        let mut enc = CommandEncoder::new();
        let mut frames = enc.encode(&control(2.0, 0.3)).unwrap();
        // Corrupt the steering frame without fixing the checksum.
        frames[0].data_mut()[0] ^= 0xFF;
        let base = control(0.5, 0.1);
        let decoded = enc.decode_actuators(&frames, base);
        assert!((decoded.steer.degrees() - 0.1).abs() < 1e-9, "held last valid steer");
        assert!((decoded.accel.mps2() - 2.0).abs() < 0.002, "gas still applied");
    }

    #[test]
    fn empty_batch_returns_base() {
        let enc = CommandEncoder::new();
        let base = control(-1.0, 0.05);
        assert_eq!(enc.decode_actuators(&[], base), base);
    }
}
