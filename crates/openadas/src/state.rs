//! Fused car state.

use msgbus::schema::{CarState, GpsLocation};
use serde::{Deserialize, Serialize};
use units::{Accel, Angle, Speed, DT};

use crate::Kalman1D;

/// Builds the `carState` stream: Kalman-filtered ego speed, derived
/// acceleration, and the cruise setting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CarStateEstimator {
    speed_filter: Option<Kalman1D>,
    state: CarState,
}

impl CarStateEstimator {
    /// Creates an estimator for a given cruise set-speed, initially engaged.
    pub fn new(v_cruise: Speed) -> Self {
        Self {
            speed_filter: None,
            state: CarState {
                v_ego: Speed::ZERO,
                a_ego: Accel::ZERO,
                steering_angle: Angle::ZERO,
                v_cruise,
                cruise_enabled: true,
            },
        }
    }

    /// The current fused state.
    pub fn state(&self) -> CarState {
        self.state
    }

    /// Disengages the ADAS (driver override).
    pub fn disengage(&mut self) {
        self.state.cruise_enabled = false;
    }

    /// Whether the ADAS is engaged.
    pub fn engaged(&self) -> bool {
        self.state.cruise_enabled
    }

    /// Normalized innovation a GPS speed sample would have against the
    /// current filter state, or `None` before the first sample anchored the
    /// filter. Used by the plausibility gate to vet a reading *before*
    /// [`Self::update`] fuses it.
    // adas-lint: allow(R1, reason = "normalized innovation is dimensionless (residual over its own sigma)")
    pub fn speed_innovation(&self, gps: &GpsLocation) -> Option<f64> {
        self.speed_filter
            .as_ref()
            .map(|f| f.normalized_innovation(gps.speed.mps()))
    }

    /// Feeds one GPS sample and the steering angle the controller last
    /// commanded; returns the fused state.
    pub fn update(&mut self, gps: &GpsLocation, applied_steer: Angle) -> CarState {
        let filter = self.speed_filter.get_or_insert_with(|| {
            Kalman1D::new(gps.speed.mps(), 0.5, 0.02, 0.05)
        });
        let prev_v = filter.estimate();
        filter.predict(0.0);
        let v = filter.update(gps.speed.mps());
        // Acceleration from the filtered speed, lightly smoothed.
        let raw_a = (v - prev_v) / DT.secs();
        let a = self.state.a_ego.mps2() * 0.9 + raw_a * 0.1;
        self.state.v_ego = Speed::from_mps(v.max(0.0));
        self.state.a_ego = Accel::from_mps2(a);
        self.state.steering_angle = applied_steer;
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gps(v: f64) -> GpsLocation {
        GpsLocation {
            speed: Speed::from_mps(v),
            bearing: Angle::ZERO,
        }
    }

    #[test]
    fn speed_converges() {
        let mut est = CarStateEstimator::new(Speed::from_mph(60.0));
        for _ in 0..100 {
            est.update(&gps(26.8), Angle::ZERO);
        }
        assert!((est.state().v_ego.mps() - 26.8).abs() < 0.05);
    }

    #[test]
    fn acceleration_tracks_speed_ramp() {
        let mut est = CarStateEstimator::new(Speed::from_mph(60.0));
        let mut v = 20.0;
        for _ in 0..400 {
            v += 2.0 * DT.secs();
            est.update(&gps(v), Angle::ZERO);
        }
        let a = est.state().a_ego.mps2();
        assert!((a - 2.0).abs() < 0.5, "a_ego {a} should approximate 2");
    }

    #[test]
    fn disengage_latches() {
        let mut est = CarStateEstimator::new(Speed::from_mph(60.0));
        assert!(est.engaged());
        est.disengage();
        est.update(&gps(20.0), Angle::ZERO);
        assert!(!est.engaged());
        assert!(!est.state().cruise_enabled);
    }

    #[test]
    fn steering_angle_passthrough() {
        let mut est = CarStateEstimator::new(Speed::from_mph(60.0));
        let s = est.update(&gps(26.8), Angle::from_degrees(0.3));
        assert_eq!(s.steering_angle, Angle::from_degrees(0.3));
    }
}
