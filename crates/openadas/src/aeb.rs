//! Autonomous Emergency Braking.
//!
//! The paper's §II-A notes that OpenPilot-class deployments also ship AEB in
//! the car's own firmware, and §V lists it among the mechanisms *not*
//! engaged in the CARLA evaluation. This module implements the standard
//! time-to-collision trigger so the repository can ablate it: AEB acts on
//! the *radar* measurement directly, downstream of the corrupted command
//! path, so a forward-collision attack must now outrun the firmware too.

use msgbus::schema::RadarState;
use serde::{Deserialize, Serialize};
use units::{Accel, Seconds, Speed};

/// AEB state per control cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AebState {
    /// No imminent collision.
    Inactive,
    /// TTC below the warning threshold.
    Warning,
    /// TTC below the braking threshold: full braking commanded.
    Braking,
}

/// A time-to-collision-based emergency braking function.
///
/// `TTC = gap / closing speed`; below [`AebConfig::warn_ttc`] a warning is
/// latched, below [`AebConfig::brake_ttc`] the brake request overrides
/// whatever the (possibly corrupted) longitudinal command says.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AebConfig {
    /// TTC threshold for the warning stage.
    pub warn_ttc: Seconds,
    /// TTC threshold for autonomous braking.
    pub brake_ttc: Seconds,
    /// Brake strength applied during AEB (firmware-level, beyond the ADAS
    /// comfort envelope).
    pub brake: Accel,
}

impl Default for AebConfig {
    fn default() -> Self {
        Self {
            warn_ttc: Seconds::new(2.6),
            brake_ttc: Seconds::new(1.4),
            brake: Accel::from_mps2(-6.0),
        }
    }
}

/// The AEB function. Feed it the radar and ego speed each cycle; it returns
/// an overriding brake command while active.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aeb {
    config: AebConfig,
    state: AebState,
    activations: u64,
}

impl Default for Aeb {
    fn default() -> Self {
        Self::new(AebConfig::default())
    }
}

impl Aeb {
    /// Creates an AEB function.
    pub fn new(config: AebConfig) -> Self {
        Self {
            config,
            state: AebState::Inactive,
            activations: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> AebState {
        self.state
    }

    /// Number of distinct braking activations so far.
    pub fn activations(&self) -> u64 {
        self.activations
    }

    /// Time-to-collision for a radar sample, if a closing lead exists.
    pub fn ttc(radar: &RadarState, v_ego: Speed) -> Option<Seconds> {
        let lead = radar.lead?;
        let closing = v_ego.mps() - lead.v_lead.mps();
        (closing > 0.5).then(|| Seconds::new(lead.d_rel.raw() / closing))
    }

    /// Advances one cycle; returns the overriding brake command while the
    /// braking stage is active.
    pub fn step(&mut self, radar: &RadarState, v_ego: Speed) -> Option<Accel> {
        let ttc = Self::ttc(radar, v_ego);
        let next = match ttc {
            Some(t) if t <= self.config.brake_ttc => AebState::Braking,
            Some(t) if t <= self.config.warn_ttc => AebState::Warning,
            _ => {
                // Braking latches until the threat clears entirely.
                if self.state == AebState::Braking && ttc.is_some() {
                    AebState::Braking
                } else {
                    AebState::Inactive
                }
            }
        };
        if next == AebState::Braking && self.state != AebState::Braking {
            self.activations += 1;
        }
        self.state = next;
        (self.state == AebState::Braking).then_some(self.config.brake)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msgbus::schema::LeadTrack;
    use units::Distance;

    fn radar(gap: f64, v_lead: f64) -> RadarState {
        RadarState {
            lead: Some(LeadTrack {
                d_rel: Distance::meters(gap),
                v_lead: Speed::from_mps(v_lead),
                a_lead: Accel::ZERO,
            }),
        }
    }

    #[test]
    fn ttc_requires_closing() {
        let v = Speed::from_mps(20.0);
        assert!(Aeb::ttc(&radar(50.0, 25.0), v).is_none(), "opening gap");
        let ttc = Aeb::ttc(&radar(50.0, 10.0), v).unwrap();
        assert!((ttc.secs() - 5.0).abs() < 1e-9);
        assert!(Aeb::ttc(&RadarState { lead: None }, v).is_none());
    }

    #[test]
    fn state_ladder() {
        let mut aeb = Aeb::default();
        let v = Speed::from_mps(20.0);
        assert_eq!(aeb.step(&radar(100.0, 10.0), v), None);
        assert_eq!(aeb.state(), AebState::Inactive);
        // TTC 2.0 s: warning.
        assert_eq!(aeb.step(&radar(20.0, 10.0), v), None);
        assert_eq!(aeb.state(), AebState::Warning);
        // TTC 1.0 s: braking.
        let brake = aeb.step(&radar(10.0, 10.0), v).unwrap();
        assert_eq!(brake, Accel::from_mps2(-6.0));
        assert_eq!(aeb.activations(), 1);
    }

    #[test]
    fn braking_latches_until_threat_clears() {
        let mut aeb = Aeb::default();
        let v = Speed::from_mps(20.0);
        aeb.step(&radar(10.0, 10.0), v);
        assert_eq!(aeb.state(), AebState::Braking);
        // TTC recovers above the brake threshold but the lead still closes:
        // stay braking (no pumping).
        aeb.step(&radar(30.0, 10.0), v);
        assert_eq!(aeb.state(), AebState::Braking);
        // Threat gone entirely: release.
        aeb.step(&radar(30.0, 25.0), v);
        assert_eq!(aeb.state(), AebState::Inactive);
        assert_eq!(aeb.activations(), 1, "one continuous activation");
    }

    #[test]
    fn reactivation_counts() {
        let mut aeb = Aeb::default();
        let v = Speed::from_mps(20.0);
        aeb.step(&radar(10.0, 10.0), v);
        aeb.step(&radar(30.0, 25.0), v); // clears
        aeb.step(&radar(8.0, 10.0), v); // again
        assert_eq!(aeb.activations(), 2);
    }
}
