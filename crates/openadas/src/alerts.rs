//! Alert generation: `steerSaturated` and the Forward Collision Warning.

use msgbus::schema::AlertKind;
use serde::{Deserialize, Serialize};
use units::Accel;

/// Sustained saturation (in 10 ms ticks) required before the
/// `steerSaturated` alert fires: 1.75 s. OpenPilot debounces this alert so
/// transient saturation during normal corrections stays silent; only a
/// controller that is pinned at its limit for seconds alerts the driver.
const SATURATION_TICKS: u32 = 175;

/// Brake threshold beyond which the FCW fires. The paper observes the FCW is
/// tied to the brake output exceeding OpenPilot's safety threshold — and
/// since both the ADAS clamp (−3.5 m/s²) and the attacker's values (≥ −4)
/// stay inside it, the warning never activates during the attacks
/// (Observation 2).
const FCW_BRAKE_THRESHOLD: Accel = Accel::from_mps2(-4.0);

/// Debounces raw controller conditions into driver-visible alert events.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AlertManager {
    saturation_streak: u32,
    saturation_active: bool,
    total_events: u64,
    fcw_events: u64,
}

impl AlertManager {
    /// Creates a manager with no active alerts.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total alert events raised so far.
    pub fn total_events(&self) -> u64 {
        self.total_events
    }

    /// Total FCW events raised so far (the paper's experiments expect this
    /// to stay at zero).
    pub fn fcw_events(&self) -> u64 {
        self.fcw_events
    }

    /// Feeds this cycle's conditions; returns the alerts *newly raised* this
    /// cycle (edge-triggered).
    pub fn step(&mut self, steer_saturated: bool, brake_command: Accel) -> Vec<AlertKind> {
        // adas-lint: allow(R13, reason = "allocating convenience wrapper — steady-state callers hold a buffer and use step_into")
        let mut raised = Vec::new();
        self.step_into(steer_saturated, brake_command, &mut raised);
        raised
    }

    /// Allocation-free variant of [`step`](Self::step): clears `raised` and
    /// appends this cycle's newly raised alerts, reusing the buffer's
    /// capacity across control cycles.
    pub fn step_into(
        &mut self,
        steer_saturated: bool,
        brake_command: Accel,
        raised: &mut Vec<AlertKind>,
    ) {
        raised.clear();

        if steer_saturated {
            self.saturation_streak += 1;
            if self.saturation_streak >= SATURATION_TICKS && !self.saturation_active {
                self.saturation_active = true;
                self.total_events += 1;
                // adas-lint: allow(R13, reason = "append into the caller's cleared, capacity-retaining buffer (≤1 per tick) — amortized after the first cycles")
                raised.push(AlertKind::SteerSaturated);
            }
        } else {
            self.saturation_streak = 0;
            self.saturation_active = false;
        }

        if brake_command < FCW_BRAKE_THRESHOLD {
            self.fcw_events += 1;
            self.total_events += 1;
            // adas-lint: allow(R13, reason = "append into the caller's cleared, capacity-retaining buffer (≤1 per tick) — amortized after the first cycles")
            raised.push(AlertKind::ForwardCollisionWarning);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturation_requires_sustained_condition() {
        let mut m = AlertManager::new();
        for _ in 0..SATURATION_TICKS - 1 {
            assert!(m.step(true, Accel::ZERO).is_empty());
        }
        let raised = m.step(true, Accel::ZERO);
        assert_eq!(raised, vec![AlertKind::SteerSaturated]);
        // Holding the condition does not re-raise.
        assert!(m.step(true, Accel::ZERO).is_empty());
        assert_eq!(m.total_events(), 1);
    }

    #[test]
    fn blips_reset_the_streak() {
        let mut m = AlertManager::new();
        for _ in 0..40 {
            m.step(true, Accel::ZERO);
        }
        m.step(false, Accel::ZERO);
        for _ in 0..40 {
            assert!(m.step(true, Accel::ZERO).is_empty());
        }
        assert_eq!(m.total_events(), 0);
    }

    #[test]
    fn saturation_can_re_fire_after_recovery() {
        let mut m = AlertManager::new();
        for _ in 0..SATURATION_TICKS {
            m.step(true, Accel::ZERO);
        }
        m.step(false, Accel::ZERO);
        for _ in 0..SATURATION_TICKS {
            m.step(true, Accel::ZERO);
        }
        assert_eq!(m.total_events(), 2);
    }

    #[test]
    fn fcw_fires_only_beyond_threshold() {
        let mut m = AlertManager::new();
        // The ADAS clamp (-3.5) and the loosest attack value (-4.0) both stay
        // inside the threshold: no FCW — the paper's Observation 2.
        assert!(m.step(false, Accel::from_mps2(-3.5)).is_empty());
        assert!(m.step(false, Accel::from_mps2(-4.0)).is_empty());
        assert_eq!(m.fcw_events(), 0);
        // Only a command beyond -4 would fire it.
        let raised = m.step(false, Accel::from_mps2(-4.5));
        assert_eq!(raised, vec![AlertKind::ForwardCollisionWarning]);
        assert_eq!(m.fcw_events(), 1);
    }
}
