//! A Panda-style CAN safety firmware model.
//!
//! Comma.ai's Panda adapter enforces hard limits on actuator messages
//! independent of the OpenPilot process. When OpenPilot runs against CARLA —
//! the paper's setup — Panda is *not* in the loop, which is why the paper's
//! fixed attack values (at OpenPilot's looser software limits) succeed; the
//! authors note those same attacks "may be detected by Panda's safety checks
//! if deployed on an actual vehicle" (§IV-E.4). The strategic values are
//! chosen inside this stricter envelope so they would pass even here.

use canbus::{decode_signal, CanFrame, VirtualCarDbc};
use units::{Accel, Angle};

use crate::SafetyLimits;

/// Verdict for one frame.
#[derive(Debug, Clone, PartialEq)]
pub enum PandaVerdict {
    /// The frame is within the safety envelope (or not a controlled message).
    Pass,
    /// The frame violates the envelope and is blocked.
    Blocked(
        /// Human-readable reason.
        String,
    ),
}

impl PandaVerdict {
    /// Whether the frame passed.
    pub fn passed(&self) -> bool {
        matches!(self, PandaVerdict::Pass)
    }
}

/// The firmware safety model: value limits on gas/brake and a rate limit on
/// steering.
#[derive(Debug)]
pub struct PandaSafety {
    dbc: VirtualCarDbc,
    limits: SafetyLimits,
    enabled: bool,
    last_steer: Angle,
    blocked: u64,
}

impl Default for PandaSafety {
    fn default() -> Self {
        Self::new(true)
    }
}

impl PandaSafety {
    /// Creates the safety model with the strict envelope.
    pub fn new(enabled: bool) -> Self {
        Self {
            dbc: VirtualCarDbc::new(),
            limits: SafetyLimits::strict(),
            enabled,
            last_steer: Angle::ZERO,
            blocked: 0,
        }
    }

    /// Whether checks are enforced. Disabled matches the paper's
    /// CARLA-integration setup.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Number of frames blocked so far.
    pub fn blocked_count(&self) -> u64 {
        self.blocked
    }

    /// Checks one outgoing frame against the envelope.
    ///
    /// Invalid checksums are blocked outright; gas/brake values must sit
    /// inside the strict limits; steering may change by at most the strict
    /// steer limit per frame (a rate check — absolute angles are the
    /// vehicle's business, jumps are an attack signature).
    pub fn check(&mut self, frame: &CanFrame) -> PandaVerdict {
        if !self.enabled {
            return PandaVerdict::Pass;
        }
        let verdict = self.evaluate(frame);
        if !verdict.passed() {
            self.blocked += 1;
        }
        verdict
    }

    fn evaluate(&mut self, frame: &CanFrame) -> PandaVerdict {
        if frame.id() == self.dbc.steering_control().id {
            // The allocation-free single-signal decode: the firmware model
            // sits on the per-frame hot path, so it must not build a
            // signal map per frame (R13).
            let deg = match decode_signal(self.dbc.steering_control(), frame, "STEER_ANGLE_CMD") {
                Ok(v) => v,
                Err(e) => return blocked(format_args!("steering frame: {e}")),
            };
            let steer = Angle::from_degrees(deg);
            let jump = (steer - self.last_steer).abs();
            if jump > self.limits.steer_max {
                return blocked(format_args!(
                    "steer change {:.3} deg exceeds {:.3} deg per frame",
                    jump.degrees(),
                    self.limits.steer_max.degrees()
                ));
            }
            self.last_steer = steer;
        } else if frame.id() == self.dbc.gas_command().id {
            let mps2 = match decode_signal(self.dbc.gas_command(), frame, "ACCEL_CMD") {
                Ok(v) => v,
                Err(e) => return blocked(format_args!("gas frame: {e}")),
            };
            let accel = Accel::from_mps2(mps2);
            if accel > self.limits.accel_max {
                return blocked(format_args!(
                    "accel {} exceeds {}",
                    accel, self.limits.accel_max
                ));
            }
        } else if frame.id() == self.dbc.brake_command().id {
            let mps2 = match decode_signal(self.dbc.brake_command(), frame, "BRAKE_CMD") {
                Ok(v) => v,
                Err(e) => return blocked(format_args!("brake frame: {e}")),
            };
            let brake = Accel::from_mps2(mps2);
            if brake < self.limits.brake_min {
                return blocked(format_args!(
                    "brake {} exceeds {}",
                    brake, self.limits.brake_min
                ));
            }
        }
        PandaVerdict::Pass
    }
}

/// Builds a blocked verdict — the safety model's only allocation, funneled
/// through one site so the hot-path proof has exactly one witness to
/// justify: verdict text exists only for frames the envelope rejects.
fn blocked(reason: std::fmt::Arguments<'_>) -> PandaVerdict {
    // adas-lint: allow(R13, reason = "verdict text is built only for a blocked frame — attack evidence, never a clean steady-state tick")
    PandaVerdict::Blocked(reason.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use canbus::Encoder;

    fn frames(accel: f64, brake: f64, steer: f64) -> Vec<CanFrame> {
        let dbc = VirtualCarDbc::new();
        let mut enc = Encoder::new();
        vec![
            enc.encode(dbc.gas_command(), &[("ACCEL_CMD", accel)]).unwrap(),
            enc.encode(dbc.brake_command(), &[("BRAKE_CMD", brake)]).unwrap(),
            enc.encode(dbc.steering_control(), &[("STEER_ANGLE_CMD", steer)])
                .unwrap(),
        ]
    }

    #[test]
    fn strategic_attack_values_pass() {
        let mut panda = PandaSafety::new(true);
        for f in frames(2.0, -3.5, 0.25) {
            assert!(panda.check(&f).passed(), "{f}");
        }
        assert_eq!(panda.blocked_count(), 0);
    }

    #[test]
    fn fixed_attack_values_are_blocked() {
        let mut panda = PandaSafety::new(true);
        let fs = frames(2.4, -4.0, 0.5);
        let verdicts: Vec<bool> = fs.iter().map(|f| panda.check(f).passed()).collect();
        assert_eq!(verdicts, vec![false, false, false]);
        assert_eq!(panda.blocked_count(), 3);
    }

    #[test]
    fn smooth_steering_passes_rate_check() {
        let mut panda = PandaSafety::new(true);
        let dbc = VirtualCarDbc::new();
        let mut enc = Encoder::new();
        // Ramp to 0.5 deg in 0.05 deg steps: each jump is tiny.
        for i in 0..10 {
            let f = enc
                .encode(
                    dbc.steering_control(),
                    &[("STEER_ANGLE_CMD", i as f64 * 0.05)],
                )
                .unwrap();
            assert!(panda.check(&f).passed(), "step {i}");
        }
    }

    #[test]
    fn steering_jump_is_blocked() {
        let mut panda = PandaSafety::new(true);
        let dbc = VirtualCarDbc::new();
        let mut enc = Encoder::new();
        let f = enc
            .encode(dbc.steering_control(), &[("STEER_ANGLE_CMD", 0.5)])
            .unwrap();
        assert!(!panda.check(&f).passed(), "0 -> 0.5 deg jump blocked");
    }

    #[test]
    fn invalid_checksum_is_blocked() {
        let mut panda = PandaSafety::new(true);
        let mut fs = frames(1.0, 0.0, 0.0);
        fs[0].data_mut()[0] ^= 1;
        assert!(!panda.check(&fs[0]).passed());
    }

    #[test]
    fn disabled_panda_passes_everything() {
        // The paper's CARLA setup: Panda hardware not in the loop.
        let mut panda = PandaSafety::new(false);
        for f in frames(2.4, -4.0, 0.5) {
            assert!(panda.check(&f).passed());
        }
        assert_eq!(panda.blocked_count(), 0);
    }

    #[test]
    fn uncontrolled_messages_pass() {
        let mut panda = PandaSafety::new(true);
        let f = CanFrame::new(0x1D0, &[0xFF; 8]).unwrap();
        assert!(panda.check(&f).passed());
    }
}
