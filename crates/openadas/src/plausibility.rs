//! Plausibility gates: content-level vetting of sensor readings.
//!
//! The staleness watchdogs in [`degradation`](crate::degradation) notice a
//! stream that goes *silent*; these gates notice a stream that keeps
//! talking but stops making sense. Three checks run on every reading
//! before the estimators fuse it:
//!
//! * **Innovation bound** — a measurement whose normalized Kalman
//!   innovation exceeds a chi-square-style sigma threshold is implausible
//!   against everything the filter has learned.
//! * **Rate limit** — lead distance, relative speed, ego speed and lane
//!   position cannot physically jump more than a bounded amount per tick.
//!   The lane limit is wrap-aware: a re-anchoring jump of exactly one lane
//!   width (the perception model snapping to the next lane's centre) is a
//!   legitimate discontinuity, not corruption.
//! * **Stuck detector** — N bit-identical consecutive readings from a
//!   noisy sensor while the ego is moving cannot occur naturally; the
//!   stream is frozen even though messages keep arriving.
//!
//! A rejected reading is withheld from the estimators and the stream is
//! reported *not ok* to the degradation ladder, so fresh-but-wrong data
//! escalates exactly like absent data. To keep a rejected stream from
//! starving forever (e.g. truth readings after a stuck window are wildly
//! implausible against the frozen estimate), a stream **re-anchors**: once
//! the incoming readings have been self-consistent for
//! [`GateConfig::reacquire_after`] ticks, the next reading is accepted
//! even though it violates the bounds, and the filters re-converge.
//! `reacquire_after` is deliberately shorter than
//! [`DEGRADE_AFTER`](crate::DEGRADE_AFTER), so a legitimate discontinuity
//! (a radar track switch) is re-acquired before the ladder escalates.
//!
//! Known limitation: a stream frozen at a *near-zero* speed is
//! indistinguishable from a legitimate standstill (the GPS clamps noise at
//! exactly 0.0 when stopped), so the stuck detector only arms above
//! [`GateConfig::min_moving_speed`]. Spoofed-but-smooth values below every
//! bound are the §V detectors' problem (context monitor, control
//! invariants), not the gates'.

use msgbus::schema::{GpsLocation, LaneModel, RadarState};
use units::mix::splitmix64;
use units::{limits, Tick};

use crate::{CarStateEstimator, LeadTracker};

/// Maximum age, in ticks, of a sensor payload's sample timestamp before
/// the stream counts as stale even though the message *arrived* this tick.
/// Closes the replayed-history blind spot: a latency or bus-delay fault
/// republishes old readings whose envelope tick lags the publish tick.
/// Generous against legitimate jitter (the lock-step harness publishes at
/// age 0), tight against the fault grammar's 10-tick default delay.
pub const STALE_AFTER_TICKS: u64 = limits::STALE_AFTER_TICKS;

/// Thresholds of the plausibility gates. All defaults are calibrated to
/// never fire on the clean S1–S4 matrix (asserted by the false-positive
/// budget test in `platform/tests/defense.rs`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateConfig {
    /// Whether rejections are enforced (reading withheld, stream reported
    /// not-ok) or merely counted (observe mode).
    pub enforce: bool,
    /// Normalized-innovation threshold in sigmas.
    pub innovation_sigma: f64,
    /// Max ego-speed change per tick (m/s) between accepted readings.
    pub max_speed_jump: f64,
    /// Max lead-distance change per tick (m) between accepted readings.
    pub max_dist_jump: f64,
    /// Max lead-speed change per tick (m/s) between accepted readings.
    pub max_lead_speed_jump: f64,
    /// Max lane-offset change per tick (m), reduced modulo the lane width
    /// so re-anchoring jumps pass.
    pub max_offset_jump: f64,
    /// Bit-identical consecutive readings before a stream is stuck.
    pub stuck_after: u32,
    /// Self-consistent incoming ticks before a bound-violating stream
    /// re-anchors. Must stay below `DEGRADE_AFTER` so legitimate
    /// discontinuities never walk the ladder.
    pub reacquire_after: u32,
    /// Ego-speed reading (m/s) below which the stuck detector disarms
    /// (standstill readings legitimately repeat bit-for-bit).
    pub min_moving_speed: f64,
    /// Cap, in ticks, on how far the jump allowance grows while a stream
    /// is being rejected (allowance = per-tick limit × elapsed, capped).
    pub elapsed_cap: u32,
}

impl GateConfig {
    /// Gates that reject implausible readings (the `Degrade`/`FailSafe`
    /// policies).
    pub fn enforcing() -> Self {
        Self {
            enforce: true,
            innovation_sigma: limits::GATE_INNOVATION_SIGMA,
            max_speed_jump: limits::GATE_MAX_SPEED_JUMP_MPS,
            max_dist_jump: limits::GATE_MAX_DIST_JUMP_M,
            max_lead_speed_jump: limits::GATE_MAX_LEAD_SPEED_JUMP_MPS,
            max_offset_jump: limits::GATE_MAX_OFFSET_JUMP_M,
            stuck_after: limits::GATE_STUCK_AFTER,
            reacquire_after: limits::GATE_REACQUIRE_AFTER,
            min_moving_speed: limits::GATE_MIN_MOVING_SPEED_MPS,
            elapsed_cap: limits::GATE_ELAPSED_CAP,
        }
    }

    /// Gates that only count implausible readings (the `Observe` policy).
    pub fn observing() -> Self {
        Self {
            enforce: false,
            ..Self::enforcing()
        }
    }
}

impl Default for GateConfig {
    fn default() -> Self {
        Self::enforcing()
    }
}

/// Per-stream gate machinery shared by GPS, lane and radar: stuck
/// fingerprinting, re-anchor bookkeeping and the accept/reject verdict.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct StreamGate {
    /// Fingerprint of the previous incoming reading.
    last_fp: Option<u64>,
    /// Consecutive bit-identical incoming readings.
    identical_streak: u32,
    /// Consecutive self-consistent incoming readings (within the per-tick
    /// jump allowance of each other).
    consistent_streak: u32,
    /// Tick of the last accepted reading.
    last_accept: Option<u64>,
}

impl StreamGate {
    /// Updates the stuck fingerprint; returns whether this reading is
    /// bit-identical to the previous one.
    fn observe_fp(&mut self, fp: u64) -> bool {
        let identical = self.last_fp == Some(fp);
        self.identical_streak = if identical {
            self.identical_streak.saturating_add(1)
        } else {
            0
        };
        self.last_fp = Some(fp);
        identical
    }

    /// Ticks since the last accepted reading, capped; the jump allowance
    /// scales with this so a briefly-rejected stream can still re-join.
    fn elapsed(&self, tick: u64, cap: u32) -> f64 {
        match self.last_accept {
            Some(at) => (tick.saturating_sub(at)).clamp(1, u64::from(cap)) as f64,
            None => 1.0,
        }
    }

    /// Folds this tick's verdict inputs into the final accept decision and
    /// updates the re-anchor state. `stuck` and `violation` are the gate's
    /// findings for the reading; `consistent` is whether the reading sits
    /// within one tick's allowance of the *previous incoming* reading.
    fn decide(&mut self, cfg: &GateConfig, tick: u64, stuck: bool, violation: bool, consistent: bool) -> bool {
        self.consistent_streak = if consistent {
            self.consistent_streak.saturating_add(1)
        } else {
            0
        };
        let accept = if stuck {
            false
        } else if violation {
            self.consistent_streak >= cfg.reacquire_after
        } else {
            true
        };
        if accept {
            self.last_accept = Some(tick);
        }
        accept
    }
}

/// The assembled per-stream gates plus the rejection counter surfaced in
/// `SimResult`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PerceptionGates {
    cfg: GateConfig,
    gps: StreamGate,
    lane: StreamGate,
    radar: StreamGate,
    /// Previous incoming values for the consistency checks.
    prev_gps_speed: Option<f64>,
    prev_lane_offset: Option<f64>,
    prev_radar: Option<(f64, f64)>,
    /// Last accepted values for the jump limits.
    accepted_gps_speed: Option<f64>,
    accepted_lane_offset: Option<f64>,
    accepted_radar: Option<(f64, f64)>,
    rejections: u64,
}

impl PerceptionGates {
    /// Creates gates with the given thresholds.
    pub fn new(cfg: GateConfig) -> Self {
        Self {
            cfg,
            ..Self::default()
        }
    }

    /// Whether rejections are enforced (vs. merely counted).
    pub fn enforcing(&self) -> bool {
        self.cfg.enforce
    }

    /// Total readings flagged implausible so far (counted in both modes).
    pub fn rejections(&self) -> u64 {
        self.rejections
    }

    /// Vets one GPS reading against the speed filter. Returns whether the
    /// reading should be fused and the stream counted healthy.
    pub fn admit_gps(&mut self, tick: Tick, gps: &GpsLocation, est: &CarStateEstimator) -> bool {
        let t = tick.index();
        let z = gps.speed.mps();
        let identical = self.gps.observe_fp(splitmix64(z.to_bits()));
        let moving = z >= self.cfg.min_moving_speed;
        let stuck = moving && identical && self.gps.identical_streak >= self.cfg.stuck_after;

        let allowance = self.cfg.max_speed_jump * self.gps.elapsed(t, self.cfg.elapsed_cap);
        let jump = self
            .accepted_gps_speed
            .is_some_and(|prev| (z - prev).abs() > allowance);
        let innovation = est
            .speed_innovation(gps)
            .is_some_and(|nu| nu > self.cfg.innovation_sigma);
        let violation = jump || innovation || !z.is_finite();

        let consistent = self
            .prev_gps_speed
            .is_some_and(|prev| (z - prev).abs() <= self.cfg.max_speed_jump);
        self.prev_gps_speed = Some(z);

        let accept = self.gps.decide(&self.cfg, t, stuck, violation, consistent);
        if accept {
            self.accepted_gps_speed = Some(z);
        } else {
            self.rejections += 1;
        }
        accept || !self.cfg.enforce
    }

    /// Vets one lane-model reading. Rate-limits the lateral offset with a
    /// wrap-aware allowance (a ±lane-width re-anchor jump is legitimate)
    /// and watches for a frozen camera (lane jitter never repeats
    /// bit-for-bit on a live sensor).
    pub fn admit_lane(&mut self, tick: Tick, lane: &LaneModel) -> bool {
        let t = tick.index();
        let offset = lane.lateral_offset().raw();
        let fp = splitmix64(lane.left_line.raw().to_bits())
            ^ splitmix64(lane.right_line.raw().to_bits().rotate_left(1))
            ^ splitmix64(lane.curvature.to_bits().rotate_left(2));
        let identical = self.lane.observe_fp(fp);
        let stuck = identical && self.lane.identical_streak >= self.cfg.stuck_after;

        let width = lane.lane_width.raw().abs().max(1e-6);
        let wrap_jump = |a: f64, b: f64| {
            let d = (a - b).abs() % width;
            d.min(width - d)
        };
        let allowance = self.cfg.max_offset_jump * self.lane.elapsed(t, self.cfg.elapsed_cap);
        let jump = self
            .accepted_lane_offset
            .is_some_and(|prev| wrap_jump(offset, prev) > allowance);
        let violation = jump || !offset.is_finite();

        let consistent = self
            .prev_lane_offset
            .is_some_and(|prev| wrap_jump(offset, prev) <= self.cfg.max_offset_jump);
        self.prev_lane_offset = Some(offset);

        let accept = self.lane.decide(&self.cfg, t, stuck, violation, consistent);
        if accept {
            self.accepted_lane_offset = Some(offset);
        } else {
            self.rejections += 1;
        }
        accept || !self.cfg.enforce
    }

    /// Vets one radar reading against the lead track. A `lead: None`
    /// message is always admitted (an empty road is not corruption, and
    /// identical `None`s repeat legitimately).
    pub fn admit_radar(&mut self, tick: Tick, radar: &RadarState, tracker: &LeadTracker) -> bool {
        let Some(lead) = radar.lead else {
            // No detection: nothing to vet. Reset the stuck fingerprint so
            // a Some–None–Some alternation never counts as identical.
            self.radar.last_fp = None;
            self.radar.identical_streak = 0;
            self.prev_radar = None;
            self.radar.last_accept = Some(tick.index());
            return true;
        };
        let t = tick.index();
        let d = lead.d_rel.raw();
        let v = lead.v_lead.mps();
        let fp = splitmix64(d.to_bits())
            ^ splitmix64(v.to_bits().rotate_left(1))
            ^ splitmix64(lead.a_lead.mps2().to_bits().rotate_left(2));
        let identical = self.radar.observe_fp(fp);
        let stuck = identical && self.radar.identical_streak >= self.cfg.stuck_after;

        let elapsed = self.radar.elapsed(t, self.cfg.elapsed_cap);
        let jump = self.accepted_radar.is_some_and(|(pd, pv)| {
            (d - pd).abs() > self.cfg.max_dist_jump * elapsed
                || (v - pv).abs() > self.cfg.max_lead_speed_jump * elapsed
        });
        let innovation = tracker.innovations(&lead).is_some_and(|(nd, nv)| {
            nd > self.cfg.innovation_sigma || nv > self.cfg.innovation_sigma
        });
        let violation = jump || innovation || !d.is_finite() || !v.is_finite();

        let consistent = self.prev_radar.is_some_and(|(pd, pv)| {
            (d - pd).abs() <= self.cfg.max_dist_jump
                && (v - pv).abs() <= self.cfg.max_lead_speed_jump
        });
        self.prev_radar = Some((d, v));

        let accept = self.radar.decide(&self.cfg, t, stuck, violation, consistent);
        if accept {
            self.accepted_radar = Some((d, v));
        } else {
            self.rejections += 1;
        }
        accept || !self.cfg.enforce
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msgbus::schema::LeadTrack;
    use units::{Accel, Angle, Distance, Speed};

    fn gps(v: f64) -> GpsLocation {
        GpsLocation {
            speed: Speed::from_mps(v),
            bearing: Angle::ZERO,
        }
    }

    fn lane(offset: f64, jitter: f64) -> LaneModel {
        LaneModel {
            left_line: Distance::meters(1.85 - offset + jitter),
            right_line: Distance::meters(1.85 + offset + jitter),
            lane_width: Distance::meters(3.7),
            curvature: 0.0,
        }
    }

    fn radar(d: f64, v: f64) -> RadarState {
        RadarState {
            lead: Some(LeadTrack {
                d_rel: Distance::meters(d),
                v_lead: Speed::from_mps(v),
                a_lead: Accel::ZERO,
            }),
        }
    }

    /// A warmed-up estimator pair tracking ~26.8 m/s and a 40 m lead.
    fn warmed() -> (CarStateEstimator, LeadTracker) {
        let mut est = CarStateEstimator::new(Speed::from_mph(60.0));
        let mut tracker = LeadTracker::new();
        for i in 0..100 {
            let wob = if i % 2 == 0 { 0.02 } else { -0.02 };
            est.update(&gps(26.8 + wob), Angle::ZERO);
            tracker.update(&radar(40.0 + wob, 20.0 - wob));
        }
        (est, tracker)
    }

    #[test]
    fn noisy_nominal_readings_pass() {
        let (est, tracker) = warmed();
        let mut g = PerceptionGates::new(GateConfig::enforcing());
        for i in 0..200u64 {
            let wob = ((i % 7) as f64 - 3.0) * 0.01;
            assert!(g.admit_gps(Tick::new(i), &gps(26.8 + wob), &est), "gps tick {i}");
            assert!(g.admit_lane(Tick::new(i), &lane(0.1 + wob, wob)), "lane tick {i}");
            assert!(
                g.admit_radar(Tick::new(i), &radar(40.0 + wob, 20.0 - wob), &tracker),
                "radar tick {i}"
            );
        }
        assert_eq!(g.rejections(), 0);
    }

    #[test]
    fn stuck_speed_rejected_after_threshold_then_reacquires() {
        let (est, _) = warmed();
        let cfg = GateConfig::enforcing();
        let mut g = PerceptionGates::new(cfg);
        let mut first_reject = None;
        for i in 0..100u64 {
            if !g.admit_gps(Tick::new(i), &gps(26.8), &est) && first_reject.is_none() {
                first_reject = Some(i);
            }
        }
        assert_eq!(
            first_reject,
            Some(u64::from(cfg.stuck_after)),
            "bit-identical readings rejected once the streak arms"
        );
        // The window ends: readings change again (near the estimate) and
        // are accepted immediately — the stuck streak resets.
        assert!(g.admit_gps(Tick::new(100), &gps(26.75), &est));
    }

    #[test]
    fn standstill_zero_readings_are_not_stuck() {
        let mut est = CarStateEstimator::new(Speed::from_mph(60.0));
        for _ in 0..50 {
            est.update(&gps(0.0), Angle::ZERO);
        }
        let mut g = PerceptionGates::new(GateConfig::enforcing());
        for i in 0..200u64 {
            assert!(g.admit_gps(Tick::new(i), &gps(0.0), &est), "tick {i}");
        }
        assert_eq!(g.rejections(), 0, "exact 0.0 repeats at standstill are legitimate");
    }

    #[test]
    fn wild_speed_jump_rejected_then_reacquired_on_consistency() {
        let (est, _) = warmed();
        let cfg = GateConfig::enforcing();
        let mut g = PerceptionGates::new(cfg);
        for i in 0..10u64 {
            assert!(g.admit_gps(Tick::new(i), &gps(26.8 + (i % 2) as f64 * 0.01), &est));
        }
        // A 15 m/s teleport: innovation and jump both fire.
        assert!(!g.admit_gps(Tick::new(10), &gps(41.8), &est));
        // Consistent readings around the new value re-anchor the stream
        // after `reacquire_after` ticks.
        let mut accepted_at = None;
        for i in 11..60u64 {
            let z = 41.8 + (i % 2) as f64 * 0.01;
            if g.admit_gps(Tick::new(i), &gps(z), &est) {
                accepted_at = Some(i);
                break;
            }
        }
        let at = accepted_at.expect("stream re-anchors");
        assert!(
            at <= 11 + u64::from(cfg.reacquire_after),
            "re-anchored at {at}, within the reacquire window"
        );
    }

    #[test]
    fn lane_reanchor_jump_of_one_width_passes() {
        let mut g = PerceptionGates::new(GateConfig::enforcing());
        for i in 0..20u64 {
            let wob = ((i % 3) as f64 - 1.0) * 0.01;
            assert!(g.admit_lane(Tick::new(i), &lane(1.8 + wob, wob)));
        }
        // Crossing the lane boundary re-anchors perception: the offset
        // wraps by one full lane width. Wrap-aware limit: accepted.
        assert!(g.admit_lane(Tick::new(20), &lane(1.8 - 3.7, 0.01)));
        // A half-width teleport is NOT a legitimate re-anchor: rejected.
        assert!(!g.admit_lane(Tick::new(21), &lane(1.8 - 3.7 + 1.6, 0.02)));
    }

    #[test]
    fn frozen_lane_model_is_stuck() {
        let cfg = GateConfig::enforcing();
        let mut g = PerceptionGates::new(cfg);
        let frozen = lane(0.2, 0.005);
        let mut rejected = 0;
        for i in 0..60u64 {
            if !g.admit_lane(Tick::new(i), &frozen) {
                rejected += 1;
            }
        }
        // Reading i carries identical_streak == i, so rejection starts at
        // i == stuck_after and covers every later reading.
        assert_eq!(rejected, 60 - u64::from(cfg.stuck_after));
    }

    #[test]
    fn radar_none_messages_always_pass() {
        let (_, tracker) = warmed();
        let mut g = PerceptionGates::new(GateConfig::enforcing());
        for i in 0..100u64 {
            assert!(g.admit_radar(Tick::new(i), &RadarState { lead: None }, &tracker));
        }
        assert_eq!(g.rejections(), 0);
    }

    #[test]
    fn frozen_radar_track_is_stuck_while_none_is_not() {
        let (_, tracker) = warmed();
        let cfg = GateConfig::enforcing();
        let mut g = PerceptionGates::new(cfg);
        let frozen = radar(40.0, 20.0);
        let mut first_reject = None;
        for i in 0..100u64 {
            if !g.admit_radar(Tick::new(i), &frozen, &tracker) && first_reject.is_none() {
                first_reject = Some(i);
            }
        }
        assert_eq!(first_reject, Some(u64::from(cfg.stuck_after)));
    }

    #[test]
    fn radar_track_switch_reacquires_within_window() {
        let (_, mut tracker) = warmed();
        let cfg = GateConfig::enforcing();
        let mut g = PerceptionGates::new(cfg);
        for i in 0..10u64 {
            let wob = (i % 2) as f64 * 0.01;
            assert!(g.admit_radar(Tick::new(i), &radar(40.0 + wob, 20.0 - wob), &tracker));
        }
        // The radar switches to a different physical target 30 m further
        // out: a legitimate discontinuity. Rejected first...
        assert!(!g.admit_radar(Tick::new(10), &radar(70.0, 22.0), &tracker));
        // ...then re-anchored once the new track proves self-consistent,
        // well before the degradation ladder would escalate.
        let mut accepted_at = None;
        for i in 11..60u64 {
            tracker.coast();
            let wob = (i % 2) as f64 * 0.01;
            if g.admit_radar(Tick::new(i), &radar(70.0 + wob, 22.0 - wob), &tracker) {
                accepted_at = Some(i);
                break;
            }
        }
        let at = accepted_at.expect("new track re-anchors");
        assert!(at <= 11 + u64::from(cfg.reacquire_after));
    }

    #[test]
    fn observe_mode_counts_but_admits() {
        let (est, _) = warmed();
        let mut g = PerceptionGates::new(GateConfig::observing());
        for i in 0..60u64 {
            assert!(
                g.admit_gps(Tick::new(i), &gps(26.8), &est),
                "observe mode never withholds"
            );
        }
        assert!(g.rejections() > 0, "but the flags are still counted");
    }
}
