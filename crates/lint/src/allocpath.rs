//! R13: hot-path allocation freedom.
//!
//! The throughput claims rest on the steady-state tick never touching the
//! allocator — the runtime witness is the counting-allocator test in
//! `platform/tests/alloc.rs`, but that test exercises exactly one
//! configuration. R13 turns the property into a whole-hot-path build gate:
//! a transitive "may-allocate" walk from the tick roots ([`R13_ROOTS`])
//! over a curated table of allocating std APIs. Workspace calls that the
//! symbol table *can* resolve are descended into rather than matched
//! against the table (their bodies are analyzed directly); only calls that
//! resolve to nothing — std and core APIs — are judged by name. The escape
//! hatch for provably-amortized buffer reuse ([`AMORTIZED_FNS`], the
//! `drain_into` family) is what the runtime alloc test exists to justify:
//! those functions append into caller-owned buffers whose capacity the
//! warmup ticks saturate, which the counting allocator confirms end-to-end.

use crate::callgraph::CallGraph;
use crate::diag::{Diagnostic, Rule, Severity};
use crate::parser::{Callee, FileFacts, FnDef};
use crate::scope::{concurrency_applies, FileInfo};
use crate::symbols::SymbolTable;
use std::collections::{HashMap, HashSet, VecDeque};

/// Qualified names of the steady-state tick entry points. (The batched
/// core's per-tick entry is `BatchHarness::step`; the campaign drivers
/// call it in a loop.)
pub const R13_ROOTS: [&str; 2] = ["Harness::step", "BatchHarness::step"];

/// Method names that allocate when they resolve to nothing in the
/// workspace (i.e. are std container/string APIs). `push` beyond capacity,
/// the owning conversions, and `collect` are the big ones.
pub const ALLOC_METHODS: [&str; 12] = [
    "push",
    "push_str",
    "push_back",
    "push_front",
    "insert",
    "extend",
    "append",
    "collect",
    "to_vec",
    "to_string",
    "to_owned",
    "reserve",
];

/// `Type::fn` paths that construct heap-backed values. `Vec::new` does not
/// allocate by itself, but a fresh container per tick is exactly the
/// capacity-amortization bug the rule exists to catch — construction in
/// the hot path is the finding, wherever the first `push` lands.
pub const ALLOC_PATHS: [(&str, &str); 10] = [
    ("Box", "new"),
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Vec", "from"),
    ("VecDeque", "new"),
    ("String", "new"),
    ("String", "from"),
    ("HashMap", "new"),
    ("BTreeMap", "new"),
    ("Arc", "new"),
];

/// Macros that allocate.
pub const ALLOC_MACROS: [&str; 2] = ["vec", "format"];

/// Functions whose interior allocation is provably amortized: they append
/// into caller-owned, capacity-retaining buffers (`clear()` + reuse), so
/// after warmup the steady state never grows them. The BFS neither
/// descends into nor reports inside these; the runtime counting-allocator
/// gate (`platform/tests/alloc.rs`) is the end-to-end witness that the
/// exemption is sound.
pub const AMORTIZED_FNS: [&str; 2] = ["drain_into", "drain_frames_into"];

/// Whether a call site resolves to at least one workspace symbol, under
/// the same rules [`CallGraph::build`] uses.
fn resolves(table: &SymbolTable, from_crate: &str, callee: &Callee) -> bool {
    match callee {
        Callee::Free(name) => table
            .resolve_name(from_crate, name)
            .into_iter()
            .any(|t| table.symbols[t].impl_type.is_none()),
        Callee::Method(name) => table
            .resolve_name(from_crate, name)
            .into_iter()
            .any(|t| table.symbols[t].impl_type.is_some()),
        Callee::Path(prefix, name) => !table.resolve_path(from_crate, prefix, name).is_empty(),
    }
}

/// R13: walk the call graph from the tick roots and report every
/// allocating site reached, with the root→site call chain.
pub fn r13_alloc_freedom(
    files: &[(FileInfo, FileFacts)],
    table: &SymbolTable,
    graph: &CallGraph,
) -> Vec<Diagnostic> {
    let mut defs: Vec<(&FileInfo, &FnDef)> = Vec::with_capacity(table.symbols.len());
    for (info, facts) in files {
        for f in &facts.fns {
            defs.push((info, f));
        }
    }
    debug_assert_eq!(defs.len(), table.symbols.len());

    let roots: Vec<usize> = table
        .symbols
        .iter()
        .filter(|s| R13_ROOTS.contains(&s.qual.as_str()) && !s.is_test)
        .map(|s| s.id)
        .collect();
    let mut out = Vec::new();
    if roots.is_empty() {
        // No harness in the scanned set (e.g. a fixture scan): nothing to
        // prove.
        return out;
    }

    // BFS with a parent map for chain reconstruction, refusing to enter
    // test code and amortized-exempt functions.
    let mut parent: HashMap<usize, usize> = HashMap::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    for &r in &roots {
        if parent.insert(r, r).is_none() {
            queue.push_back(r);
        }
    }
    while let Some(cur) = queue.pop_front() {
        for &next in &graph.edges[cur] {
            let s = &table.symbols[next];
            if s.is_test
                || AMORTIZED_FNS.contains(&s.name.as_str())
                || AMORTIZED_FNS.contains(&s.qual.as_str())
            {
                continue;
            }
            if let std::collections::hash_map::Entry::Vacant(e) = parent.entry(next) {
                e.insert(cur);
                queue.push_back(next);
            }
        }
    }

    let mut reached: Vec<usize> = parent.keys().copied().collect();
    reached.sort_unstable();
    let mut seen_sites: HashSet<(String, usize, String)> = HashSet::new();
    for id in reached {
        let (info, f) = defs[id];
        let sym = &table.symbols[id];
        if sym.is_test || !concurrency_applies(info) {
            continue;
        }
        let mut hits: Vec<(usize, String)> = Vec::new();
        for c in &f.calls {
            let flagged = match &c.callee {
                Callee::Method(name) => ALLOC_METHODS.contains(&name.as_str()),
                Callee::Path(prefix, name) => {
                    ALLOC_PATHS.contains(&(prefix.as_str(), name.as_str()))
                }
                Callee::Free(_) => false,
            };
            if flagged && !resolves(table, &info.crate_name, &c.callee) {
                let label = match &c.callee {
                    Callee::Method(name) => format!(".{name}(…)"),
                    Callee::Path(prefix, name) => format!("{prefix}::{name}(…)"),
                    Callee::Free(name) => format!("{name}(…)"),
                };
                hits.push((c.line, label));
            }
        }
        for (line, name) in &f.macros {
            if ALLOC_MACROS.contains(&name.as_str()) {
                hits.push((*line, format!("{name}!(…)")));
            }
        }
        for (line, label) in hits {
            if !seen_sites.insert((info.rel.clone(), line, label.clone())) {
                continue;
            }
            let chain = graph.chain(table, &parent, id).join(" → ");
            out.push(Diagnostic {
                rule: Rule::AllocFreedom,
                severity: Severity::Error,
                file: info.rel.clone(),
                line,
                snippet: format!("{label} in {}", sym.qual),
                message: format!(
                    "`{label}` allocates and is reachable from the steady-state tick; \
                     call chain: {chain}. Reuse a cleared, capacity-retaining buffer \
                     (drain_into-style), or allow with a reason proving amortization",
                ),
            });
        }
    }
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::parse_files;

    fn analyze(sources: &[(&str, &str)]) -> Vec<Diagnostic> {
        let files = parse_files(sources);
        let table = SymbolTable::build(&files, None);
        let graph = CallGraph::build(&files, &table);
        r13_alloc_freedom(&files, &table, &graph)
    }

    #[test]
    fn flags_transitive_allocation_with_chain() {
        let d = analyze(&[
            (
                "crates/platform/src/harness.rs",
                "pub struct Harness;\nimpl Harness { pub fn step(&mut self) { helper(); } }\n",
            ),
            (
                "crates/core/src/helper.rs",
                "pub fn helper() -> Vec<u8> { let mut v = Vec::new(); v.push(1); v }\n",
            ),
        ]);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d[0].message.contains("Harness::step → helper"), "{}", d[0].message);
        assert!(d.iter().any(|x| x.snippet.contains("Vec::new")), "{d:?}");
        assert!(d.iter().any(|x| x.snippet.contains(".push(…)")), "{d:?}");
    }

    #[test]
    fn unreached_allocation_is_not_flagged() {
        let d = analyze(&[
            (
                "crates/platform/src/harness.rs",
                "pub struct Harness;\nimpl Harness { pub fn step(&mut self) {} }\n",
            ),
            (
                "crates/core/src/campaign.rs",
                "pub fn plan() -> Vec<u8> { vec![1, 2, 3] }\n",
            ),
        ]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn amortized_fns_are_exempt_and_not_descended() {
        let d = analyze(&[
            (
                "crates/platform/src/harness.rs",
                "pub struct Harness;\nimpl Harness { pub fn step(&mut self, out: &mut Vec<u8>) { self.bus.drain_into(out); } }\n",
            ),
            (
                "crates/msgbus/src/bus.rs",
                "pub struct Bus;\nimpl Bus { pub fn drain_into(&mut self, out: &mut Vec<u8>) { out.extend(self.q.iter()); } }\n",
            ),
        ]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn resolved_workspace_calls_are_descended_not_matched() {
        // `.push(…)` that resolves to a workspace method is not a std
        // allocation; the callee's own body is what gets judged.
        let d = analyze(&[(
            "crates/platform/src/batch.rs",
            "pub struct BatchHarness;\n\
             impl BatchHarness { pub fn step(&mut self) { self.ring.push(1); } }\n\
             pub struct Ring;\n\
             impl Ring { pub fn push(&mut self, v: u8) { self.buf[self.head] = v; } }\n",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn format_macro_in_hot_path_flagged() {
        let d = analyze(&[(
            "crates/platform/src/harness.rs",
            "pub struct Harness;\nimpl Harness { pub fn step(&mut self) { let s = format!(\"tick\"); } }\n",
        )]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::AllocFreedom);
        assert!(d[0].snippet.contains("format!"), "{}", d[0].snippet);
    }

    #[test]
    fn no_roots_means_nothing_to_prove() {
        let d = analyze(&[(
            "crates/core/src/helper.rs",
            "pub fn helper() -> Vec<u8> { vec![1] }\n",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }
}
