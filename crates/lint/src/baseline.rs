//! The grandfathered-findings baseline.
//!
//! The baseline is a checked-in text file (`lint-baseline.txt` at the
//! workspace root) holding one entry per accepted pre-existing finding:
//!
//! ```text
//! R2<TAB>crates/foo/src/bar.rs<TAB>normalized offending line
//! ```
//!
//! Matching is by `(rule, file, normalized snippet)` rather than line
//! number, so unrelated edits that shift lines do not invalidate the
//! baseline, while *changing* a grandfathered line forces a fresh look.
//! Duplicate identical lines in one file need one entry each (matching is
//! multiset-style).

use crate::diag::{Diagnostic, Rule};
use std::collections::HashMap;
use std::fmt::Write as _;

/// One baseline entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BaselineEntry {
    /// Rule the grandfathered finding violates.
    pub rule: Rule,
    /// Workspace-relative file.
    pub file: String,
    /// Whitespace-normalized offending line.
    pub snippet: String,
}

/// A parsed baseline with multiset matching.
#[derive(Debug, Default)]
pub struct Baseline {
    counts: HashMap<BaselineEntry, usize>,
}

/// Collapses internal whitespace runs so formatting churn cannot break a
/// baseline match.
pub fn normalize(snippet: &str) -> String {
    snippet.split_whitespace().collect::<Vec<_>>().join(" ")
}

impl Baseline {
    /// Parses baseline text. Unknown rules and malformed lines are
    /// reported as errors — a typo must not silently un-baseline a site.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut counts: HashMap<BaselineEntry, usize> = HashMap::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim_end();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, '\t');
            let (Some(rule), Some(file), Some(snippet)) =
                (parts.next(), parts.next(), parts.next())
            else {
                return Err(format!(
                    "baseline line {}: expected `rule<TAB>file<TAB>snippet`",
                    i + 1
                ));
            };
            let Some(rule) = Rule::parse(rule) else {
                return Err(format!("baseline line {}: unknown rule `{rule}`", i + 1));
            };
            let entry = BaselineEntry {
                rule,
                file: file.trim().to_string(),
                snippet: normalize(snippet),
            };
            *counts.entry(entry).or_insert(0) += 1;
        }
        Ok(Self { counts })
    }

    /// Consumes one matching entry for `diag` if available.
    pub fn matches(&mut self, diag: &Diagnostic) -> bool {
        let key = BaselineEntry {
            rule: diag.rule,
            file: diag.file.clone(),
            snippet: normalize(&diag.snippet),
        };
        match self.counts.get_mut(&key) {
            Some(n) if *n > 0 => {
                *n -= 1;
                true
            }
            _ => false,
        }
    }

    /// Entries never consumed by a finding — stale sites that were fixed
    /// but not removed from the file.
    pub fn unused(&self) -> Vec<BaselineEntry> {
        let mut v: Vec<BaselineEntry> = self
            .counts
            .iter()
            .filter(|(_, n)| **n > 0)
            .map(|(e, _)| e.clone())
            .collect();
        v.sort();
        v
    }
}

/// Serializes diagnostics as a fresh baseline file (`--write-baseline`).
pub fn render(diags: &[Diagnostic]) -> String {
    let mut entries: Vec<(String, String, String)> = diags
        .iter()
        .map(|d| (d.rule.id().to_string(), d.file.clone(), normalize(&d.snippet)))
        .collect();
    entries.sort();
    let mut out = String::from(
        "# adas-lint baseline — grandfathered findings, one per line:\n\
         # rule<TAB>file<TAB>normalized snippet\n\
         # Do not add entries for new code; fix it or use an inline\n\
         # `// adas-lint: allow(<rule>, reason = \"…\")` instead.\n",
    );
    for (rule, file, snippet) in entries {
        let _ = writeln!(out, "{rule}\t{file}\t{snippet}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    fn d(rule: Rule, file: &str, snippet: &str) -> Diagnostic {
        Diagnostic {
            rule,
            severity: Severity::Error,
            file: file.into(),
            line: 1,
            snippet: snippet.into(),
            message: String::new(),
        }
    }

    #[test]
    fn roundtrip_and_multiset_matching() {
        let diags = vec![
            d(Rule::PanicFreedom, "a.rs", "x.unwrap();"),
            d(Rule::PanicFreedom, "a.rs", "x.unwrap();"),
        ];
        let text = render(&diags);
        let mut b = Baseline::parse(&text).unwrap();
        assert!(b.matches(&diags[0]));
        assert!(b.matches(&diags[1]));
        assert!(!b.matches(&diags[0]), "multiset exhausted");
        assert!(b.unused().is_empty());
    }

    #[test]
    fn whitespace_churn_still_matches() {
        let text = "R2\ta.rs\tlet x =   y[0];\n";
        let mut b = Baseline::parse(text).unwrap();
        assert!(b.matches(&d(Rule::PanicFreedom, "a.rs", "let x = y[0];")));
    }

    #[test]
    fn unknown_rule_is_an_error() {
        assert!(Baseline::parse("R99\ta.rs\tx\n").is_err());
    }

    #[test]
    fn unused_entries_are_reported() {
        let b = Baseline::parse("R2\tgone.rs\tx.unwrap();\n").unwrap();
        assert_eq!(b.unused().len(), 1);
    }
}
