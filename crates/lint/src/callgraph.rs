//! The cross-file call graph and R7: transitive panic freedom.
//!
//! R2 proves "no panic *token* in this file" for the safety-path crates;
//! R7 upgrades that to "no call *path* from a steady-state root
//! ([`R7_ROOTS`]: the scalar tick, the batched tick, the pool worker loop)
//! reaches a panicking function", whatever crate the function lives in. The graph is
//! name-based and crate-closure-filtered (see [`crate::symbols`]), which
//! over-approximates reachability: a reported chain might not be
//! executable, but an *absent* chain is a real guarantee, which is the
//! direction a safety gate must err in. Calls that resolve to nothing
//! (std, vendored shims) are assumed non-panicking — the documented
//! trade-off of an offline, zero-dependency analysis.

use crate::diag::{Diagnostic, Rule, Severity};
use crate::parser::{Callee, FileFacts, PanicSite};
use crate::scope::FileInfo;
use crate::symbols::SymbolTable;
use std::collections::{HashMap, VecDeque};

/// The fully-qualified roots the R7 walk starts from: one scalar tick of
/// the closed loop, one batched tick, the campaign pool's worker loop,
/// and the campaign daemon's two long-running service loops (a panic in
/// either kills the service, not just one request). Everything the steady
/// state can execute hangs off these.
pub const R7_ROOTS: [&str; 5] = [
    "Harness::step",
    "BatchHarness::step",
    "spawn_worker",
    "accept_loop",
    "supervisor_loop",
];

/// A call graph over symbol ids.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Adjacency: caller id → callee ids (deduplicated).
    pub edges: Vec<Vec<usize>>,
    /// Panic primitives per symbol id.
    pub panics: Vec<Vec<PanicSite>>,
    /// Bare callee names per symbol, resolved or not — the taint rules
    /// need to see calls into types the table cannot resolve (e.g.
    /// `f64::clamp`).
    pub raw_calls: Vec<Vec<String>>,
}

impl CallGraph {
    /// Builds the graph by resolving every call site of every function.
    /// `files` must be the exact set [`SymbolTable::build`] consumed, in
    /// the same order — symbol ids are positional.
    pub fn build(files: &[(FileInfo, FileFacts)], table: &SymbolTable) -> Self {
        let n = table.symbols.len();
        let mut g = CallGraph {
            edges: vec![Vec::new(); n],
            panics: vec![Vec::new(); n],
            raw_calls: vec![Vec::new(); n],
        };
        let mut id = 0usize;
        for (info, facts) in files {
            for f in &facts.fns {
                debug_assert_eq!(table.symbols[id].name, f.name);
                g.panics[id] = f.panics.clone();
                g.raw_calls[id] = f.calls.iter().map(|c| c.callee.name().to_string()).collect();
                let mut targets: Vec<usize> = Vec::new();
                for call in &f.calls {
                    match &call.callee {
                        Callee::Free(name) => {
                            targets.extend(
                                table
                                    .resolve_name(&info.crate_name, name)
                                    .into_iter()
                                    .filter(|&t| table.symbols[t].impl_type.is_none()),
                            );
                        }
                        Callee::Method(name) => {
                            targets.extend(
                                table
                                    .resolve_name(&info.crate_name, name)
                                    .into_iter()
                                    .filter(|&t| table.symbols[t].impl_type.is_some()),
                            );
                        }
                        Callee::Path(prefix, name) => {
                            targets.extend(table.resolve_path(&info.crate_name, prefix, name));
                        }
                    }
                }
                targets.sort_unstable();
                targets.dedup();
                // A function trivially "reaches" itself; self-loops only
                // add noise to chain reconstruction.
                targets.retain(|&t| t != id);
                g.edges[id] = targets;
                id += 1;
            }
        }
        g
    }

    /// BFS from `roots`, skipping test-only symbols. Returns the parent
    /// map: reached id → the id it was first reached from (roots map to
    /// themselves).
    pub fn reach(&self, table: &SymbolTable, roots: &[usize]) -> HashMap<usize, usize> {
        let mut parent: HashMap<usize, usize> = HashMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &r in roots {
            if parent.insert(r, r).is_none() {
                queue.push_back(r);
            }
        }
        while let Some(cur) = queue.pop_front() {
            for &next in &self.edges[cur] {
                if table.symbols[next].is_test {
                    continue;
                }
                if let std::collections::hash_map::Entry::Vacant(e) = parent.entry(next) {
                    e.insert(cur);
                    queue.push_back(next);
                }
            }
        }
        parent
    }

    /// Reconstructs the root→target chain of qualified names.
    pub fn chain(&self, table: &SymbolTable, parent: &HashMap<usize, usize>, target: usize) -> Vec<String> {
        let mut rev = vec![target];
        let mut cur = target;
        while let Some(&p) = parent.get(&cur) {
            if p == cur {
                break;
            }
            rev.push(p);
            cur = p;
        }
        rev.reverse();
        rev.into_iter()
            .map(|id| table.symbols[id].qual.clone())
            .collect()
    }
}

/// R7: every panic primitive inside a function reachable from one of
/// [`R7_ROOTS`] is a finding, reported with the full call chain.
pub fn r7_transitive_panic_freedom(table: &SymbolTable, graph: &CallGraph) -> Vec<Diagnostic> {
    let roots: Vec<usize> = table
        .symbols
        .iter()
        .filter(|s| R7_ROOTS.contains(&s.qual.as_str()) && !s.is_test)
        .map(|s| s.id)
        .collect();
    let mut out = Vec::new();
    if roots.is_empty() {
        // No harness in the scanned set (e.g. a fixture scan): R7 has
        // nothing to prove.
        return out;
    }
    let parent = graph.reach(table, &roots);
    let mut reached: Vec<usize> = parent.keys().copied().collect();
    reached.sort_unstable();
    for id in reached {
        let sym = &table.symbols[id];
        if sym.is_test {
            continue;
        }
        for p in &graph.panics[id] {
            let chain = graph.chain(table, &parent, id).join(" → ");
            out.push(Diagnostic {
                rule: Rule::TransitivePanic,
                severity: Severity::Error,
                file: sym.file.clone(),
                line: p.line,
                snippet: format!("{} in {}", p.what, sym.qual),
                message: format!(
                    "`{}` panics and is reachable from a steady-state root \
                     (tick loop or pool worker); call chain: {chain}. Degrade \
                     (fail-closed) instead of dying, or allow with a reason \
                     proving the invariant",
                    p.what
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::{parse_files, SymbolTable};

    fn analyze(sources: &[(&str, &str)]) -> Vec<Diagnostic> {
        let files = parse_files(sources);
        let table = SymbolTable::build(&files, None);
        let graph = CallGraph::build(&files, &table);
        r7_transitive_panic_freedom(&table, &graph)
    }

    #[test]
    fn flags_transitive_panic_with_chain() {
        let d = analyze(&[
            (
                "crates/platform/src/harness.rs",
                "pub struct Harness;\nimpl Harness { pub fn step(&mut self) { middle(); } }\n",
            ),
            (
                "crates/platform/src/mid.rs",
                "pub fn middle() { deep_helper(); }\n",
            ),
            (
                "crates/core/src/deep.rs",
                "pub fn deep_helper() { let x: Option<u8> = None; x.expect(\"boom\"); }\n",
            ),
        ]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::TransitivePanic);
        assert!(
            d[0].message
                .contains("Harness::step → middle → deep_helper"),
            "{}",
            d[0].message
        );
        assert_eq!(d[0].file, "crates/core/src/deep.rs");
    }

    #[test]
    fn unreachable_panics_are_not_flagged() {
        let d = analyze(&[
            (
                "crates/platform/src/harness.rs",
                "pub struct Harness;\nimpl Harness { pub fn step(&mut self) { safe(); } }\npub fn safe() {}\n",
            ),
            (
                "crates/platform/src/driver.rs",
                "pub fn campaign_only() { panic!(\"not on the tick path\"); }\n",
            ),
        ]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn test_functions_do_not_contribute_edges_or_sites() {
        let d = analyze(&[(
            "crates/platform/src/harness.rs",
            "pub struct Harness;\nimpl Harness { pub fn step(&mut self) { helper(); } }\n\
             pub fn helper() {}\n\
             #[cfg(test)]\nmod tests {\n  fn helper() { x.unwrap(); }\n}\n",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }
}
