//! The scoping matrix: which crates and file kinds each rule covers.

/// What a `.rs` file is for, derived from its workspace-relative path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library source under `src/`.
    Lib,
    /// Binary source under `src/bin/`.
    Bin,
    /// Integration test under `tests/`.
    Test,
    /// Benchmark under `benches/`.
    Bench,
    /// Example under `examples/`.
    Example,
}

/// A classified workspace file.
#[derive(Debug, Clone)]
pub struct FileInfo {
    /// Workspace-relative path with forward slashes.
    pub rel: String,
    /// Owning crate (directory name under `crates/`, or the root package).
    pub crate_name: String,
    /// Role of the file.
    pub kind: FileKind,
}

/// Name used for files belonging to the root package.
pub const ROOT_CRATE: &str = "adas-attack-repro";

/// Crates whose public APIs R1 holds to `units::` newtypes.
pub const R1_CRATES: [&str; 4] = ["openadas", "driving-sim", "canbus", "driver-model"];

/// Safety-path crates R2 holds panic-free: everything between the sensor
/// models and the actuator bus.
pub const R2_CRATES: [&str; 6] = [
    "openadas",
    "canbus",
    "driving-sim",
    "driver-model",
    "units",
    "msgbus",
];

/// Modules allowed to write actuator command fields (R3): the safety
/// clamp, the command encoder, and the attack engine's designated
/// mutation points.
pub const R3_ALLOWED_PATHS: [&str; 4] = [
    "crates/openadas/src/safety.rs",
    "crates/openadas/src/controls.rs",
    "crates/core/src/corruption.rs",
    "crates/core/src/injector.rs",
];

/// Crates exempt from R5: the bench harness measures wall-clock time by
/// design, the lint itself is tooling outside the simulation, and the
/// campaign daemon's deadlines, backoff, and Slowloris budgets are
/// wall-clock by definition (its *simulation* determinism is enforced
/// downstream, in the seeded cells it submits to the pool).
pub const R5_EXEMPT_CRATES: [&str; 3] = ["bench", "lint", "campaignd"];

/// Safety-critical enums R8 requires exhaustive matching on. Adding a
/// variant to any of these (a new attack type, a new hazard class) must be
/// a compile-time event at every consumer — a `_ =>` arm would silently
/// swallow it, which is exactly how a new attack mode escapes the safety
/// layer or the detector.
pub const R8_ENUMS: [&str; 10] = [
    "AttackType",
    "AttackAction",
    "SteerDirection",
    "AlertKind",
    "HazardKind",
    "AccidentKind",
    "DegradationState",
    "FaultKind",
    "DefensePolicy",
    "IdsVerdict",
];

/// Crates whose library/binary code the semantic layer (R9–R11) lowers to
/// IR: everything between sensing and actuation, plus the attack and
/// defense crates whose constants R10 cross-checks.
pub const SEMANTIC_CRATES: [&str; 8] = [
    "openadas",
    "canbus",
    "driving-sim",
    "driver-model",
    "units",
    "msgbus",
    "core",
    "defense",
];

/// Crates holding R9 actuator-encode sinks: the ADAS controller that emits
/// commands and the bus codec that frames them.
pub const R9_CRATES: [&str; 2] = ["openadas", "canbus"];

/// Crates the concurrency/allocation layer (R12–R14) analyzes: the
/// platform crate owns the pool, the batched core, and the campaign
/// runner — every Mutex/Condvar in the workspace lives there — and the
/// hot-path reachability closure for R13 extends into the crates the tick
/// roots call into.
pub const CONCURRENCY_CRATES: [&str; 10] = [
    "platform",
    "openadas",
    "canbus",
    "driving-sim",
    "driver-model",
    "units",
    "msgbus",
    "core",
    "defense",
    "campaignd",
];

/// Classifies a workspace-relative path.
pub fn classify(rel: &str) -> FileInfo {
    let rel = rel.replace('\\', "/");
    let crate_name = rel
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or(ROOT_CRATE)
        .to_string();
    let kind = if rel.contains("/tests/") || rel.starts_with("tests/") {
        FileKind::Test
    } else if rel.contains("/benches/") || rel.starts_with("benches/") {
        FileKind::Bench
    } else if rel.contains("/examples/") || rel.starts_with("examples/") {
        FileKind::Example
    } else if rel.contains("/src/bin/") {
        FileKind::Bin
    } else {
        FileKind::Lib
    };
    FileInfo {
        rel,
        crate_name,
        kind,
    }
}

/// R1 covers library code of the unit-bearing crates.
pub fn r1_applies(info: &FileInfo) -> bool {
    info.kind == FileKind::Lib && R1_CRATES.contains(&info.crate_name.as_str())
}

/// R2 covers library code of the safety-path crates.
pub fn r2_applies(info: &FileInfo) -> bool {
    info.kind == FileKind::Lib && R2_CRATES.contains(&info.crate_name.as_str())
}

/// R3 covers all non-test code except the designated mutation points.
pub fn r3_applies(info: &FileInfo) -> bool {
    matches!(info.kind, FileKind::Lib | FileKind::Bin | FileKind::Example)
        && !R3_ALLOWED_PATHS.contains(&info.rel.as_str())
}

/// R4 covers all non-test, non-bench code.
pub fn r4_applies(info: &FileInfo) -> bool {
    matches!(info.kind, FileKind::Lib | FileKind::Bin | FileKind::Example)
}

/// R5 covers everything but the bench harness and the lint tooling.
pub fn r5_applies(info: &FileInfo) -> bool {
    matches!(info.kind, FileKind::Lib | FileKind::Bin | FileKind::Example)
        && !R5_EXEMPT_CRATES.contains(&info.crate_name.as_str())
}

/// R8 covers all non-test code in every crate: a wildcard over a safety
/// enum is dangerous wherever it appears.
pub fn r8_applies(info: &FileInfo) -> bool {
    matches!(info.kind, FileKind::Lib | FileKind::Bin | FileKind::Example)
}

/// Whether the semantic layer lowers this file to IR at all (R9–R11 input
/// set; also where R10 resolves constants and config constructors from).
pub fn needs_ir(info: &FileInfo) -> bool {
    matches!(info.kind, FileKind::Lib | FileKind::Bin)
        && SEMANTIC_CRATES.contains(&info.crate_name.as_str())
}

/// R9 checks encode sinks only in the crates that own them.
pub fn r9_applies(info: &FileInfo) -> bool {
    needs_ir(info) && R9_CRATES.contains(&info.crate_name.as_str())
}

/// R11 covers every file the semantic layer lowers.
pub fn r11_applies(info: &FileInfo) -> bool {
    needs_ir(info)
}

/// Whether the concurrency/allocation layer (R12–R14) analyzes this file.
/// Library code only: tests and benches lock and allocate by design.
pub fn concurrency_applies(info: &FileInfo) -> bool {
    info.kind == FileKind::Lib && CONCURRENCY_CRATES.contains(&info.crate_name.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        let f = classify("crates/openadas/src/adas.rs");
        assert_eq!(f.crate_name, "openadas");
        assert_eq!(f.kind, FileKind::Lib);

        let f = classify("crates/canbus/tests/properties.rs");
        assert_eq!(f.kind, FileKind::Test);

        let f = classify("crates/platform/src/bin/trace.rs");
        assert_eq!(f.kind, FileKind::Bin);

        let f = classify("src/lib.rs");
        assert_eq!(f.crate_name, ROOT_CRATE);
        assert_eq!(f.kind, FileKind::Lib);

        let f = classify("examples/quickstart.rs");
        assert_eq!(f.kind, FileKind::Example);
    }

    #[test]
    fn scope_matrix() {
        assert!(r2_applies(&classify("crates/openadas/src/acc.rs")));
        assert!(!r2_applies(&classify("crates/platform/src/harness.rs")));
        assert!(!r2_applies(&classify("crates/openadas/tests/properties.rs")));
        assert!(!r3_applies(&classify("crates/core/src/corruption.rs")));
        assert!(r3_applies(&classify("crates/core/src/engine.rs")));
        assert!(!r5_applies(&classify("crates/bench/benches/micro.rs")));
        assert!(r5_applies(&classify("crates/driving-sim/src/world.rs")));
    }

    #[test]
    fn semantic_scope() {
        assert!(needs_ir(&classify("crates/openadas/src/adas.rs")));
        assert!(needs_ir(&classify("crates/defense/src/ids.rs")));
        assert!(!needs_ir(&classify("crates/lint/src/absint.rs")));
        assert!(!needs_ir(&classify("crates/openadas/tests/properties.rs")));
        assert!(r9_applies(&classify("crates/canbus/src/codec.rs")));
        assert!(!r9_applies(&classify("crates/core/src/corruption.rs")));
        assert!(r11_applies(&classify("crates/core/src/corruption.rs")));
    }

    #[test]
    fn concurrency_scope() {
        assert!(concurrency_applies(&classify("crates/platform/src/pool.rs")));
        assert!(concurrency_applies(&classify("crates/openadas/src/adas.rs")));
        assert!(!concurrency_applies(&classify("crates/lint/src/locks.rs")));
        assert!(!concurrency_applies(&classify("crates/platform/tests/alloc.rs")));
        assert!(!concurrency_applies(&classify("crates/bench/benches/micro.rs")));
    }
}
