//! The `adas-lint` command-line gate.
//!
//! ```text
//! cargo run -p adas-lint                      # human output, exit 1 on findings
//! cargo run -p adas-lint -- --format json     # machine-readable report
//! cargo run -p adas-lint -- --format sarif    # SARIF 2.1.0 (code scanning)
//! cargo run -p adas-lint -- --write-baseline  # grandfather current findings
//! cargo run -p adas-lint -- --list-rules      # rule reference
//! ```
//!
//! Exit codes: `0` clean, `1` active findings / dead suppressions / stale
//! baseline entries, `2` usage or I/O error.

#![forbid(unsafe_code)]

use adas_lint::{
    baseline, default_baseline_path, load_baseline, scan_workspace_with, ScanOptions, ALL_RULES,
};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    root: PathBuf,
    format: Format,
    baseline_path: Option<PathBuf>,
    use_baseline: bool,
    write_baseline: bool,
    list_rules: bool,
    list_files: bool,
    sarif_out: Option<PathBuf>,
    lock_graph_dot: Option<PathBuf>,
    timings: bool,
    scan: ScanOptions,
}

#[derive(PartialEq)]
enum Format {
    Human,
    Json,
    Sarif,
}

const USAGE: &str = "adas-lint — safety-invariant static analysis for this workspace

USAGE:
    adas-lint [--root DIR] [--format human|json|sarif] [--baseline FILE]
              [--no-baseline] [--write-baseline] [--list-rules] [--list-files]
              [--rules R1,R2,...] [--sarif-out FILE] [--lock-graph-dot FILE]
              [--no-cache] [--cache-dir DIR] [--timings]

OPTIONS:
    --root DIR         Workspace root to scan (default: auto-detected)
    --rules LIST       Comma-separated rule ids to run (default: all).
                       Subset scans skip dead-suppression/stale-baseline
                       checks, which only a full scan can judge.
    --format FMT       Output format: human (default), json, or sarif
    --baseline FILE    Baseline file (default: <root>/lint-baseline.txt)
    --no-baseline      Ignore the baseline; report every finding
    --write-baseline   Rewrite the baseline from current findings and exit
    --list-rules       Print the rule table and exit
    --list-files       Print every file the scan covers and exit
    --sarif-out FILE   Additionally write a SARIF 2.1.0 report to FILE
    --lock-graph-dot FILE
                       Write the R12 lock-order graph as GraphViz DOT to FILE
    --no-cache         Bypass the per-file facts cache (cold scan)
    --cache-dir DIR    Facts cache dir (default: <root>/target/adas-lint-cache)
    --timings          Print scan wall-time and cache statistics to stderr
";

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: adas_lint::workspace_root_from_manifest(env!("CARGO_MANIFEST_DIR")),
        format: Format::Human,
        baseline_path: None,
        use_baseline: true,
        write_baseline: false,
        list_rules: false,
        list_files: false,
        sarif_out: None,
        lock_graph_dot: None,
        timings: false,
        scan: ScanOptions::default(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                opts.root = PathBuf::from(args.next().ok_or("--root needs a value")?);
            }
            "--format" => match args.next().as_deref() {
                Some("human") => opts.format = Format::Human,
                Some("json") => opts.format = Format::Json,
                Some("sarif") => opts.format = Format::Sarif,
                other => {
                    return Err(format!("--format must be human, json, or sarif, got {other:?}"))
                }
            },
            "--baseline" => {
                opts.baseline_path =
                    Some(PathBuf::from(args.next().ok_or("--baseline needs a value")?));
            }
            "--no-baseline" => opts.use_baseline = false,
            "--write-baseline" => opts.write_baseline = true,
            "--list-rules" => opts.list_rules = true,
            "--list-files" => opts.list_files = true,
            "--sarif-out" => {
                opts.sarif_out =
                    Some(PathBuf::from(args.next().ok_or("--sarif-out needs a value")?));
            }
            "--lock-graph-dot" => {
                opts.lock_graph_dot = Some(PathBuf::from(
                    args.next().ok_or("--lock-graph-dot needs a value")?,
                ));
            }
            "--rules" => {
                let spec = args.next().ok_or("--rules needs a value")?;
                let mut rules = Vec::new();
                for id in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                    let rule = adas_lint::Rule::parse(id)
                        .ok_or_else(|| format!("unknown rule `{id}` (try --list-rules)"))?;
                    if !rules.contains(&rule) {
                        rules.push(rule);
                    }
                }
                if rules.is_empty() {
                    return Err("--rules needs at least one rule id".to_string());
                }
                opts.scan.rules = rules;
            }
            "--no-cache" => opts.scan.use_cache = false,
            "--cache-dir" => {
                opts.scan.cache_dir =
                    Some(PathBuf::from(args.next().ok_or("--cache-dir needs a value")?));
            }
            "--timings" => opts.timings = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(opts)
}

/// Emits, self-validates, and writes/prints the SARIF document.
fn sarif_report(
    report: &adas_lint::ScanReport,
    out_path: Option<&PathBuf>,
    print: bool,
) -> Result<(), String> {
    let mut all = report.active.clone();
    all.extend(report.dead_suppressions.iter().cloned());
    let doc = adas_lint::sarif::emit(&all);
    adas_lint::sarif::validate(&doc)
        .map_err(|e| format!("internal error: emitted SARIF failed self-validation: {e}"))?;
    if let Some(path) = out_path {
        std::fs::write(path, &doc).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    if print {
        print!("{doc}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for rule in ALL_RULES {
            println!("{} {:22} {}", rule.id(), rule.name(), rule.summary());
        }
        return ExitCode::SUCCESS;
    }

    if opts.list_files {
        match adas_lint::collect_files(&opts.root) {
            Ok(files) => {
                for f in files {
                    println!("{f}");
                }
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("error: cannot walk {}: {e}", opts.root.display());
                return ExitCode::from(2);
            }
        }
    }

    let baseline_path = opts
        .baseline_path
        .clone()
        .unwrap_or_else(|| default_baseline_path(&opts.root));

    if opts.write_baseline {
        let report = match scan_workspace_with(&opts.root, None, &opts.scan) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: scan failed: {e}");
                return ExitCode::from(2);
            }
        };
        let text = baseline::render(&report.active);
        if let Err(e) = std::fs::write(&baseline_path, text) {
            eprintln!("error: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "wrote {} entries to {}",
            report.active.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = if opts.use_baseline {
        match load_baseline(&baseline_path) {
            Ok(b) => Some(b),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        None
    };

    // The lint crate is R5-exempt tooling: measuring its own wall-time is
    // the point of --timings.
    let t0 = std::time::Instant::now();
    let report = match scan_workspace_with(&opts.root, baseline, &opts.scan) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    let elapsed = t0.elapsed();

    if opts.timings {
        eprintln!(
            "adas-lint: scan took {:.1} ms ({}/{} files from cache, {})",
            elapsed.as_secs_f64() * 1e3,
            report.cache_hits,
            report.files_scanned,
            if opts.scan.use_cache {
                "cache on"
            } else {
                "cache off"
            },
        );
    }

    if let Some(path) = &opts.lock_graph_dot {
        if let Err(e) = std::fs::write(path, &report.lock_order_dot) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if opts.sarif_out.is_some() || opts.format == Format::Sarif {
        if let Err(e) = sarif_report(
            &report,
            opts.sarif_out.as_ref(),
            opts.format == Format::Sarif,
        ) {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    }

    match opts.format {
        Format::Sarif => {} // already printed
        Format::Json => {
            let diags: Vec<String> = report
                .active
                .iter()
                .chain(report.dead_suppressions.iter())
                .map(|d| d.render_json())
                .collect();
            let unused: Vec<String> = report
                .unused_baseline
                .iter()
                .map(|e| {
                    format!(
                        "{{\"rule\":\"{}\",\"file\":\"{}\",\"snippet\":\"{}\"}}",
                        e.rule.id(),
                        adas_lint::diag::json_escape(&e.file),
                        adas_lint::diag::json_escape(&e.snippet)
                    )
                })
                .collect();
            println!(
                "{{\"version\":2,\"diagnostics\":[{}],\"unused_baseline\":[{}],\"summary\":{{\"files_scanned\":{},\"cache_hits\":{},\"active\":{},\"dead_suppressions\":{},\"baselined\":{},\"suppressed\":{}}}}}",
                diags.join(","),
                unused.join(","),
                report.files_scanned,
                report.cache_hits,
                report.active.len(),
                report.dead_suppressions.len(),
                report.baselined,
                report.suppressed,
            );
        }
        Format::Human => {
            for d in report.active.iter().chain(report.dead_suppressions.iter()) {
                println!("{}", d.render_human());
            }
            for e in &report.unused_baseline {
                println!(
                    "warning: stale baseline entry (site was fixed — remove it): {} {} `{}`",
                    e.rule.id(),
                    e.file,
                    e.snippet
                );
            }
            println!(
                "adas-lint: {} files scanned ({} cached), {} active finding(s), {} dead suppression(s), {} stale baseline entr(ies), {} baselined, {} suppressed",
                report.files_scanned,
                report.cache_hits,
                report.active.len(),
                report.dead_suppressions.len(),
                report.unused_baseline.len(),
                report.baselined,
                report.suppressed,
            );
        }
    }

    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
