//! The `adas-lint` command-line gate.
//!
//! ```text
//! cargo run -p adas-lint                      # human output, exit 1 on findings
//! cargo run -p adas-lint -- --format json     # machine-readable report
//! cargo run -p adas-lint -- --write-baseline  # grandfather current findings
//! cargo run -p adas-lint -- --list-rules      # rule reference
//! ```
//!
//! Exit codes: `0` clean, `1` active findings, `2` usage or I/O error.

#![forbid(unsafe_code)]

use adas_lint::{baseline, default_baseline_path, load_baseline, scan_workspace, ALL_RULES};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    root: PathBuf,
    format: Format,
    baseline_path: Option<PathBuf>,
    use_baseline: bool,
    write_baseline: bool,
    list_rules: bool,
}

#[derive(PartialEq)]
enum Format {
    Human,
    Json,
}

const USAGE: &str = "adas-lint — safety-invariant static analysis for this workspace

USAGE:
    adas-lint [--root DIR] [--format human|json] [--baseline FILE]
              [--no-baseline] [--write-baseline] [--list-rules]

OPTIONS:
    --root DIR         Workspace root to scan (default: auto-detected)
    --format FMT       Output format: human (default) or json
    --baseline FILE    Baseline file (default: <root>/lint-baseline.txt)
    --no-baseline      Ignore the baseline; report every finding
    --write-baseline   Rewrite the baseline from current findings and exit
    --list-rules       Print the rule table and exit
";

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: adas_lint::workspace_root_from_manifest(env!("CARGO_MANIFEST_DIR")),
        format: Format::Human,
        baseline_path: None,
        use_baseline: true,
        write_baseline: false,
        list_rules: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                opts.root = PathBuf::from(args.next().ok_or("--root needs a value")?);
            }
            "--format" => match args.next().as_deref() {
                Some("human") => opts.format = Format::Human,
                Some("json") => opts.format = Format::Json,
                other => return Err(format!("--format must be human or json, got {other:?}")),
            },
            "--baseline" => {
                opts.baseline_path =
                    Some(PathBuf::from(args.next().ok_or("--baseline needs a value")?));
            }
            "--no-baseline" => opts.use_baseline = false,
            "--write-baseline" => opts.write_baseline = true,
            "--list-rules" => opts.list_rules = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for rule in ALL_RULES {
            println!("{} {:22} {}", rule.id(), rule.name(), rule.summary());
        }
        return ExitCode::SUCCESS;
    }

    let baseline_path = opts
        .baseline_path
        .clone()
        .unwrap_or_else(|| default_baseline_path(&opts.root));

    if opts.write_baseline {
        let report = match scan_workspace(&opts.root, None) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: scan failed: {e}");
                return ExitCode::from(2);
            }
        };
        let text = baseline::render(&report.active);
        if let Err(e) = std::fs::write(&baseline_path, text) {
            eprintln!("error: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "wrote {} entries to {}",
            report.active.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = if opts.use_baseline {
        match load_baseline(&baseline_path) {
            Ok(b) => Some(b),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        None
    };

    let report = match scan_workspace(&opts.root, baseline) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    match opts.format {
        Format::Json => {
            let diags: Vec<String> = report.active.iter().map(|d| d.render_json()).collect();
            let unused: Vec<String> = report
                .unused_baseline
                .iter()
                .map(|e| {
                    format!(
                        "{{\"rule\":\"{}\",\"file\":\"{}\",\"snippet\":\"{}\"}}",
                        e.rule.id(),
                        adas_lint::diag::json_escape(&e.file),
                        adas_lint::diag::json_escape(&e.snippet)
                    )
                })
                .collect();
            println!(
                "{{\"version\":1,\"diagnostics\":[{}],\"unused_baseline\":[{}],\"summary\":{{\"files_scanned\":{},\"active\":{},\"baselined\":{},\"suppressed\":{}}}}}",
                diags.join(","),
                unused.join(","),
                report.files_scanned,
                report.active.len(),
                report.baselined,
                report.suppressed,
            );
        }
        Format::Human => {
            for d in &report.active {
                println!("{}", d.render_human());
            }
            for e in &report.unused_baseline {
                println!(
                    "note: stale baseline entry (site was fixed — remove it): {} {} `{}`",
                    e.rule.id(),
                    e.file,
                    e.snippet
                );
            }
            println!(
                "adas-lint: {} files scanned, {} active finding(s), {} baselined, {} suppressed",
                report.files_scanned,
                report.active.len(),
                report.baselined,
                report.suppressed,
            );
        }
    }

    if report.active.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
