//! Lowering from the masked token stream to a small dataflow IR.
//!
//! The semantic rules (R9–R11) need more than the flat call/panic facts in
//! [`crate::parser::FileFacts`]: they follow *values* — through `let`
//! bindings, arithmetic, `clamp`/`min`/`max`, branch joins and function
//! returns. This module re-walks the same [`crate::parser::lex`] token
//! stream and lowers each function body (and each `const` initializer)
//! into a statement/expression tree the abstract interpreter in
//! [`crate::absint`] can evaluate.
//!
//! The lowering is deliberately *partial*: anything it does not
//! understand — closures, complex patterns, trait objects, macro bodies —
//! becomes [`Expr::Unknown`], which the interpreter maps to ⊤ (no
//! information). That is the sound direction: an unknown value can never
//! be "proven bounded", so surprises surface as R9 *unprovable* findings
//! rather than silently passing. The parser must never panic or loop on
//! arbitrary token soup; every statement parse either makes progress or
//! resynchronises at the next `;`/`}`.
//!
//! One lexer quirk matters throughout: [`crate::parser::lex`] splits
//! float literals (`2.4` arrives as `2`, `.`, `4`, and `1e-6` as `1e`,
//! `-`, `6`), and leaves multi-char operators other than `::`/`->`/`=>`
//! unfused (`<=` is `<`, `=`). [`fuse`] and [`read_number`] reassemble
//! both before the grammar proper runs.

use crate::parser::{lex, Tok};
use crate::tokenizer::SourceFile;

/// A lowered source file: constant definitions plus function bodies.
#[derive(Debug, Default)]
pub struct FileIr {
    /// Every `const`/`static` initializer, at any nesting level.
    pub consts: Vec<ConstDef>,
    /// Every `fn`, with its lowered body.
    pub fns: Vec<FnIr>,
}

/// A `const NAME: T = expr;` (or `static`) definition.
#[derive(Debug)]
pub struct ConstDef {
    /// The constant's identifier (last segment only).
    pub name: String,
    /// Lowered initializer.
    pub expr: Expr,
    /// 1-based line of the definition.
    pub line: usize,
}

/// A lowered function.
#[derive(Debug)]
pub struct FnIr {
    /// Bare function name.
    pub name: String,
    /// `Type::name` inside an `impl`, else the bare name.
    pub qual: String,
    /// The `impl` type, when inside one.
    pub impl_type: Option<String>,
    /// Whether the function is test code (`#[cfg(test)]` region or `#[test]`).
    pub is_test: bool,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Parameter names, in order (`self` included when present).
    pub params: Vec<String>,
    /// The body as a block expression.
    pub body: Expr,
}

/// Statements inside a block.
#[derive(Debug)]
pub enum Stmt {
    /// `dst = expr` / `let dst = expr`. `weak` joins with the previous
    /// value instead of replacing it (used for `return` accumulation).
    Assign {
        /// Dotted destination path (`self.last_control`, `%ret`, …).
        dst: String,
        /// Right-hand side.
        expr: Expr,
        /// 1-based source line.
        line: usize,
        /// Join-with-previous instead of overwrite.
        weak: bool,
    },
    /// An expression evaluated for effect (calls inside still observed).
    Eval {
        /// The expression.
        expr: Expr,
        /// 1-based source line.
        line: usize,
    },
    /// `for`/`while`/`loop` body, run to fixpoint with widening.
    Loop {
        /// The loop body block.
        body: Expr,
        /// 1-based source line.
        line: usize,
    },
}

/// Binary operators the abstract domain models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%` — lowered but evaluated as ⊤.
    Rem,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&`
    And,
    /// `||`
    Or,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Numeric negation.
    Neg,
    /// Logical not (only meaningful in guards).
    Not,
}

/// Lowered expressions.
#[derive(Debug)]
pub enum Expr {
    /// A numeric literal (possibly reassembled from split tokens).
    Num(f64),
    /// A `::`-separated path (`limits::SW_ACCEL_MAX_MPS2`, `x`).
    Path(Vec<String>),
    /// Field access base.`field` (also tuple indices).
    Field(Box<Expr>, String),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Free or path call `a::b(args)`.
    Call {
        /// Callee path segments.
        callee: Vec<String>,
        /// Lowered arguments.
        args: Vec<Expr>,
        /// 1-based source line of the call.
        line: usize,
    },
    /// Method call `recv.name(args)`.
    Method {
        /// Receiver expression.
        recv: Box<Expr>,
        /// Method name.
        name: String,
        /// Lowered arguments.
        args: Vec<Expr>,
        /// 1-based source line of the call.
        line: usize,
    },
    /// Struct literal `Name { field: expr, .. }`.
    Struct {
        /// Struct name (last path segment).
        name: String,
        /// Field initializers.
        fields: Vec<(String, Expr)>,
        /// Functional-update base (`..base`).
        base: Option<Box<Expr>>,
    },
    /// `if cond { then } else { other }` as a value; `cond` refines the
    /// branch environments.
    If {
        /// Guard condition.
        cond: Box<Expr>,
        /// Then branch (a block).
        then_branch: Box<Expr>,
        /// Else branch (an empty block when the `else` is absent).
        else_branch: Box<Expr>,
    },
    /// `match` as a value: the join of all arm bodies (no refinement).
    Match(Vec<Expr>),
    /// `{ stmts; tail }`.
    Block(Vec<Stmt>, Option<Box<Expr>>),
    /// Anything the lowering does not model. Evaluates to ⊤.
    Unknown,
}

impl Expr {
    /// The dotted environment key for a `Path`/`Field` chain rooted at an
    /// identifier, e.g. `self.last_control` → `"self.last_control"`.
    pub fn as_place(&self) -> Option<String> {
        match self {
            Expr::Path(segs) => Some(segs.join("::")),
            Expr::Field(base, f) => base.as_place().map(|b| format!("{b}.{f}")),
            _ => None,
        }
    }
}

/// A fused token: identical to [`Tok`] except multi-char operators are
/// single tokens.
#[derive(Debug, Clone)]
struct FTok {
    text: String,
    line: usize,
    is_word: bool,
}

/// Fuses `==`, `!=`, `<=`, `>=`, `&&`, `||`, `+=`, `-=`, `*=`, `/=`,
/// `%=`, `..=`, `..` from adjacent single-char tokens on the same line.
fn fuse(toks: &[Tok]) -> Vec<FTok> {
    let mut out: Vec<FTok> = Vec::with_capacity(toks.len());
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        let pair = |next: &str| -> bool {
            toks.get(i + 1)
                .is_some_and(|n| n.line == t.line && !n.is_word && n.text == next)
        };
        let fused: Option<(&str, usize)> = if t.is_word {
            None
        } else {
            match t.text.as_str() {
                "=" if pair("=") => Some(("==", 2)),
                "!" if pair("=") => Some(("!=", 2)),
                "<" if pair("=") => Some(("<=", 2)),
                ">" if pair("=") => Some((">=", 2)),
                "&" if pair("&") => Some(("&&", 2)),
                "|" if pair("|") => Some(("||", 2)),
                "+" if pair("=") => Some(("+=", 2)),
                "-" if pair("=") => Some(("-=", 2)),
                "*" if pair("=") => Some(("*=", 2)),
                "/" if pair("=") => Some(("/=", 2)),
                "%" if pair("=") => Some(("%=", 2)),
                "." if pair(".") => {
                    if toks
                        .get(i + 2)
                        .is_some_and(|n| n.line == t.line && !n.is_word && n.text == "=")
                    {
                        Some(("..=", 3))
                    } else {
                        Some(("..", 2))
                    }
                }
                _ => None,
            }
        };
        match fused {
            Some((text, n)) => {
                out.push(FTok {
                    text: text.to_string(),
                    line: t.line,
                    is_word: false,
                });
                i += n;
            }
            None => {
                out.push(FTok {
                    text: t.text.clone(),
                    line: t.line,
                    is_word: t.is_word,
                });
                i += 1;
            }
        }
    }
    out
}

/// Whether a word token starts a numeric literal.
fn is_num_start(t: &FTok) -> bool {
    t.is_word && t.text.chars().next().is_some_and(|c| c.is_ascii_digit())
}

/// The lowering context for one file.
struct Lower<'a> {
    toks: Vec<FTok>,
    src: &'a SourceFile,
}

/// Lowers a tokenized file into its dataflow IR.
pub fn lower(src: &SourceFile) -> FileIr {
    let lw = Lower {
        toks: fuse(&lex(src)),
        src,
    };
    lw.file()
}

impl Lower<'_> {
    /// Index one past the bracket matching the opener at `open`.
    /// Returns `toks.len()` when unbalanced (truncated input).
    fn matching(&self, open: usize) -> usize {
        let close = match self.toks[open].text.as_str() {
            "(" => ")",
            "[" => "]",
            "{" => "}",
            _ => return open + 1,
        };
        let opener = self.toks[open].text.clone();
        let mut depth = 0usize;
        let mut i = open;
        while i < self.toks.len() {
            let t = &self.toks[i];
            if !t.is_word {
                if t.text == opener {
                    depth += 1;
                } else if t.text == close {
                    depth -= 1;
                    if depth == 0 {
                        return i + 1;
                    }
                }
            }
            i += 1;
        }
        self.toks.len()
    }

    /// Top-level walk: collect `const` defs and `fn` bodies, tracking the
    /// enclosing `impl` type.
    fn file(&self) -> FileIr {
        let mut out = FileIr::default();
        // (type name, end index) for the innermost impl containing `i`.
        let mut impls: Vec<(String, usize)> = Vec::new();
        let mut i = 0usize;
        while i < self.toks.len() {
            while impls.last().is_some_and(|(_, end)| i >= *end) {
                impls.pop();
            }
            let t = &self.toks[i];
            if t.is_word && t.text == "impl" {
                // `impl [<..>] Type [for Type] {` — the impl'd type is the
                // last path segment before `{` (after `for` when present).
                let mut j = i + 1;
                let mut ty = String::new();
                let mut depth = 0i32;
                while j < self.toks.len() {
                    let u = &self.toks[j];
                    if !u.is_word {
                        match u.text.as_str() {
                            "<" => depth += 1,
                            ">" => depth -= 1,
                            "{" if depth <= 0 => break,
                            _ => {}
                        }
                    } else if depth <= 0 {
                        if u.text == "for" {
                            ty.clear();
                        } else if ty.is_empty() && u.text != "where" {
                            ty = u.text.clone();
                        }
                    }
                    j += 1;
                }
                if j < self.toks.len() {
                    impls.push((ty, self.matching(j)));
                    i = j + 1;
                    continue;
                }
                i = j;
            } else if t.is_word && (t.text == "const" || t.text == "static") {
                // `const NAME: T = expr ;` — skip `const fn` and the type.
                if self.toks.get(i + 1).is_some_and(|n| n.is_word && n.text == "fn") {
                    i += 1;
                    continue;
                }
                let Some(name_tok) = self.toks.get(i + 1) else { break };
                if !name_tok.is_word {
                    i += 1;
                    continue;
                }
                let name = name_tok.text.clone();
                let line = name_tok.line;
                let mut j = i + 2;
                // Skip `: Type` to the `=` at bracket depth 0 (splitting a
                // `>` `=` pair fused to `>=` by a generic annotation).
                let mut depth = 0i32;
                while j < self.toks.len() {
                    let u = &self.toks[j];
                    if !u.is_word {
                        match u.text.as_str() {
                            "(" | "[" | "{" | "<" => depth += 1,
                            ")" | "]" | "}" | ">" => depth -= 1,
                            ">=" if depth > 0 => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            "=" if depth <= 0 => break,
                            ";" if depth <= 0 => break,
                            _ => {}
                        }
                    }
                    j += 1;
                }
                if j < self.toks.len()
                    && (self.toks[j].text == "=" || self.toks[j].text == ">=")
                {
                    let end = self.stmt_end(j + 1);
                    let (expr, _) = self.expr(j + 1, end, false);
                    out.consts.push(ConstDef { name, expr, line });
                    i = end + 1;
                } else {
                    i = j + 1;
                }
            } else if t.is_word && t.text == "fn" {
                if let Some((f, next)) = self.function(i, impls.last().map(|(n, _)| n.as_str())) {
                    out.fns.push(f);
                    i = next;
                } else {
                    i += 1;
                }
            } else if !t.is_word
                && t.text == "#"
                && self.toks.get(i + 1).is_some_and(|n| n.text == "[")
            {
                // Attributes can mention `const`/`fn` as path segments;
                // skip them wholesale.
                i = self.matching(i + 1);
            } else {
                i += 1;
            }
        }
        out
    }

    /// Parses the `fn` starting at `i` (the `fn` keyword); returns the IR
    /// and the index one past the body.
    fn function(&self, i: usize, impl_type: Option<&str>) -> Option<(FnIr, usize)> {
        let name_tok = self.toks.get(i + 1)?;
        if !name_tok.is_word {
            return None;
        }
        let name = name_tok.text.clone();
        let line = name_tok.line;
        // Find the parameter list `(`, skipping generics.
        let mut j = i + 2;
        let mut depth = 0i32;
        while j < self.toks.len() {
            let u = &self.toks[j];
            if !u.is_word {
                match u.text.as_str() {
                    "<" => depth += 1,
                    ">" => depth -= 1,
                    "(" if depth <= 0 => break,
                    _ => {}
                }
            }
            j += 1;
        }
        if j >= self.toks.len() {
            return None;
        }
        let params_end = self.matching(j);
        let params = self.params(j + 1, params_end.saturating_sub(1));
        // Find the body `{` (or `;` for a trait signature).
        let mut k = params_end;
        let mut depth = 0i32;
        while k < self.toks.len() {
            let u = &self.toks[k];
            if !u.is_word {
                match u.text.as_str() {
                    "<" => depth += 1,
                    ">" => depth -= 1,
                    ";" if depth <= 0 => return None,
                    "{" if depth <= 0 => break,
                    _ => {}
                }
            }
            k += 1;
        }
        if k >= self.toks.len() {
            return None;
        }
        let body_end = self.matching(k);
        let body = self.block(k + 1, body_end.saturating_sub(1));
        let is_test = self
            .src
            .lines
            .get(line.saturating_sub(1))
            .is_some_and(|l| l.in_test);
        let qual = match impl_type {
            Some(ty) if !ty.is_empty() => format!("{ty}::{name}"),
            _ => name.clone(),
        };
        Some((
            FnIr {
                name,
                qual,
                impl_type: impl_type.filter(|t| !t.is_empty()).map(str::to_string),
                is_test,
                line,
                params,
                body,
            },
            body_end,
        ))
    }

    /// Extracts parameter names from the token range of a parameter list.
    fn params(&self, start: usize, end: usize) -> Vec<String> {
        let mut out = Vec::new();
        let mut i = start;
        let mut depth = 0i32;
        let mut expect_name = true;
        while i < end.min(self.toks.len()) {
            let t = &self.toks[i];
            if !t.is_word {
                match t.text.as_str() {
                    "(" | "[" | "{" | "<" => depth += 1,
                    ")" | "]" | "}" | ">" => depth -= 1,
                    "," if depth == 0 => expect_name = true,
                    ":" if depth == 0 => expect_name = false,
                    _ => {}
                }
            } else if depth == 0 && expect_name && t.text != "mut" {
                if t.text == "self" {
                    out.push("self".to_string());
                    expect_name = false;
                } else {
                    out.push(t.text.clone());
                    expect_name = false;
                }
            }
            i += 1;
        }
        out
    }

    /// Index of the `;` (or closing position) ending the statement whose
    /// expression starts at `i`, at bracket depth 0.
    fn stmt_end(&self, i: usize) -> usize {
        let mut j = i;
        while j < self.toks.len() {
            let t = &self.toks[j];
            if !t.is_word {
                match t.text.as_str() {
                    "(" | "[" | "{" => {
                        j = self.matching(j);
                        continue;
                    }
                    ";" | "}" | ")" => return j,
                    _ => {}
                }
            }
            j += 1;
        }
        self.toks.len()
    }

    /// Lowers the token range `[start, end)` as a block body.
    fn block(&self, start: usize, end: usize) -> Expr {
        let end = end.min(self.toks.len());
        let mut stmts = Vec::new();
        let mut tail: Option<Box<Expr>> = None;
        let mut i = start;
        while i < end {
            let t = &self.toks[i];
            if !t.is_word {
                match t.text.as_str() {
                    ";" => {
                        tail = None;
                        i += 1;
                        continue;
                    }
                    "#" => {
                        // Attribute: `#[...]`.
                        if self.toks.get(i + 1).is_some_and(|n| n.text == "[") {
                            i = self.matching(i + 1);
                        } else {
                            i += 1;
                        }
                        continue;
                    }
                    _ => {}
                }
            }
            let before = i;
            let (stmt, next, is_tail) = self.stmt(i, end);
            match stmt {
                Some(Stmt::Eval { expr, .. }) if is_tail => {
                    tail = Some(Box::new(expr));
                }
                Some(s) => {
                    tail = None;
                    stmts.push(s);
                }
                None => {
                    tail = None;
                }
            }
            i = next.max(before + 1);
        }
        Expr::Block(stmts, tail)
    }

    /// Lowers one statement starting at `i`; returns the statement, the
    /// next index, and whether the statement is the block tail (no `;`).
    fn stmt(&self, i: usize, end: usize) -> (Option<Stmt>, usize, bool) {
        let t = &self.toks[i];
        let line = t.line;
        if t.is_word {
            match t.text.as_str() {
                "let" => return self.let_stmt(i, end),
                "for" => {
                    // `for PAT in ITER { body }`
                    let mut j = i + 1;
                    while j < end && !(self.toks[j].is_word && self.toks[j].text == "in") {
                        j += 1;
                    }
                    if let Some(open) = self.find_block_open(j, end) {
                        let close = self.matching(open);
                        let body = self.block(open + 1, close - 1);
                        return (Some(Stmt::Loop { body, line }), close, false);
                    }
                    return (None, end, false);
                }
                "while" | "loop" => {
                    if let Some(open) = self.find_block_open(i + 1, end) {
                        let close = self.matching(open);
                        let body = self.block(open + 1, close - 1);
                        return (Some(Stmt::Loop { body, line }), close, false);
                    }
                    return (None, end, false);
                }
                "return" => {
                    let stop = self.stmt_end(i + 1);
                    let expr = if stop > i + 1 {
                        self.expr(i + 1, stop, false).0
                    } else {
                        Expr::Unknown
                    };
                    return (
                        Some(Stmt::Assign {
                            dst: "%ret".to_string(),
                            expr,
                            line,
                            weak: true,
                        }),
                        stop,
                        false,
                    );
                }
                "break" | "continue" => {
                    return (None, self.stmt_end(i + 1), false);
                }
                "use" | "mod" | "struct" | "enum" | "trait" | "type" | "pub" | "unsafe"
                | "extern" | "macro_rules" => {
                    // Nested items inside fn bodies: skip to `;` or block.
                    let mut j = i + 1;
                    while j < end {
                        let u = &self.toks[j];
                        if !u.is_word {
                            if u.text == ";" {
                                return (None, j, false);
                            }
                            if u.text == "{" {
                                return (None, self.matching(j), false);
                            }
                        }
                        j += 1;
                    }
                    return (None, end, false);
                }
                "const" | "static" => {
                    return (None, self.stmt_end(i + 1), false);
                }
                _ => {}
            }
        }
        // Expression statement, possibly an assignment.
        let stop = self.stmt_end(i);
        let (expr, after) = self.expr(i, stop, false);
        // Assignment? `place = rhs` / `place op= rhs`.
        if after < stop {
            let op = self.toks[after].text.as_str();
            let is_assign = !self.toks[after].is_word
                && matches!(op, "=" | "+=" | "-=" | "*=" | "/=" | "%=");
            if is_assign {
                if let Some(place) = expr.as_place() {
                    let (rhs, _) = self.expr(after + 1, stop, false);
                    let bin = |b: BinOp, rhs: Expr, place: &str| {
                        Expr::Bin(b, Box::new(place_expr(place)), Box::new(rhs))
                    };
                    let rhs = match op {
                        "+=" => bin(BinOp::Add, rhs, &place),
                        "-=" => bin(BinOp::Sub, rhs, &place),
                        "*=" => bin(BinOp::Mul, rhs, &place),
                        "/=" => bin(BinOp::Div, rhs, &place),
                        "%=" => bin(BinOp::Rem, rhs, &place),
                        _ => rhs,
                    };
                    return (
                        Some(Stmt::Assign {
                            dst: place,
                            expr: rhs,
                            line,
                            weak: false,
                        }),
                        stop,
                        false,
                    );
                }
                // Unmodelled place (index/deref): evaluate rhs for effect.
                let (rhs, _) = self.expr(after + 1, stop, false);
                return (Some(Stmt::Eval { expr: rhs, line }), stop, false);
            }
            // The expression ended before the statement did (a block-ended
            // statement like `if c { … }` followed by the next statement):
            // resume from where the parse actually stopped.
            if self.toks.get(after).map(|t| t.text.as_str()) != Some(";") {
                return (Some(Stmt::Eval { expr, line }), after, after >= end);
            }
        }
        let next = after.min(stop);
        let is_tail = next >= end
            || self.toks.get(next).map(|t| t.text.as_str()) != Some(";");
        (Some(Stmt::Eval { expr, line }), next, is_tail)
    }

    /// Lowers a `let` statement at `i` (the `let` keyword).
    fn let_stmt(&self, i: usize, end: usize) -> (Option<Stmt>, usize, bool) {
        let line = self.toks[i].line;
        let mut j = i + 1;
        if self.toks.get(j).is_some_and(|t| t.is_word && t.text == "mut") {
            j += 1;
        }
        // Simple binding: IDENT [: Type] = rhs. Anything else (tuple or
        // enum patterns, `let … else`) lowers to an effect-only Eval.
        let simple = self.toks.get(j).is_some_and(|t| {
            t.is_word
                && !matches!(t.text.as_str(), "Some" | "Ok" | "Err" | "None")
                && self.toks.get(j + 1).is_some_and(|n| {
                    !n.is_word && (n.text == "=" || n.text == ":" || n.text == ";")
                })
        });
        // Locate the `=` at depth 0. A generic type annotation ending in
        // `>` directly before `=` arrives fused as `>=` — split it here.
        let mut eq = j;
        let mut depth = 0i32;
        while eq < end {
            let t = &self.toks[eq];
            if !t.is_word {
                match t.text.as_str() {
                    "(" | "[" | "{" | "<" => depth += 1,
                    ")" | "]" | "}" | ">" => depth -= 1,
                    // `Vec<T> =` fuses to `>=`: the `>` closes the generic
                    // and the `=` is the binding's; rhs starts at eq + 1.
                    ">=" if depth > 0 => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    "=" if depth <= 0 => break,
                    ";" if depth <= 0 => return (None, eq, false),
                    _ => {}
                }
            }
            eq += 1;
        }
        if eq >= end {
            return (None, end, false);
        }
        let stop = self.stmt_end(eq + 1);
        let (rhs, after) = self.expr(eq + 1, stop, false);
        // `let … else { … }`: the else block diverges; keep the binding.
        let _ = after;
        if simple {
            let dst = self.toks[j].text.clone();
            (
                Some(Stmt::Assign {
                    dst,
                    expr: rhs,
                    line,
                    weak: false,
                }),
                stop,
                false,
            )
        } else {
            (Some(Stmt::Eval { expr: rhs, line }), stop, false)
        }
    }

    /// First `{` at paren/bracket depth 0 in `[from, end)` — the body
    /// opener for `if`/`while`/`for`/`loop`/`match` headers. `<`/`>` in
    /// this position are comparisons, not generics (Rust bans bare struct
    /// literals here for the same reason), except after a turbofish `::`.
    fn find_block_open(&self, from: usize, end: usize) -> Option<usize> {
        let mut j = from;
        while j < end.min(self.toks.len()) {
            let t = &self.toks[j];
            if !t.is_word {
                match t.text.as_str() {
                    "(" | "[" => {
                        j = self.matching(j);
                        continue;
                    }
                    "::" if self.toks.get(j + 1).is_some_and(|n| n.text == "<") => {
                        let mut depth = 0i32;
                        let mut k = j + 1;
                        while k < end.min(self.toks.len()) {
                            match self.toks[k].text.as_str() {
                                "<" => depth += 1,
                                ">" => {
                                    depth -= 1;
                                    if depth == 0 {
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            k += 1;
                        }
                        j = k + 1;
                        continue;
                    }
                    "{" => return Some(j),
                    ";" => return None,
                    _ => {}
                }
            }
            j += 1;
        }
        None
    }

    /// Reads a numeric literal starting at word token `i`; returns the
    /// value and the next index. Reassembles split floats and exponents
    /// and strips `_` separators and type suffixes.
    fn read_number(&self, i: usize) -> (Expr, usize) {
        let mut text = self.toks[i].text.clone();
        let mut j = i + 1;
        let line = self.toks[i].line;
        // Fractional part: `.` followed by a word starting with a digit
        // (otherwise it's a method call / tuple index boundary).
        if self.toks.get(j).is_some_and(|t| {
            !t.is_word && t.text == "." && t.line == line
        }) && self
            .toks
            .get(j + 1)
            .is_some_and(|t| is_num_start(t) && t.line == line)
        {
            text.push('.');
            text.push_str(&self.toks[j + 1].text);
            j += 2;
        } else if self.toks.get(j).is_some_and(|t| !t.is_word && t.text == "." && t.line == line)
            && !self
                .toks
                .get(j + 1)
                .is_some_and(|t| t.is_word && t.line == line)
        {
            // Trailing-dot float like `1.`.
            text.push('.');
            j += 1;
        }
        // Exponent sign: `1e` / `2.5e` followed by `-`/`+` and digits.
        if (text.ends_with('e') || text.ends_with('E'))
            && self.toks.get(j).is_some_and(|t| {
                !t.is_word && (t.text == "-" || t.text == "+") && t.line == line
            })
            && self.toks.get(j + 1).is_some_and(|t| is_num_start(t) && t.line == line)
        {
            text.push_str(&self.toks[j].text);
            text.push_str(&self.toks[j + 1].text);
            j += 2;
        }
        let cleaned: String = text.chars().filter(|c| *c != '_').collect();
        let stripped = strip_suffix(&cleaned);
        match stripped.parse::<f64>() {
            Ok(v) => (Expr::Num(v), j),
            Err(_) => {
                // Hex / binary / octal integers.
                let parsed = if let Some(hex) = stripped.strip_prefix("0x") {
                    u64::from_str_radix(hex, 16).ok()
                } else if let Some(bin) = stripped.strip_prefix("0b") {
                    u64::from_str_radix(bin, 2).ok()
                } else if let Some(oct) = stripped.strip_prefix("0o") {
                    u64::from_str_radix(oct, 8).ok()
                } else {
                    None
                };
                match parsed {
                    Some(v) => (Expr::Num(v as f64), j),
                    None => (Expr::Unknown, j),
                }
            }
        }
    }

    /// Parses an expression in `[i, end)`. Returns the expression and the
    /// index of the first unconsumed token. `no_struct` disables the
    /// struct-literal postfix (condition/scrutinee position).
    fn expr(&self, i: usize, end: usize, no_struct: bool) -> (Expr, usize) {
        self.binary(i, end.min(self.toks.len()), 0, no_struct)
    }

    /// Precedence-climbing binary-expression parser.
    fn binary(&self, i: usize, end: usize, min_prec: u8, no_struct: bool) -> (Expr, usize) {
        let (mut lhs, mut j) = self.unary(i, end, no_struct);
        loop {
            let Some(t) = self.toks.get(j).filter(|_| j < end) else {
                return (lhs, j);
            };
            if t.is_word {
                if t.text == "as" {
                    // Cast: consume the type path, value unchanged.
                    let mut k = j + 1;
                    while k < end
                        && (self.toks[k].is_word || self.toks[k].text == "::")
                    {
                        k += 1;
                    }
                    j = k;
                    continue;
                }
                return (lhs, j);
            }
            let (op, prec) = match t.text.as_str() {
                "||" => (BinOp::Or, 1),
                "&&" => (BinOp::And, 2),
                "==" => (BinOp::Eq, 3),
                "!=" => (BinOp::Ne, 3),
                "<" => (BinOp::Lt, 3),
                "<=" => (BinOp::Le, 3),
                ">" => (BinOp::Gt, 3),
                ">=" => (BinOp::Ge, 3),
                "+" => (BinOp::Add, 4),
                "-" => (BinOp::Sub, 4),
                "*" => (BinOp::Mul, 5),
                "/" => (BinOp::Div, 5),
                "%" => (BinOp::Rem, 5),
                ".." | "..=" => {
                    // Range: swallow the other endpoint, result unmodelled.
                    let (_, k) = self.binary(j + 1, end, 4, no_struct);
                    return (Expr::Unknown, k);
                }
                _ => return (lhs, j),
            };
            if prec < min_prec {
                return (lhs, j);
            }
            let (rhs, k) = self.binary(j + 1, end, prec + 1, no_struct);
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
            j = k;
        }
    }

    /// Unary prefixes, then a postfix-decorated primary.
    fn unary(&self, i: usize, end: usize, no_struct: bool) -> (Expr, usize) {
        let Some(t) = self.toks.get(i).filter(|_| i < end) else {
            return (Expr::Unknown, i.max(end));
        };
        if !t.is_word {
            match t.text.as_str() {
                "-" => {
                    let (inner, j) = self.unary(i + 1, end, no_struct);
                    return (Expr::Unary(UnOp::Neg, Box::new(inner)), j);
                }
                "!" => {
                    let (inner, j) = self.unary(i + 1, end, no_struct);
                    return (Expr::Unary(UnOp::Not, Box::new(inner)), j);
                }
                // Borrows and derefs are value-transparent (`&&` here is a
                // double borrow, not the logical operator).
                "&" | "&&" | "*" => {
                    let mut j = i + 1;
                    while self
                        .toks
                        .get(j)
                        .is_some_and(|t| t.is_word && t.text == "mut")
                    {
                        j += 1;
                    }
                    return self.unary(j, end, no_struct);
                }
                _ => {}
            }
        }
        self.postfix(i, end, no_struct)
    }

    /// A primary expression plus its postfix chain (`.field`, `.m(args)`,
    /// `?`).
    fn postfix(&self, i: usize, end: usize, no_struct: bool) -> (Expr, usize) {
        let (mut e, mut j) = self.primary(i, end, no_struct);
        while j < end {
            let Some(t) = self.toks.get(j) else { break };
            if t.is_word {
                break;
            }
            match t.text.as_str() {
                "?" => {
                    j += 1;
                }
                "." => {
                    let Some(name_tok) = self.toks.get(j + 1) else { break };
                    if !name_tok.is_word {
                        break;
                    }
                    let name = name_tok.text.clone();
                    let line = name_tok.line;
                    let mut k = j + 2;
                    // Turbofish: `.parse::<T>()`.
                    if self.toks.get(k).is_some_and(|t| t.text == "::")
                        && self.toks.get(k + 1).is_some_and(|t| t.text == "<")
                    {
                        let mut depth = 0i32;
                        while k < end {
                            match self.toks[k].text.as_str() {
                                "<" => depth += 1,
                                ">" => {
                                    depth -= 1;
                                    if depth == 0 {
                                        k += 1;
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            k += 1;
                        }
                    }
                    if self.toks.get(k).is_some_and(|t| !t.is_word && t.text == "(") {
                        let close = self.matching(k);
                        let args = self.args(k + 1, close - 1);
                        e = Expr::Method {
                            recv: Box::new(e),
                            name,
                            args,
                            line,
                        };
                        j = close;
                    } else {
                        e = Expr::Field(Box::new(e), name);
                        j = k;
                    }
                }
                "[" => {
                    // Indexing: value unmodelled.
                    j = self.matching(j);
                    e = Expr::Unknown;
                }
                _ => break,
            }
        }
        (e, j)
    }

    /// Comma-separated argument list in `[start, end)`.
    fn args(&self, start: usize, end: usize) -> Vec<Expr> {
        let mut out = Vec::new();
        let mut i = start;
        while i < end.min(self.toks.len()) {
            let (e, j) = self.expr(i, end, false);
            out.push(e);
            let mut k = j;
            // Skip to the comma at depth 0 (robust against partial parses).
            while k < end {
                let t = &self.toks[k];
                if !t.is_word {
                    match t.text.as_str() {
                        "(" | "[" | "{" => {
                            k = self.matching(k);
                            continue;
                        }
                        "," => break,
                        _ => {}
                    }
                }
                k += 1;
            }
            if k >= end {
                break;
            }
            i = k + 1;
        }
        out
    }

    /// A primary expression.
    fn primary(&self, i: usize, end: usize, no_struct: bool) -> (Expr, usize) {
        let Some(t) = self.toks.get(i).filter(|_| i < end) else {
            return (Expr::Unknown, i.max(end));
        };
        if !t.is_word {
            return match t.text.as_str() {
                "(" => {
                    let close = self.matching(i);
                    let (inner, j) = self.expr(i + 1, close - 1, false);
                    // Tuples (a `,` before the close) are unmodelled.
                    if j < close - 1 {
                        (Expr::Unknown, close)
                    } else {
                        (inner, close)
                    }
                }
                "[" => (Expr::Unknown, self.matching(i)),
                "{" => {
                    let close = self.matching(i);
                    (self.block(i + 1, close - 1), close)
                }
                "|" => {
                    // Closure: skip params to the closing `|`, swallow the
                    // body expression, surface as unmodelled.
                    let mut j = i + 1;
                    while j < end && self.toks[j].text != "|" {
                        j += 1;
                    }
                    let (_, k) = self.expr(j + 1, end, no_struct);
                    (Expr::Unknown, k)
                }
                "||" => {
                    // Zero-parameter closure.
                    let (_, k) = self.expr(i + 1, end, no_struct);
                    (Expr::Unknown, k)
                }
                _ => (Expr::Unknown, i + 1),
            };
        }
        match t.text.as_str() {
            "if" => self.if_expr(i, end),
            "match" => self.match_expr(i, end),
            "move" => self.primary(i + 1, end, no_struct),
            "true" | "false" => (Expr::Unknown, i + 1),
            _ if is_num_start(t) => self.read_number(i),
            _ => {
                // Path: IDENT (:: IDENT | :: <…>)*.
                let mut segs = vec![t.text.clone()];
                let mut j = i + 1;
                while self.toks.get(j).is_some_and(|u| u.text == "::" && j + 1 < end) {
                    if let Some(next) = self.toks.get(j + 1) {
                        if next.is_word {
                            segs.push(next.text.clone());
                            j += 2;
                            continue;
                        }
                        if next.text == "<" {
                            // Turbofish in path position.
                            let mut depth = 0i32;
                            let mut k = j + 1;
                            while k < end {
                                match self.toks[k].text.as_str() {
                                    "<" => depth += 1,
                                    ">" => {
                                        depth -= 1;
                                        if depth == 0 {
                                            break;
                                        }
                                    }
                                    _ => {}
                                }
                                k += 1;
                            }
                            j = (k + 1).min(end);
                            continue;
                        }
                    }
                    break;
                }
                // Call?
                if self.toks.get(j).is_some_and(|u| !u.is_word && u.text == "(") && j < end {
                    let close = self.matching(j);
                    let line = self.toks[j].line;
                    let args = self.args(j + 1, close - 1);
                    // Macro-adjacent forms (`vec!`) never reach here: `!`
                    // binds as unary only in prefix position.
                    return (
                        Expr::Call {
                            callee: segs,
                            args,
                            line,
                        },
                        close,
                    );
                }
                // Struct literal? `Name { field: …, }`.
                if !no_struct
                    && self.toks.get(j).is_some_and(|u| !u.is_word && u.text == "{")
                    && j < end
                    && segs
                        .last()
                        .is_some_and(|s| s.chars().next().is_some_and(char::is_uppercase))
                    && self.looks_like_struct_lit(j)
                {
                    let close = self.matching(j);
                    let (fields, base) = self.struct_fields(j + 1, close - 1);
                    return (
                        Expr::Struct {
                            name: segs.last().cloned().unwrap_or_default(),
                            fields,
                            base,
                        },
                        close,
                    );
                }
                // Macro call `name ! ( … )`: unmodelled.
                if self.toks.get(j).is_some_and(|u| !u.is_word && u.text == "!") {
                    if let Some(open) = self
                        .toks
                        .get(j + 1)
                        .filter(|u| matches!(u.text.as_str(), "(" | "[" | "{"))
                    {
                        let _ = open;
                        return (Expr::Unknown, self.matching(j + 1));
                    }
                }
                (Expr::Path(segs), j)
            }
        }
    }

    /// Heuristic: does the `{` at `open` start a struct literal body?
    fn looks_like_struct_lit(&self, open: usize) -> bool {
        match self.toks.get(open + 1) {
            None => false,
            Some(t) if !t.is_word => matches!(t.text.as_str(), "}" | ".."),
            Some(t) => {
                let _ = t;
                matches!(
                    self.toks.get(open + 2).map(|u| u.text.as_str()),
                    Some(":") | Some(",") | Some("}")
                )
            }
        }
    }

    /// Parses struct-literal fields in `[start, end)`.
    fn struct_fields(&self, start: usize, end: usize) -> (Vec<(String, Expr)>, Option<Box<Expr>>) {
        let mut fields = Vec::new();
        let mut base = None;
        let mut i = start;
        while i < end.min(self.toks.len()) {
            let t = &self.toks[i];
            if !t.is_word {
                if t.text == ".." {
                    let (b, j) = self.expr(i + 1, end, false);
                    base = Some(Box::new(b));
                    i = j;
                    continue;
                }
                i += 1;
                continue;
            }
            let name = t.text.clone();
            if self.toks.get(i + 1).is_some_and(|u| !u.is_word && u.text == ":") {
                let (v, j) = self.expr(i + 2, end, false);
                fields.push((name, v));
                i = j + 1; // skip the comma (or run past end harmlessly)
            } else {
                // Shorthand `field,`.
                fields.push((name.clone(), Expr::Path(vec![name])));
                i += 2;
            }
        }
        (fields, base)
    }

    /// `if [let] cond { then } [else if … | else { … }]` as an expression.
    fn if_expr(&self, i: usize, end: usize) -> (Expr, usize) {
        let is_let = self.toks.get(i + 1).is_some_and(|t| t.is_word && t.text == "let");
        let Some(open) = self.find_block_open(i + 1, end) else {
            return (Expr::Unknown, self.stmt_end(i));
        };
        let cond = if is_let {
            Expr::Unknown
        } else {
            self.expr(i + 1, open, true).0
        };
        let close = self.matching(open);
        let then_branch = self.block(open + 1, close - 1);
        // else?
        if self
            .toks
            .get(close)
            .filter(|_| close < end)
            .is_some_and(|t| t.is_word && t.text == "else")
        {
            if self
                .toks
                .get(close + 1)
                .is_some_and(|t| t.is_word && t.text == "if")
            {
                let (else_branch, j) = self.if_expr(close + 1, end);
                return (
                    Expr::If {
                        cond: Box::new(cond),
                        then_branch: Box::new(then_branch),
                        else_branch: Box::new(else_branch),
                    },
                    j,
                );
            }
            if self
                .toks
                .get(close + 1)
                .is_some_and(|t| !t.is_word && t.text == "{")
            {
                let eclose = self.matching(close + 1);
                let else_branch = self.block(close + 2, eclose - 1);
                return (
                    Expr::If {
                        cond: Box::new(cond),
                        then_branch: Box::new(then_branch),
                        else_branch: Box::new(else_branch),
                    },
                    eclose,
                );
            }
        }
        (
            Expr::If {
                cond: Box::new(cond),
                then_branch: Box::new(then_branch),
                else_branch: Box::new(Expr::Block(Vec::new(), None)),
            },
            close,
        )
    }

    /// `match scrutinee { arms }` as the join of its arm bodies.
    fn match_expr(&self, i: usize, end: usize) -> (Expr, usize) {
        let Some(open) = self.find_block_open(i + 1, end) else {
            return (Expr::Unknown, self.stmt_end(i));
        };
        // Scrutinee is evaluated for effect only (no refinement).
        let scrutinee = self.expr(i + 1, open, true).0;
        let close = self.matching(open);
        let mut arms: Vec<Expr> = vec![scrutinee];
        let mut j = open + 1;
        let body_end = close - 1;
        while j < body_end {
            // Skip the pattern to `=>` at depth 0.
            let mut k = j;
            let mut found = false;
            while k < body_end {
                let t = &self.toks[k];
                if !t.is_word {
                    match t.text.as_str() {
                        "(" | "[" | "{" => {
                            k = self.matching(k);
                            continue;
                        }
                        "=>" => {
                            found = true;
                            break;
                        }
                        _ => {}
                    }
                }
                k += 1;
            }
            if !found {
                break;
            }
            // Arm body: a block, or an expression up to the `,` at depth 0.
            let body_start = k + 1;
            if self
                .toks
                .get(body_start)
                .is_some_and(|t| !t.is_word && t.text == "{")
            {
                let bclose = self.matching(body_start);
                arms.push(self.block(body_start + 1, bclose - 1));
                j = bclose;
                if self.toks.get(j).is_some_and(|t| t.text == ",") {
                    j += 1;
                }
            } else {
                let (e, mut after) = self.expr(body_start, body_end, false);
                arms.push(e);
                // Advance over the trailing `,`.
                while after < body_end && self.toks[after].text != "," {
                    after = self.stmt_advance(after);
                }
                j = after + 1;
            }
        }
        (Expr::Match(arms), close)
    }

    /// One-token advance that keeps brackets balanced (error recovery).
    fn stmt_advance(&self, i: usize) -> usize {
        let t = &self.toks[i];
        if !t.is_word && matches!(t.text.as_str(), "(" | "[" | "{") {
            self.matching(i)
        } else {
            i + 1
        }
    }
}

/// Rebuilds a dotted place string as the matching `Path`/`Field` chain,
/// so a compound assignment's desugared read hits the same environment
/// key as its write.
fn place_expr(place: &str) -> Expr {
    let mut parts = place.split('.');
    let root = parts.next().unwrap_or("");
    let mut e = Expr::Path(vec![root.to_string()]);
    for p in parts {
        e = Expr::Field(Box::new(e), p.to_string());
    }
    e
}

/// Strips an integer/float type suffix from a numeric literal.
fn strip_suffix(s: &str) -> &str {
    for suf in [
        "f64", "f32", "usize", "isize", "u128", "i128", "u64", "i64", "u32", "i32", "u16",
        "i16", "u8", "i8",
    ] {
        if let Some(head) = s.strip_suffix(suf) {
            if !head.is_empty() && head.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                return head;
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn ir_of(src: &str) -> FileIr {
        lower(&tokenize(src))
    }

    #[test]
    fn lowers_consts_with_split_float_literals() {
        let ir = ir_of("pub const LIMIT: f64 = 2.4;\nconst E: f64 = 1e-6;\n");
        assert_eq!(ir.consts.len(), 2);
        assert!(matches!(ir.consts[0].expr, Expr::Num(v) if (v - 2.4).abs() < 1e-12));
        assert!(matches!(ir.consts[1].expr, Expr::Num(v) if (v - 1e-6).abs() < 1e-18));
    }

    #[test]
    fn lowers_fn_with_let_and_clamp() {
        let ir = ir_of(
            "fn f(x: f64) -> f64 {\n    let y = x * 2.0;\n    y.clamp(-1.0, 1.0)\n}\n",
        );
        assert_eq!(ir.fns.len(), 1);
        let f = &ir.fns[0];
        assert_eq!(f.params, vec!["x"]);
        let Expr::Block(stmts, tail) = &f.body else {
            panic!("body not a block")
        };
        assert_eq!(stmts.len(), 1);
        assert!(matches!(&stmts[0], Stmt::Assign { dst, weak: false, .. } if dst == "y"));
        let Some(tail) = tail else { panic!("no tail") };
        assert!(matches!(&**tail, Expr::Method { name, args, .. }
            if name == "clamp" && args.len() == 2));
    }

    #[test]
    fn impl_methods_get_qualified_names() {
        let ir = ir_of(
            "struct A;\nimpl A {\n    fn m(&self, v: f64) -> f64 { v }\n}\n",
        );
        assert_eq!(ir.fns.len(), 1);
        assert_eq!(ir.fns[0].qual, "A::m");
        assert_eq!(ir.fns[0].params, vec!["self", "v"]);
    }

    #[test]
    fn if_as_rvalue_keeps_both_branches() {
        let ir = ir_of("fn g(c: f64) -> f64 { if c > 0.0 { 1.0 } else { -1.0 } }\n");
        let Expr::Block(_, Some(tail)) = &ir.fns[0].body else {
            panic!("no tail")
        };
        let Expr::If { cond, .. } = &**tail else { panic!("not an if") };
        assert!(matches!(&**cond, Expr::Bin(BinOp::Gt, _, _)));
    }

    #[test]
    fn match_joins_arm_bodies() {
        let ir = ir_of(
            "fn h(o: Option<f64>) -> f64 { match o { Some(v) => v, None => 0.0 } }\n",
        );
        let Expr::Block(_, Some(tail)) = &ir.fns[0].body else {
            panic!("no tail")
        };
        // Scrutinee + two arms.
        assert!(matches!(&**tail, Expr::Match(arms) if arms.len() == 3));
    }

    #[test]
    fn struct_literal_with_shorthand() {
        let ir = ir_of("fn s(accel: f64) -> C { C { accel, steer: 0.0 } }\n");
        let Expr::Block(_, Some(tail)) = &ir.fns[0].body else {
            panic!("no tail")
        };
        let Expr::Struct { name, fields, .. } = &**tail else {
            panic!("not a struct literal")
        };
        assert_eq!(name, "C");
        assert_eq!(fields.len(), 2);
        assert_eq!(fields[0].0, "accel");
    }

    #[test]
    fn compound_assign_desugars() {
        let ir = ir_of("fn c() { let mut x = 0.0; x += 1.5; }\n");
        let Expr::Block(stmts, _) = &ir.fns[0].body else { panic!() };
        let Stmt::Assign { dst, expr, .. } = &stmts[1] else {
            panic!("not an assign")
        };
        assert_eq!(dst, "x");
        assert!(matches!(expr, Expr::Bin(BinOp::Add, _, _)));
    }

    #[test]
    fn unknown_constructs_do_not_panic() {
        // Closures, tuples, ranges, macros, indexing: all lower (to
        // Unknown where needed) without panicking.
        let ir = ir_of(
            "fn weird(v: Vec<f64>) -> f64 {\n    let t = (1.0, 2.0);\n    let c = v.iter().map(|x| x * 2.0).sum::<f64>();\n    let r = 0..10;\n    let e = v[0];\n    println!(\"{}\", c);\n    for i in 0..3 { let _ = i; }\n    e + c\n}\n",
        );
        assert_eq!(ir.fns.len(), 1);
    }

    #[test]
    fn test_fns_are_marked() {
        let ir = ir_of("#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { assert!(true); }\n}\n");
        assert_eq!(ir.fns.len(), 1);
        assert!(ir.fns[0].is_test);
    }

    #[test]
    fn return_lowers_to_weak_ret_assign() {
        let ir = ir_of("fn r(c: bool) -> f64 { if c { return 1.0; } 2.0 }\n");
        let Expr::Block(stmts, Some(_)) = &ir.fns[0].body else { panic!() };
        let Stmt::Eval { expr, .. } = &stmts[0] else { panic!("expected if") };
        let Expr::If { then_branch, .. } = expr else { panic!("not if") };
        let Expr::Block(inner, _) = &**then_branch else { panic!() };
        assert!(matches!(&inner[0], Stmt::Assign { dst, weak: true, .. } if dst == "%ret"));
    }
}
